"""Infiniband (Reliable Connection) fabric model.

Implements the protocol structure the paper describes for the Charm++
Infiniband machine layer (§2.1, §3):

* messages up to :attr:`IBParams.eager_max` total bytes go **eager** —
  one software-handled transfer;
* messages up to :attr:`IBParams.rdma_threshold` use the **packetized
  two-sided** protocol — the payload is chopped into
  :attr:`IBParams.packet_size` packets, each paying a per-packet
  overhead (this is why the default Charm++ per-byte cost in this band
  exceeds the raw RDMA rate, and why the CkDirect gap *grows* through
  this band — paper §3);
* larger messages use **rendezvous RDMA** — a small control-message
  round trip plus destination memory registration whose cost grows
  slowly with size, then an RDMA write at the wire rate (this is the
  protocol switch the paper locates between 20 KB and 30 KB);
* :meth:`direct_put` is a bare **RDMA write**: the buffers were
  registered at channel-setup time, so a put pays only the descriptor
  post and the wire.  Reliable Connection delivers bytes in order, so
  arrival of the last byte implies arrival of the whole message — the
  property the out-of-band polling scheme relies on.

Because the Reliable Connection guarantee is load-bearing for CkDirect
correctness, :class:`InfinibandFabric` also exposes
``force_protocol`` for the protocol-crossover ablation bench.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..projections.events import CAT_NET, NET_TRACK
from .base import Fabric, FabricError
from .params import IBParams

PROTOCOLS = ("eager", "packet", "rendezvous")


class InfinibandFabric(Fabric):
    """Fat-tree Infiniband cluster with RDMA."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not isinstance(self.machine.net, IBParams):
            raise FabricError(
                f"machine {self.machine.name!r} does not carry IBParams"
            )
        self._forced_protocol: Optional[str] = None

    @property
    def p(self) -> IBParams:
        """The machine's transport parameter block."""
        return self.machine.net

    def min_remote_latency(self) -> float:
        """Cross-node latency floor: the base alpha (``pre``, per-hop
        and per-byte terms are all non-negative on the fat tree)."""
        return self.p.alpha

    # ------------------------------------------------------------------
    # Protocol selection
    # ------------------------------------------------------------------

    def protocol_for(self, total_bytes: int) -> str:
        """Which two-sided protocol a message of ``total_bytes`` uses."""
        if self._forced_protocol is not None:
            return self._forced_protocol
        if total_bytes <= self.p.eager_max:
            return "eager"
        if total_bytes <= self.p.rdma_threshold:
            return "packet"
        return "rendezvous"

    def force_protocol(self, protocol: Optional[str]) -> None:
        """Pin the two-sided protocol choice (ablation use only)."""
        if protocol is not None and protocol not in PROTOCOLS:
            raise FabricError(f"unknown protocol {protocol!r}; expected {PROTOCOLS}")
        self._forced_protocol = protocol

    # ------------------------------------------------------------------
    # Transport services
    # ------------------------------------------------------------------

    def charm_transport(
        self, src: int, dst: int, payload_bytes: int, start: float, cb: Callable[[], None]
    ) -> float:
        """Default Charm++ message transport (protocol chosen by size)."""
        total = payload_bytes + self.machine.charm.header_bytes
        proto = self.protocol_for(total)
        self.trace.count(f"ib.charm.{proto}")
        if proto == "eager":
            return self.transfer(
                src, dst, total, start,
                pre=self.p.proto_overhead, alpha=self.p.alpha, beta=self.p.beta, cb=cb,
            )
        if proto == "packet":
            npkts = self.packets(total, self.p.packet_size)
            pkt_cost = npkts * self.p.packet_overhead
            return self.transfer(
                src, dst, total, start,
                pre=self.p.proto_overhead, alpha=self.p.alpha, beta=self.p.beta,
                ser_extra=pkt_cost, lat_extra=pkt_cost, cb=cb,
            )
        # Rendezvous RDMA: control round trip, then one RDMA write at
        # the wire rate.  Pinning/registering the destination memory is
        # *CPU work on the receiver* (a per-message cost CkDirect pays
        # only once, at channel setup) and is charged there via
        # recv_handler_cost — for an idle-receiver pingpong the total is
        # identical, but in overlapped applications it is CPU the
        # receiver cannot hide, which is where the paper's stencil and
        # matmul gains come from.
        if self.tracer is not None:
            # The RTS/CTS handshake is folded into rendezvous_rtt (the
            # calibration constant); surface it as a control event so
            # timelines show where the round trip sits.
            self.tracer.instant(
                self.trace_run, NET_TRACK, CAT_NET, "rendezvous_ctrl", start,
                args={"src": src, "dst": dst, "bytes": total,
                      "rtt": self.p.rendezvous_rtt},
            )
        pre = self.p.proto_overhead + self.p.rendezvous_rtt
        return self.transfer(
            src, dst, total, start,
            pre=pre, alpha=self.p.alpha, beta=self.p.beta, cb=cb,
        )

    def recv_handler_cost(self, total_bytes: int) -> float:
        """Receive-side low-level handler cost for a message size."""
        if self._forced_protocol is None and total_bytes > self.p.rdma_threshold:
            return self.p.reg_base + total_bytes * self.p.reg_per_byte
        if self._forced_protocol == "rendezvous":
            return self.p.reg_base + total_bytes * self.p.reg_per_byte
        return 0.0

    def direct_put(
        self, src: int, dst: int, nbytes: int, start: float, cb: Callable[[], None]
    ) -> float:
        """One RDMA write from a pre-registered source to a
        pre-registered destination.  No header, no protocol handshake,
        no registration on the critical path; small writes pay the DMA
        ramp (see :class:`IBParams`)."""
        self.trace.count("ib.rdma_put")
        ramp = min(nbytes, self.p.rdma_ramp_cap) * self.p.rdma_ramp_per_byte
        return self.transfer(
            src, dst, nbytes, start,
            pre=0.0, alpha=self.p.alpha, beta=self.p.beta,
            lat_extra=ramp, cb=cb,
        )
