"""Regression: sweep output is byte-identical at any jobs count.

This is the contract the whole parallel subsystem rests on: ``--jobs``
is a wall-clock knob only.  The test renders a real artifact (a
reduced Table 1 — five stacks, two sizes, real simulator runs) twice
and compares the *rendered report strings byte for byte*, plus the
raw floats exactly (no tolerance).
"""

from repro.bench.harness import run_fig2a, run_table1
from repro.sweep import RunSpec, SweepRunner


def test_table1_jobs4_byte_identical_to_serial():
    serial = run_table1(sizes=[1000, 4000], iterations=5, jobs=1)
    parallel = run_table1(sizes=[1000, 4000], iterations=5, jobs=4)
    assert parallel["report"] == serial["report"]
    assert parallel["measured"] == serial["measured"]  # exact float equality


def test_fig2a_jobs4_byte_identical_to_serial():
    serial = run_fig2a(pes=[8, 16], iterations=2, jobs=1)
    parallel = run_fig2a(pes=[8, 16], iterations=2, jobs=4)
    assert parallel["report"] == serial["report"]
    assert parallel["gains"] == serial["gains"]
    assert parallel["msg_ms"] == serial["msg_ms"]
    assert parallel["ckd_ms"] == serial["ckd_ms"]


def test_env_jobs_matches_explicit(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    via_env = run_table1(sizes=[1000], iterations=5)
    monkeypatch.delenv("REPRO_JOBS")
    serial = run_table1(sizes=[1000], iterations=5)
    assert via_env["report"] == serial["report"]


def test_repeated_parallel_runs_identical():
    specs = [
        RunSpec.make("pingpong", "Surveyor", "ckdirect", size=s, iterations=5)
        for s in (1000, 2000, 4000)
    ]
    a = [r.unwrap() for r in SweepRunner(jobs=3).run(specs)]
    b = [r.unwrap() for r in SweepRunner(jobs=3).run(specs)]
    assert a == b
