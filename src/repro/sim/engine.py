"""The discrete-event simulation engine.

The :class:`Simulator` owns simulated time.  Every other component of
this package — network models, processing elements, the Charm++-like
runtime, the simulated MPI — advances time exclusively by scheduling
events here.

Design notes
------------
* Time is a ``float`` in **seconds**.  The helpers in
  :mod:`repro.util.units` (``us``, ``ms``, ``KB`` …) keep call sites
  readable.
* The event heap breaks ties deterministically (see
  :mod:`repro.sim.event`), so a run is a pure function of its inputs
  and seed.
* The engine is deliberately minimal: no processes/coroutines, just
  callbacks.  The message-driven programming model of Charm++ maps
  naturally onto callbacks, so a process abstraction would only add
  overhead and non-determinism risk.

Hot-path structure
------------------
A figure sweep fires tens of millions of events, so the constant cost
per event is first-order for wall-clock time (see
``benchmarks/test_engine_micro.py``):

* heap entries are plain ``(time, priority, seq, event)`` tuples —
  sift comparisons are C tuple comparisons, never
  :meth:`Event.__lt__` dispatch (``seq`` is unique, so the trailing
  event object is never compared);
* :meth:`run` binds the heap and ``heappop`` to locals and has a
  dedicated no-``until``/no-``max_events`` loop (the common case) with
  a no-kwargs callback fast path;
* cancelled events are counted exactly (:attr:`pending_active`) and
  compacted *lazily*: the heap is rebuilt only when cancelled entries
  dominate it, so workloads that rarely cancel never pay for it;
* :meth:`schedule_batch` admits a burst of callbacks in one call —
  used by the fabric layer for multi-put/multi-packet send bursts.

This class is also the *reference implementation* of the pluggable
event-queue layer: :mod:`repro.sim.eventq` provides a calendar-queue
variant and an optional compiled core that must match this engine's
pop order bit-for-bit.  Construct through
:func:`repro.sim.eventq.make_simulator` to honor ``REPRO_EVENTQ``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional, Tuple

from .event import Event

#: Lazy-compaction trigger: rebuild the heap when more than this many
#: cancelled events are heaped *and* they outnumber live entries.
_COMPACT_MIN = 64


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine."""


class Simulator:
    """A deterministic discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1e-6, fired.append, "a")
    >>> _ = sim.schedule(0.5e-6, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1e-06
    """

    #: Event-queue implementation name, reported by ``repro profile``
    #: and the serve layer's ``/metrics`` (see :mod:`repro.sim.eventq`).
    eventq_name = "heap"

    def __init__(self) -> None:
        self._now: float = 0.0
        # Heap of (time, priority, seq, Event) tuples; see module doc.
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq: int = 0
        self._running: bool = False
        self._events_processed: int = 0
        self._cancelled_in_heap: int = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired since construction (cancelled excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still on the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def pending_active(self) -> int:
        """Number of *live* (non-cancelled) events still on the heap."""
        return len(self._heap) - self._cancelled_in_heap

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``fn(*args, **kwargs)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay fires after all
        events already scheduled for the current instant at equal
        priority (FIFO among ties).
        """
        if not (delay >= 0):  # rejects negatives and NaN
            raise SimulationError(f"negative delay: {delay!r}")
        return self.at(self._now + delay, fn, *args, priority=priority, **kwargs)

    def at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``fn`` at an absolute simulated time."""
        if not (time >= self._now):  # rejects past times and NaN
            raise SimulationError(
                f"cannot schedule in the past: t={time!r} < now={self._now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, priority, seq, fn, args, kwargs, self)
        heapq.heappush(self._heap, (time, priority, seq, ev))
        return ev

    def schedule_batch(
        self,
        entries: Iterable[Tuple[float, Callable[..., Any], tuple]],
        priority: int = 0,
    ) -> List[Event]:
        """Schedule a burst of ``(time, fn, args)`` callbacks in one call.

        ``time`` is absolute, as in :meth:`at`.  Sequence numbers are
        assigned in iteration order, so ties fire exactly as if each
        entry had been scheduled by an individual :meth:`at` call.  For
        bursts that rival the heap in size the whole heap is rebuilt
        with one O(n) ``heapify`` instead of k O(log n) sifts; either
        way the per-entry Python overhead (argument processing, kwargs
        dict handling) of repeated :meth:`at` calls is skipped.  Used
        by the fabrics for multi-put / multi-packet send bursts.

        A past (or NaN) time raises :class:`SimulationError` exactly as
        :meth:`at` does, and the rejection is atomic: neither the heap
        nor the sequence counter is touched, so a failed batch admits
        nothing.
        """
        now = self._now
        heap = self._heap
        seq = self._seq
        events: List[Event] = []
        batch: List[Tuple[float, int, int, Event]] = []
        for time, fn, args in entries:
            if not (time >= now):  # rejects past times and NaN
                raise SimulationError(
                    f"cannot schedule in the past: t={time!r} < now={now!r}"
                )
            ev = Event(time, priority, seq, fn, args, None, self)
            batch.append((time, priority, seq, ev))
            events.append(ev)
            seq += 1
        self._seq = seq
        if len(batch) * 8 > len(heap):
            heap.extend(batch)
            heapq.heapify(heap)
        else:
            push = heapq.heappush
            for entry in batch:
                push(heap, entry)
        return events

    # ------------------------------------------------------------------
    # Cancellation accounting
    # ------------------------------------------------------------------

    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` while the event is heaped."""
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap > _COMPACT_MIN
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the heap (O(n)).

        Dropped events are already ``_cancelled``, so a late
        ``cancel()`` on one of them stays a no-op — no flag updates
        are needed on the removed entries.

        The heap list is compacted *in place*: :meth:`run`,
        :meth:`step`, and :meth:`schedule_batch` hold local aliases to
        it across event execution, and cancellation (hence compaction)
        can happen inside an event callback.  Rebinding ``self._heap``
        here would strand those aliases on the stale list and the run
        loop would return with pending events.
        """
        live = [entry for entry in self._heap if not entry[3]._cancelled]
        heapq.heapify(live)
        self._heap[:] = live
        self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def next_event_time(self) -> float:
        """Time of the next *live* event, or ``inf`` with an empty heap.

        Cancelled entries sitting at the top are popped (they would be
        discarded by the next run loop anyway), so the answer reflects
        :attr:`pending_active`, not :attr:`pending`.  Used by the
        parallel engine's conservative window negotiation.
        """
        heap = self._heap
        while heap:
            ev = heap[0][3]
            if ev._cancelled:
                heapq.heappop(heap)
                ev._popped = True
                self._cancelled_in_heap -= 1
                continue
            return heap[0][0]
        return float("inf")

    def run_before(self, bound: float) -> None:
        """Fire every event with ``time < bound``, *strictly*.

        Unlike ``run(until=...)`` this neither fires events at exactly
        ``bound`` nor advances the clock to ``bound`` when the heap
        drains early: the parallel engine runs a shard window-by-window
        and a later window may admit events between ``now`` and the
        previous bound.
        """
        if self._running:
            raise SimulationError("Simulator.run_before() is not reentrant")
        self._running = True
        fired = 0
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap:
                entry = heap[0]
                ev = entry[3]
                if ev._cancelled:
                    pop(heap)
                    ev._popped = True
                    self._cancelled_in_heap -= 1
                    continue
                if entry[0] >= bound:
                    return
                pop(heap)
                ev._popped = True
                self._now = entry[0]
                fired += 1
                kw = ev.kwargs
                if kw is None:
                    ev.fn(*ev.args)
                else:
                    ev.fn(*ev.args, **kw)
        finally:
            self._events_processed += fired
            self._running = False

    def step(self) -> bool:
        """Fire the single next event.  Returns False if the heap is empty."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)[3]
            ev._popped = True
            if ev._cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._now = ev.time
            self._events_processed += 1
            if ev.kwargs is None:
                ev.fn(*ev.args)
            else:
                ev.fn(*ev.args, **ev.kwargs)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the heap drains, ``until`` is reached, or ``max_events``.

        ``until`` is an absolute simulated time; events scheduled at
        exactly ``until`` still fire.  When the heap drains before
        ``until``, the clock is advanced to ``until``.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        fired = 0
        heap = self._heap
        pop = heapq.heappop
        try:
            if until is None and max_events is None:
                # Fast path: the common run-to-completion case.
                while heap:
                    time, _, _, ev = pop(heap)
                    ev._popped = True
                    if ev._cancelled:
                        self._cancelled_in_heap -= 1
                        continue
                    self._now = time
                    fired += 1
                    kw = ev.kwargs
                    if kw is None:
                        ev.fn(*ev.args)
                    else:
                        ev.fn(*ev.args, **kw)
                return
            while heap:
                if max_events is not None and fired >= max_events:
                    return
                entry = heap[0]
                ev = entry[3]
                if ev._cancelled:
                    pop(heap)
                    ev._popped = True
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and entry[0] > until:
                    self._now = until
                    return
                pop(heap)
                ev._popped = True
                self._now = entry[0]
                fired += 1
                if ev.kwargs is None:
                    ev.fn(*ev.args)
                else:
                    ev.fn(*ev.args, **ev.kwargs)
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._events_processed += fired
            self._running = False

    def drain(self, max_events: int = 50_000_000) -> None:
        """Run to completion, guarding against runaway event loops."""
        self.run(max_events=max_events)
        if self.pending_active:
            raise SimulationError(
                f"simulation did not converge within {max_events} events"
            )
