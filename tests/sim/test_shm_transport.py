"""The shared-memory shard transport: rings, framing, and parity.

Three layers of contract:

* **ring mechanics** — frames wrap the ring edge losslessly, a frame
  whose sentinel byte has not landed is invisible, oversized payloads
  spill through one-shot segments, and structural corruption (a
  length word overstepping the ring edge, a wrong sequence number)
  raises :class:`TornFrameError` instead of delivering garbage;
* **hygiene** — every ``/dev/shm`` segment the transport creates is
  unlinked by the time a run returns, including runs that restart a
  SIGKILL'd shard or degrade to serial on an exhausted budget;
* **parity** — results over shm are bit-identical to pipe and to a
  serial run, per app, per engine, at any shard count.

SURVEYOR at 16 PEs = 4 nodes (4 cores/node), so ``shards=4`` forks
four real worker processes.
"""

import hashlib
import multiprocessing as mp
import pickle
import struct
import time

import numpy as np
import pytest

from repro.faults import ProcFaultPlan
from repro.network.params import ABE, SURVEYOR
from repro.sim import shm
from repro.sim.shm import (
    TornFrameError,
    TransportError,
    channel_pair,
    resolve_ring_bytes,
    resolve_transport,
    segment_prefix,
)

CTX = mp.get_context("fork")


def _leaked_segments():
    """Names under /dev/shm carrying this module's prefix."""
    import glob
    import os.path

    return [os.path.basename(p)
            for p in glob.glob("/dev/shm/" + segment_prefix() + "*")]


@pytest.fixture(autouse=True)
def _no_leaks():
    """Every test must leave /dev/shm exactly as it found it."""
    before = set(_leaked_segments())
    yield
    leaked = set(_leaked_segments()) - before
    assert not leaked, f"leaked shm segments: {sorted(leaked)}"


def _shm_pair(tag):
    """An in-process pair (both ends share the pre-fork mappings)."""
    return channel_pair(CTX, "shm", tag)


# ---------------------------------------------------------------------------
# Knob resolution (flag > env > default)
# ---------------------------------------------------------------------------


def test_resolve_transport_default_is_pipe():
    assert resolve_transport() == "pipe"
    assert resolve_transport(None) == "pipe"


def test_resolve_transport_argument_wins(monkeypatch):
    monkeypatch.setenv("REPRO_TRANSPORT", "pipe")
    assert resolve_transport("shm") == "shm"
    assert resolve_transport("  SHM ") == "shm"


def test_resolve_transport_env(monkeypatch):
    monkeypatch.setenv("REPRO_TRANSPORT", "shm")
    assert resolve_transport() == "shm"
    monkeypatch.setenv("REPRO_TRANSPORT", "carrier-pigeon")
    with pytest.raises(TransportError, match="REPRO_TRANSPORT"):
        resolve_transport()


def test_resolve_transport_junk_argument():
    with pytest.raises(TransportError, match="transport must be"):
        resolve_transport("udp")


def test_resolve_ring_bytes(monkeypatch):
    assert resolve_ring_bytes() == shm._DEFAULT_RING
    monkeypatch.setenv("REPRO_SHM_RING", "8192")
    assert resolve_ring_bytes() == 8192
    monkeypatch.setenv("REPRO_SHM_RING", "8193")  # rounded up to 8
    assert resolve_ring_bytes() == 8200
    monkeypatch.setenv("REPRO_SHM_RING", "12")
    with pytest.raises(TransportError, match="at least"):
        resolve_ring_bytes()
    monkeypatch.setenv("REPRO_SHM_RING", "lots")
    with pytest.raises(TransportError, match="integer"):
        resolve_ring_bytes()


# ---------------------------------------------------------------------------
# Ring mechanics
# ---------------------------------------------------------------------------


def test_ring_wraps_losslessly(monkeypatch):
    """Many varied-size frames through a tiny ring force repeated
    wrap-arounds; every payload must come back bit-exact, in order."""
    monkeypatch.setenv("REPRO_SHM_RING", "4096")
    parent, child = _shm_pair("wrap")
    try:
        rng = np.random.default_rng(0xC5)
        sent = []
        for i in range(400):
            size = int(rng.integers(1, 700))
            obj = (i, rng.bytes(size))
            sent.append(obj)
            parent.send(obj)        # interleaved: the in-process
            assert child.recv() == sent[-1]  # reader drains each frame
        # head has lapped the 4 KiB ring many times over
        assert parent.tx._head > 10 * 4096
        assert parent.tx._head == child.rx._tail
    finally:
        child.close()
        parent.unlink()


def test_frame_invisible_until_sentinel_lands():
    """A frame with payload, seq, and length committed but no
    sentinel byte must not be readable; landing the sentinel makes
    it readable (the paper's completion-by-last-byte contract)."""
    parent, child = _shm_pair("sent")
    try:
        ring = parent.tx
        payload = pickle.dumps("landed", pickle.HIGHEST_PROTOCOL)
        base = shm._HDR  # pos 0 in a fresh ring
        end = base + shm._FRAME_HDR + len(payload)
        ring.buf[base + shm._FRAME_HDR:end] = payload
        struct.pack_into("<I", ring.buf, base + 4, 0)       # seq
        struct.pack_into("<I", ring.buf, base, len(payload))  # len
        assert child.poll(0.0) is False
        assert child.rx.try_read() is None
        ring.buf[end] = shm._SENTINEL                        # commit
        assert child.poll(0.0) is True
        view, spilled = child.rx.try_read()
        assert not spilled and pickle.loads(view) == "landed"
        view.release()
    finally:
        child.close()
        parent.unlink()


class _HeapSeg:
    """A ``_Ring`` backing store on plain process memory — exercises
    the ring arithmetic without touching ``/dev/shm``."""

    def __init__(self, size):
        self.buf = memoryview(bytearray(size))
        self.name = "heap"

    def close(self):
        pass


def test_max_payload_frame_fits_at_every_head_offset():
    """Regression: a wrapping write must reserve the dead bytes to the
    ring edge *plus* the relocated frame, so any payload ``send``
    keeps in-ring has to fit on a drained ring from EVERY head offset.
    The old ``capacity - 32`` bound admitted half-ring-plus frames
    that could never satisfy that reservation — ``try_write`` returned
    False forever and ``send`` spun against a live peer."""
    cap = 4096
    probe = shm._Ring(_HeapSeg(shm._HDR + cap), cap)
    # the wrap worst case needs 2x the frame extent; max_payload must
    # guarantee it fits
    extent = (probe.max_payload() + shm._FRAME_HDR + 8) & ~7
    assert 2 * extent <= cap
    big = b"\xa5" * probe.max_payload()
    # reachable head offsets are 0 and every multiple of 8 >= 16
    for offset in (0, *range(16, cap, 8)):
        ring = shm._Ring(_HeapSeg(shm._HDR + cap), cap)
        if offset:
            # one filler frame of extent == offset, drained immediately
            assert ring.try_write(b"\0" * (offset - 9))
            view, _ = ring.try_read()
            view.release()
            ring.consume()
            assert ring._head == offset
        assert ring.try_write(big), f"max payload stuck at offset {offset}"
        view, _ = ring.try_read()
        assert bytes(view) == big
        view.release()
        ring.consume()


def test_over_half_ring_payload_spills_not_deadlocks(monkeypatch):
    """A payload past half the ring takes the spill path — in-ring it
    could find the ring fully drained and still never fit once a wrap
    is needed — and the ring path stays healthy around it."""
    monkeypatch.setenv("REPRO_SHM_RING", "4096")
    parent, child = _shm_pair("half")
    try:
        big = b"y" * 2080  # pickles past half the 4 KiB ring
        for i in range(8):
            mid = b"m" * (1500 + 8 * i)  # in-ring; walks the head
            parent.send(mid)
            assert child.recv() == mid
            parent.send(big)
            assert child.recv() == big
        assert parent.stats.spills == 8
    finally:
        child.close()
        parent.unlink()


def test_zero_length_frame_rejected():
    """A 0 length word is the reader's 'no frame yet' marker: framing
    an empty payload would commit a permanently invisible frame and
    desync the seq check on the frame behind it."""
    ring = shm._Ring(_HeapSeg(shm._HDR + 4096), 4096)
    with pytest.raises(TransportError, match="zero-length"):
        ring.try_write(b"")


def test_poll_wakes_on_peer_death_mid_timeout():
    """A long poll parks in the lifeline's select once the ring stays
    quiet; the peer dying mid-slice must wake it immediately (EOF
    counts as readable, the Connection convention), not at the
    timeout."""
    parent, child = _shm_pair("pollwake")

    def _worker(ch):
        time.sleep(0.4)
        ch.close()

    proc = CTX.Process(target=_worker, args=(child,))
    proc.start()
    child.close()
    try:
        t0 = time.monotonic()
        assert parent.poll(30.0) is True
        assert time.monotonic() - t0 < 10.0
    finally:
        proc.join()
        parent.unlink()


def test_oversized_payload_spills(monkeypatch):
    """A payload larger than the ring travels through a one-shot
    spill segment and the segment is gone after the read."""
    monkeypatch.setenv("REPRO_SHM_RING", "4096")
    parent, child = _shm_pair("spill")
    try:
        blob = bytes(range(256)) * 48  # 12 KiB > 4 KiB ring
        parent.send(blob)
        assert parent.stats.spills == 1
        assert child.recv() == blob
        parent.send("small")  # ring path still healthy after a spill
        assert child.recv() == "small"
        assert parent.stats.spills == 1
    finally:
        child.close()
        parent.unlink()


def test_corrupt_length_raises_torn_frame():
    """A length word overstepping the ring edge is structurally
    impossible for a committed frame — the reader must refuse it."""
    parent, child = _shm_pair("tornlen")
    try:
        parent.send("victim")
        struct.pack_into("<I", child.rx.buf, shm._HDR, 0x7FFFFF0)
        with pytest.raises(TornFrameError, match="exceeds"):
            child.recv()
    finally:
        child.close()
        parent.unlink()


def test_corrupt_seq_raises_torn_frame():
    """A committed frame whose sequence number is not the reader's
    expected next frame signals lost or replayed data."""
    parent, child = _shm_pair("tornseq")
    try:
        parent.send("victim")
        struct.pack_into("<I", child.rx.buf, shm._HDR + 4, 99)
        with pytest.raises(TornFrameError, match="seq"):
            child.recv()
    finally:
        child.close()
        parent.unlink()


def test_peer_death_is_eof():
    """Connection semantics survive the transport swap: recv on a
    channel whose peer exited raises EOFError after the drain."""
    parent, child = _shm_pair("eof")

    def _worker(ch):
        ch.send("last words")
        ch.close()

    proc = CTX.Process(target=_worker, args=(child,))
    proc.start()
    child.close()
    try:
        assert parent.recv() == "last words"
        with pytest.raises(EOFError):
            parent.recv()
        with pytest.raises(BrokenPipeError):
            for _ in range(10_000):  # until the full-ring check trips
                parent.send(b"x" * 4096)
    finally:
        proc.join()
        parent.unlink()


# ---------------------------------------------------------------------------
# Bit-identity: pipe|shm x conservative|optimistic x app x shards
# ---------------------------------------------------------------------------


def _stencil(shards, **kw):
    from repro.apps.stencil.driver import gather_grid, run_stencil

    r = run_stencil(SURVEYOR, 16, domain=(16, 16, 16), vr=2, iterations=3,
                    mode="ckd", validate=True, keep_runtime=True,
                    shards=shards, **kw)
    return r, gather_grid(r)


def _matmul(shards, **kw):
    from repro.apps.matmul.driver import gather_c, run_matmul

    r = run_matmul(ABE, 16, N=32, c=2, iterations=3, mode="ckd",
                   validate=True, keep_runtime=True, shards=shards, **kw)
    return r, gather_c(r)


def _openatom(shards, **kw):
    from repro.apps.openatom.driver import abe_2cpn, run_openatom

    r = run_openatom(abe_2cpn(ABE), 16, mode="ckd", validate=True,
                     keep_runtime=True, shards=shards, nstates=8, nplanes=2,
                     grain=4, points_per_plane=64, iterations=2,
                     rest_rounds=2, **kw)
    state = []
    for arr in r.runtime.arrays.values():
        if arr.internal:
            continue
        for idx in sorted(arr.elements):
            elem = arr.elements[idx]
            if getattr(elem, "points", None) is not None:
                state.append(np.ravel(elem.points))
            elif getattr(elem, "left", None) is not None:
                state.extend([np.ravel(elem.left), np.ravel(elem.right)])
    return r, np.concatenate(state)


#: app -> (runner, real shard count on that app's machine)
_APPS = {"stencil": (_stencil, 4), "matmul": (_matmul, 2),
         "openatom": (_openatom, 4)}


@pytest.fixture(scope="module")
def serial_baseline():
    """Serial (shards=1) state + timings per app — transport never
    enters the picture at one shard, so this is the reference."""
    out = {}
    for name, (fn, _shards) in _APPS.items():
        r, state = fn(shards=1)
        out[name] = (state, r.events,
                     getattr(r, "iter_times", None) or r.step_times)
    return out


@pytest.mark.parametrize("engine", ["conservative", "optimistic"])
@pytest.mark.parametrize("app", sorted(_APPS))
@pytest.mark.parametrize("transport", ["pipe", "shm"])
def test_sharded_run_is_bit_identical(serial_baseline, transport, app,
                                      engine):
    state0, events0, times0 = serial_baseline[app]
    fn, shards = _APPS[app]
    r, state = fn(shards=shards, transport=transport, engine=engine)
    assert np.array_equal(state, state0)
    assert r.events == events0
    times = getattr(r, "iter_times", None) or r.step_times
    assert times == times0


def test_transport_stats_surfaced_on_shm_run():
    r, _ = _stencil(shards=4, transport="shm")
    ts = r.runtime.transport_stats
    assert ts is not None and ts["transport"] == "shm"
    assert ts["frames"] > 0 and ts["bytes"] > 0
    assert ts["spills"] >= 0


# ---------------------------------------------------------------------------
# Supervision over shm: restart and degrade without leaking segments
# ---------------------------------------------------------------------------


def _sup_digest(result):
    from repro.apps.stencil.driver import gather_grid

    return hashlib.sha256(gather_grid(result).tobytes()).hexdigest()


def test_supervisor_restart_over_shm(serial_baseline):
    """A SIGKILL'd shard is restarted on pristine rings; the replayed
    run stays bit-identical and the dead incarnation's segments are
    reclaimed."""
    state0, events0, _ = serial_baseline["stencil"]
    r, state = _stencil(shards=4, transport="shm",
                        proc_faults=ProcFaultPlan.named("kill-shard"))
    sup = r.runtime.supervision
    assert sup["restarts"] == 1 and sup["crashes"] == 1
    assert np.array_equal(state, state0)
    assert r.events == events0
    ts = r.runtime.transport_stats
    assert ts["transport"] == "shm" and ts["frames"] > 0


def test_budget_exhausted_degrade_over_shm(serial_baseline, monkeypatch):
    """Zero restart budget + a killed shard: the run degrades to the
    serial engine, still bit-identical, and every segment of the
    abandoned parallel attempt is unlinked."""
    monkeypatch.setenv("REPRO_MAX_SHARD_RESTARTS", "0")
    state0, events0, _ = serial_baseline["stencil"]
    r, state = _stencil(shards=4, transport="shm",
                        proc_faults=ProcFaultPlan.named("kill-shard"))
    sup = r.runtime.supervision
    assert sup["degraded"] and sup["restarts"] == 0
    assert np.array_equal(state, state0)
    assert r.events == events0
