"""Tests for CSV export of bench results."""

import csv

import pytest

from repro.bench import export_series_csv, export_table_csv
from repro.bench.export import export_all


def test_export_table_csv(tmp_path):
    result = {
        "sizes": [100, 1000],
        "measured": {"A": [1.5, 2.5], "B": [3.0, 4.0]},
        "paper": {"A": [1.6, 2.6], "B": [3.1, 4.1]},
    }
    path = export_table_csv(result, tmp_path / "t.csv")
    rows = list(csv.reader(path.open()))
    assert rows[0] == ["stack", "nbytes", "rtt_us", "paper_rtt_us"]
    assert rows[1] == ["A", "100", "1.500000", "1.600000"]
    assert len(rows) == 5


def test_export_table_csv_without_paper(tmp_path):
    result = {"sizes": [100], "measured": {"A": [1.0]}, "paper": None}
    path = export_table_csv(result, tmp_path / "t.csv")
    rows = list(csv.reader(path.open()))
    assert rows[1][-1] == ""


def test_export_series_csv(tmp_path):
    result = {
        "pes": [32, 64],
        "gains": [2.0, 4.0],
        "msg_ms": [10.0, 5.0],
        "ckd_ms": [9.8, 4.8],
        "report": "not a column",
    }
    path = export_series_csv(result, tmp_path / "s.csv")
    rows = list(csv.reader(path.open()))
    assert rows[0][0] == "pes"
    assert set(rows[0][1:]) == {"gains", "msg_ms", "ckd_ms"}
    assert rows[1][0] == "32"
    assert len(rows) == 3


def test_export_series_custom_x_key(tmp_path):
    result = {"ratios": [1, 2], "gains": [0.1, 0.5]}
    path = export_series_csv(result, tmp_path / "vr.csv", x_key="ratios")
    rows = list(csv.reader(path.open()))
    assert rows[0] == ["ratios", "gains"]


def test_export_all_small(tmp_path, monkeypatch):
    """End-to-end: regenerate small variants and dump CSVs."""
    import repro.bench.export as ex

    monkeypatch.setattr(
        "repro.bench.harness.run_table1",
        lambda iterations=50: {
            "sizes": [100], "measured": {"A": [1.0]}, "paper": None,
        },
    )
    # use the real export path but with tiny stubbed runners for speed
    import repro.bench.harness as h

    monkeypatch.setattr(h, "run_table2", lambda iterations=50: {
        "sizes": [100], "measured": {"B": [2.0]}, "paper": None})
    monkeypatch.setattr(h, "run_fig2a", lambda: {
        "pes": [8], "gains": [1.0], "msg_ms": [2.0], "ckd_ms": [1.9],
        "report": ""})
    monkeypatch.setattr(h, "run_fig2b", lambda: {
        "pes": [8], "gains": [0.5], "msg_ms": [2.0], "ckd_ms": [1.99],
        "report": ""})
    written = export_all(tmp_path)
    assert len(written) == 4
    assert all(p.exists() for p in written)
