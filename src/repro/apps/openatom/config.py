"""Configuration for the OpenAtom PairCalculator mini-app (paper §5).

OpenAtom proper is a ~0.5 MLoC Car-Parrinello MD code; the paper's
CkDirect evaluation touches exactly one structure inside it — the
GSpace → PairCalculator point communication during orthonormalization
— plus the polling-queue pathology that motivated the
``ReadyMark``/``ReadyPollQ`` split.  This mini-app reproduces that
structure faithfully:

* a 2-D ``GS(s, p)`` chare array holds each electronic state's plane
  of complex g-space points,
* a 3-D ``PC(i, j, p)`` array (state-block × state-block × plane)
  receives the points of ``2 × grain`` states into contiguous operand
  buffers and forms the overlap matrix with a DGEMM,
* the overlap reduces to an ``Ortho`` chare, orthonormalization
  results broadcast back, the PCs run the backward transform, and the
  corrected points return to the GS chares,
* the rest of the timestep (density, real-space, nonlocal phases) is
  modelled as compute plus a ring of small messages among GS chares —
  enough scheduler activity for naive polling to tax (§5.2).

The paper's benchmark (water, 256 molecules, 70 Ry — 1024 states)
would mean O(10^5) chares; ``scale`` shrinks states/planes while
preserving every ratio the experiment measures.  The default
configuration keeps the PairCalculator phase at roughly the fraction
of the timestep the paper's Figures 4–5 imply.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: complex double precision — the paper's state representation
POINT_BYTES = 16

#: Out-of-band value: g-space coefficients are finite; the mini-app
#: keeps all real payload values in (0, 2), so -1 never occurs.
OPENATOM_OOB = -1.0


@dataclass(frozen=True)
class OpenAtomConfig:
    """Scaled-down w256M-like configuration."""

    nstates: int = 64  # electronic states (paper: 1024)
    nplanes: int = 8  # g-space planes per state
    grain: int = 8  # states per PairCalculator block
    points_per_plane: int = 2048  # g-space points per (state, plane)
    iterations: int = 3
    pc_only: bool = False  # paper's "PC" runs: only PairCalculator phases
    polling: str = "phased"  # "phased" (ReadyMark+ReadyPollQ) | "naive"
    #: how many small ring-message rounds model the non-PC phases —
    #: the real density/real-space/nonlocal phases process hundreds of
    #: messages per PE per step, and each of those scheduler
    #: iterations sweeps the polling queue (the §5.2 tax when the
    #: naive ``ready`` keeps every channel polled)
    rest_rounds: int = 24
    #: Arithmetic-intensity restoration factor.  The paper's benchmark
    #: has 1024 states, so each transferred point feeds ~1024
    #: multiply-adds; this scaled-down mini-app (64 states) would be
    #: overhead-dominated at physical flop counts, inverting every
    #: ratio the experiment measures.  The PairCalculator DGEMM charge
    #: is multiplied by this factor to restore the full benchmark's
    #: compute-to-communication ratio (calibrated so the MSG-version
    #: PairCalculator overhead fraction matches the paper's ~14 %
    #: PC-only improvement band on Abe).
    pc_work_scale: float = 40.0
    #: compute charge (seconds) per GS chare for the non-PC phases,
    #: per round — chosen so the PairCalculator phase is roughly a
    #: third of the full step (full-app gains ≈ 4 % vs PC-only ≈ 14 %,
    #: Figure 4).
    rest_work: float = 150e-6
    validate: bool = False
    seed: int = 20090924

    def __post_init__(self) -> None:
        if self.nstates % self.grain:
            raise ValueError(
                f"grain {self.grain} must divide nstates {self.nstates}"
            )
        if self.polling not in ("phased", "naive"):
            raise ValueError(f"polling must be 'phased' or 'naive'")

    @property
    def nblocks(self) -> int:
        """State blocks per side (nstates / grain)."""
        return self.nstates // self.grain

    @property
    def points_bytes(self) -> int:
        """Bytes of one (state, plane) point set."""
        return self.points_per_plane * POINT_BYTES

    @property
    def gs_count(self) -> int:
        """Number of GSpace chares."""
        return self.nstates * self.nplanes

    @property
    def pc_count(self) -> int:
        """Number of PairCalculator chares."""
        return self.nblocks * self.nblocks * self.nplanes

    @property
    def channels_total(self) -> int:
        """CkDirect channels in the CKD version: every (state, plane)
        feeds one row-side and one column-side PC block per plane —
        2 × nblocks channels per GS chare (cf. the paper's
        4 × nstates × nplanes at the coarsest decomposition)."""
        return 2 * self.nblocks * self.gs_count
