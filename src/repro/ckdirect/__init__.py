"""CkDirect: unsynchronized one-sided communication (the paper's
primary contribution).

The interface mirrors the paper's §2 exactly — see
:mod:`repro.ckdirect.api` for the function-by-function mapping — and
the two platform implementations (Infiniband polling queue with
out-of-band sentinels; Blue Gene/P DCMF completion callbacks) are
selected by the machine the runtime was built with.

Extensions from the paper's future-work list live under
:mod:`repro.ckdirect.ext`.
"""

from .api import (
    CkDirect_assocLocal,
    CkDirect_createHandle,
    CkDirect_put,
    CkDirect_ready,
    CkDirect_readyMark,
    CkDirect_readyPollQ,
    assoc_local,
    create_handle,
    put,
    ready,
    ready_mark,
    ready_poll_q,
    register_handle,
)
from .handle import (
    RACE_CHECK,
    ChannelState,
    ChannelStateError,
    CkDirectError,
    CkDirectHandle,
    PutRaceError,
    SentinelError,
)
from ..charm.errors import PutMismatchError

__all__ = [
    "create_handle",
    "assoc_local",
    "put",
    "ready",
    "ready_mark",
    "ready_poll_q",
    "register_handle",
    "CkDirect_createHandle",
    "CkDirect_assocLocal",
    "CkDirect_put",
    "CkDirect_ready",
    "CkDirect_readyMark",
    "CkDirect_readyPollQ",
    "CkDirectHandle",
    "ChannelState",
    "CkDirectError",
    "ChannelStateError",
    "SentinelError",
    "PutMismatchError",
    "PutRaceError",
    "RACE_CHECK",
]
