"""Shape assertions: the properties the paper argues from.

Absolute agreement with a 2009 testbed is not the reproduction target;
*shape* agreement is.  Each function here asserts one claim the
evaluation text makes, with explicit tolerances, and raises
``ShapeError`` with a readable message when violated.  The benchmark
suite calls these after regenerating every table/figure.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..util.stats import monotone_increasing


class ShapeError(AssertionError):
    """A paper-shape property failed to hold."""


def check(cond: bool, msg: str) -> None:
    """Raise ShapeError with msg when cond is false."""
    if not cond:
        raise ShapeError(msg)


# ---------------------------------------------------------------------------
# Tables 1 and 2
# ---------------------------------------------------------------------------


def assert_ckdirect_always_wins(
    sizes: Sequence[int], default: Sequence[float], ckdirect: Sequence[float]
) -> None:
    """"The round trip time for CHARM++ using CkDirect is lower than
    that of the default version ... for all user message sizes." (§3)"""
    for s, d, c in zip(sizes, default, ckdirect):
        check(c < d, f"CkDirect ({c:.2f}) not below default ({d:.2f}) at {s}B")


def assert_gap_grows_through_packet_band(
    sizes: Sequence[int],
    default: Sequence[float],
    ckdirect: Sequence[float],
    band: tuple = (1_000, 20_000),
) -> None:
    """The default uses the packetized protocol between ~1KB and 20KB,
    so the CkDirect gap grows through that band (§3)."""
    gaps = [
        d - c
        for s, d, c in zip(sizes, default, ckdirect)
        if band[0] <= s <= band[1]
    ]
    check(
        monotone_increasing(gaps, slack=1e-7),
        f"CkDirect gap not growing through the packet band: {gaps}",
    )


def assert_put_crossover(
    sizes: Sequence[int],
    two_sided: Sequence[float],
    put: Sequence[float],
    crossover_min: int = 30_000,
    crossover_max: int = 100_000,
) -> None:
    """MPI_Put beats two-sided MPI only above ~70KB on Infiniband (§3):
    put must lose below ``crossover_min`` and win at/after
    ``crossover_max``."""
    for s, t, p in zip(sizes, two_sided, put):
        if s < crossover_min:
            check(p >= t, f"MPI_Put ({p:.2f}) beat two-sided ({t:.2f}) at {s}B")
        if s >= crossover_max:
            check(p <= t, f"MPI_Put ({p:.2f}) lost to two-sided ({t:.2f}) at {s}B")


def assert_within_tolerance(
    sizes: Sequence[int],
    measured: Sequence[float],
    paper: Sequence[float],
    tol: float,
    label: str,
) -> None:
    """Point-wise relative tolerance against a printed paper table."""
    for s, m, p in zip(sizes, measured, paper):
        err = abs(m - p) / p
        check(
            err <= tol,
            f"{label} at {s}B: measured {m:.2f} vs paper {p:.2f} "
            f"({err:.1%} > {tol:.0%} tolerance)",
        )


def assert_ckdirect_beats_mpi(
    sizes: Sequence[int], ckdirect: Sequence[float], mpi: Dict[str, Sequence[float]]
) -> None:
    """"The CkDirect version of CHARM++ also performs better than both
    versions of MPI available on the machine." (§3)  A sliver of slack
    covers the smallest sizes, where the paper's own Table 1 has
    CkDirect *behind* MVAPICH by 0.7% (12.383 vs 12.302 at 100 B)."""
    for name, vals in mpi.items():
        for s, c, m in zip(sizes, ckdirect, vals):
            check(
                c <= m * 1.03,
                f"CkDirect ({c:.2f}) lost to {name} ({m:.2f}) at {s}B",
            )


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------


def assert_gains_grow_with_pes(
    pes: Sequence[int], gains_pct: Sequence[float], slack_pct: float = 2.0
) -> None:
    """"the percentage gains become more significant on more
    processors" (§4.1) — monotone growth modulo small wobbles."""
    check(
        monotone_increasing(gains_pct, slack=slack_pct),
        f"gains not growing with PEs: {list(zip(pes, gains_pct))}",
    )


def assert_gain_in_band(
    pe: int, gain_pct: float, lo: float, hi: float, label: str
) -> None:
    """Assert a gain percentage falls inside [lo, hi]."""
    check(
        lo <= gain_pct <= hi,
        f"{label}: gain at {pe} PEs = {gain_pct:.2f}% outside [{lo}, {hi}]%",
    )


def assert_all_nonnegative(
    pes: Sequence[int], gains_pct: Sequence[float], slack_pct: float = 0.0,
    label: str = "",
) -> None:
    """CkDirect never loses to messages (within slack)."""
    for p, g in zip(pes, gains_pct):
        check(
            g >= -slack_pct,
            f"{label}: CkDirect slower than messages at {p} PEs ({g:.2f}%)",
        )
