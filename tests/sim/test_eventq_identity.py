"""Bit-identity of real artifacts across event-queue implementations.

``--eventq`` joins ``--jobs`` and ``--shards`` as a pure wall-clock
knob, so the canonical result payload (the exact bytes the serve
layer's content-addressed cache stores) must be identical for every
queue × shard combination.  This is why swapping queues does NOT bump
``ENGINE_SCHEMA``: same spec ⇒ same digest ⇒ same bytes, whichever
implementation happened to run the simulation.

One small real run per application (stencil, matmul, openatom), each
executed under every available queue at ``--shards 1`` and
``--shards 4``, all compared byte-for-byte against the heap/serial
reference.
"""

import pytest

from repro.serve.digest import result_payload
from repro.sim.eventq import compiled_available
from repro.sweep import RunSpec, execute_spec

EVENTQS = ["heap", "calendar"] + (["compiled"] if compiled_available() else [])

SPECS = {
    "stencil": RunSpec.make("stencil", "Abe", "ckd", 8, iterations=2, vr=2),
    "matmul": RunSpec.make("matmul", "Abe", "ckd", 8, iterations=2),
    "openatom": RunSpec.make("openatom", "Abe", "ckd", 8, iterations=2),
}


def _payload(monkeypatch, spec, eventq, shards):
    monkeypatch.setenv("REPRO_EVENTQ", eventq)
    monkeypatch.setenv("REPRO_SHARDS", str(shards))
    result = execute_spec(spec)
    assert result.ok, result.error
    return result_payload([result])


@pytest.fixture(scope="module")
def references(request):
    """Heap/serial payload bytes per app, computed once."""
    mp = pytest.MonkeyPatch()
    request.addfinalizer(mp.undo)
    return {app: _payload(mp, spec, "heap", 1)
            for app, spec in SPECS.items()}


@pytest.mark.parametrize("app", sorted(SPECS))
@pytest.mark.parametrize("eventq", EVENTQS)
@pytest.mark.parametrize("shards", [1, 4])
def test_payload_bytes_identical(references, monkeypatch, app, eventq, shards):
    if eventq == "heap" and shards == 1:
        return  # the reference itself
    payload = _payload(monkeypatch, SPECS[app], eventq, shards)
    assert payload == references[app], (
        f"{app} bytes diverged under eventq={eventq} shards={shards}"
    )
