"""The asyncio HTTP server: routes, backpressure, graceful shutdown.

Pure-stdlib HTTP/1.1 on :func:`asyncio.start_server` — the container
has no aiohttp/fastapi, and the API surface is small enough that a
hand-rolled request reader (request line + headers + Content-Length
body, one request per connection) is simpler than a framework.

Routes::

    POST /v1/jobs             submit {"spec": {...}} or {"specs": [...]}
                              -> 200 done-from-cache, 202 queued/coalesced,
                                 400 malformed, 429 + Retry-After full,
                                 503 draining
    GET  /v1/jobs/<id>        job status JSON
    GET  /v1/jobs/<id>/result canonical result payload (202 while
                              running, 409 for failed jobs)
    GET  /v1/jobs/<id>/stream NDJSON progress stream until terminal
    GET  /metrics             counters/gauges/latency histograms
    GET  /healthz             liveness probe

Shutdown is graceful by default: the listener closes first (no new
connections), then the job queue drains every accepted job, then the
process exits — the acceptance bar for "jobs survive a deploy".
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Dict, List, Optional, Tuple

from ..sweep.points import POINTS
from ..sweep.spec import RunSpec, SweepError
from ..network.params import MACHINES
from .jobs import JobManager, JobState, QueueFullError, ServerClosing
from .metrics import ServeMetrics
from .store import ResultStore

#: Hard cap on request head + body (the API has no large uploads).
MAX_HEAD_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class BadRequest(ValueError):
    """Client error carrying the 400 response message."""


def parse_specs(body: Dict) -> List[RunSpec]:
    """Validate a submit body into specs (raises :class:`BadRequest`)."""
    if not isinstance(body, dict):
        raise BadRequest("request body must be a JSON object")
    if ("spec" in body) == ("specs" in body):
        raise BadRequest("provide exactly one of 'spec' or 'specs'")
    raw = [body["spec"]] if "spec" in body else body["specs"]
    if not isinstance(raw, list) or not raw:
        raise BadRequest("'specs' must be a non-empty array")
    specs = []
    for d in raw:
        try:
            spec = RunSpec.from_dict(d)
        except SweepError as exc:
            raise BadRequest(str(exc)) from None
        if spec.kind not in POINTS:
            raise BadRequest(
                f"unknown kind {spec.kind!r} (known: {sorted(POINTS)})"
            )
        if spec.machine not in MACHINES:
            raise BadRequest(
                f"unknown machine {spec.machine!r} (known: {sorted(MACHINES)})"
            )
        specs.append(spec)
    return specs


class ServeApp:
    """One server instance: store + metrics + job queue + HTTP routes."""

    def __init__(
        self,
        store_dir,
        *,
        cache_bytes: Optional[int] = None,
        workers: int = 2,
        max_queue: int = 32,
        jobs_per_run: Optional[int] = None,
        point_timeout: Optional[float] = None,
    ) -> None:
        self.metrics = ServeMetrics()
        self.store = ResultStore(store_dir, max_bytes=cache_bytes)
        self.manager = JobManager(
            self.store, self.metrics,
            workers=workers, max_queue=max_queue,
            jobs_per_run=jobs_per_run, point_timeout=point_timeout,
        )
        self._server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle ------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and start serving; returns the actual (host, port)."""
        await self.manager.start()
        self._server = await asyncio.start_server(self._handle, host, port)
        sock = self._server.sockets[0]
        addr = sock.getsockname()
        return addr[0], addr[1]

    async def shutdown(self, drain: bool = True) -> None:
        """Close the listener, then drain (or cancel) the job queue."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.shutdown(drain=drain)

    # -- HTTP plumbing --------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except BadRequest as exc:
                await self._respond_json(writer, 400, {"error": str(exc)})
                return
            except (asyncio.IncompleteReadError, ConnectionError, asyncio.LimitOverrunError):
                return
            await self._route(writer, method, path, body)
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception as exc:  # pragma: no cover - last-resort 500
            try:
                await self._respond_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader) -> Tuple[str, str, Optional[Dict]]:
        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > MAX_HEAD_BYTES:
            raise BadRequest("request head too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise BadRequest(f"malformed request line: {lines[0]!r}") from None
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                k, v = line.split(":", 1)
                headers[k.strip().lower()] = v.strip()
        body = None
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                raise BadRequest("malformed Content-Length") from None
            if n > MAX_BODY_BYTES:
                raise BadRequest("request body too large")
            raw = await reader.readexactly(n) if n else b""
            if raw:
                try:
                    body = json.loads(raw)
                except json.JSONDecodeError as exc:
                    raise BadRequest(f"invalid JSON body: {exc}") from None
        return method.upper(), target.split("?", 1)[0], body

    async def _respond(
        self, writer, status: int, payload: bytes,
        content_type: str = "application/json",
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"]
        head.append(f"Content-Type: {content_type}")
        head.append(f"Content-Length: {len(payload)}")
        head.append("Connection: close")
        for k, v in (extra_headers or {}).items():
            head.append(f"{k}: {v}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)
        await writer.drain()

    async def _respond_json(self, writer, status: int, obj, **kw) -> None:
        await self._respond(
            writer, status, (json.dumps(obj) + "\n").encode("utf-8"), **kw
        )

    # -- routes ---------------------------------------------------------

    async def _route(self, writer, method: str, path: str, body) -> None:
        if path == "/healthz":
            await self._respond_json(writer, 200, {"ok": True})
        elif path in ("/metrics", "/v1/metrics"):
            await self._respond_json(
                writer, 200,
                self.metrics.to_dict(store=self.store, queue=self.manager),
            )
        elif path == "/v1/jobs" and method == "POST":
            await self._submit(writer, body)
        elif path.startswith("/v1/jobs/"):
            await self._job_route(writer, method, path)
        else:
            await self._respond_json(
                writer, 404, {"error": f"no route for {method} {path}"}
            )

    async def _submit(self, writer, body) -> None:
        import time as _time

        t0 = _time.monotonic()
        try:
            specs = parse_specs(body)
        except BadRequest as exc:
            self.metrics.bad_requests += 1
            await self._respond_json(writer, 400, {"error": str(exc)})
            return
        try:
            job = self.manager.submit(specs)
        except ServerClosing as exc:
            await self._respond_json(writer, 503, {"error": str(exc)})
            return
        except QueueFullError as exc:
            await self._respond_json(
                writer, 429,
                {"error": str(exc), "retry_after_s": round(exc.retry_after, 1)},
                extra_headers={"Retry-After": str(int(exc.retry_after + 0.999))},
            )
            return
        if job.cached:
            self.metrics.observe_latency(job.kind, "hit", _time.monotonic() - t0)
        status = 200 if job.terminal else 202
        await self._respond_json(writer, status, self._job_json(job))

    def _job_json(self, job) -> Dict:
        d = job.to_dict()
        d["result"] = f"/v1/jobs/{job.id}/result"
        return d

    async def _job_route(self, writer, method: str, path: str) -> None:
        if method != "GET":
            await self._respond_json(writer, 405, {"error": "GET only"})
            return
        parts = path.split("/")  # ['', 'v1', 'jobs', '<id>', ...]
        job = self.manager.get(parts[3]) if len(parts) > 3 else None
        if job is None:
            await self._respond_json(writer, 404, {"error": "unknown job"})
            return
        tail = parts[4] if len(parts) > 4 else ""
        if tail == "":
            await self._respond_json(writer, 200, self._job_json(job))
        elif tail == "result":
            if job.state == JobState.FAILED:
                await self._respond_json(
                    writer, 409, {"error": job.error, "job": job.id}
                )
            elif job.payload is None:
                await self._respond_json(
                    writer, 202,
                    {"status": job.state.value, "job": job.id,
                     "points": {"done": job.done_points,
                                "total": job.total_points}},
                )
            else:
                await self._respond(writer, 200, job.payload)
        elif tail == "stream":
            await self._stream(writer, job)
        else:
            await self._respond_json(writer, 404, {"error": f"no route {path}"})

    async def _stream(self, writer, job) -> None:
        """NDJSON progress stream: one status line per change + final."""
        writer.write(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        version = -1
        while True:
            writer.write((json.dumps(job.to_dict()) + "\n").encode("utf-8"))
            await writer.drain()
            if job.terminal:
                return
            version = await job.wait_change(version if version >= 0 else job.version)


class ServerThread:
    """Run a :class:`ServeApp` on a dedicated thread + event loop.

    The blocking-world adapter used by tests, the bench suite, and any
    caller that is not itself async: ``start()`` returns once the port
    is bound, ``stop()`` performs the graceful drain.
    """

    def __init__(self, app: ServeApp, host: str = "127.0.0.1", port: int = 0) -> None:
        self.app = app
        self._host_arg, self._port_arg = host, port
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True, name="repro-serve")

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failures
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.host, self.port = await self.app.start(self._host_arg, self._port_arg)
        self._ready.set()
        await self._stop.wait()
        await self.app.shutdown(drain=True)

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server failed to start in time")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error}")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Request graceful shutdown (drain) and join the thread."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already gone
        self._thread.join(timeout)


async def serve_forever(app: ServeApp, host: str, port: int) -> None:
    """CLI entry: run until SIGINT/SIGTERM, then drain and exit."""
    import signal

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX
            pass
    bound_host, bound_port = await app.start(host, port)
    print(f"repro serve: listening on http://{bound_host}:{bound_port} "
          f"(store: {app.store.root}, workers: {app.manager.workers}, "
          f"queue: {app.manager.max_queue})", flush=True)
    await stop.wait()
    print("repro serve: draining...", flush=True)
    await app.shutdown(drain=True)
    print("repro serve: bye", flush=True)
