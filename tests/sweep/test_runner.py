"""SweepRunner behavior: ordering, crash isolation, timeouts, tracing.

The synthetic point kinds registered here run in forked workers too
(fork inherits the registry), so the parallel paths are exercised for
real — including a worker killed with ``os._exit`` and one that hangs
past the per-point timeout.
"""

import os
import time

import pytest

from repro.projections.eventlog import EventLog, tracing
from repro.sweep import (
    RunSpec,
    SweepError,
    SweepRunner,
    execute_spec,
    register_point,
    resolve_jobs,
    run_sweep,
    stats,
)


@register_point("t-echo")
def _echo(spec):
    return {"x": dict(spec.params)["x"], "events": 10}


@register_point("t-slow-echo")
def _slow_echo(spec):
    time.sleep(dict(spec.params).get("delay", 0.0))
    return {"x": dict(spec.params)["x"], "events": 1}


@register_point("t-fail")
def _fail(spec):
    raise ValueError("point exploded on purpose")


@register_point("t-die")
def _die(spec):
    os._exit(17)  # simulates a segfaulted / OOM-killed worker


@register_point("t-hang")
def _hang(spec):
    time.sleep(60.0)
    return {"x": 0}


@register_point("t-traced")
def _traced(spec):
    from repro.projections.eventlog import current_tracer

    log = current_tracer()
    run = log.new_run(f"traced-{dict(spec.params)['x']}", n_pes=2)
    first = log.instant(run, 0, "msg", "send", 1e-6)
    log.span(run, 1, "entry", "work", 2e-6, 3e-6, cause=first)
    return {"x": dict(spec.params)["x"], "events": 2}


def _specs(kind, n, **extra):
    return [RunSpec.make(kind, "Abe", "m", x=i, **extra) for i in range(n)]


@pytest.fixture(autouse=True)
def _clear_stats():
    stats.RECORDS.clear()
    yield
    stats.RECORDS.clear()


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert resolve_jobs() == 6

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(SweepError, match="REPRO_JOBS must be a positive integer"):
            resolve_jobs()

    def test_env_below_one_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(SweepError, match="at least 1"):
            resolve_jobs()
        monkeypatch.setenv("REPRO_JOBS", "-2")
        with pytest.raises(SweepError, match="at least 1"):
            resolve_jobs()

    def test_explicit_below_one_rejected(self):
        with pytest.raises(SweepError, match="at least 1"):
            resolve_jobs(0)
        with pytest.raises(SweepError, match="at least 1"):
            resolve_jobs(-4)


class TestExecuteSpec:
    def test_success_pops_events(self):
        r = execute_spec(RunSpec.make("t-echo", "Abe", "m", x=7))
        assert r.ok and r.values == {"x": 7} and r.events == 10

    def test_failure_captures_traceback(self):
        r = execute_spec(RunSpec.make("t-fail", "Abe", "m", x=0))
        assert not r.ok
        assert "point exploded on purpose" in r.error
        assert "ValueError" in r.error

    def test_unknown_kind_is_a_failed_point(self):
        r = execute_spec(RunSpec.make("no-such-kind", "Abe", "m"))
        assert not r.ok and "no sweep point registered" in r.error


class TestOrderingAndEquality:
    def test_results_follow_spec_order(self):
        # Reverse-sorted delays: completion order inverts submission
        # order, results must not.
        specs = [
            RunSpec.make("t-slow-echo", "Abe", "m", x=i, delay=(4 - i) * 0.05)
            for i in range(5)
        ]
        results = SweepRunner(jobs=5).run(specs)
        assert [r.unwrap()["x"] for r in results] == [0, 1, 2, 3, 4]

    def test_serial_and_parallel_identical(self):
        specs = _specs("t-echo", 6)
        serial = SweepRunner(jobs=1).run(specs)
        parallel = SweepRunner(jobs=3).run(specs)
        assert [r.values for r in serial] == [r.values for r in parallel]
        assert [r.events for r in serial] == [r.events for r in parallel]

    def test_run_values_keys_by_spec(self):
        specs = _specs("t-echo", 3)
        values = run_sweep(specs, jobs=2)
        assert values[specs[1].key] == {"x": 1}


class TestIsolation:
    def test_worker_death_fails_one_point_only(self):
        specs = _specs("t-echo", 4)
        specs[2] = RunSpec.make("t-die", "Abe", "m", x=2)
        results = SweepRunner(jobs=2).run(specs)
        assert [r.ok for r in results] == [True, True, False, True]
        assert "died without a result" in results[2].error
        assert "exitcode=17" in results[2].error

    def test_exception_point_fails_cleanly(self):
        specs = _specs("t-echo", 3)
        specs[1] = RunSpec.make("t-fail", "Abe", "m", x=1)
        results = SweepRunner(jobs=3).run(specs)
        assert [r.ok for r in results] == [True, False, True]
        assert "point exploded on purpose" in results[1].error

    def test_timeout_kills_only_the_hung_point(self):
        specs = _specs("t-echo", 3)
        specs[1] = RunSpec.make("t-hang", "Abe", "m", x=1)
        t0 = time.monotonic()
        results = SweepRunner(jobs=3, timeout=1.0).run(specs)
        assert time.monotonic() - t0 < 30.0  # did not wait out the hang
        assert [r.ok for r in results] == [True, False, True]
        assert "timed out after 1" in results[1].error

    def test_failed_sweep_records_failure_count(self):
        specs = [RunSpec.make("t-fail", "Abe", "m", x=0)]
        SweepRunner(jobs=1, label="failing").run(specs)
        assert stats.RECORDS[-1].failed == 1


class TestStats:
    def test_record_shape(self):
        SweepRunner(jobs=2, label="shaped").run(_specs("t-echo", 4))
        rec = stats.RECORDS[-1]
        assert rec.label == "shaped"
        assert rec.jobs == 2
        assert rec.points == 4
        assert rec.failed == 0
        assert rec.events == 40
        assert rec.wall_s > 0
        assert rec.events_per_s > 0
        d = rec.to_dict()
        assert set(d) >= {"label", "jobs", "points", "wall_s", "events",
                          "events_per_s"}

    def test_single_point_runs_serial(self):
        SweepRunner(jobs=4, label="one").run(_specs("t-echo", 1))
        assert stats.RECORDS[-1].jobs == 1  # no pool spun up for one point


class TestTraceMerge:
    def test_parallel_traces_merge_in_spec_order(self):
        specs = _specs("t-traced", 3)
        with tracing() as parallel_log:
            SweepRunner(jobs=3).run(specs)
        with tracing() as serial_log:
            SweepRunner(jobs=1).run(specs)

        assert len(parallel_log.events) == len(serial_log.events) == 6
        assert [label for label, _o, _n in parallel_log.runs] == [
            "traced-0", "traced-1", "traced-2"
        ]
        # eids are log-unique and causal links stay intact post-remap
        by_eid = parallel_log.by_eid()
        assert len(by_eid) == 6
        for ev in parallel_log.events:
            if ev.cause is not None:
                cause = by_eid[ev.cause]
                assert cause.run == ev.run
                assert cause.name == "send" and ev.name == "work"

    def test_untraced_results_carry_no_payload(self):
        results = SweepRunner(jobs=2).run(_specs("t-traced", 2))
        # points use current_tracer(); without one installed they fail —
        # but echo points genuinely carry nothing:
        results = SweepRunner(jobs=2).run(_specs("t-echo", 2))
        assert all(r.trace_events == [] and r.trace_runs == [] for r in results)
