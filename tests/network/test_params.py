"""Unit tests for machine presets and the interpolation helper."""

import pytest

from repro.network.params import (
    ABE,
    IBM_MPI_BUFFERING_TABLE,
    MACHINES,
    SURVEYOR,
    T3,
    interp_table,
)


def test_presets_registered():
    assert set(MACHINES) == {"Abe", "T3", "Surveyor"}
    assert MACHINES["Abe"] is ABE


def test_machine_kinds():
    assert ABE.kind == "ib"
    assert T3.kind == "ib"
    assert SURVEYOR.kind == "bgp"


def test_cores_per_node_match_paper():
    assert ABE.cores_per_node == 8  # dual-socket quad-core Clovertown
    assert T3.cores_per_node == 4  # dual-socket dual-core Woodcrest
    assert SURVEYOR.cores_per_node == 4  # quad-core PPC450


def test_header_is_80_bytes():
    for m in MACHINES.values():
        assert m.charm.header_bytes == 80  # the paper's "~80 bytes"


def test_bgp_short_threshold_is_224():
    assert SURVEYOR.net.short_max == 224  # the paper's DCMF threshold


def test_bgp_info_is_two_quadwords():
    assert SURVEYOR.net.info_qwords_ckdirect == 2


def test_topology_factories():
    t = ABE.make_topology(32)
    assert t.n_pes == 32
    t2 = SURVEYOR.make_topology(100)
    assert t2.n_pes >= 100


def test_mpi_flavors_present():
    assert set(ABE.mpi_flavors) == {"MVAPICH", "MPICH-VMI"}
    assert set(SURVEYOR.mpi_flavors) == {"IBM-MPI"}
    assert ABE.default_mpi == "MVAPICH"


def test_with_overrides():
    faster = ABE.with_overrides(cores_per_node=2)
    assert faster.cores_per_node == 2
    assert ABE.cores_per_node == 8  # original untouched


def test_params_frozen():
    with pytest.raises(Exception):
        ABE.charm.header_bytes = 100


def test_interp_table_endpoints_and_midpoints():
    table = ((0, 0.0), (10, 10.0), (20, 0.0))
    assert interp_table(table, -5) == 0.0
    assert interp_table(table, 0) == 0.0
    assert interp_table(table, 5) == pytest.approx(5.0)
    assert interp_table(table, 10) == pytest.approx(10.0)
    assert interp_table(table, 15) == pytest.approx(5.0)
    assert interp_table(table, 100) == 0.0


def test_ibm_buffering_table_shape():
    xs = [x for x, _ in IBM_MPI_BUFFERING_TABLE]
    assert xs == sorted(xs)
    # the bump the paper surmises: rises to a peak near 5KB, decays
    peak = max(y for _, y in IBM_MPI_BUFFERING_TABLE)
    assert interp_table(IBM_MPI_BUFFERING_TABLE, 5_000) == pytest.approx(peak)
    assert interp_table(IBM_MPI_BUFFERING_TABLE, 100) == 0.0


def test_occupancy_factors_physical():
    assert 0 < ABE.net.occupancy_factor <= 1.0
    assert 0 < SURVEYOR.net.occupancy_factor < 0.2  # six torus links
