"""3D decomposition for parallel matrix multiplication (paper §4.2,
after Agarwal et al. [1]).

``N×N`` matrices over a ``c×c×c`` chare grid, block size ``n = N/c``:

* chare ``(x, y, z)`` computes the partial product
  ``A[x,z] @ B[z,y]`` (each an ``n×n`` block),
* the input blocks are divided among the chares: ``(x, y, z)`` *owns*
  slice ``y`` of ``A[x,z]`` (``n × n/c`` columns) and slice ``x`` of
  ``B[z,y]`` (``n/c × n`` rows),
* before computing, ``A[x,z]`` is replicated along the grid's Y
  dimension (each chare sends its A-slice to the ``c-1`` chares
  sharing its X and Z coordinates) and ``B[z,y]`` along X,
* partial C blocks reduce along Z onto the ``z = 0`` layer.

Messages per chare are ``3(c-1)`` — growing as the cube root of the
processor count, the property the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ...sim.rng import substream

ITEMSIZE = 8


@dataclass(frozen=True)
class MatMulSpec:
    """Geometry of one 3D-decomposition run."""

    N: int  # global matrix dimension
    c: int  # chare grid side

    def __post_init__(self) -> None:
        if self.N % self.c:
            raise ValueError(f"chare side {self.c} does not divide N={self.N}")
        if self.n % self.c:
            raise ValueError(
                f"block size {self.n} not divisible by c={self.c}; "
                "slices would be ragged"
            )

    @property
    def n(self) -> int:
        """Block dimension (each chare's DGEMM operands are n x n)."""
        return self.N // self.c

    @property
    def slice_rows(self) -> int:
        """Rows/cols per owned input slice (n/c)."""
        return self.n // self.c

    # byte counts ------------------------------------------------------

    @property
    def a_slice_bytes(self) -> int:
        """Bytes of one owned A slice."""
        return self.n * self.slice_rows * ITEMSIZE

    @property
    def b_slice_bytes(self) -> int:
        """Bytes of one owned B slice."""
        return self.slice_rows * self.n * ITEMSIZE

    @property
    def c_block_bytes(self) -> int:
        """Bytes of one n x n C block."""
        return self.n * self.n * ITEMSIZE

    @property
    def dgemm_flops(self) -> int:
        """Floating-point operations of one block DGEMM."""
        return 2 * self.n ** 3

    # peers ------------------------------------------------------------

    def a_peers(self, index: Tuple[int, int, int]) -> List[Tuple[int, int, int]]:
        """Chares needing my A slice: same (x, z), other y."""
        x, y, z = index
        return [(x, yy, z) for yy in range(self.c) if yy != y]

    def b_peers(self, index: Tuple[int, int, int]) -> List[Tuple[int, int, int]]:
        """Chares needing my B slice: same (y, z), other x."""
        x, y, z = index
        return [(xx, y, z) for xx in range(self.c) if xx != x]

    def c_root(self, index: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Where this chare's partial C reduces to."""
        x, y, _z = index
        return (x, y, 0)


def choose_side(N: int, n_pes: int) -> int:
    """Smallest chare-grid side whose cube holds >= one chare per PE
    while dividing the matrix (and keeping slices whole)."""
    c = 2
    while c ** 3 < n_pes or N % c or (N // c) % c:
        c += 1
        if c > N:
            raise ValueError(f"no valid chare side for N={N}, P={n_pes}")
    return c


def block_a(spec: MatMulSpec, x: int, z: int, seed: int) -> np.ndarray:
    """Deterministic A[x,z] block (assembled from its slices)."""
    return np.concatenate(
        [slice_a(spec, (x, y, z), seed) for y in range(spec.c)], axis=1
    )


def block_b(spec: MatMulSpec, z: int, y: int, seed: int) -> np.ndarray:
    """Deterministic B[z,y] block (assembled from its slices)."""
    return np.concatenate(
        [slice_b(spec, (x, y, z), seed) for x in range(spec.c)], axis=0
    )


def slice_a(spec: MatMulSpec, index: Tuple[int, int, int], seed: int) -> np.ndarray:
    """The A-slice chare ``index`` owns: columns ``y`` of A[x,z]."""
    x, y, z = index
    rng = substream(seed, 0, x, y, z)
    return rng.random((spec.n, spec.slice_rows))

def slice_b(spec: MatMulSpec, index: Tuple[int, int, int], seed: int) -> np.ndarray:
    """The B-slice chare ``index`` owns: rows ``x`` of B[z,y]."""
    x, y, z = index
    rng = substream(seed, 1, x, y, z)
    return rng.random((spec.slice_rows, spec.n))


def global_a(spec: MatMulSpec, seed: int) -> np.ndarray:
    """The full A matrix implied by the per-chare slices."""
    rows = []
    for x in range(spec.c):
        rows.append(
            np.concatenate([block_a(spec, x, z, seed) for z in range(spec.c)], axis=1)
        )
    return np.concatenate(rows, axis=0)


def global_b(spec: MatMulSpec, seed: int) -> np.ndarray:
    """The full B matrix implied by the per-chare slices."""
    rows = []
    for z in range(spec.c):
        rows.append(
            np.concatenate([block_b(spec, z, y, seed) for y in range(spec.c)], axis=1)
        )
    return np.concatenate(rows, axis=0)
