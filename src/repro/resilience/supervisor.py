"""Shard supervision: crash/hang detection and deterministic restart.

With supervision on (the default; ``REPRO_SUPERVISE=0`` turns it off)
a ``--shards N`` run forks **all** N shard workers and keeps the
parent as a *pristine pure coordinator*: it never enters a shard,
never runs an event, and never mutates simulation state until every
worker has shipped its final reconciliation payload.  That purity is
the whole design — it gives the supervisor two recovery levers that
the legacy (coordinator-runs-shard-0) topology cannot have:

1. **Deterministic restart.**  Both engines' window protocols are pure
   functions of the coordinator→worker message stream (epoch windows
   under the conservative engine, GVT rounds — including every
   rollback, anti-message and checkpoint — under Time Warp).  The
   supervisor therefore logs every message it sends to each shard;
   when a worker crashes (pipe EOF / ``Process.exitcode``) or hangs
   (no barrier heartbeat within ``REPRO_SHARD_DEADLINE`` seconds), it
   re-forks a replacement *from the pristine parent image* and replays
   the log.  The replacement reconstructs the lost worker's exact
   barrier state — the conservative engine effectively re-runs from
   the last epoch barrier, Time Warp deterministically rebuilds its
   pre-GVT checkpoints and re-enters speculation — and the run's
   output stays bit-identical to a fault-free one.

2. **Graceful degradation.**  After ``REPRO_MAX_SHARD_RESTARTS``
   restarts the supervisor stops trying: it reaps every worker and
   runs the whole problem serially *in the parent*, whose runtime is
   still exactly as constructed (host sends buffered, zero events
   run).  The degraded run is the ordinary ``--shards 1`` path and is
   bit-identical by the engines' existing guarantee.

Heartbeats are piggybacked on the existing barrier messages — a
worker that reaches its barrier *is* the heartbeat — so the clean
path adds no extra traffic and its overhead is bounded by the
fork-all-shards topology (measured < 3% in
``benchmarks/test_resilience.py``).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, List, Optional

from ..sim.parallel import (
    ParallelEngineError,
    _reap_shard,
    _run_serial_inline,
)
from ..sim.shm import channel_pair, merge_channel_stats

if TYPE_CHECKING:  # pragma: no cover
    from ..charm.runtime import Runtime

_INF = float("inf")

_TRUE = frozenset(("1", "on", "true", "yes"))
_FALSE = frozenset(("0", "off", "false", "no"))


# ---------------------------------------------------------------------------
# Knob resolution (env only — supervision has no per-run CLI flag; it
# is on unless REPRO_SUPERVISE turns it off)
# ---------------------------------------------------------------------------


def resolve_supervise() -> bool:
    """Whether sharded runs are supervised (default on)."""
    raw = os.environ.get("REPRO_SUPERVISE")
    if raw is None:
        return True
    v = raw.strip().lower()
    if v in _TRUE:
        return True
    if v in _FALSE:
        return False
    raise ParallelEngineError(
        f"REPRO_SUPERVISE must be one of {sorted(_TRUE | _FALSE)}, "
        f"got {raw!r}"
    )


def resolve_max_restarts() -> int:
    """Shard restarts allowed before degrading to serial (default 2)."""
    raw = os.environ.get("REPRO_MAX_SHARD_RESTARTS")
    if raw is None:
        return 2
    try:
        v = int(raw.strip())
    except ValueError:
        raise ParallelEngineError(
            f"REPRO_MAX_SHARD_RESTARTS must be an integer, got {raw!r}"
        ) from None
    if v < 0:
        raise ParallelEngineError(
            f"REPRO_MAX_SHARD_RESTARTS must be >= 0, got {v}"
        )
    return v


def resolve_shard_deadline() -> float:
    """Wall-clock seconds a shard may take to reach its next barrier
    before it counts as hung (default 120)."""
    raw = os.environ.get("REPRO_SHARD_DEADLINE")
    if raw is None:
        return 120.0
    try:
        v = float(raw.strip())
    except ValueError:
        raise ParallelEngineError(
            f"REPRO_SHARD_DEADLINE must be a number of seconds, "
            f"got {raw!r}"
        ) from None
    if not v > 0:
        raise ParallelEngineError(
            f"REPRO_SHARD_DEADLINE must be > 0, got {v}"
        )
    return v


# ---------------------------------------------------------------------------
# The supervisor
# ---------------------------------------------------------------------------


class RestartBudgetExceeded(Exception):
    """Internal: the restart budget is spent; degrade to serial."""


class _ShardDown(Exception):
    """Internal: one worker incarnation crashed or hung."""

    def __init__(self, shard: int, kind: str) -> None:
        super().__init__(f"shard {shard} {kind}")
        self.shard = shard
        self.kind = kind  # "crash" | "hang"


class ShardSupervisor:
    """Owns the worker processes of one supervised run.

    The invariant that makes replay exact: when shard ``s`` is idle at
    a barrier, the number of states the coordinator has consumed from
    it equals ``len(logs[s])`` (one window message answers one state).
    A failure detected while *receiving* therefore replays the whole
    log and resumes live; a failure detected while *sending* has
    consumed one state the log does not yet answer, so after the
    replayed replacement re-sends that state's twin the next receive
    discards exactly one message (``pending_discard``).
    """

    def __init__(self, rt: "Runtime", ctx, blocks: List[range], worker,
                 worker_extra: tuple = ()) -> None:
        self.rt = rt
        self.ctx = ctx
        self.blocks = blocks
        self.n = len(blocks)
        self.worker = worker
        self.worker_extra = tuple(worker_extra)
        self.transport = rt.transport
        self.deadline = resolve_shard_deadline()
        self.max_restarts = resolve_max_restarts()
        self.restarts = 0
        self.crashes = 0
        self.hangs = 0
        self.incarnations = [0] * self.n
        self.logs: List[List[tuple]] = [[] for _ in range(self.n)]
        self.conns: List[Any] = [None] * self.n
        self.procs: List[Any] = [None] * self.n
        self.pending_discard = [False] * self.n
        #: channel stats of reaped incarnations (each channel is reaped
        #: exactly once, so summing these never double-counts).
        self._retired_stats: List[dict] = []
        for s in range(self.n):
            self._spawn(s)

    # -- process lifecycle ---------------------------------------------

    def _spawn(self, shard: int) -> None:
        # A fresh channel per incarnation: a crashed writer may have
        # left a half-committed frame, and under --transport shm the
        # replacement must start from pristine (all-zero) rings — the
        # dead incarnation's segments are unlinked in _reap.
        parent, child = channel_pair(
            self.ctx, self.transport,
            f"s{shard}i{self.incarnations[shard]}",
        )
        p = self.ctx.Process(
            target=self.worker,
            args=(self.rt, shard, self.blocks[shard], child)
            + self.worker_extra,
            kwargs={
                "incarnation": self.incarnations[shard],
                "supervised": True,
            },
            daemon=True,
            name=f"shard{shard}.{self.incarnations[shard]}",
        )
        p.start()
        child.close()
        self.conns[shard] = parent
        self.procs[shard] = p

    def _reap(self, shard: int, graceful_timeout: float = 0.1) -> None:
        conn = self.conns[shard]
        if conn is not None:
            stats = getattr(conn, "stats", None)
            if stats is not None:
                self._retired_stats.append(stats.as_dict())
        _reap_shard(conn, self.procs[shard],
                    graceful_timeout=graceful_timeout)
        self.conns[shard] = None
        self.procs[shard] = None

    def close(self, graceful_timeout: float = 30.0) -> None:
        """Reap every live worker (idempotent)."""
        for s in range(self.n):
            if self.procs[s] is not None:
                self._reap(s, graceful_timeout=graceful_timeout)

    # -- failure detection ---------------------------------------------

    def _recv_raw(self, shard: int):
        """One message from a shard, or :class:`_ShardDown`.

        The barrier heartbeat is the message itself: no message within
        the deadline while the process lives means *hung*; EOF, an
        OS-level pipe error, or a poll satisfied only by the closing
        of a dead child's pipe means *crashed*.  A worker-reported
        ``("error", ...)`` is a deterministic application failure —
        a restart would replay straight back into it — so it raises
        :class:`ParallelEngineError` and is never retried.
        """
        conn = self.conns[shard]
        try:
            if not conn.poll(self.deadline):
                p = self.procs[shard]
                kind = "hang" if p.is_alive() else "crash"
                raise _ShardDown(shard, kind)
            msg = conn.recv()
        except (EOFError, OSError):
            raise _ShardDown(shard, "crash") from None
        if msg[0] == "error":
            raise ParallelEngineError(
                f"shard {msg[1]} failed:\n{msg[2]}"
            )
        return msg

    # -- deterministic restart -----------------------------------------

    def _replay(self, shard: int) -> None:
        """Walk a fresh incarnation through the logged message stream.

        The replacement sends one catch-up state before consuming each
        logged message; those states are deterministic twins of ones
        already consumed, so they are discarded unseen.
        """
        for msg in self.logs[shard]:
            self._recv_raw(shard)
            self.conns[shard].send(msg)

    def _restart(self, shard: int, kind: str) -> None:
        """Replace one incarnation, retrying if the replacement also
        dies (an ``every_incarnation`` fault) until the budget runs
        out."""
        while True:
            if kind == "hang":
                self.hangs += 1
            else:
                self.crashes += 1
            if self.restarts >= self.max_restarts:
                raise RestartBudgetExceeded(
                    f"shard {shard} {kind} after "
                    f"{self.restarts}/{self.max_restarts} restarts"
                )
            self.restarts += 1
            self._reap(shard)
            self.incarnations[shard] += 1
            self._spawn(shard)
            try:
                self._replay(shard)
                return
            except _ShardDown as exc:
                kind = exc.kind

    # -- the supervised message surface --------------------------------

    def recv(self, shard: int):
        """The shard's next live message, restarting through failures."""
        while True:
            try:
                msg = self._recv_raw(shard)
            except _ShardDown as exc:
                self._restart(shard, exc.kind)
                continue
            if self.pending_discard[shard]:
                # Replayed twin of a state consumed from a dead
                # incarnation inside send(): drop exactly one.
                self.pending_discard[shard] = False
                continue
            return msg

    def recv_state(self, shard: int):
        msg = self.recv(shard)
        if msg[0] != "state":
            raise ParallelEngineError(
                f"shard {shard} sent {msg[0]!r} instead of its state"
            )
        return msg

    def recv_final(self, shard: int) -> dict:
        msg = self.recv(shard)
        if msg[0] != "final":
            raise ParallelEngineError(
                f"shard {shard} sent {msg[0]!r} instead of its final report"
            )
        return msg[1]

    def send(self, shard: int, msg: tuple) -> None:
        """Send one window/done message; logged only once delivered."""
        while True:
            try:
                self.conns[shard].send(msg)
            except (BrokenPipeError, OSError):
                self._restart(shard, "crash")
                # The dead incarnation's state answering this message
                # was already consumed; the replayed replacement will
                # re-send its twin.
                self.pending_discard[shard] = True
                continue
            self.logs[shard].append(msg)
            return

    # -- reporting ------------------------------------------------------

    def report(self, degraded: bool = False) -> dict:
        return {
            "supervised": True,
            "restarts": self.restarts,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "max_restarts": self.max_restarts,
            "degraded": degraded,
        }

    def transport_stats(self) -> dict:
        """Coordinator-side transport counters across every
        incarnation: retired channels plus any still live."""
        out = merge_channel_stats(
            self.transport, (c for c in self.conns if c is not None)
        )
        for d in self._retired_stats:
            for k in ("frames", "bytes", "spills"):
                out[k] += d.get(k, 0)
        return out


# ---------------------------------------------------------------------------
# Supervised coordinator loops (one per engine)
# ---------------------------------------------------------------------------


def _degrade_to_serial(rt: "Runtime", sup: ShardSupervisor) -> float:
    """The last rung of the ladder: run everything in the parent.

    Legal because the supervised parent is pristine — it merged no
    partial results, ran no events, and still holds its buffered host
    sends — so this is exactly the ``--shards 1`` serial path.
    """
    now = _run_serial_inline(rt)
    rt.parallel_rounds = None
    rt.supervision = sup.report(degraded=True)
    rt.transport_stats = sup.transport_stats()
    return now


def supervise_conservative(rt: "Runtime", ctx, blocks: List[range],
                           delta: float) -> float:
    """Supervised epoch-window coordinator (conservative engine)."""
    from ..sim.parallel import (
        _make_shard_of_rank,
        _merge_final,
        _route_window,
        _shard_worker,
    )

    n = len(blocks)
    sup = ShardSupervisor(rt, ctx, blocks, _shard_worker)
    try:
        shard_of_rank = _make_shard_of_rank(rt.fabric.topology, blocks)
        rounds = 0
        while True:
            rounds += 1
            states = [sup.recv_state(s) for s in range(n)]
            nexts = [st[1] for st in states]
            outboxes = [st[2] for st in states]
            floor, inboxes = _route_window(nexts, outboxes, n, shard_of_rank)
            if floor == _INF:
                for s in range(n):
                    sup.send(s, ("done",))
                break
            bound = floor + delta
            for s in range(n):
                sup.send(s, ("window", bound, inboxes[s]))
        # Collect *every* final before merging *any*: _merge_final
        # mutates the parent, and the degradation path below is only
        # legal while the parent is untouched.
        finals = [sup.recv_final(s) for s in range(n)]
    except RestartBudgetExceeded:
        sup.close(graceful_timeout=1.0)
        return _degrade_to_serial(rt, sup)
    finally:
        sup.close()
    for payload in finals:
        _merge_final(rt, payload)
    rt.shard_cpu_times = [p["cpu"] for p in finals]
    rt.parallel_rounds = rounds
    rt.supervision = sup.report()
    rt.transport_stats = sup.transport_stats()
    return rt.sim.now


def supervise_timewarp(rt: "Runtime", ctx, blocks: List[range],
                       delta: float, horizon: Optional[float],
                       cp_events: int) -> float:
    """Supervised GVT coordinator (Time Warp engine)."""
    from ..sim.parallel import _make_shard_of_rank, _merge_final
    from ..sim.timewarp import STAT_KEYS, _GvtPlanner, _timewarp_worker

    n = len(blocks)
    sup = ShardSupervisor(rt, ctx, blocks, _timewarp_worker, (cp_events,))
    planner = _GvtPlanner(
        n, _make_shard_of_rank(rt.fabric.topology, blocks), delta, horizon
    )
    try:
        while True:
            states = [sup.recv_state(s) for s in range(n)]
            gvt, bound, flush, inboxes, anti_boxes = planner.plan(states)
            if gvt == _INF:
                for s in range(n):
                    sup.send(s, ("done",))
                break
            for s in range(n):
                sup.send(s, ("window", bound, gvt, inboxes[s],
                             anti_boxes[s], flush))
        finals = [sup.recv_final(s) for s in range(n)]
    except RestartBudgetExceeded:
        sup.close(graceful_timeout=1.0)
        now = _degrade_to_serial(rt, sup)
        rt.timewarp_stats = {k: 0 for k in STAT_KEYS}
        return now
    finally:
        sup.close()
    stats = {k: 0 for k in STAT_KEYS}
    for payload in finals:
        _merge_final(rt, payload)
        for k, v in payload["timewarp"].items():
            stats[k] += v
    stats["gvt_rounds"] = planner.rounds
    rt.shard_cpu_times = [p["cpu"] for p in finals]
    rt.timewarp_stats = stats
    rt.parallel_rounds = planner.rounds
    rt.supervision = sup.report()
    rt.transport_stats = sup.transport_stats()
    return rt.sim.now
