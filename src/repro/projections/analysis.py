"""Analysis passes over an :class:`~repro.projections.eventlog.EventLog`.

Three families, mirroring what the Projections tool computes for real
Charm++ runs:

* **Utilization profiles** — per-PE busy/idle accounting over the
  span timeline (:func:`utilization_profile`).
* **Overhead attribution** — total PE time and event counts per
  category and per name (:func:`category_totals`, :func:`name_totals`),
  plus time-binned histograms for occupancy-over-time views
  (:func:`binned_profile`).
* **Critical path** — the longest causal chain through the
  message-causality graph (:func:`critical_path`,
  :func:`critical_path_summary`), an estimate of what bounds the
  makespan: each event carries the id of the event that caused it, so
  walking causes backward from the latest-finishing event yields the
  chain of sends, dispatches, executions, puts, and completions the
  run could not have finished without.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from .events import BUSY_CATEGORIES, CAT_IDLE, TraceEvent
from .eventlog import EventLog

Track = Tuple[int, int]  # (run, pe)


def spans_by_track(log: EventLog) -> Dict[Track, List[TraceEvent]]:
    """Span events grouped per (run, pe) track, ordered by start time."""
    out: Dict[Track, List[TraceEvent]] = defaultdict(list)
    for ev in log.events:
        if ev.is_span:
            out[ev.track].append(ev)
    for spans in out.values():
        spans.sort(key=lambda e: (e.t0, e.t1))
    return dict(out)


def utilization_profile(log: EventLog) -> Dict[Track, Dict[str, float]]:
    """Per-PE busy/idle accounting.

    For each track: ``busy`` (sum of non-idle span durations), ``idle``
    (explicit idle-gap spans), ``extent`` (first start → last end),
    ``utilization`` (busy / extent), and ``events`` (span count).
    """
    out: Dict[Track, Dict[str, float]] = {}
    for track, spans in spans_by_track(log).items():
        busy = sum(e.duration for e in spans if e.category in BUSY_CATEGORIES)
        idle = sum(e.duration for e in spans if e.category == CAT_IDLE)
        extent = spans[-1].t1 - spans[0].t0 if spans else 0.0
        out[track] = {
            "busy": busy,
            "idle": idle,
            "extent": extent,
            "utilization": busy / extent if extent > 0 else 0.0,
            "events": float(len(spans)),
        }
    return out


def category_totals(log: EventLog) -> Dict[str, Dict[str, float]]:
    """Event counts and total span time per category."""
    out: Dict[str, Dict[str, float]] = defaultdict(lambda: {"events": 0, "time": 0.0})
    for ev in log.events:
        slot = out[ev.category]
        slot["events"] += 1
        slot["time"] += ev.duration
    return dict(out)


def name_totals(log: EventLog) -> Dict[str, Dict[str, float]]:
    """Event counts and total span time per name key (the prefix before
    ``:``), so per-channel / per-method qualifiers aggregate."""
    out: Dict[str, Dict[str, float]] = defaultdict(lambda: {"events": 0, "time": 0.0})
    for ev in log.events:
        slot = out[ev.name_key]
        slot["events"] += 1
        slot["time"] += ev.duration
    return dict(out)


def binned_profile(
    log: EventLog,
    nbins: int = 20,
    categories: Optional[Sequence[str]] = None,
) -> Tuple[List[float], Dict[str, List[float]]]:
    """Time-binned per-category busy-time histogram.

    Returns ``(edges, {category: [time in bin, ...]})`` where ``edges``
    has ``nbins + 1`` entries spanning the log's extent.  Span time is
    apportioned to bins by overlap, so a span crossing an edge splits
    across both bins — bin totals sum to the category totals exactly.
    """
    if nbins <= 0:
        raise ValueError(f"nbins must be positive, got {nbins}")
    spans = [e for e in log.events if e.is_span]
    if not spans:
        return [0.0] * (nbins + 1), {}
    t_min = min(e.t0 for e in spans)
    t_max = max(e.t1 for e in spans)
    width = (t_max - t_min) / nbins or 1.0
    edges = [t_min + i * width for i in range(nbins + 1)]
    cats = set(categories) if categories is not None else {e.category for e in spans}
    hist: Dict[str, List[float]] = {c: [0.0] * nbins for c in sorted(cats)}
    for ev in spans:
        if ev.category not in hist or ev.duration == 0.0:
            continue
        first = min(int((ev.t0 - t_min) / width), nbins - 1)
        last = min(int((ev.t1 - t_min) / width), nbins - 1)
        for b in range(first, last + 1):
            lo = max(ev.t0, edges[b])
            hi = min(ev.t1, edges[b + 1] if b + 1 < len(edges) else t_max)
            if hi > lo:
                hist[ev.category][b] += hi - lo
    return edges, hist


# ---------------------------------------------------------------------------
# Critical path
# ---------------------------------------------------------------------------


def critical_path(log: EventLog) -> List[TraceEvent]:
    """The causal chain ending at the latest-finishing event.

    Walks ``cause`` links backward from the event with the greatest end
    time; the returned list runs cause-first.  This is the standard
    last-event backward walk over the message-causality graph: every
    link in the chain had to happen, in order, for the run to end when
    it did, so the chain's extent is a lower-bound explanation of the
    makespan.
    """
    if not log.events:
        return []
    index = log.by_eid()
    tail = max(log.events, key=lambda e: (e.t1, e.eid))
    chain: List[TraceEvent] = []
    seen = set()
    ev: Optional[TraceEvent] = tail
    while ev is not None and ev.eid not in seen:
        chain.append(ev)
        seen.add(ev.eid)
        ev = index.get(ev.cause) if ev.cause is not None else None
    chain.reverse()
    return chain


def critical_path_summary(log: EventLog) -> Dict[str, object]:
    """Aggregate view of :func:`critical_path`.

    ``extent`` is first-cause start → last-effect end; ``work`` the
    summed span durations on the chain; ``wait`` the gaps between
    consecutive chain events (network latency, queueing delay);
    ``by_category`` the per-category share of ``work``.
    """
    chain = critical_path(log)
    if not chain:
        return {"events": 0, "extent": 0.0, "work": 0.0, "wait": 0.0,
                "by_category": {}, "chain": []}
    work_by_cat: Dict[str, float] = defaultdict(float)
    for ev in chain:
        work_by_cat[ev.category] += ev.duration
    wait = 0.0
    for prev, nxt in zip(chain, chain[1:]):
        gap = nxt.t0 - prev.t1
        if gap > 0:
            wait += gap
    return {
        "events": len(chain),
        "extent": chain[-1].t1 - chain[0].t0,
        "work": sum(ev.duration for ev in chain),
        "wait": wait,
        "by_category": dict(work_by_cat),
        "chain": chain,
    }
