"""Tests for the pingpong microbenchmark across all stacks."""

import numpy as np
import pytest

from repro import ABE, SURVEYOR
from repro.apps.pingpong import (
    charm_pingpong,
    ckdirect_pingpong,
    mpi_pingpong,
    mpi_put_pingpong,
)


def test_charm_pingpong_result_fields():
    r = charm_pingpong(ABE, 1000, iterations=20)
    assert r.stack == "charm"
    assert r.machine == "Abe"
    assert r.nbytes == 1000
    assert r.rtt > 0
    assert r.rtt_us == pytest.approx(r.rtt * 1e6)


def test_ckdirect_pingpong_real_buffers_move_data():
    r = ckdirect_pingpong(ABE, 104, iterations=5, real_buffers=True)
    assert r.rtt > 0


def test_real_and_virtual_buffers_time_identically():
    a = ckdirect_pingpong(ABE, 800, iterations=10, real_buffers=True)
    b = ckdirect_pingpong(ABE, 800, iterations=10, real_buffers=False)
    assert a.rtt == pytest.approx(b.rtt)


def test_rtt_monotone_in_size():
    sizes = [100, 1000, 10_000, 100_000]
    for fn in (charm_pingpong, ckdirect_pingpong):
        rtts = [fn(ABE, s, 20).rtt for s in sizes]
        assert all(b > a for a, b in zip(rtts, rtts[1:])), fn.__name__


def test_ckdirect_faster_than_charm_both_machines():
    for machine in (ABE, SURVEYOR):
        for size in (100, 10_000, 500_000):
            d = charm_pingpong(machine, size, 20).rtt
            c = ckdirect_pingpong(machine, size, 20).rtt
            assert c < d, (machine.name, size)


def test_mpi_flavors_distinct():
    mva = mpi_pingpong(ABE, 30_000, 20, flavor="MVAPICH").rtt
    vmi = mpi_pingpong(ABE, 30_000, 20, flavor="MPICH-VMI").rtt
    assert mva != vmi
    assert mva < vmi  # MVAPICH is the better stack at this size


def test_mpi_put_includes_sync_cost_small():
    two = mpi_pingpong(ABE, 100, 20, flavor="MVAPICH").rtt
    put = mpi_put_pingpong(ABE, 100, 20, flavor="MVAPICH").rtt
    assert put > two


def test_stack_labels():
    assert mpi_pingpong(ABE, 100, 5).stack == "mpi:MVAPICH"
    assert mpi_put_pingpong(SURVEYOR, 100, 5).stack == "mpi-put:IBM-MPI"


def test_iterations_do_not_change_steady_state():
    a = charm_pingpong(ABE, 1000, iterations=10).rtt
    b = charm_pingpong(ABE, 1000, iterations=100).rtt
    assert a == pytest.approx(b, rel=1e-6)
