"""Calibration spot checks: the simulated stacks stay near the paper's
printed microbenchmark numbers at representative sizes.

The full-table sweep lives in the benchmark suite; these fast spot
checks run with the unit tests so a parameter regression is caught
immediately.
"""

import pytest

from repro import ABE, SURVEYOR
from repro.apps.pingpong import (
    charm_pingpong,
    ckdirect_pingpong,
    mpi_pingpong,
    mpi_put_pingpong,
)
from repro.bench.paper_data import PINGPONG_SIZES, TABLE1_RTT_US, TABLE2_RTT_US

IDX = {s: i for i, s in enumerate(PINGPONG_SIZES)}

# representative small / crossover / large points
SPOT_SIZES = [100, 30_000, 500_000]


@pytest.mark.parametrize("size", SPOT_SIZES)
def test_charm_ib_near_paper(size):
    got = charm_pingpong(ABE, size, 40).rtt_us
    paper = TABLE1_RTT_US["Default CHARM++"][IDX[size]]
    assert got == pytest.approx(paper, rel=0.12)


@pytest.mark.parametrize("size", SPOT_SIZES)
def test_ckdirect_ib_near_paper(size):
    got = ckdirect_pingpong(ABE, size, 40).rtt_us
    paper = TABLE1_RTT_US["CkDirect CHARM++"][IDX[size]]
    assert got == pytest.approx(paper, rel=0.08)


@pytest.mark.parametrize("size", SPOT_SIZES)
def test_charm_bgp_near_paper(size):
    got = charm_pingpong(SURVEYOR, size, 40).rtt_us
    paper = TABLE2_RTT_US["Default CHARM++"][IDX[size]]
    assert got == pytest.approx(paper, rel=0.08)


@pytest.mark.parametrize("size", SPOT_SIZES)
def test_ckdirect_bgp_near_paper(size):
    got = ckdirect_pingpong(SURVEYOR, size, 40).rtt_us
    paper = TABLE2_RTT_US["CkDirect CHARM++"][IDX[size]]
    assert got == pytest.approx(paper, rel=0.10)


@pytest.mark.parametrize("size", SPOT_SIZES)
def test_mvapich_near_paper(size):
    got = mpi_pingpong(ABE, size, 40, flavor="MVAPICH").rtt_us
    paper = TABLE1_RTT_US["MVAPICH"][IDX[size]]
    assert got == pytest.approx(paper, rel=0.15)


@pytest.mark.parametrize("size", SPOT_SIZES)
def test_ibm_mpi_near_paper(size):
    got = mpi_pingpong(SURVEYOR, size, 40).rtt_us
    paper = TABLE2_RTT_US["MPI"][IDX[size]]
    assert got == pytest.approx(paper, rel=0.10)


def test_ordering_small_messages_ib():
    """At 100B the paper's ordering: MVAPICH ~ VMI ~ CkD < Put < default."""
    ckd = ckdirect_pingpong(ABE, 100, 40).rtt_us
    put = mpi_put_pingpong(ABE, 100, 40, flavor="MVAPICH").rtt_us
    charm = charm_pingpong(ABE, 100, 40).rtt_us
    assert ckd < put < charm


def test_ordering_small_messages_bgp():
    """Table 2 at 100B: CkD < MPI < Put ~ default."""
    ckd = ckdirect_pingpong(SURVEYOR, 100, 40).rtt_us
    mpi = mpi_pingpong(SURVEYOR, 100, 40).rtt_us
    put = mpi_put_pingpong(SURVEYOR, 100, 40).rtt_us
    charm = charm_pingpong(SURVEYOR, 100, 40).rtt_us
    assert ckd < mpi < put
    assert ckd < charm


def test_charm_protocol_switch_visible_on_ib():
    """Default Charm++ jumps between 20KB (packet) and 30KB
    (rendezvous) — the Table 1 discussion's protocol switch."""
    t20 = charm_pingpong(ABE, 20_000, 40).rtt_us
    t30 = charm_pingpong(ABE, 30_000, 40).rtt_us
    per_byte_before = (t20 - charm_pingpong(ABE, 10_000, 40).rtt_us) / 10_000
    jump = t30 - t20
    # the switch costs noticeably more than 10KB of packet-protocol
    # bytes (the rendezvous handshake + registration appear)
    assert jump > 1.3 * per_byte_before * 10_000
