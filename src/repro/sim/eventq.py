"""Pluggable event-queue implementations for the DES core.

The engine's reference implementation is the tuple-keyed binary heap
inside :class:`~repro.sim.engine.Simulator`.  This module adds the
alternatives and the selection machinery:

* :class:`CalendarSimulator` — a pure-Python *ladder* variant of a
  calendar queue tuned for the engine's near-future-heavy schedule
  distribution (most events land close behind the last one already
  queued).  Two rungs: a sorted *current* rung drained by a read
  pointer (pops are O(1) index steps, no sift), and an unsorted
  *future* rung that takes O(1) appends and is sorted once per refill
  by C Timsort.  New events that precede the current rung's tail are
  placed by ``bisect.insort`` — a C binary search plus ``memmove``,
  cheaper than a heap sift for the rung sizes the fabrics produce.
* ``CompiledSimulator`` — the same structure compiled to native code
  (:mod:`repro.sim._ceventq`, hand-written C built optionally by
  ``setup.py``); present only when the extension is importable.
* :class:`AutoSimulator` — starts on the reference heap and commits to
  an implementation at the first ``run()``-family call: workloads with
  a large pending set amortize the ladder's refill sorts, tiny ones
  (interactive pingpong points) keep the heap's lower constant.

Every implementation preserves the deterministic ``(time, priority,
seq)`` total order, so **simulation results are bit-identical across
implementations** — ``--eventq`` is a wall-clock knob exactly like
``--jobs`` and ``--shards``, and it is deliberately *not* part of
:data:`repro.sweep.spec.ENGINE_SCHEMA` digests.

Selection precedence is flag over environment over default (matching
``--jobs``/``--shards``): an explicit ``eventq=``/``--eventq`` wins,
else ``REPRO_EVENTQ``, else ``auto``.
"""

from __future__ import annotations

import os
from bisect import insort
from typing import Any, Callable, Iterable, List, Optional, Tuple

from .engine import _COMPACT_MIN, SimulationError, Simulator
from .event import Event

try:  # the optional compiled core (see setup.py / _ceventq.c)
    from . import _ceventq
except ImportError:  # pragma: no cover - depends on the build
    _ceventq = None

#: Valid ``--eventq`` / ``REPRO_EVENTQ`` values.
EVENTQ_CHOICES = ("auto", "heap", "calendar", "compiled")

#: ``auto``: pending_active at the first run()-family call at or above
#: this commits to the calendar queue; below it, to the heap.
_AUTO_PENDING = 256

#: Drop the consumed current-rung prefix once the read pointer passes
#: this, so a rung that never fully drains (self-rescheduling chains
#: insort ahead of the pointer) cannot grow without bound.
_TRIM_POS = 4096


def compiled_available() -> bool:
    """True when the native :mod:`repro.sim._ceventq` core is importable."""
    return _ceventq is not None


def resolve_eventq(eventq: Optional[str] = None) -> str:
    """Event-queue choice: explicit argument, else ``REPRO_EVENTQ``, else auto.

    Precedence is *flag over environment over default* (matching
    :func:`repro.sweep.runner.resolve_jobs`).  Unknown names raise
    :class:`SimulationError` rather than being silently ignored.
    """
    if eventq is None:
        eventq = os.environ.get("REPRO_EVENTQ", "").strip() or "auto"
    name = str(eventq).strip().lower()
    if name not in EVENTQ_CHOICES:
        raise SimulationError(
            f"unknown event queue {eventq!r} "
            f"(choose from {', '.join(EVENTQ_CHOICES)})"
        )
    return name


def eventq_name(sim: Any) -> str:
    """The implementation name a simulator instance runs on."""
    return getattr(sim, "eventq_name", type(sim).__name__)


# ---------------------------------------------------------------------------
# Pure-Python calendar (ladder) queue
# ---------------------------------------------------------------------------


class CalendarSimulator(Simulator):
    """The ladder-variant calendar queue, pure Python.

    Storage replaces the base heap entirely:

    ``_cur``
        The current rung: ``(time, priority, seq, Event)`` tuples in
        ascending order from index ``_pos`` on.  Entries before
        ``_pos`` are consumed and periodically trimmed.
    ``_top``
        The future rung: unsorted entries, each ordering at or after
        ``_cur``'s last entry.  Sorted wholesale (C Timsort) when the
        current rung drains.

    Invariant: every ``_top`` entry orders >= every *unread* ``_cur``
    entry, so draining ``_cur`` then sorting ``_top`` pops the global
    ``(time, priority, seq)`` order — bit-identical to the heap.

    Cancellation accounting mirrors the heap engine but is maintained
    per-implementation: ``_cancelled_in_heap`` counts cancelled
    entries still queued in either rung, and :meth:`_compact` filters
    both rungs *in place* (the run loops hold local aliases to
    ``_cur`` and re-read its length after every callback, so an
    in-callback mass-cancel never strands a stale rung list — the
    calendar analogue of the heap engine's in-place ``_compact``).
    """

    eventq_name = "calendar"

    def __init__(self) -> None:
        super().__init__()
        del self._heap  # misuse of the base storage should fail loudly
        self._cur: List[Tuple[float, int, int, Event]] = []
        self._pos: int = 0
        self._top: List[Tuple[float, int, int, Event]] = []

    # -- introspection --------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of queued events (including cancelled ones)."""
        return len(self._cur) - self._pos + len(self._top)

    @property
    def pending_active(self) -> int:
        """Number of *live* (non-cancelled) queued events."""
        return len(self._cur) - self._pos + len(self._top) \
            - self._cancelled_in_heap

    # -- scheduling (hot: validation and push inlined, no at() hop) -----

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> Event:
        if not (delay >= 0):  # rejects negatives and NaN
            raise SimulationError(f"negative delay: {delay!r}")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, priority, seq, fn, args, kwargs, self)
        entry = (time, priority, seq, ev)
        # Within a rung cur[-1] never changes (insort only ever places
        # entries *before* it), so every _top entry orders after it and
        # routing on cur[-1] alone preserves the rung invariant.
        cur = self._cur
        if cur and entry < cur[-1]:
            insort(cur, entry, lo=self._pos)
        else:
            self._top.append(entry)
        return ev

    def at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> Event:
        if not (time >= self._now):  # rejects past times and NaN
            raise SimulationError(
                f"cannot schedule in the past: t={time!r} < now={self._now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, priority, seq, fn, args, kwargs, self)
        entry = (time, priority, seq, ev)
        cur = self._cur
        if cur and entry < cur[-1]:
            insort(cur, entry, lo=self._pos)
        else:
            self._top.append(entry)
        return ev

    def schedule_batch(
        self,
        entries: Iterable[Tuple[float, Callable[..., Any], tuple]],
        priority: int = 0,
    ) -> List[Event]:
        """Admit a burst of ``(time, fn, args)`` callbacks in one call.

        Rejection is atomic exactly as in the heap engine: a past or
        NaN time raises before either rung or the sequence counter is
        touched.
        """
        now = self._now
        seq = self._seq
        events: List[Event] = []
        batch: List[Tuple[float, int, int, Event]] = []
        for time, fn, args in entries:
            if not (time >= now):  # rejects past times and NaN
                raise SimulationError(
                    f"cannot schedule in the past: t={time!r} < now={now!r}"
                )
            ev = Event(time, priority, seq, fn, args, None, self)
            batch.append((time, priority, seq, ev))
            events.append(ev)
            seq += 1
        self._seq = seq
        cur = self._cur
        if cur:
            last = cur[-1]
            top_append = self._top.append
            pos = self._pos
            for entry in batch:
                if entry < last:
                    insort(cur, entry, lo=pos)
                else:
                    top_append(entry)
        else:
            self._top.extend(batch)
        return events

    # -- cancellation accounting ---------------------------------------

    def _note_cancel(self) -> None:
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap > _COMPACT_MIN
            and self._cancelled_in_heap * 2
                > len(self._cur) - self._pos + len(self._top)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from both rungs, in place.

        Only the unread tail of ``_cur`` is filtered: the consumed
        prefix stays, so the run loops' local read index remains
        valid, and both list objects keep their identity for any
        local aliases held across event execution (the calendar
        analogue of the heap engine's in-place ``_compact`` fix).
        """
        cur, pos = self._cur, self._pos
        cur[pos:] = [e for e in cur[pos:] if not e[3]._cancelled]
        self._top[:] = [e for e in self._top if not e[3]._cancelled]
        self._cancelled_in_heap = 0

    # -- execution ------------------------------------------------------

    def _refill(self) -> int:
        """Discard the consumed rung, promote the future rung (sorted).

        Mutates ``_cur``/``_top`` in place (slice assignment) so local
        aliases held by a caller stay attached.  Returns the number of
        unread entries afterwards.
        """
        cur, top = self._cur, self._top
        del cur[:]
        self._pos = 0
        if top:
            top.sort()
            cur[:] = top
            del top[:]
        return len(cur)

    def next_event_time(self) -> float:
        """Time of the next *live* event, or ``inf`` when drained.

        Cancelled entries at the front are consumed, so the answer
        reflects :attr:`pending_active` — same contract as the heap
        engine; used by the parallel engine's window negotiation.
        """
        cur = self._cur
        pos = self._pos
        n = len(cur)
        while True:
            if pos >= n:
                self._pos = pos
                n = self._refill()
                pos = 0
                if n == 0:
                    return float("inf")
            entry = cur[pos]
            ev = entry[3]
            if ev._cancelled:
                pos += 1
                self._pos = pos
                ev._popped = True
                self._cancelled_in_heap -= 1
                continue
            return entry[0]

    def run_before(self, bound: float) -> None:
        """Fire every event with ``time < bound``, *strictly*.

        Same contract as the heap engine: no events at exactly
        ``bound``, no clock advance when the queue drains early.
        """
        if self._running:
            raise SimulationError("Simulator.run_before() is not reentrant")
        self._running = True
        fired = 0
        cur = self._cur
        pos = self._pos
        n = len(cur)
        trim = _TRIM_POS
        top = self._top
        try:
            while True:
                if pos >= n:
                    if not top:
                        del cur[:]
                        self._pos = pos = 0
                        return
                    top.sort()
                    cur = self._cur = top
                    top = self._top = []
                    self._pos = pos = 0
                    n = len(cur)
                elif pos >= trim:
                    del cur[:pos]
                    self._pos = pos = 0
                    n = len(cur)
                entry = cur[pos]
                ev = entry[3]
                if ev._cancelled:
                    pos += 1
                    ev._popped = True
                    self._cancelled_in_heap -= 1
                    continue
                if entry[0] >= bound:
                    return
                pos += 1
                self._pos = pos
                ev._popped = True
                self._now = entry[0]
                fired += 1
                kw = ev.kwargs
                if kw is None:
                    ev.fn(*ev.args)
                else:
                    ev.fn(*ev.args, **kw)
                # A callback may have insorted into (or compacted) the
                # current rung: re-read its bounds, never cache across.
                pos = self._pos
                n = len(cur)
        finally:
            self._pos = pos
            self._events_processed += fired
            self._running = False

    def step(self) -> bool:
        """Fire the single next event.  Returns False when drained."""
        cur = self._cur
        pos = self._pos
        n = len(cur)
        while True:
            if pos >= n:
                self._pos = pos
                n = self._refill()
                pos = 0
                if n == 0:
                    return False
            entry = cur[pos]
            pos += 1
            self._pos = pos
            ev = entry[3]
            ev._popped = True
            if ev._cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._now = entry[0]
            self._events_processed += 1
            if ev.kwargs is None:
                ev.fn(*ev.args)
            else:
                ev.fn(*ev.args, **ev.kwargs)
            return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until drained, ``until`` is reached, or ``max_events``.

        Contract identical to the heap engine (events at exactly
        ``until`` fire; the clock advances to ``until`` when the queue
        drains early).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        fired = 0
        cur = self._cur
        pos = self._pos
        trim = _TRIM_POS
        try:
            if until is None and max_events is None:
                # Fast path: the common run-to-completion case.  The
                # refill is inlined (it runs every couple of events in
                # chain-shaped workloads); rebinding _cur/_top and the
                # local aliases in the same step keeps every pointer a
                # callback can observe consistent.
                n = len(cur)
                top = self._top
                while True:
                    if pos >= n:
                        if not top:
                            del cur[:]
                            self._pos = pos = 0
                            return
                        top.sort()
                        cur = self._cur = top
                        top = self._top = []
                        self._pos = pos = 0
                        n = len(cur)
                    elif pos >= trim:
                        del cur[:pos]
                        self._pos = pos = 0
                        n = len(cur)
                    entry = cur[pos]
                    pos += 1
                    ev = entry[3]
                    if ev._cancelled:
                        ev._popped = True
                        self._cancelled_in_heap -= 1
                        continue
                    self._pos = pos
                    ev._popped = True
                    self._now = entry[0]
                    fired += 1
                    kw = ev.kwargs
                    if kw is None:
                        ev.fn(*ev.args)
                    else:
                        ev.fn(*ev.args, **kw)
                    pos = self._pos
                    n = len(cur)
            else:
                n = len(cur)
                while True:
                    if pos >= n:
                        self._pos = pos
                        n = self._refill()
                        pos = 0
                        if n == 0:
                            break
                    elif pos >= trim:
                        del cur[:pos]
                        self._pos = pos = 0
                        n = len(cur)
                    if max_events is not None and fired >= max_events:
                        return
                    entry = cur[pos]
                    ev = entry[3]
                    if ev._cancelled:
                        pos += 1
                        ev._popped = True
                        self._cancelled_in_heap -= 1
                        continue
                    if until is not None and entry[0] > until:
                        self._now = until
                        return
                    pos += 1
                    self._pos = pos
                    ev._popped = True
                    self._now = entry[0]
                    fired += 1
                    if ev.kwargs is None:
                        ev.fn(*ev.args)
                    else:
                        ev.fn(*ev.args, **ev.kwargs)
                    pos = self._pos
                    n = len(cur)
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._pos = pos
            self._events_processed += fired
            self._running = False


# ---------------------------------------------------------------------------
# Auto mode
# ---------------------------------------------------------------------------


class AutoSimulator(Simulator):
    """Heap-backed until the first run()-family call, then committed.

    The commit point inspects the workload the runtime actually built:
    a pending set of :data:`_AUTO_PENDING` or more live events means
    refill sorts amortize and the calendar queue wins; anything
    smaller keeps the reference heap's lower constant.  The decision
    is sticky (the instance *becomes* the chosen class), costs one
    ``sort`` of the already-heaped entries when the calendar is
    picked, and cannot affect results — both targets pop the same
    ``(time, priority, seq)`` order.
    """

    eventq_name = "auto"

    def _commit(self) -> None:
        if self.pending_active >= _AUTO_PENDING:
            entries = self._heap
            entries.sort()
            self.__class__ = CalendarSimulator
            del self._heap
            self._cur = entries
            self._pos = 0
            self._top = []
        else:
            self.__class__ = Simulator

    def run(self, until=None, max_events=None) -> None:
        self._commit()
        return self.run(until=until, max_events=max_events)

    def run_before(self, bound: float) -> None:
        self._commit()
        return self.run_before(bound)

    def step(self) -> bool:
        self._commit()
        return self.step()

    def next_event_time(self) -> float:
        self._commit()
        return self.next_event_time()


# ---------------------------------------------------------------------------
# Compiled core wrapper
# ---------------------------------------------------------------------------


if _ceventq is not None:

    class CompiledSimulator(_ceventq.CalendarSimCore):
        """The native calendar core plus the cold-path Python helpers."""

        eventq_name = "calendar-c"

        def drain(self, max_events: int = 50_000_000) -> None:
            """Run to completion, guarding against runaway event loops."""
            self.run(max_events=max_events)
            if self.pending_active:
                raise SimulationError(
                    f"simulation did not converge within {max_events} events"
                )

else:  # pragma: no cover - depends on the build

    CompiledSimulator = None  # type: ignore[assignment,misc]


# ---------------------------------------------------------------------------
# State save / restore (the Time Warp engine's rollback hooks)
# ---------------------------------------------------------------------------


def checkpoint_sim(sim: Any) -> tuple:
    """Snapshot a simulator's complete pending state.

    The snapshot holds *references* to the pending :class:`Event`
    objects (their closures keep pointing at the live runtime — the
    optimistic engine restores application state in place, so those
    references stay valid) plus a copy of each event's cancelled flag,
    the clock, the scheduling sequence counter and the processed-event
    count.  Restoring and re-running therefore replays the exact
    ``(time, priority, seq)`` pop order of the original execution.

    Works on every :data:`EVENTQ_CHOICES` implementation, including an
    :class:`AutoSimulator` that commits to a different class between
    checkpoint and restore (the snapshot pins ``__class__``).
    Checkpoints must be taken outside ``run()`` (between events).
    """
    cls = sim.__class__
    if _ceventq is not None and isinstance(sim, _ceventq.CalendarSimCore):
        # (now, seq, events_processed, [(event, cancelled), ...])
        return ("c",) + sim.checkpoint()
    if cls is CalendarSimulator:
        entries = sim._cur[sim._pos:] + sim._top
    else:  # Simulator / AutoSimulator: the heap list is the whole queue
        entries = list(sim._heap)
    flags = [e[3]._cancelled for e in entries]
    return (cls, sim._now, sim._seq, sim._events_processed, entries, flags)


def restore_sim(sim: Any, snap: tuple) -> None:
    """Restore ``sim`` to a :func:`checkpoint_sim` snapshot in place."""
    if snap[0] == "c":
        _, now, seq, done, entries = snap
        sim.restore(now, seq, done, entries)
        return
    cls, now, seq, done, entries, flags = snap
    for (_, _, _, ev), flag in zip(entries, flags):
        ev._cancelled = flag
        ev._popped = False
    sim.__class__ = cls
    sim._now = now
    sim._seq = seq
    sim._events_processed = done
    sim._running = False
    sim._cancelled_in_heap = sum(flags)
    if cls is CalendarSimulator:
        if hasattr(sim, "_heap"):
            del sim._heap
        # One fully sorted rung is a legal calendar state (the rung
        # invariant only needs _cur sorted with _pos at its head).
        sim._cur = sorted(entries)
        sim._pos = 0
        sim._top = []
    else:
        for name in ("_cur", "_pos", "_top"):
            if hasattr(sim, name):
                delattr(sim, name)
        # A copy of a heap list is still a valid heap.
        sim._heap = list(entries)


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------


def resolved_eventq_name(eventq: Optional[str] = None) -> str:
    """The concrete queue name :func:`make_simulator` would pick.

    Follows the same resolution (flag > ``REPRO_EVENTQ`` > auto) and
    the same compiled-absent error, but without constructing a
    simulator — callers that only *report* the queue (e.g. the serve
    layer's ``/metrics``) should not pay for a throwaway instance.
    """
    name = resolve_eventq(eventq)
    if name == "heap":
        return Simulator.eventq_name
    if name == "calendar":
        return CalendarSimulator.eventq_name
    if name == "compiled":
        if _ceventq is None:
            raise SimulationError(
                "REPRO_EVENTQ=compiled but repro.sim._ceventq is not "
                "built; install with `pip install -e .[compiled]` or run "
                "`python setup.py build_ext --inplace`"
            )
        return CompiledSimulator.eventq_name
    if _ceventq is not None:
        return CompiledSimulator.eventq_name
    return AutoSimulator.eventq_name


def make_simulator(eventq: Optional[str] = None) -> Simulator:
    """Build a simulator on the resolved event-queue implementation.

    ``auto`` (the default) takes the compiled core whenever it is
    built — it dominates both pure-Python structures — and otherwise
    defers the heap-vs-calendar choice to the workload via
    :class:`AutoSimulator`.  Requesting ``compiled`` explicitly when
    the extension is absent is an error (CI relies on this to catch a
    silently-skipped build); ``auto`` falls back silently.
    """
    name = resolve_eventq(eventq)
    if name == "heap":
        return Simulator()
    if name == "calendar":
        return CalendarSimulator()
    if name == "compiled":
        if _ceventq is None:
            raise SimulationError(
                "REPRO_EVENTQ=compiled but repro.sim._ceventq is not "
                "built; install with `pip install -e .[compiled]` or run "
                "`python setup.py build_ext --inplace`"
            )
        return CompiledSimulator()
    # auto
    if _ceventq is not None:
        return CompiledSimulator()
    return AutoSimulator()
