"""Unit tests for the shape-assertion helpers."""

import pytest

from repro.bench.shapes import (
    ShapeError,
    assert_all_nonnegative,
    assert_ckdirect_always_wins,
    assert_ckdirect_beats_mpi,
    assert_gain_in_band,
    assert_gains_grow_with_pes,
    assert_gap_grows_through_packet_band,
    assert_put_crossover,
    assert_within_tolerance,
)


def test_always_wins_passes_and_fails():
    sizes = [100, 1000]
    assert_ckdirect_always_wins(sizes, [10, 20], [5, 15])
    with pytest.raises(ShapeError, match="1000B"):
        assert_ckdirect_always_wins(sizes, [10, 20], [5, 25])


def test_gap_growth():
    sizes = [100, 2000, 10_000, 20_000, 50_000]
    default = [10, 20, 40, 70, 100]
    ckd = [5, 16, 30, 50, 95]
    # gaps inside (1000, 20000): 4, 10, 20 — growing
    assert_gap_grows_through_packet_band(sizes, default, ckd)
    with pytest.raises(ShapeError):
        assert_gap_grows_through_packet_band(sizes, [10, 20, 40, 45, 100], ckd)


def test_put_crossover():
    sizes = [1000, 50_000, 200_000]
    two = [10.0, 50.0, 200.0]
    put = [12.0, 52.0, 190.0]
    assert_put_crossover(sizes, two, put)
    with pytest.raises(ShapeError, match="beat two-sided"):
        assert_put_crossover(sizes, two, [8.0, 52.0, 190.0])
    with pytest.raises(ShapeError, match="lost to two-sided"):
        assert_put_crossover(sizes, two, [12.0, 52.0, 210.0])


def test_within_tolerance():
    assert_within_tolerance([1], [105.0], [100.0], 0.10, "x")
    with pytest.raises(ShapeError, match="tolerance"):
        assert_within_tolerance([1], [120.0], [100.0], 0.10, "x")


def test_beats_mpi_with_slack():
    sizes = [10]
    assert_ckdirect_beats_mpi(sizes, [100.0], {"m": [99.0]})  # within 2%
    with pytest.raises(ShapeError, match="lost to"):
        assert_ckdirect_beats_mpi(sizes, [100.0], {"m": [90.0]})


def test_gains_grow():
    assert_gains_grow_with_pes([1, 2, 4], [1.0, 2.0, 3.0])
    assert_gains_grow_with_pes([1, 2, 4], [3.0, 2.0, 4.0], slack_pct=1.5)
    with pytest.raises(ShapeError):
        assert_gains_grow_with_pes([1, 2, 4], [5.0, 1.0, 6.0])


def test_gain_band():
    assert_gain_in_band(256, 12.0, 8.0, 18.0, "f")
    with pytest.raises(ShapeError):
        assert_gain_in_band(256, 20.0, 8.0, 18.0, "f")


def test_nonnegative():
    assert_all_nonnegative([1, 2], [0.5, 0.0])
    assert_all_nonnegative([1], [-0.4], slack_pct=0.5)
    with pytest.raises(ShapeError, match="slower"):
        assert_all_nonnegative([1], [-1.0])
