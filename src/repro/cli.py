"""Command-line interface: ``python -m repro <artifact> [options]``.

Regenerates individual tables/figures/ablations of the paper from the
terminal, without writing a driver script::

    python -m repro list
    python -m repro table1
    python -m repro fig2a --pes 32 64 128 256
    python -m repro fig3 --machine Surveyor --full-scale
    python -m repro pingpong --machine Abe --stack ckdirect --size 30000
    python -m repro ablations
    python -m repro profile --app openatom --machine Abe
    python -m repro fig4 --trace-out fig4.trace.json

``--trace-out PATH`` works on every artifact: the run is traced with
the Projections event log and written as Chrome trace-event JSON
(open in Perfetto / chrome://tracing; one process per simulated
runtime, one thread per PE).

``--jobs N`` (or ``REPRO_JOBS=N``) fans each artifact's independent
sweep points out over N worker processes; reports are byte-identical
to a serial run, so it is purely a wall-clock knob.

``--shards N`` (or ``REPRO_SHARDS=N``) partitions each *single* run
over N shard processes with the conservative-lookahead parallel
engine; reports are byte-identical to ``--shards 1``, so it too is
purely a wall-clock knob.  When both are given, the sweep pool is
scaled down so jobs x shards stays within the requested process
budget.

``--eventq IMPL`` (or ``REPRO_EVENTQ=IMPL``) selects the event-queue
implementation backing every simulator — ``heap`` (the reference),
``calendar`` (pure-Python calendar queue), ``compiled`` (the native
core, when built), or ``auto`` (the default) — again with
byte-identical output, so it is the third pure wall-clock knob.

``--engine MODE`` (or ``REPRO_ENGINE=MODE``) selects the parallel
engine's synchronization mode — ``conservative`` lookahead windows
(the default) or ``optimistic`` Time Warp speculation with rollback
and anti-messages; output is byte-identical for either mode, making
it the fourth pure wall-clock knob (it matters only with
``--shards``).

``--transport NAME`` (or ``REPRO_TRANSPORT=NAME``) selects the shard
IPC transport — ``pipe`` (the Connection reference path, default) or
``shm`` (one-sided shared-memory rings with sentinel completion, the
paper's own mechanism applied to our IPC); output is byte-identical
for either transport, making it the fifth pure wall-clock knob (it
too matters only with ``--shards``).

Precedence for all five knobs is **flag over environment over
default**: an explicit ``--jobs``/``--shards``/``--eventq``/
``--engine``/``--transport`` always wins (the flag is exported into
the matching env var so indirectly-run sweeps see it too);
``REPRO_JOBS``/``REPRO_SHARDS``/``REPRO_EVENTQ``/``REPRO_ENGINE``/
``REPRO_TRANSPORT`` apply only when the flag is absent.  Values below
1, non-integer env strings, or unknown queue/engine/transport names
are rejected with a one-line error, never silently clamped.

``repro serve`` starts the async simulation job server (persistent
content-addressed result cache + bounded SweepRunner pool) and
``repro submit`` sends one point to it; see ``repro serve --help``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .bench import (
    run_backward_path_ablation,
    run_fig2a,
    run_fig2b,
    run_fig3,
    run_fig4,
    run_fig5,
    run_mpi_sync_ablation,
    run_polling_ablation,
    run_protocol_ablation,
    run_table1,
    run_table2,
    run_vr_ablation,
)
from .network.params import MACHINES
from .projections.eventlog import EventLog, install_tracer, uninstall_tracer
from .sim.eventq import EVENTQ_CHOICES
from .sim.shm import TRANSPORT_CHOICES, TransportError
from .sim.timewarp import ENGINE_CHOICES
from .projections.export import write_chrome_trace

ARTIFACTS = {
    "table1": "Table 1 — pingpong RTT, Infiniband (five stacks)",
    "table2": "Table 2 — pingpong RTT, Blue Gene/P (four stacks)",
    "fig2a": "Figure 2(a) — stencil improvement, Infiniband",
    "fig2b": "Figure 2(b) — stencil improvement, Blue Gene/P",
    "fig3": "Figure 3 — matmul scaling (pick --machine)",
    "fig4": "Figure 4 — OpenAtom on Abe (full + PC-only)",
    "fig5": "Figure 5 — OpenAtom on Blue Gene/P (full + PC-only)",
    "ablations": "A1 polling, A2 protocols, A3 MPI sync, A4 virtualization, A5 backward path",
    "chaos": "fault-injection oracle — apps x profiles, bit-identical results",
    "pingpong": "single pingpong measurement (pick stack/size/machine)",
    "profile": "overhead profile of one app (pick --app/--stack/--machine)",
    "list": "list the available artifacts",
}

#: Service commands with their own parsers (dispatched before the
#: artifact parser; shown by `repro list` alongside the artifacts).
COMMANDS = {
    "serve": "run the async job server (content-addressed result cache)",
    "submit": "submit one point to a running `repro serve` and fetch it",
}


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts of the CkDirect paper (ICPP 2009) "
                    "on simulated Infiniband / Blue Gene/P machines.",
    )
    p.add_argument("artifact", choices=sorted(ARTIFACTS), help="what to run")
    p.add_argument("--machine", default="Surveyor", choices=sorted(MACHINES),
                   help="machine preset for fig3 / pingpong")
    p.add_argument("--pes", type=int, nargs="+", default=None,
                   help="PE counts for the figure sweeps")
    p.add_argument("--size", type=int, default=30_000,
                   help="message size in bytes for `pingpong`")
    p.add_argument("--stack", default="ckdirect",
                   choices=["charm", "ckdirect", "mpi", "mpi-put"],
                   help="communication stack for `pingpong`")
    p.add_argument("--iterations", type=int, default=None,
                   help="averaging iterations (default: 100 for "
                        "pingpong/tables, per-app for `profile`)")
    p.add_argument("--app", default="pingpong",
                   choices=["pingpong", "stencil", "openatom"],
                   help="application for `profile`")
    p.add_argument("--faults", default=None, metavar="PROFILES",
                   help="comma-separated fault profiles for `chaos` "
                        "(default: all built-in fabric profiles)")
    p.add_argument("--proc", default=None, metavar="PROFILES",
                   help="comma-separated process-scope chaos profiles "
                        "for `chaos` (kill-shard, hang-shard, "
                        "slow-worker, corrupt-object, or `all`): real "
                        "faults against shard workers / the serve "
                        "store, recovered by supervision + the "
                        "self-healing store")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="write the run's event timeline as Chrome "
                        "trace-event JSON (works with every artifact)")
    p.add_argument("--full-scale", action="store_true",
                   help="run the paper's full PE ranges (slow)")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="run sweep points over N worker processes "
                        "(default: $REPRO_JOBS, else serial; output is "
                        "identical at any N)")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="partition each single run over N shard "
                        "processes with the conservative-lookahead "
                        "engine (default: $REPRO_SHARDS, else the "
                        "legacy serial engine; output is identical "
                        "at any N)")
    p.add_argument("--eventq", default=None, metavar="IMPL",
                   choices=list(EVENTQ_CHOICES),
                   help="event-queue implementation: auto (default, "
                        "compiled core when built, else by workload), "
                        "heap (reference), calendar (pure Python), or "
                        "compiled (default: $REPRO_EVENTQ; output is "
                        "identical for every choice)")
    p.add_argument("--engine", default=None, metavar="MODE",
                   choices=list(ENGINE_CHOICES),
                   help="parallel-engine synchronization mode: "
                        "conservative (epoch windows, the default) or "
                        "optimistic (Time Warp speculation with "
                        "rollback; default: $REPRO_ENGINE; output is "
                        "identical for either mode)")
    p.add_argument("--transport", default=None, metavar="NAME",
                   choices=list(TRANSPORT_CHOICES),
                   help="shard IPC transport: pipe (Connection "
                        "reference path, the default) or shm (one-"
                        "sided shared-memory rings with sentinel "
                        "completion; default: $REPRO_TRANSPORT; "
                        "output is identical for either transport)")
    return p


def _run_pingpong(args) -> str:
    from .apps.pingpong import (
        charm_pingpong,
        ckdirect_pingpong,
        mpi_pingpong,
        mpi_put_pingpong,
    )

    machine = MACHINES[args.machine]
    fn = {
        "charm": charm_pingpong,
        "ckdirect": ckdirect_pingpong,
        "mpi": mpi_pingpong,
        "mpi-put": mpi_put_pingpong,
    }[args.stack]
    r = fn(machine, args.size, args.iterations or 100)
    return (
        f"{r.stack} pingpong on {r.machine}: {r.nbytes}B -> "
        f"{r.rtt_us:.3f} us round trip ({r.iterations} iterations)"
    )


def _write_trace(log, path: str) -> int:
    """Write the trace file; returns the event count, or -1 on I/O error."""
    try:
        n = write_chrome_trace(log, path)
    except OSError as exc:
        print(f"error: cannot write trace to {path}: {exc}", file=sys.stderr)
        return -1
    print(f"wrote {n} trace events to {path}")
    return n


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in COMMANDS:
        # Service commands own their flag namespaces; hand off whole.
        from .serve.cli import serve_main, submit_main

        return {"serve": serve_main, "submit": submit_main}[argv[0]](argv[1:])
    parser = _parser()
    args = parser.parse_args(argv)
    if args.iterations is not None and args.iterations < 1:
        parser.error(f"--iterations must be at least 1, got {args.iterations}")
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be at least 1, got {args.jobs}")
    if args.shards is not None and args.shards < 1:
        parser.error(f"--shards must be at least 1, got {args.shards}")
    if args.full_scale:
        os.environ["REPRO_FULL_SCALE"] = "1"
    if args.jobs is not None:
        # Sweeps resolve their pool size from REPRO_JOBS, so one flag
        # covers every artifact (including the ones run indirectly).
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.shards is not None:
        # Runs resolve their shard count from REPRO_SHARDS, so one
        # flag covers every artifact; runs that cannot shard (fault
        # injection, link contention) fall back to serial on their own.
        os.environ["REPRO_SHARDS"] = str(args.shards)
    if args.eventq is not None:
        # Simulators resolve their queue from REPRO_EVENTQ at
        # construction (make_simulator), so the flag reaches every
        # run, including shard workers forked by the parallel engine.
        os.environ["REPRO_EVENTQ"] = args.eventq
    if args.engine is not None:
        # Runtimes resolve their engine mode from REPRO_ENGINE at
        # construction; only meaningful together with --shards (the
        # serial engine has nothing to synchronize).
        os.environ["REPRO_ENGINE"] = args.engine
    if args.transport is not None:
        # Runtimes resolve their shard transport from REPRO_TRANSPORT
        # at construction; like --engine it only moves bytes when
        # --shards actually forks workers.
        os.environ["REPRO_TRANSPORT"] = args.transport

    if args.artifact == "list":
        entries = {**ARTIFACTS, **COMMANDS}
        width = max(len(k) for k in entries)
        for k in sorted(entries):
            print(f"{k:<{width}}  {entries[k]}")
        return 0

    if args.artifact == "profile":
        # run_profile manages its own tracing context; --trace-out just
        # persists the same log it builds the report from.
        from .projections.profile import ProfileError, run_profile

        try:
            result = run_profile(
                app=args.app,
                machine=MACHINES[args.machine],
                stack=args.stack,
                size=args.size,
                iterations=args.iterations,
                n_pes=args.pes[0] if args.pes else None,
            )
        except ProfileError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(result["report"])
        if args.trace_out:
            n = _write_trace(result["log"], args.trace_out)
            if n < 0:
                return 2
        return 0

    exit_code = 0
    log = None
    if args.trace_out:
        log = EventLog()
        install_tracer(log)
    try:
        from .sim.parallel import ParallelEngineError
        from .sweep.spec import SweepError

        iterations = args.iterations or 100
        if args.artifact == "pingpong":
            print(_run_pingpong(args))
        elif args.artifact == "table1":
            print(run_table1(iterations=iterations)["report"])
        elif args.artifact == "table2":
            print(run_table2(iterations=iterations)["report"])
        elif args.artifact == "fig2a":
            print(run_fig2a(pes=args.pes)["report"])
        elif args.artifact == "fig2b":
            print(run_fig2b(pes=args.pes)["report"])
        elif args.artifact == "fig3":
            print(run_fig3(MACHINES[args.machine], pes=args.pes)["report"])
        elif args.artifact == "fig4":
            print(run_fig4(pes=args.pes)["report"])
        elif args.artifact == "fig5":
            print(run_fig5(pes=args.pes)["report"])
        elif args.artifact == "chaos":
            from .bench.chaos import run_chaos, run_proc_chaos
            from .faults.plan import (
                FaultConfigError,
                parse_proc_profiles,
                parse_profiles,
            )
            from .sim.parallel import resolve_shards

            # Fabric matrix runs by default, or when --faults is given
            # explicitly; --proc alone runs only the process matrix.
            try:
                fabric_profiles = (
                    parse_profiles(args.faults)
                    if args.faults is not None
                    else (None if args.proc is None else ())
                )
                proc_profiles = (
                    parse_proc_profiles(args.proc)
                    if args.proc is not None else ()
                )
            except FaultConfigError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            first = True
            if fabric_profiles is None or fabric_profiles:
                out = run_chaos(profiles=fabric_profiles)
                print(out["report"])
                if not out["ok"]:
                    exit_code = 1
                first = False
            if proc_profiles:
                if not first:
                    print()
                out = run_proc_chaos(
                    profiles=proc_profiles,
                    shards=resolve_shards() or 2,
                )
                print(out["report"])
                if not out["ok"]:
                    exit_code = 1
        elif args.artifact == "ablations":
            for runner in (run_polling_ablation, run_protocol_ablation,
                           run_mpi_sync_ablation, run_vr_ablation,
                           run_backward_path_ablation):
                print(runner()["report"])
                print()
    except (SweepError, ParallelEngineError, TransportError) as exc:
        # Typically malformed REPRO_JOBS / REPRO_SHARDS /
        # REPRO_TRANSPORT env values: surface the one-line message,
        # not a deep traceback.
        print(f"error: {exc}", file=sys.stderr)
        exit_code = 2
    finally:
        if log is not None:
            uninstall_tracer()
    if log is not None and _write_trace(log, args.trace_out) < 0:
        return 2
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
