"""Serve-layer metrics: counters, queue gauges, latency histograms.

One :class:`ServeMetrics` instance lives on the app and is exposed at
``GET /metrics``.  Latency is tracked per ``(kind, outcome)`` — e.g.
``stencil/hit`` vs ``stencil/miss`` — with the
:class:`~repro.util.stats.LatencyHistogram` bucket machinery plus a
:class:`~repro.sim.trace.RunningStats` accumulator for stable
mean/stdev, the same statistics core the simulator's traces use.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

from ..sim.eventq import resolved_eventq_name
from ..sim.shm import resolve_transport
from ..sim.timewarp import resolve_engine
from ..sim.trace import RunningStats
from ..util.stats import LatencyHistogram


class ServeMetrics:
    """Mutable counters for one server process (single-loop access)."""

    def __init__(self) -> None:
        self.started_monotonic = time.monotonic()
        # cache traffic
        self.hits = 0
        self.misses = 0
        self.coalesced = 0     # submits folded into an in-flight job
        # job lifecycle
        self.submitted = 0     # accepted jobs (hits + queued misses)
        self.completed = 0
        self.failed = 0
        self.rejected = 0      # 429 backpressure responses
        self.bad_requests = 0  # 400s
        # engine throughput (simulated events fired by completed jobs)
        self.sim_events = 0
        self.sim_wall_s = 0.0
        # Workers fork from this process, so the queue implementation
        # and engine mode resolved here (REPRO_EVENTQ / REPRO_ENGINE)
        # are the ones every job runs on.  Name resolution is direct —
        # no throwaway simulator needs to be built to learn it.
        self.eventq = resolved_eventq_name()
        self.engine = resolve_engine()
        self.transport = resolve_transport()
        # per-(kind, hit|miss) latency
        self._hist: Dict[Tuple[str, str], LatencyHistogram] = {}
        self._stats: Dict[Tuple[str, str], RunningStats] = {}

    def observe_latency(self, kind: str, outcome: str, seconds: float) -> None:
        """Record one request's service latency under ``kind/outcome``."""
        key = (kind, outcome)
        if key not in self._hist:
            self._hist[key] = LatencyHistogram()
            self._stats[key] = RunningStats()
        self._hist[key].observe(seconds)
        self._stats[key].add(max(0.0, float(seconds)))

    def observe_engine(self, events: int, wall_s: float) -> None:
        """Fold one job's simulated-event count and wall time in."""
        self.sim_events += int(events)
        self.sim_wall_s += max(0.0, float(wall_s))

    def to_dict(self, store=None, queue=None) -> Dict:
        """JSON-ready snapshot; optionally folds in store/queue state."""
        latency = {}
        for (kind, outcome), hist in sorted(self._hist.items()):
            stats = self._stats[(kind, outcome)]
            latency.setdefault(kind, {})[outcome] = {
                **hist.to_dict(),
                "stdev_s": round(stats.stdev, 6),
            }
        out: Dict = {
            "uptime_s": round(time.monotonic() - self.started_monotonic, 3),
            "cache": {
                "hits": self.hits,
                "misses": self.misses,
                "coalesced": self.coalesced,
            },
            "jobs": {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "bad_requests": self.bad_requests,
            },
            "engine": {
                "eventq": self.eventq,
                "mode": self.engine,
                "transport": self.transport,
                "events": self.sim_events,
                "events_per_s": (
                    round(self.sim_events / self.sim_wall_s, 1)
                    if self.sim_wall_s > 0 else 0.0
                ),
            },
            "latency": latency,
        }
        if store is not None:
            out["store"] = {
                "objects": len(store),
                "total_bytes": store.total_bytes,
                "max_bytes": store.max_bytes,
                "evictions": store.evictions,
                "corruptions": getattr(store, "corruptions", 0),
                "quarantined": getattr(store, "quarantined", 0),
                "healed": getattr(store, "healed", 0),
            }
        if queue is not None:
            out["queue"] = queue.gauges()
        return out
