"""ASCII rendering of reproduced tables and figure series.

The harness prints, for every experiment, the same rows/series the
paper reports, side by side with the paper's values where the paper
printed any (Tables 1–2) and against the recorded textual claims for
the figures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..util.units import fmt_bytes


def _fmt_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(c.rjust(w) for c, w in zip(cells, widths))


def render_table(
    title: str,
    sizes: Sequence[int],
    measured: Dict[str, Sequence[float]],
    paper: Optional[Dict[str, Sequence[float]]] = None,
    unit: str = "us RTT",
) -> str:
    """One pingpong-style table: stacks x sizes, ours vs paper's."""
    lines = [title, "=" * len(title)]
    header = ["stack"] + [fmt_bytes(s) for s in sizes]
    rows: List[List[str]] = []
    for stack, vals in measured.items():
        rows.append([f"{stack} (ours)"] + [f"{v:.2f}" for v in vals])
        if paper and stack in paper:
            rows.append([f"{stack} (paper)"] + [f"{v:.2f}" for v in paper[stack]])
    widths = [max(len(r[i]) for r in [header] + rows) for i in range(len(header))]
    lines.append(_fmt_row(header, widths))
    lines.append(_fmt_row(["-" * w for w in widths], widths))
    for r in rows:
        lines.append(_fmt_row(r, widths))
    lines.append(f"(unit: {unit})")
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence,
    series: Dict[str, Sequence[float]],
    unit: str,
    claim: Optional[str] = None,
) -> str:
    """One figure-style series table: PE counts x variants."""
    lines = [title, "=" * len(title)]
    if claim:
        lines.append(f"paper claim: {claim}")
    header = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        rows.append([str(x)] + [f"{series[k][i]:.3f}" for k in series])
    widths = [max(len(r[j]) for r in [header] + rows) for j in range(len(header))]
    lines.append(_fmt_row(header, widths))
    lines.append(_fmt_row(["-" * w for w in widths], widths))
    for r in rows:
        lines.append(_fmt_row(r, widths))
    lines.append(f"(unit: {unit})")
    return "\n".join(lines)


def relative_error(measured: Sequence[float], paper: Sequence[float]) -> List[float]:
    """Signed relative error of each measured point vs the paper's."""
    return [(m - p) / p for m, p in zip(measured, paper)]


def max_abs_relative_error(measured: Sequence[float], paper: Sequence[float]) -> float:
    """Largest |relative error| across a series."""
    return max(abs(e) for e in relative_error(measured, paper))
