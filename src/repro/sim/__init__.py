"""Discrete-event simulation core.

Public surface:

* :class:`Simulator` — the event loop and clock.
* :class:`Event` — a cancellable scheduled callback.
* :class:`Entity` — base class for things living in simulated time.
* :class:`Trace`, :class:`RunningStats` — statistics collection.
* :mod:`repro.sim.rng` — deterministic random streams.
"""

from .engine import SimulationError, Simulator
from .entity import Entity
from .event import Event
from .rng import DEFAULT_SEED, make_rng, split_seeds, substream
from .trace import RunningStats, Sample, Trace

__all__ = [
    "Simulator",
    "SimulationError",
    "Event",
    "Entity",
    "Trace",
    "RunningStats",
    "Sample",
    "make_rng",
    "substream",
    "split_seeds",
    "DEFAULT_SEED",
]
