"""Projections-style timeline tracing and profiling.

Charm++ ships Projections, a post-mortem timeline/utilization profiler;
the paper's overhead arguments (scheduler dequeue cost, poll-sweep cost
proportional to queue occupancy, rendezvous round trips) are exactly
the quantities a timeline view makes visible.  This package is the
equivalent observability layer for the simulated stack:

* :mod:`repro.projections.events` / :mod:`~repro.projections.eventlog`
  — typed span/instant records with causal links, collected by hooks
  threaded through the scheduler, runtime, CkDirect, and fabric
  layers.  Near-zero cost when disabled (one ``is None`` branch per
  hook site).
* :mod:`repro.projections.analysis` — per-PE utilization profiles,
  per-category overhead attribution, time-binned histograms, and a
  critical-path estimate over the message-causality graph.
* :mod:`repro.projections.export` — Chrome trace-event JSON (open in
  Perfetto / ``chrome://tracing``; one track per PE) and terminal
  utilization tables.
* :mod:`repro.projections.profile` — the ``repro profile`` artifact:
  run any app under tracing and report the top overhead categories,
  reconciled against the aggregate :class:`~repro.sim.trace.Trace`
  counters.  (Imported on demand — it pulls in the app drivers.)

Quickstart::

    from repro.projections import tracing, write_chrome_trace
    with tracing() as log:
        ckdirect_pingpong(ABE, 30_000, iterations=100)
    write_chrome_trace(log, "pingpong.trace.json")
"""

from .analysis import (
    binned_profile,
    category_totals,
    critical_path,
    critical_path_summary,
    name_totals,
    spans_by_track,
    utilization_profile,
)
from .events import (
    BUSY_CATEGORIES,
    CAT_CKDIRECT,
    CAT_ENTRY,
    CAT_IDLE,
    CAT_MPI,
    CAT_MSG,
    CAT_NET,
    CAT_RTS,
    CAT_SCHED,
    HOST_TRACK,
    NET_TRACK,
    ProjectionsError,
    TraceEvent,
)
from .eventlog import (
    EventLog,
    current_tracer,
    install_tracer,
    tracing,
    uninstall_tracer,
)
from .export import chrome_trace, render_utilization, write_chrome_trace

__all__ = [
    "EventLog",
    "TraceEvent",
    "ProjectionsError",
    "install_tracer",
    "uninstall_tracer",
    "current_tracer",
    "tracing",
    "chrome_trace",
    "write_chrome_trace",
    "render_utilization",
    "spans_by_track",
    "utilization_profile",
    "category_totals",
    "name_totals",
    "binned_profile",
    "critical_path",
    "critical_path_summary",
    "CAT_ENTRY",
    "CAT_RTS",
    "CAT_SCHED",
    "CAT_CKDIRECT",
    "CAT_IDLE",
    "CAT_MPI",
    "CAT_MSG",
    "CAT_NET",
    "BUSY_CATEGORIES",
    "HOST_TRACK",
    "NET_TRACK",
]
