"""Small statistics helpers shared by the bench harness and tests."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def percent_improvement(baseline: float, improved: float) -> float:
    """Percentage by which ``improved`` beats ``baseline`` (positive = better)."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (baseline - improved) / baseline


def speedup(baseline: float, improved: float) -> float:
    """baseline/improved ratio (>1 means improved is faster)."""
    if improved <= 0:
        raise ValueError("improved time must be positive")
    return baseline / improved


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def monotone_increasing(values: Sequence[float], slack: float = 0.0) -> bool:
    """True when each value is >= its predecessor minus ``slack``.

    Used by shape assertions where measured trends are expected to rise
    but small wobbles (a few percent) are tolerated.
    """
    vals = list(values)
    return all(b >= a - slack for a, b in zip(vals, vals[1:]))


def within_factor(measured: float, reference: float, factor: float) -> bool:
    """True when measured is within a multiplicative band of reference."""
    if reference <= 0 or measured <= 0:
        raise ValueError("values must be positive")
    ratio = measured / reference
    return 1.0 / factor <= ratio <= factor


class LatencyHistogram:
    """Fixed log2-bucketed latency histogram (seconds).

    Buckets double from ``base`` upward (``<=base``, ``<=2*base``, ...,
    ``+Inf``), Prometheus-style cumulative-free counts plus running
    count/sum so callers can report both a distribution and a mean.
    Used by the serve layer's ``/metrics`` endpoint; kept dependency-
    free and O(1) per observation.
    """

    def __init__(self, base: float = 0.001, buckets: int = 16) -> None:
        if base <= 0 or buckets < 1:
            raise ValueError("base must be > 0 and buckets >= 1")
        self.bounds = [base * (2.0 ** i) for i in range(buckets)]
        self.counts = [0] * (buckets + 1)  # +1 for the +Inf overflow
        self.count = 0
        self.sum_s = 0.0
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency sample (negative values clamp to 0)."""
        s = max(0.0, float(seconds))
        self.count += 1
        self.sum_s += s
        if s > self.max_s:
            self.max_s = s
        for i, bound in enumerate(self.bounds):
            if s <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean_s(self) -> float:
        """Mean observed latency in seconds (0 when empty)."""
        return self.sum_s / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """JSON-ready summary: count, sum, mean, max, bucket counts."""
        buckets = {f"le_{b:g}s": c for b, c in zip(self.bounds, self.counts)}
        buckets["le_inf"] = self.counts[-1]
        return {
            "count": self.count,
            "sum_s": round(self.sum_s, 6),
            "mean_s": round(self.mean_s, 6),
            "max_s": round(self.max_s, 6),
            "buckets": buckets,
        }
