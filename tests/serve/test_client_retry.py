"""ServeClient submit retries: 429 backoff budget, transient errors.

No live server: a scripted ``_request`` replays canned responses, and
the sleep seam records what the client would have waited.
"""

import http.client
import json
import random

import pytest

from repro.serve.cli import submit_main
from repro.serve.client import Backpressure, ServeClient, ServeClientError

OK = (202, {}, json.dumps(
    {"job": "j000001", "digest": "ab" * 32, "status": "queued"}
).encode())
BUSY = (429, {"Retry-After": "2"}, json.dumps({"error": "queue full"}).encode())


class ScriptedClient(ServeClient):
    """Replays a script of responses (tuples) or exceptions."""

    def __init__(self, script, **kw):
        kw.setdefault("rng", random.Random(7))
        super().__init__("127.0.0.1", 0, **kw)
        self.script = list(script)
        self.attempts = 0
        self.sleeps = []
        self._sleep = self.sleeps.append

    def _request(self, method, path, body=None):
        self.attempts += 1
        step = self.script.pop(0)
        if isinstance(step, Exception):
            raise step
        return step


SPEC = {"kind": "x", "machine": "Abe", "mode": "m", "n_pes": 1, "params": {}}


def test_zero_retries_fails_fast():
    c = ScriptedClient([BUSY], retries=0)
    with pytest.raises(Backpressure) as exc:
        c.submit(SPEC)
    assert c.attempts == 1 and c.sleeps == []
    assert exc.value.retry_after == 2.0


def test_retries_through_429_then_succeeds():
    c = ScriptedClient([BUSY, BUSY, OK], retries=3)
    job = c.submit(SPEC)
    assert job["job"] == "j000001"
    assert c.attempts == 3
    assert len(c.sleeps) == 2


def test_budget_semantics_total_attempts_is_retries_plus_one():
    c = ScriptedClient([BUSY] * 10, retries=3)
    with pytest.raises(Backpressure):
        c.submit(SPEC)
    assert c.attempts == 4  # 1 + 3 retries
    assert len(c.sleeps) == 3


def test_backoff_honors_retry_after_with_cap_and_jitter():
    c = ScriptedClient([], retries=3, backoff_base=0.1, backoff_cap=30.0,
                       rng=random.Random(1))
    # Server hint dominates while above the exponential floor ...
    for attempt in (1, 2, 3):
        s = c._backoff(attempt, retry_after=2.0)
        assert 1.0 <= s <= 3.0  # 2.0 * (0.5 + U[0,1))
    # ... the exponential floor dominates a tiny hint ...
    s = c._backoff(6, retry_after=0.0)  # 0.1 * 2^5 = 3.2
    assert 1.6 <= s <= 4.8
    # ... and the cap bounds everything.
    s = c._backoff(20, retry_after=1e6)
    assert s <= 30.0 * 1.5


def test_transient_connection_error_retried_once():
    c = ScriptedClient([ConnectionResetError("boom"), OK], retries=0)
    assert c.submit(SPEC)["job"] == "j000001"
    assert c.attempts == 2


def test_transient_http_exception_retried_once():
    c = ScriptedClient(
        [http.client.BadStatusLine("garbage"), OK], retries=0)
    assert c.submit(SPEC)["job"] == "j000001"
    assert c.attempts == 2


def test_second_transient_error_escapes():
    c = ScriptedClient(
        [ConnectionResetError("a"), ConnectionResetError("b")], retries=3)
    with pytest.raises(ConnectionError):
        c.submit(SPEC)
    assert c.attempts == 2


def test_non_2xx_is_not_retried():
    c = ScriptedClient([(400, {}, b'{"error": "bad"}'), OK], retries=3)
    with pytest.raises(ServeClientError):
        c.submit(SPEC)
    assert c.attempts == 1


def test_ctor_rejects_negative_retries():
    with pytest.raises(ValueError, match="retries"):
        ServeClient("h", 1, retries=-1)


# ---------------------------------------------------------------------------
# repro submit --retries passthrough
# ---------------------------------------------------------------------------


def test_submit_main_passes_retries(monkeypatch, capsys):
    captured = {}

    class FakeClient(ServeClient):
        def __init__(self, host, port, timeout=60.0, retries=0, **kw):
            super().__init__(host, port, timeout=timeout,
                             retries=retries, **kw)
            captured["retries"] = retries

        def submit(self, specs):
            raise Backpressure({"error": "queue full"}, 2.0)

    import repro.serve.client as client_mod
    monkeypatch.setattr(client_mod, "ServeClient", FakeClient)
    rc = submit_main(["--kind", "stencil", "--machine", "Abe", "--retries", "5"])
    assert rc == 3
    assert captured["retries"] == 5
    assert "after 6 attempts" in capsys.readouterr().err


def test_submit_main_rejects_negative_retries(capsys):
    rc = submit_main(["--kind", "stencil", "--machine", "Abe", "--retries", "-2"])
    assert rc == 2
    assert "--retries" in capsys.readouterr().err
