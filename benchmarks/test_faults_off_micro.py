"""Microbenchmark: cost of the faults-disabled CkDirect put path.

The reliability layer must be free when it is off: a runtime built
without a fault plan takes one ``rt.reliability is not None`` branch
per cross-PE put, and nothing else changed on the hot path (the
injector wraps fabric methods per *instance*, so an unfaulted fabric
keeps its original bound methods).  This benchmark pins that claim
against a verbatim replica of ``put`` as it stood before the
reliability layer existed, over a put/ready channel workload, and
asserts the issue's acceptance bar: **< 3% µs/event overhead**.
Measured on the CI container the difference is noise (±1%).
"""

from __future__ import annotations

import time

import numpy as np

from conftest import save_report
from repro import ABE, Buffer, Chare, Runtime
from repro import ckdirect as ckd
from repro.charm import CustomMap
from repro.charm.errors import ChannelStateError, CkDirectError
from repro.ckdirect import api as ckapi
from repro.ckdirect.handle import ChannelState

ROUNDS = 7    # best-of, interleaved, to shed scheduler noise
ITERS = 250   # put/ready cycles per round
CHANNELS = 8  # concurrent channels between the two endpoints
NELEMS = 64   # doubles per channel buffer

CROSS = CustomMap(lambda idx, dims, n: 0 if idx[0] == 0 else n - 1)


# ---------------------------------------------------------------------------
# Pre-reliability put replica (the seed's dispatch tail, verbatim
# semantics: same checks, same charges, no reliability branch)
# ---------------------------------------------------------------------------


def _legacy_put(handle, issue_cost=None):
    rt = handle.rt
    pe = rt.current_pe
    if handle.src_pe is None or handle.src_buffer is None:
        raise CkDirectError(f"{handle.name}: put before assoc_local")
    if pe is None:
        raise CkDirectError(f"{handle.name}: put outside a chare context")
    if pe is not handle.src_pe:
        raise CkDirectError(f"{handle.name}: put from the wrong PE")
    legal = ckapi._PUTTABLE_BGP if ckapi._is_bgp(rt) else ckapi._PUTTABLE_IB
    if handle.state not in legal:
        raise ChannelStateError(f"{handle.name}: put while {handle.state}")
    if handle.state is ChannelState.CONSUMED:
        handle.stamp_sentinel()
    handle.state = ChannelState.IN_FLIGHT
    nbytes = handle.recv_buffer.nbytes
    pe.charge(rt.machine.ckdirect.put_issue if issue_cost is None else issue_cost)
    if rt.tracer is not None:
        raise AssertionError("benchmark runs untraced")
    rt.trace.count("ckdirect.puts")
    rt.trace.count("ckdirect.put_bytes", nbytes)
    src_rank, dst_rank = pe.rank, handle.recv_pe.rank
    if src_rank == dst_rank:
        delay = rt.machine.net.shm_alpha + nbytes * rt.machine.net.shm_beta
        rt.sim.at(pe.cursor + delay, ckapi._complete, handle)
    else:
        rt.fabric.direct_put(
            src_rank, dst_rank, nbytes, pe.cursor,
            lambda: ckapi._complete(handle)
        )


# ---------------------------------------------------------------------------
# Workload: CHANNELS cross-node channels cycling put -> ready
# ---------------------------------------------------------------------------


class Pair(Chare):
    put_fn = staticmethod(ckd.put)

    def __init__(self):
        self.arrs = [np.zeros(NELEMS) for _ in range(CHANNELS)]
        self.bufs = [Buffer(array=a) for a in self.arrs]
        self.send_arr = np.arange(1.0, NELEMS + 1)
        self.send_buf = Buffer(array=self.send_arr)

    def on_data(self, _cbdata):
        pass

    def do_put_all(self, handles):
        fn = type(self).put_fn
        for h in handles:
            fn(h)

    def do_ready_all(self, handles):
        for h in handles:
            ckd.ready(h)


def _build(put_fn):
    Pair.put_fn = staticmethod(put_fn)
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)  # cross-node channel
    arr = rt.create_array(Pair, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handles = []
    for i in range(CHANNELS):
        h = ckd.create_handle(recv, recv.bufs[i], -1.0, recv.on_data)
        ckd.assoc_local(send, h, send.send_buf)
        handles.append(h)
    return rt, arr, handles


def _us_per_event(put_fn) -> float:
    rt, arr, handles = _build(put_fn)
    proxy = arr.proxy
    t0 = time.perf_counter()
    for _ in range(ITERS):
        proxy[1].do_put_all(handles)
        rt.run()
        proxy[0].do_ready_all(handles)
        rt.run()
    dt = time.perf_counter() - t0
    return dt / rt.sim.events_processed * 1e6


def test_disabled_faults_cost_under_three_percent():
    best_legacy = best_new = float("inf")
    for _ in range(ROUNDS):  # interleaved so drift hits both equally
        best_legacy = min(best_legacy, _us_per_event(_legacy_put))
        best_new = min(best_new, _us_per_event(ckd.put))
    overhead = (best_new - best_legacy) / best_legacy * 100.0
    report = "\n".join([
        "Faults-off microbench: us per event (best of %d rounds)" % ROUNDS,
        "=" * 54,
        f"pre-reliability put replica : {best_legacy:.3f} us/event",
        f"current put (faults off)    : {best_new:.3f} us/event",
        f"disabled-path overhead      : {overhead:+.2f}%",
    ])
    save_report("faults_off_micro", report)
    assert overhead < 3.0, (
        f"faults-disabled put path regressed: {overhead:+.2f}% "
        f"({best_legacy:.3f} -> {best_new:.3f} us/event)"
    )


def test_both_put_paths_agree():
    """The replica and the real put drive identical simulations (the
    benchmark compares like for like)."""
    events = []
    for fn in (ckd.put, _legacy_put):
        rt, arr, handles = _build(fn)
        for _ in range(3):
            arr.proxy[1].do_put_all(handles)
            rt.run()
            arr.proxy[0].do_ready_all(handles)
            rt.run()
        # the final ready re-armed the channels, re-stamping the
        # sentinel into each trailing word
        assert all(np.array_equal(a[:-1], arr.element(1).send_arr[:-1])
                   for a in arr.element(0).arrs)
        events.append((rt.sim.events_processed, rt.sim.now))
    assert events[0] == events[1]
