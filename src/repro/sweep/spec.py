"""Picklable sweep-point descriptions and results.

A *sweep* is a set of independent simulation runs — one per
``(kind, machine, mode, n_pes, params)`` point — whose results are
assembled into one table or figure.  :class:`RunSpec` describes one
point in a form that

* **pickles** cheaply (strings/ints/tuples only, no ``MachineParams``
  or runtime objects), so it can cross a process boundary to a worker;
* **hashes and orders** deterministically (:attr:`RunSpec.key`), so
  sweep results are always merged by spec key, never by completion
  order — the invariant that makes ``--jobs N`` output byte-identical
  to a serial run.

:class:`RunResult` is the worker's reply: plain values plus error /
timing / trace payloads.  A failed point carries its traceback in
``error``; :meth:`RunResult.unwrap` re-raises it in the parent.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from ..network.params import MACHINES, MachineParams

#: Engine-schema version folded into every :meth:`RunSpec.digest`.
#:
#: The content-addressed result cache assumes *identical spec ⇒
#: identical result bytes*.  That holds across ``--jobs`` / ``--shards``
#: / ``--eventq`` (all three are wall-clock knobs — every event-queue
#: implementation pops the same ``(time, priority, seq)`` total order,
#: proven by the eventq property suite, so swapping queues cannot
#: change bytes and does NOT bump this constant) but NOT across engine
#: changes: any PR that alters simulated timings, event ordering,
#: point values, or the canonical result payload must bump this
#: constant, which changes every digest and cleanly invalidates all
#: previously cached results.
ENGINE_SCHEMA = 1


class SweepError(RuntimeError):
    """Raised for sweep misuse or failed sweep points."""


def _canon(obj: Any) -> Any:
    """Normalize a value for canonical JSON encoding.

    Dicts must have string keys; tuples become lists; numpy scalars
    collapse to their exact Python ``int``/``float``/``bool`` values.
    Anything else (objects, sets, NaN later via ``allow_nan=False``)
    is rejected — a digest over unstable input is worse than an error.
    """
    if isinstance(obj, dict):
        out = {}
        for k, v in obj.items():
            if not isinstance(k, str):
                raise SweepError(
                    f"canonical encoding requires string keys, got {k!r}"
                )
            out[k] = _canon(v)
        return out
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    if isinstance(obj, bool) or obj is None:
        return obj
    if isinstance(obj, str):
        return obj
    if isinstance(obj, int):
        return int(obj)
    if isinstance(obj, float):
        return float(obj)
    # numpy scalars (np.int64, np.float64, np.bool_) expose item();
    # checked lazily so this module stays importable without numpy.
    item = getattr(obj, "item", None)
    if callable(item):
        got = item()
        if isinstance(got, (bool, int, float, str)):
            return _canon(got)
    raise SweepError(
        f"value {obj!r} of type {type(obj).__name__} cannot be "
        "canonically encoded (use plain ints/floats/strings/lists/dicts)"
    )


def canonical_json(obj: Any) -> str:
    """Canonical JSON: sorted keys, minimal separators, ASCII, no NaN.

    Two structurally equal inputs (regardless of dict insertion order
    or tuple-vs-list) always produce the same string — the property
    both :meth:`RunSpec.digest` and the serve layer's cached result
    payloads rest on.
    """
    return json.dumps(
        _canon(obj),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def canonical_bytes(obj: Any) -> bytes:
    """:func:`canonical_json` encoded as UTF-8 bytes."""
    return canonical_json(obj).encode("utf-8")


@dataclass(frozen=True, order=True)
class RunSpec:
    """One independent point of a sweep.

    ``params`` is a sorted tuple of ``(key, value)`` pairs so the spec
    stays hashable, comparable, and picklable; build specs with
    :meth:`make` to get the normalization for free.
    """

    kind: str        # registered point-function name (see sweep.points)
    machine: str     # machine preset name (a MACHINES key)
    mode: str        # stack / app variant ("msg", "ckd", "charm", ...)
    n_pes: int       # PE count (0 where the point fixes it itself)
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls, kind: str, machine: str, mode: str = "", n_pes: int = 0, **params: Any
    ) -> "RunSpec":
        """Build a spec, normalizing keyword params into sorted pairs."""
        return cls(kind, machine, mode, n_pes, tuple(sorted(params.items())))

    @property
    def kwargs(self) -> Dict[str, Any]:
        """The params as a keyword dict."""
        return dict(self.params)

    @property
    def key(self) -> tuple:
        """The deterministic merge key (the full identifying tuple)."""
        return (self.kind, self.machine, self.mode, self.n_pes, self.params)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (the serve API's wire representation)."""
        return {
            "kind": self.kind,
            "machine": self.machine,
            "mode": self.mode,
            "n_pes": self.n_pes,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RunSpec":
        """Parse the wire form back into a normalized spec.

        Validates shape strictly (the serve layer feeds this untrusted
        request bodies); unknown keys, non-string identifiers, and
        non-dict params are all rejected with :class:`SweepError`.
        """
        if not isinstance(d, dict):
            raise SweepError(f"spec must be an object, got {type(d).__name__}")
        unknown = set(d) - {"kind", "machine", "mode", "n_pes", "params"}
        if unknown:
            raise SweepError(f"unknown spec fields: {sorted(unknown)}")
        kind = d.get("kind")
        machine = d.get("machine")
        if not isinstance(kind, str) or not kind:
            raise SweepError("spec requires a non-empty string 'kind'")
        if not isinstance(machine, str) or not machine:
            raise SweepError("spec requires a non-empty string 'machine'")
        mode = d.get("mode", "")
        if not isinstance(mode, str):
            raise SweepError("spec 'mode' must be a string")
        n_pes = d.get("n_pes", 0)
        if isinstance(n_pes, bool) or not isinstance(n_pes, int) or n_pes < 0:
            raise SweepError("spec 'n_pes' must be a non-negative integer")
        params = d.get("params", {})
        if not isinstance(params, dict):
            raise SweepError("spec 'params' must be an object")
        return cls.make(kind, machine, mode, n_pes, **params)

    def digest(self) -> str:
        """Stable content address of this point's *result*.

        The digest hashes the canonical JSON of the spec fields plus
        :data:`ENGINE_SCHEMA`.  It is therefore

        * independent of ``params`` insertion order (params are sorted
          both by :meth:`make` and by canonical encoding),
        * independent of ``--jobs`` / ``--shards`` / env knobs (none of
          those are spec fields — they are wall-clock knobs that the
          sweep determinism guarantee proves do not change result
          bytes), and
        * versioned: bumping :data:`ENGINE_SCHEMA` changes every
          digest, so a cache can never serve results computed by an
          older engine.
        """
        payload = canonical_json({"schema": ENGINE_SCHEMA, "spec": self.to_dict()})
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Compact human-readable form for progress/error messages."""
        parts = [self.kind, self.machine]
        if self.mode:
            parts.append(self.mode)
        if self.n_pes:
            parts.append(f"p{self.n_pes}")
        return "/".join(parts)

    def resolve_machine(self) -> MachineParams:
        """Reconstruct the MachineParams this point runs on.

        The preset is looked up by name; a ``cores_per_node`` param
        (see :func:`machine_overrides`) is applied on top — the only
        machine variation the paper's experiments use (Abe at 2
        cores/node for the OpenAtom runs).
        """
        try:
            machine = MACHINES[self.machine]
        except KeyError:
            raise SweepError(f"unknown machine preset {self.machine!r}") from None
        cpn = self.kwargs.get("cores_per_node")
        if cpn is not None and cpn != machine.cores_per_node:
            machine = dataclasses.replace(machine, cores_per_node=int(cpn))
        return machine


def machine_overrides(machine: MachineParams) -> Dict[str, Any]:
    """Express a MachineParams as spec params on top of its preset.

    Returns ``{}`` when ``machine`` *is* its preset, or
    ``{"cores_per_node": n}`` for the paper's cores-per-node variants.
    Anything else cannot cross a process boundary by name and is
    rejected.
    """
    base = MACHINES.get(machine.name)
    if base is None:
        raise SweepError(
            f"machine {machine.name!r} is not a registered preset; "
            "sweep specs carry machines by preset name"
        )
    if machine == base:
        return {}
    if dataclasses.replace(base, cores_per_node=machine.cores_per_node) == machine:
        return {"cores_per_node": machine.cores_per_node}
    raise SweepError(
        f"machine {machine.name!r} differs from its preset beyond "
        "cores_per_node and cannot be shipped to sweep workers"
    )


@dataclass
class RunResult:
    """Outcome of one sweep point (success or isolated failure)."""

    spec: RunSpec
    ok: bool
    values: Dict[str, Any] = field(default_factory=dict)
    error: str = ""
    wall_time: float = 0.0   # worker-side wall-clock seconds
    events: int = 0          # simulator events fired by the point
    #: per-point trace payload (parallel tracing runs only): serialized
    #: TraceEvent tuples + (label, n_pes) run registrations, merged
    #: into the parent's EventLog by the runner.
    trace_events: List[tuple] = field(default_factory=list)
    trace_runs: List[Tuple[str, int]] = field(default_factory=list)

    def unwrap(self) -> Dict[str, Any]:
        """The point's values, or raise the point's failure here."""
        if not self.ok:
            raise SweepError(
                f"sweep point {self.spec.label()} failed:\n{self.error}"
            )
        return self.values
