"""Scheduler queue and direct-delivery items.

The message-driven scheduler on each PE owns a FIFO
:class:`SchedulerQueue`.  Queue occupancy is tracked because it is a
first-order effect in the paper: finer-grained decompositions put more
messages in flight, raising queue occupancy and hence total scheduling
overhead — the overhead CkDirect bypasses.

:class:`DirectItem` models work delivered *around* the scheduler
queue: on Blue Gene/P the DCMF receive-completion callback invokes the
CkDirect user callback directly, paying the low-level handler cost but
no scheduling cost.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque

from .message import Message


class SchedulerQueue:
    """FIFO of pending messages with occupancy statistics."""

    __slots__ = ("_q", "enqueued", "max_occupancy", "occupancy_sum", "dequeues")

    def __init__(self) -> None:
        self._q: Deque[Message] = deque()
        self.enqueued = 0
        self.dequeues = 0
        self.max_occupancy = 0
        self.occupancy_sum = 0  # summed at dequeue: mean = sum/dequeues

    def push(self, msg: Message) -> None:
        """Append a message (FIFO) and update occupancy stats."""
        self._q.append(msg)
        self.enqueued += 1
        if len(self._q) > self.max_occupancy:
            self.max_occupancy = len(self._q)

    def pop(self) -> Message:
        """Remove and return the oldest message."""
        self.occupancy_sum += len(self._q)
        self.dequeues += 1
        return self._q.popleft()

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)

    @property
    def mean_occupancy(self) -> float:
        """Mean queue depth observed at dequeue times."""
        return self.occupancy_sum / self.dequeues if self.dequeues else 0.0


class DirectItem:
    """A completion delivered around the scheduler (BG/P CkDirect path).

    ``cost`` is charged on the PE before ``fn`` runs; ``fn`` executes
    in the PE's context and may itself charge further time or send.
    """

    __slots__ = ("cost", "fn", "trace_eid")

    def __init__(self, cost: float, fn: Callable[[], None]) -> None:
        self.cost = cost
        self.fn = fn
        #: causing timeline event (the put-completion instant) — None untraced.
        self.trace_eid = None
