"""3D-decomposition matrix multiplication (paper §4.2, Figure 3)."""

from .base import MATMUL_OOB, MatMulBase
from .decomp3d import (
    MatMulSpec,
    block_a,
    block_b,
    choose_side,
    global_a,
    global_b,
    slice_a,
    slice_b,
)
from .driver import (
    MODES,
    PAPER_N,
    MatMulResult,
    gather_c,
    matmul_pair,
    reference_c,
    run_matmul,
)
from .matmul_ckd import MatMulCkd
from .matmul_msg import MatMulMsg

__all__ = [
    "run_matmul",
    "matmul_pair",
    "gather_c",
    "reference_c",
    "MatMulResult",
    "MatMulSpec",
    "MatMulMsg",
    "MatMulCkd",
    "MatMulBase",
    "choose_side",
    "slice_a",
    "slice_b",
    "block_a",
    "block_b",
    "global_a",
    "global_b",
    "MATMUL_OOB",
    "MODES",
    "PAPER_N",
]
