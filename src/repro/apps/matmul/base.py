"""Shared chare machinery for the two matmul versions.

Per iteration every chare:

1. seeds its own slices into its assembled ``A[x,z]`` / ``B[z,y]``
   blocks (a local copy, charged identically in both versions) and
   sends each slice to the ``c-1`` peers that need it;
2. once all ``2(c-1)`` remote slices are in *and* its own sends are
   issued, runs the block DGEMM (``2 n^3`` flops at the machine's
   sustained rate);
3. ships the partial C block to its ``z = 0`` reduction root; roots
   accumulate ``c-1`` partials (the summation cost is charged equally
   in both versions — only the *placement* of arriving data differs);
4. everyone joins a global barrier, after which the next iteration
   begins.

The versions differ exactly where the paper says they do (§4.2): the
MSG version copies every received slice into the right location of the
assembled block (charged), while CkDirect lands it there directly and
skips the scheduler.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ...charm import Chare
from ...util.buffers import Buffer
from ..stencil.base import IterationMonitor  # same barrier/timing discipline
from .decomp3d import ITEMSIZE, MatMulSpec, slice_a, slice_b

#: Input data is uniform(0, 1); partial C entries are positive sums.
MATMUL_OOB = -1.0


class MatMulBase(Chare):
    """Common state for MatMulMsg / MatMulCkd."""

    def __init__(
        self,
        spec: MatMulSpec,
        iterations: int,
        validate: bool,
        seed: int,
        monitor: IterationMonitor,
    ) -> None:
        self.spec = spec
        self.iterations = iterations
        self.validate = validate
        self.seed = seed
        self.monitor = monitor
        self.it = 0
        x, y, z = self.thisIndex
        self.is_root = z == 0

        n, sr, c = spec.n, spec.slice_rows, spec.c
        if validate:
            self.A = np.zeros((n, n))
            self.B = np.zeros((n, n))
            # Persistent partial-C buffer: CkDirect registers it once,
            # so the DGEMM writes into it in place every iteration.
            self.Cpart: Optional[np.ndarray] = np.zeros((n, n))
            self.my_a = slice_a(spec, self.thisIndex, seed)
            self.my_b = slice_b(spec, self.thisIndex, seed)
            # z=0 roots collect c-1 remote partials in slots + their own
            self.c_slots = (
                np.zeros((c - 1, n, n)) if self.is_root else None
            )
            self.C: Optional[np.ndarray] = None
        else:
            self.A = self.B = self.Cpart = self.c_slots = self.C = None
            self.my_a = self.my_b = None

        self.got_slices = 0
        self.got_cparts = 0
        self.sent_this_iter = False
        self.dgemm_done = False

    # ------------------------------------------------------------------
    # Views into the assembled blocks (where arriving slices belong)
    # ------------------------------------------------------------------

    def a_dest(self, from_y: int) -> Buffer:
        """Where the A-slice owned by grid row ``from_y`` lands."""
        sr = self.spec.slice_rows
        if self.validate:
            return Buffer(array=self.A[:, from_y * sr:(from_y + 1) * sr])
        return Buffer(nbytes=self.spec.a_slice_bytes)

    def b_dest(self, from_x: int) -> Buffer:
        """Where the B-slice owned by grid row from_x lands."""
        sr = self.spec.slice_rows
        if self.validate:
            return Buffer(array=self.B[from_x * sr:(from_x + 1) * sr, :])
        return Buffer(nbytes=self.spec.b_slice_bytes)

    def c_slot(self, from_z: int) -> Buffer:
        """Root-side landing slot for the partial C from layer ``from_z``."""
        assert self.is_root and from_z >= 1
        if self.validate:
            return Buffer(array=self.c_slots[from_z - 1])
        return Buffer(nbytes=self.spec.c_block_bytes)

    # ------------------------------------------------------------------
    # Iteration pieces
    # ------------------------------------------------------------------

    def _seed_own_slices(self) -> None:
        """Copy my own slices into my assembled blocks (both versions)."""
        x, y, z = self.thisIndex
        sr = self.spec.slice_rows
        if self.validate:
            self.A[:, y * sr:(y + 1) * sr] = self.my_a
            self.B[x * sr:(x + 1) * sr, :] = self.my_b
        self.charge_pack(self.spec.a_slice_bytes)
        self.charge_pack(self.spec.b_slice_bytes)

    def _expected_slices(self) -> int:
        return 2 * (self.spec.c - 1)

    def _dgemm_ready(self) -> bool:
        return (
            self.sent_this_iter
            and not self.dgemm_done
            and self.got_slices == self._expected_slices()
        )

    def _maybe_dgemm(self) -> None:
        if self._dgemm_ready():
            self._run_dgemm()

    def _run_dgemm(self) -> None:
        self.dgemm_done = True
        self.charge(
            self.spec.dgemm_flops / self.rt.machine.compute.dgemm_flops_per_sec
        )
        if self.validate:
            np.matmul(self.A, self.B, out=self.Cpart)
        self._after_dgemm()

    def _after_dgemm(self) -> None:
        """Version hook: ship the partial C toward the reduction root."""
        raise NotImplementedError

    def _accumulate_cost(self) -> None:
        """Summing c-1 partials into C: one read-add-write sweep per
        partial, memory-bound like a copy — charged equally in both
        versions."""
        extra = (self.spec.c - 1) * self.spec.c_block_bytes
        self.charge_pack(extra)

    def _finish_root(self) -> None:
        self._accumulate_cost()
        if self.validate:
            self.C = self.Cpart + self.c_slots.sum(axis=0)
        self._close_iteration()

    def _close_iteration(self) -> None:
        self.it += 1
        self.got_slices = 0
        self.got_cparts = 0
        self.sent_this_iter = False
        self.dgemm_done = False
        self._post_iteration()
        self.contribute(callback=self.monitor.callback())

    def _post_iteration(self) -> None:
        """Version hook (CKD re-arms its channels here)."""

    def _root_ready(self) -> bool:
        return (
            self.is_root
            and self.dgemm_done
            and self.got_cparts == self.spec.c - 1
        )

    def _maybe_finish_root(self) -> None:
        if self._root_ready():
            self._finish_root()

    def shard_state(self) -> Optional[dict]:
        """Result state gather_c reads (sharded-engine reconciliation)."""
        if not self.validate:
            return None
        out = {"Cpart": self.Cpart}
        if self.is_root:
            out["C"] = self.C
            out["c_slots"] = self.c_slots
        return out
