"""Microbenchmark: DES hot-path cost per event, new engine vs legacy.

The simulator's ``run()`` loop is the constant factor every artifact
in this repo pays — tables, figures, and ablations are all millions of
``(pop, fire, schedule)`` cycles.  This benchmark pins the hot-path
optimization (tuple-keyed heap entries, the no-kwargs dispatch fast
path) against a faithful replica of the engine as it stood before:
``Event`` objects on the heap compared through ``Event.__lt__`` →
``sort_key()`` tuple allocation, and ``fn(*args, **kwargs)`` dispatch
with an always-allocated kwargs dict.

The workload is the simulator's real usage profile: a self-rescheduling
event chain (pingpong-style), a fan-out/fan-in burst (multicast-style),
and a fraction of cancelled timeouts (rendezvous-style).  The assertion
is the issue's acceptance bar: at least 15% lower µs/event.  Measured
on the CI container this lands far above the bar (~40-55%).
"""

from __future__ import annotations

import heapq
import time

from conftest import save_report
from repro.sim.engine import Simulator

ROUNDS = 5  # best-of to shed scheduler noise


# ---------------------------------------------------------------------------
# Legacy engine replica (the pre-optimization hot path, verbatim semantics)
# ---------------------------------------------------------------------------


class _LegacyEvent:
    __slots__ = ("time", "priority", "seq", "fn", "args", "kwargs", "_cancelled")

    def __init__(self, time, priority, seq, fn, args, kwargs):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.kwargs = kwargs or {}
        self._cancelled = False

    def sort_key(self):
        return (self.time, self.priority, self.seq)

    def __lt__(self, other):
        return self.sort_key() < other.sort_key()

    def cancel(self):
        self._cancelled = True

    def fire(self):
        if not self._cancelled:
            self.fn(*self.args, **self.kwargs)


class _LegacySimulator:
    def __init__(self):
        self._now = 0.0
        self._heap = []
        self._seq = 0
        self._events_processed = 0

    @property
    def now(self):
        return self._now

    @property
    def events_processed(self):
        return self._events_processed

    def schedule(self, delay, fn, *args, priority=0, **kwargs):
        return self.at(self._now + delay, fn, *args, priority=priority, **kwargs)

    def at(self, time, fn, *args, priority=0, **kwargs):
        ev = _LegacyEvent(time, priority, self._seq, fn, args, kwargs)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def run(self):
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev._cancelled:
                continue
            self._now = ev.time
            self._events_processed += 1
            ev.fire()


# ---------------------------------------------------------------------------
# Workload (engine-agnostic: both simulators expose schedule/at/cancel)
# ---------------------------------------------------------------------------

CHAIN_EVENTS = 60_000
FAN_BATCHES = 400
FAN_WIDTH = 64
CANCEL_EVERY = 8


def _workload(sim) -> int:
    """The usage profile the artifacts generate; returns events fired."""
    state = {"n": 0}

    def hop():
        state["n"] += 1
        if state["n"] < CHAIN_EVENTS:
            sim.schedule(1e-6, hop)

    def leaf():
        pass

    def burst(i):
        cancelled = []
        for k in range(FAN_WIDTH):
            ev = sim.schedule(1e-6 + k * 1e-9, leaf)
            if k % CANCEL_EVERY == 0:
                cancelled.append(ev)
        for ev in cancelled:  # rendezvous timeouts that did not fire
            ev.cancel()
        if i + 1 < FAN_BATCHES:
            sim.schedule(2e-6, burst, i + 1)

    sim.schedule(1e-6, hop)
    sim.schedule(1e-6, burst, 0)
    sim.run()
    return sim.events_processed


def _time_us_per_event(sim_factory) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        sim = sim_factory()
        t0 = time.perf_counter()
        fired = _workload(sim)
        dt = time.perf_counter() - t0
        best = min(best, dt / fired * 1e6)
    return best


def test_hot_path_speedup(benchmark):
    legacy_us = _time_us_per_event(_LegacySimulator)
    new_us = benchmark.pedantic(
        lambda: _time_us_per_event(Simulator), rounds=1, iterations=1
    )
    improvement = (legacy_us - new_us) / legacy_us * 100.0
    report = "\n".join([
        "Engine microbench: us per event (best of %d rounds)" % ROUNDS,
        "=" * 50,
        f"legacy object-heap engine : {legacy_us:.3f} us/event",
        f"tuple-heap engine         : {new_us:.3f} us/event",
        f"improvement               : {improvement:.1f}%",
    ])
    save_report("engine_micro", report)
    assert improvement >= 15.0, (
        f"hot-path optimization regressed: only {improvement:.1f}% "
        f"({legacy_us:.3f} -> {new_us:.3f} us/event)"
    )


def test_event_order_unchanged():
    """Both engines fire the identical event sequence (the optimization
    must be timing-only)."""
    def trace(sim):
        order = []
        def hop(tag):
            order.append((round(sim.now * 1e9), tag))
            if len(order) < 500:
                sim.schedule(1e-6, hop, len(order))
        cancelled = sim.schedule(5e-6, hop, "never")
        sim.schedule(1e-6, hop, "a")
        sim.schedule(1e-6, hop, "b", priority=-1)
        cancelled.cancel()
        sim.run()
        return order

    assert trace(Simulator()) == trace(_LegacySimulator())
