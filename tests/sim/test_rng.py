"""Unit tests for deterministic RNG streams."""

import numpy as np
import pytest

from repro.sim.rng import (
    DEFAULT_SEED,
    assert_all_distinct,
    deterministic_permutation,
    make_rng,
    split_seeds,
    substream,
)


def test_make_rng_reproducible():
    a = make_rng(42).random(10)
    b = make_rng(42).random(10)
    assert np.array_equal(a, b)


def test_make_rng_seed_sensitivity():
    a = make_rng(42).random(10)
    b = make_rng(43).random(10)
    assert not np.array_equal(a, b)


def test_substream_stable():
    a = substream(1, 3, 7).random(5)
    b = substream(1, 3, 7).random(5)
    assert np.array_equal(a, b)


def test_substream_path_sensitivity():
    a = substream(1, 3, 7).random(5)
    b = substream(1, 7, 3).random(5)
    c = substream(1, 3, 8).random(5)
    assert not np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_substream_independent_of_creation_order():
    first = substream(9, 0).random(4)
    _ = substream(9, 5).random(4)
    again = substream(9, 0).random(4)
    assert np.array_equal(first, again)


def test_deterministic_permutation():
    p1 = deterministic_permutation(100, seed=5)
    p2 = deterministic_permutation(100, seed=5)
    assert np.array_equal(p1, p2)
    assert sorted(p1) == list(range(100))


def test_split_seeds_distinct():
    seeds = split_seeds(DEFAULT_SEED, 64)
    assert len(seeds) == 64
    assert_all_distinct(seeds)


def test_assert_all_distinct_raises():
    with pytest.raises(ValueError):
        assert_all_distinct([1, 2, 1])
