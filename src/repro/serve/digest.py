"""Job digests and the canonical result payload.

A *job* is an ordered list of sweep points.  Its digest is the content
address of its result: a sha256 over the canonical JSON of the
per-spec digests (each already folding in
:data:`~repro.sweep.spec.ENGINE_SCHEMA`) plus the payload-format
version.  Two requests whose specs are structurally equal — regardless
of JSON key order, tuple-vs-list, or any ``--jobs``/``--shards`` knob —
therefore address the same cache entry, and an engine-schema bump
invalidates every old entry at once.

The *result payload* is what the store holds and the ``/result``
endpoint returns: canonical JSON over the per-point outcomes with all
nondeterministic fields (wall-clock, traces) stripped, so recomputing
a job always reproduces the payload byte for byte.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence

from ..sweep.spec import RunResult, RunSpec, SweepError, canonical_bytes, canonical_json

#: Version of the result-payload layout itself (independent of the
#: engine schema): bump when the JSON shape below changes.
PAYLOAD_VERSION = 1


def job_digest(specs: Sequence[RunSpec]) -> str:
    """Content address of a job's result payload.

    Spec order matters (the payload lists results in spec order), so
    it is part of the digest; everything else is canonicalized away.
    """
    if not specs:
        raise SweepError("a job needs at least one spec")
    doc = {
        "payload_version": PAYLOAD_VERSION,
        "specs": [s.digest() for s in specs],
    }
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


def result_payload(results: Sequence[RunResult]) -> bytes:
    """Serialize a job's results into the canonical cacheable bytes.

    Only deterministic fields are included: the spec, success flag,
    point values, and simulator event count.  Wall-clock timings and
    trace payloads vary run to run and are deliberately dropped —
    the cache contract is *recompute ⇒ identical bytes*.

    Failed results must not be cached (an error string can embed
    timeouts, pids, and tracebacks); callers enforce that, and this
    function refuses to encode them.
    """
    out: List[Dict] = []
    for r in results:
        if not r.ok:
            raise SweepError(
                f"refusing to build a cacheable payload from failed "
                f"point {r.spec.label()}: {r.error.strip().splitlines()[-1] if r.error else 'unknown error'}"
            )
        out.append({
            "spec": r.spec.to_dict(),
            "ok": True,
            "values": r.values,
            "events": r.events,
        })
    return canonical_bytes({"payload_version": PAYLOAD_VERSION, "results": out})
