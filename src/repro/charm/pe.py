"""Processing elements and the message-driven scheduler loop.

Each :class:`PE` models one core running the Charm++ scheduler.  One
*iteration* of the loop, in simulated time:

1. **Direct completions** (BG/P CkDirect): drain items delivered
   around the queue, charging the low-level handler + callback cost.
2. **Poll sweep** (Infiniband CkDirect): when the polling queue is
   non-empty, charge ``poll_base + poll_per_handle × occupancy``;
   any handle whose buffer has received data (its trailing double
   word no longer equals the out-of-band value) is removed, charged
   ``detect_overhead + callback_overhead``, and its user callback runs
   inline — *no scheduling overhead*, exactly the paper's point.
3. **One message**: dequeue, charge ``sched_overhead`` plus the
   receive-side costs (entry dispatch, RTS receive handler, the BG/P
   saturating receive copy), and run the entry method.

The loop keeps iterating while work remains; otherwise the PE goes
idle and is *kicked* by the next delivery.  All costs accumulate on a
local cursor so that sends issued mid-entry start at the correct
simulated instant, and a busy PE never begins new work before its
cursor (``busy_until``).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Optional

from ..projections.events import (
    CAT_CKDIRECT,
    CAT_ENTRY,
    CAT_IDLE,
    CAT_MSG,
    CAT_RTS,
    CAT_SCHED,
)
from ..sim import Entity
from .errors import ContextError
from .message import Message
from .scheduler import DirectItem, SchedulerQueue

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Runtime


class PE(Entity):
    """One simulated core with a message-driven scheduler."""

    def __init__(self, rt: "Runtime", rank: int) -> None:
        super().__init__(rt.sim, name=f"pe{rank}")
        self.rt = rt
        self.rank = rank
        self.queue = SchedulerQueue()
        #: RTS-internal messages (reduction partials, broadcast tree
        #: stages) run at high priority, as in the real runtime —
        #: otherwise a collective release staircases behind long
        #: application entries on intermediate tree PEs.
        self.internal_queue = SchedulerQueue()
        self.direct_q: Deque[DirectItem] = deque()
        #: CkDirect polling queue: insertion-ordered handles (IB path).
        self.pollq: Dict[int, object] = {}
        self.busy_until = 0.0
        self.busy_time = 0.0  # total occupied simulated time
        self._loop_scheduled = False
        self._executing = False
        self._cursor = 0.0

    # ------------------------------------------------------------------
    # Time accounting
    # ------------------------------------------------------------------

    @property
    def cursor(self) -> float:
        """The PE's local clock while executing (== busy frontier)."""
        return self._cursor if self._executing else max(self.now, self.busy_until)

    def charge(self, seconds: float) -> None:
        """Consume ``seconds`` of this PE's time (compute or sw cost)."""
        if seconds < 0:
            raise ContextError(f"negative charge: {seconds!r}")
        if not self._executing:
            raise ContextError("charge() outside of an execution context")
        self._cursor += seconds

    # ------------------------------------------------------------------
    # Delivery interfaces (called by the runtime / fabric callbacks)
    # ------------------------------------------------------------------

    def enqueue(self, msg: Message) -> None:
        """Deliver a message into this PE's queue (internal or app)."""
        if msg.is_internal:
            self.internal_queue.push(msg)
        else:
            self.queue.push(msg)
        tr = self.rt.tracer
        if tr is not None:
            msg.trace_eid = tr.instant(
                self.rt._trace_run, self.rank, CAT_MSG,
                f"enqueue:{msg.method}", self.now, cause=msg.trace_eid,
                args={"msg": msg.id, "bytes": msg.nbytes},
            )
        self.kick()

    def push_direct(self, item: DirectItem) -> None:
        """Deliver a scheduler-bypassing completion item."""
        self.direct_q.append(item)
        self.kick()

    def poll_register(self, handle) -> None:
        """Insert a CkDirect handle into the polling queue."""
        self.pollq[handle.hid] = handle
        if handle.arrived:  # data landed before the handle was re-armed
            self.kick()

    def poll_remove(self, handle) -> None:
        """Remove a handle from the polling queue (idempotent)."""
        self.pollq.pop(handle.hid, None)

    def notify_arrival(self) -> None:
        """A put completed into one of this PE's buffers; wake to poll."""
        self.kick()

    # ------------------------------------------------------------------
    # Time Warp checkpoint/restore (see repro.sim.timewarp)
    # ------------------------------------------------------------------

    def tw_checkpoint(self) -> tuple:
        """Snapshot scheduler state.  Taken between events at an epoch
        barrier, so ``_executing`` is always False and ``_cursor`` is
        stale; ``_loop_scheduled`` is captured because a pending
        ``_iterate`` wake lives in the checkpointed event queue."""
        return (
            self.queue.tw_checkpoint(),
            self.internal_queue.tw_checkpoint(),
            list(self.direct_q),
            dict(self.pollq),
            self.busy_until,
            self.busy_time,
            self._loop_scheduled,
            self._cursor,
        )

    def tw_restore(self, snap: tuple) -> None:
        (q, iq, direct, pollq, self.busy_until, self.busy_time,
         self._loop_scheduled, self._cursor) = snap
        self.queue.tw_restore(q)
        self.internal_queue.tw_restore(iq)
        self.direct_q.clear()
        self.direct_q.extend(direct)
        self.pollq.clear()
        self.pollq.update(pollq)
        self._executing = False

    # ------------------------------------------------------------------
    # The scheduler loop
    # ------------------------------------------------------------------

    def kick(self) -> None:
        """Ensure a scheduler iteration runs once the PE is free."""
        if self._loop_scheduled or self._executing:
            return
        self._loop_scheduled = True
        self.sim.at(max(self.now, self.busy_until), self._iterate)

    def _has_detectable(self) -> bool:
        return any(h.arrived for h in self.pollq.values())

    def _iterate(self) -> None:
        self._loop_scheduled = False
        self._cursor = max(self.now, self.busy_until)
        start = self._cursor
        tr = self.rt.tracer
        if tr is not None and self.busy_until > 0.0 and start > self.busy_until:
            # The PE sat idle between its last busy frontier and this
            # wake-up — the scheduling gap a timeline view exposes.
            tr.span(self.rt._trace_run, self.rank, CAT_IDLE, "idle",
                    self.busy_until, start)
        self._executing = True
        try:
            self._drain_direct()
            self._poll_sweep()
            self._drain_internal()
            self._process_one_message()
        finally:
            self._executing = False
            self.busy_until = self._cursor
            self.busy_time += self._cursor - start
        if self.queue or self.internal_queue or self.direct_q or self._has_detectable():
            self.kick()

    def _drain_direct(self) -> None:
        tr = self.rt.tracer
        while self.direct_q:
            item = self.direct_q.popleft()
            t0 = self._cursor
            self.charge(item.cost)
            eid = None
            if tr is not None:
                eid = tr.next_id()
                tr.push(eid)
            self.rt._enter_pe(self)
            try:
                item.fn()
            finally:
                self.rt._exit_pe()
                if tr is not None:
                    tr.pop()
                    tr.span(self.rt._trace_run, self.rank, CAT_CKDIRECT,
                            "direct_callback", t0, self._cursor,
                            cause=item.trace_eid, eid=eid)
            self.rt.trace.count("pe.direct_completions")

    def _poll_sweep(self) -> None:
        if not self.pollq:
            return
        ck = self.rt.machine.ckdirect
        tr = self.rt.tracer
        t0 = self._cursor
        self.charge(ck.poll_base + ck.poll_per_handle * len(self.pollq))
        if tr is not None:
            tr.span(self.rt._trace_run, self.rank, CAT_CKDIRECT, "poll_sweep",
                    t0, self._cursor, args={"occupancy": len(self.pollq)})
        self.rt.trace.count("pe.poll_sweeps")
        self.rt.trace.sample("pe.pollq_occupancy", len(self.pollq))
        arrived = [h for h in self.pollq.values() if h.arrived]
        for handle in arrived:
            del self.pollq[handle.hid]
            t0 = self._cursor
            self.charge(ck.detect_overhead + ck.callback_overhead)
            eid = None
            if tr is not None:
                eid = tr.next_id()
                tr.push(eid)
            self.rt._enter_pe(self)
            try:
                handle.fire()
            finally:
                self.rt._exit_pe()
                if tr is not None:
                    tr.pop()
                    tr.span(self.rt._trace_run, self.rank, CAT_CKDIRECT,
                            f"poll_callback:{handle.name}", t0, self._cursor,
                            cause=handle.trace_eid, eid=eid)
            self.rt.trace.count("pe.poll_detections")

    def _drain_internal(self) -> None:
        """High-priority RTS messages: all pending ones run before the
        next application message (each still pays dispatch cost)."""
        while self.internal_queue:
            self._execute_message(self.internal_queue.pop(), len(self.internal_queue))

    def _process_one_message(self) -> None:
        if not self.queue:
            return
        self._execute_message(self.queue.pop(), len(self.queue))

    def _execute_message(self, msg: Message, remaining: int) -> None:
        charm = self.rt.machine.charm
        cost = (
            charm.sched_overhead
            + charm.sched_per_queued * remaining
            + charm.handler_overhead
            + charm.recv_overhead
            + self.rt.fabric.recv_handler_cost(msg.nbytes + charm.header_bytes)
        )
        if charm.rts_copy_per_byte and msg.nbytes and not msg.is_internal:
            exposed = min(msg.nbytes, charm.rts_copy_cap) if charm.rts_copy_cap else msg.nbytes
            cost += exposed * charm.rts_copy_per_byte
        tr = self.rt.tracer
        if tr is None:
            self.charge(cost)
            self.rt.trace.count("pe.messages_executed")
            self.rt._deliver(self, msg)
            return
        t0 = self._cursor
        self.charge(cost)
        self.rt.trace.count("pe.messages_executed")
        dispatch_eid = tr.span(
            self.rt._trace_run, self.rank, CAT_SCHED,
            f"dispatch:{msg.method}", t0, self._cursor,
            cause=msg.trace_eid, args={"msg": msg.id, "queued": remaining},
        )
        t1 = self._cursor
        eid = tr.next_id()
        tr.push(eid)
        try:
            self.rt._deliver(self, msg)
        finally:
            tr.pop()
            tr.span(
                self.rt._trace_run, self.rank,
                CAT_RTS if msg.is_internal else CAT_ENTRY,
                msg.method, t1, self._cursor, cause=dispatch_eid, eid=eid,
                args={"array": msg.array_id, "index": list(msg.index)},
            )
