"""Shared machinery for the two Jacobi implementations (MSG and CKD).

The paper's fairness discipline (§4.1) is enforced structurally here:

* both versions pack outgoing faces into contiguous staging buffers
  (the same sender-side copy, charged identically),
* neither version pays a receiver-side copy — the MSG version computes
  from the received face in place (validation mode writes it straight
  into the ghost layer, charging nothing, mirroring the paper's
  restructured computation), and the CKD version receives *into* the
  ghost layer by construction,
* both versions run the same per-iteration global barrier,

so any timing difference is exactly what the paper claims: the CKD
version bypasses message creation and the scheduler.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ...charm import Chare, CkCallback
from ...sim.rng import substream
from ...util.buffers import Buffer
from .decomp import DIRECTIONS, BlockSpec, opposite
from .reference import block_update

ITEMSIZE = 8  # float64, as in the paper's double-precision domain

#: Out-of-band value for CKD channels: initial data is uniform(0,1) and
#: Jacobi averaging keeps every value in [0, 1], so -1 can never occur.
STENCIL_OOB = -1.0


def block_initial(index: Tuple[int, int, int], shape, seed: int) -> np.ndarray:
    """Deterministic per-block initial data, independent of the
    decomposition order (tests assemble the same global grid)."""
    rng = substream(seed, index[0], index[1], index[2])
    return rng.random(shape)


class IterationMonitor:
    """Host-side coordinator: barrier callbacks, iteration timing.

    Barrier 0 is the setup barrier (channels wired, data placed);
    barriers 1..N close compute iterations.  ``iter_times`` holds the
    wall-clock (simulated) span of each iteration.
    """

    def __init__(self, rt, proxy, iterations: int) -> None:
        self.rt = rt
        self.proxy = proxy
        self.iterations = iterations
        self.barriers_seen = 0
        self.marks: List[float] = []
        # Host callbacks mutate this object; the optimistic engine
        # must checkpoint it alongside chare state.
        rt.register_host_state(self)

    def on_barrier(self, _value=None) -> None:
        """Barrier-release hook: record the time, start the next step."""
        self.marks.append(self.rt.now)
        self.barriers_seen += 1
        if self.barriers_seen <= self.iterations:
            self.proxy.bcast("resume")

    @property
    def iter_times(self) -> List[float]:
        """Per-iteration durations (diffs of barrier marks)."""
        return [b - a for a, b in zip(self.marks, self.marks[1:])]

    def callback(self) -> CkCallback:
        """A CkCallback delivering to on_barrier."""
        return CkCallback.host(self.on_barrier)


class JacobiBase(Chare):
    """Common state: geometry, buffers, compute, barrier discipline."""

    #: Reduced state saving (see Chare.tw_static).  Geometry, wiring,
    #: and runtime refs are construction-time constants; ``send_bufs``
    #: is a fixed dict of staging buffers whose *contents* are covered
    #: twice over — every CkDirect handle snapshots its associated
    #: source buffer, and ``resume`` fully repacks a face before each
    #: put, so no reader ever sees pre-rollback bytes.
    tw_static = frozenset({
        "rt", "_array", "_pe", "thisIndex", "spec", "iterations",
        "validate", "monitor", "neighbors", "send_bufs",
    })

    def __init__(
        self,
        domain: Tuple[int, int, int],
        grid: Tuple[int, int, int],
        iterations: int,
        validate: bool,
        seed: int,
        monitor: IterationMonitor,
    ) -> None:
        X, Y, Z = domain
        cx, cy, cz = grid
        self.spec = BlockSpec(tuple(self.thisIndex), grid, (X // cx, Y // cy, Z // cz))
        self.iterations = iterations
        self.validate = validate
        self.monitor = monitor
        self.it = 0
        self.got_faces = 0
        self.sent_this_iter = False
        self.neighbors = self.spec.neighbors()
        nx, ny, nz = self.spec.shape

        if validate:
            # Interior block embedded in a ghost-padded array; the pad
            # starts at zero = the Dirichlet boundary value.
            self.u = np.zeros((nx + 2, ny + 2, nz + 2))
            self.u[1:-1, 1:-1, 1:-1] = block_initial(self.spec.index, (nx, ny, nz), seed)
        else:
            self.u = None

        # Contiguous staging buffers for outgoing faces (both versions
        # pack into these; the pack memcpy is charged in _pack).
        self.send_bufs: Dict[Tuple[int, int], Buffer] = {}
        for d, _ in self.neighbors:
            n = self.spec.face_elems(d)
            if validate:
                self.send_bufs[d] = Buffer(array=np.zeros(self._face_shape(d)))
            else:
                self.send_bufs[d] = Buffer(nbytes=n * ITEMSIZE)

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------

    def _face_shape(self, direction) -> Tuple[int, int]:
        axis, _ = direction
        return tuple(s for i, s in enumerate(self.spec.shape) if i != axis)

    def _boundary_slice(self, direction):
        """Interior plane adjacent to ``direction`` (what we send)."""
        axis, side = direction
        sl = [slice(1, -1)] * 3
        sl[axis] = 1 if side < 0 else -2
        return tuple(sl)

    def _ghost_slice(self, direction):
        """Ghost plane fed by the neighbor in ``direction`` (what we
        receive)."""
        axis, side = direction
        sl = [slice(1, -1)] * 3
        sl[axis] = 0 if side < 0 else -1
        return tuple(sl)

    def ghost_view(self, direction) -> Buffer:
        """The receive location as a zero-copy view (CKD channels
        register exactly this)."""
        if self.validate:
            return Buffer(array=self.u[self._ghost_slice(direction)])
        return Buffer(nbytes=self.spec.face_bytes(direction, ITEMSIZE))

    # ------------------------------------------------------------------
    # Per-iteration pieces shared by both versions
    # ------------------------------------------------------------------

    def _pack(self, direction) -> Buffer:
        """Stage the outgoing face: a real memcpy, charged."""
        buf = self.send_bufs[direction]
        if self.validate:
            np.copyto(buf.array, self.u[self._boundary_slice(direction)])
        self.charge_pack(buf.nbytes)
        return buf

    def _compute(self) -> None:
        """One Jacobi sweep of this block (ghosts already filled)."""
        self.charge(self.spec.interior_elems * self.rt.machine.compute.stencil_update)
        if self.validate:
            self.u[1:-1, 1:-1, 1:-1] = block_update(self.u)

    def _advance(self) -> None:
        """Compute, close the iteration, and join the barrier."""
        self._compute()
        self.it += 1
        self.got_faces = 0
        self.sent_this_iter = False
        self._post_compute()
        self.contribute(callback=self.monitor.callback())

    def _post_compute(self) -> None:
        """Hook for version-specific per-iteration cleanup (CKD calls
        CkDirect_ready here, per the paper's protocol)."""

    def _exchange_complete(self) -> bool:
        return self.sent_this_iter and self.got_faces == len(self.neighbors)

    def _maybe_advance(self) -> None:
        if self._exchange_complete() and self.it < self.iterations:
            self._advance()

    # Final-state access for validation ---------------------------------

    def interior(self) -> Optional[np.ndarray]:
        """This block's interior data (None in performance mode)."""
        return None if self.u is None else self.u[1:-1, 1:-1, 1:-1]

    def shard_state(self) -> Optional[dict]:
        """Grid state gather_grid reads (sharded-engine reconciliation)."""
        return None if self.u is None else {"u": self.u}
