"""Self-healing ResultStore: checksums, quarantine, transparent recompute.

The contract: a corrupt or truncated object is **never served** — it is
quarantined (preserved under ``objects/.quarantine/``), counted, and
reported as a miss so the caller recomputes; the recomputed bytes are
identical and the digest counts as healed.
"""

import asyncio
import hashlib

import pytest

from repro.resilience.integrity import (
    checksum,
    read_sidecar,
    sidecar_path,
    write_sidecar,
)
from repro.serve.jobs import JobManager, JobState
from repro.serve.metrics import ServeMetrics
from repro.serve.store import QUARANTINE_DIR, ResultStore
from repro.sweep import RunSpec, register_point

D1 = hashlib.sha256(b"heal-1").hexdigest()
PAYLOAD = b'{"results": [1, 2, 3]}'


def _flip(path, offset=4, mask=0x01):
    raw = bytearray(path.read_bytes())
    raw[offset] ^= mask
    path.write_bytes(bytes(raw))


# ---------------------------------------------------------------------------
# Integrity helpers
# ---------------------------------------------------------------------------


def test_sidecar_roundtrip(tmp_path):
    obj = tmp_path / "obj"
    obj.write_bytes(PAYLOAD)
    assert read_sidecar(obj) is None  # absent
    write_sidecar(obj, checksum(PAYLOAD))
    assert read_sidecar(obj) == checksum(PAYLOAD)
    assert sidecar_path(obj).name == "obj.sum"


# ---------------------------------------------------------------------------
# Store read-path verification
# ---------------------------------------------------------------------------


def test_put_writes_sidecar_and_get_verifies(tmp_path):
    store = ResultStore(tmp_path)
    store.put(D1, PAYLOAD)
    assert read_sidecar(store._path(D1)) == checksum(PAYLOAD)
    assert store.get(D1) == PAYLOAD
    assert store.corruptions == 0


@pytest.mark.parametrize("corruptor", [
    lambda p: _flip(p),                                  # bit rot
    lambda p: p.write_bytes(p.read_bytes()[:-3]),        # truncation
    lambda p: p.write_bytes(b""),                        # emptied
], ids=["bitflip", "truncated", "emptied"])
def test_corrupt_object_quarantined_not_served(tmp_path, corruptor):
    store = ResultStore(tmp_path)
    store.put(D1, PAYLOAD)
    corruptor(store._path(D1))
    assert store.get(D1) is None  # never served
    assert store.corruptions == 1 and store.quarantined == 1
    assert D1 not in store
    q = tmp_path / "objects" / QUARANTINE_DIR
    assert (q / D1).exists()  # preserved for forensics
    # heal: the miss-path recompute re-puts identical bytes
    store.put(D1, PAYLOAD)
    assert store.healed == 1
    assert store.get(D1) == PAYLOAD


def test_quarantine_survives_reopen_and_is_not_indexed(tmp_path):
    store = ResultStore(tmp_path)
    store.put(D1, PAYLOAD)
    _flip(store._path(D1))
    assert store.get(D1) is None
    # A fresh scan must not adopt the quarantined object back.
    reopened = ResultStore(tmp_path)
    assert len(reopened) == 0
    assert reopened.get(D1) is None


def test_legacy_object_adopted_trust_on_first_use(tmp_path):
    store = ResultStore(tmp_path)
    store.put(D1, PAYLOAD)
    sidecar_path(store._path(D1)).unlink()  # pre-sidecar store
    reopened = ResultStore(tmp_path)
    assert reopened.get(D1) == PAYLOAD  # served, and adopted:
    assert read_sidecar(reopened._path(D1)) == checksum(PAYLOAD)


def test_verify_off_serves_corrupt_bytes(tmp_path):
    """The benchmarking escape hatch really does skip verification."""
    store = ResultStore(tmp_path, verify=False)
    store.put(D1, PAYLOAD)
    _flip(store._path(D1))
    assert store.get(D1) is not None
    assert store.corruptions == 0


def test_eviction_unlinks_sidecar(tmp_path):
    d2 = hashlib.sha256(b"heal-2").hexdigest()
    store = ResultStore(tmp_path, max_bytes=len(PAYLOAD) + 4)
    store.put(D1, PAYLOAD)
    store.put(d2, PAYLOAD)  # evicts D1
    assert store.evictions == 1
    assert not store._path(D1).exists()
    assert not sidecar_path(store._path(D1)).exists()


def test_manifest_reports_healing_counters(tmp_path):
    store = ResultStore(tmp_path)
    store.put(D1, PAYLOAD)
    _flip(store._path(D1))
    store.get(D1)
    store.put(D1, PAYLOAD)
    m = store.manifest()
    assert m["corruptions"] == 1
    assert m["quarantined"] == 1
    assert m["healed"] == 1
    out = ServeMetrics().to_dict(store=store)
    assert out["store"]["corruptions"] == 1
    assert out["store"]["quarantined"] == 1
    assert out["store"]["healed"] == 1


# ---------------------------------------------------------------------------
# End to end: JobManager transparently recomputes a corrupted result
# ---------------------------------------------------------------------------


@register_point("heal-echo")
def _echo(spec):
    return {"x": dict(spec.params)["x"], "events": 3}


def test_jobmanager_recomputes_corrupted_result(tmp_path):
    async def main():
        store = ResultStore(tmp_path / "store")
        mgr = JobManager(store, ServeMetrics(), workers=1, max_queue=4)
        await mgr.start()
        try:
            spec = RunSpec.make("heal-echo", "Abe", "m", x=7)
            j1 = mgr.submit([spec])
            while not j1.terminal:
                await asyncio.sleep(0.01)
            assert j1.state == JobState.DONE
            payload = store.get(j1.digest)
            assert payload is not None

            _flip(store._path(j1.digest))
            j2 = mgr.submit([spec])  # corrupt -> miss -> recompute
            assert j2 is not j1
            while not j2.terminal:
                await asyncio.sleep(0.01)
            assert j2.state == JobState.DONE
            assert store.corruptions == 1
            assert store.healed == 1
            assert store.get(j2.digest) == payload  # identical bytes
        finally:
            await mgr.shutdown()
    asyncio.run(main())
