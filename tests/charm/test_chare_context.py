"""Unit tests for chare execution-context guards and helpers."""

import pytest

from repro import ABE, Chare, Runtime
from repro.charm.errors import ContextError


class Ctx(Chare):
    def __init__(self):
        self.seen = []

    def probe(self):
        self.seen.append((self.my_pe, self.index1d, self.now))

    def pack_something(self, nbytes):
        t0 = self.now
        self.charge_pack(nbytes)
        self.seen.append(self.now - t0)


def test_my_pe_and_index1d():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Ctx, dims=(4,))
    arr.proxy[3].probe()
    rt.run()
    pe, idx, t = arr.element(3).seen[0]
    assert idx == 3
    assert pe == arr.pe_of(3)
    assert t > 0


def test_index1d_rejects_multidim():
    rt = Runtime(ABE, n_pes=1)
    arr = rt.create_array(Ctx, dims=(2, 2))
    with pytest.raises(ContextError):
        arr.element((0, 0)).index1d


def test_charge_pack_costs_scale_with_bytes():
    rt = Runtime(ABE, n_pes=1)
    arr = rt.create_array(Ctx, dims=(1,))
    arr.proxy[0].pack_something(1000)
    arr.proxy[0].pack_something(100_000)
    rt.run()
    small, big = arr.element(0).seen
    charm = ABE.charm
    assert small == pytest.approx(charm.copy_base + 1000 * charm.copy_per_byte)
    assert big > small


def test_charge_pack_zero_is_free():
    rt = Runtime(ABE, n_pes=1)
    arr = rt.create_array(Ctx, dims=(1,))
    arr.proxy[0].pack_something(0)
    rt.run()
    assert arr.element(0).seen[0] == 0.0


def test_context_guard_rejects_foreign_pe():
    """A chare driven outside its own PE context must refuse to charge
    (catching accidental cross-chare calls in user code)."""
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Ctx, dims=(2,))

    class Sneaky(Chare):
        def poke(self, other):
            other.charge(1e-6)  # not my context

    bad = rt.create_array(Sneaky, dims=(1,),)
    victim = arr.element(1) if arr.pe_of(1) != bad.pe_of(0) else arr.element(0)
    bad.proxy[0].poke(victim)
    with pytest.raises(ContextError):
        rt.run()


def test_contribute_outside_context_rejected():
    rt = Runtime(ABE, n_pes=1)
    arr = rt.create_array(Ctx, dims=(1,))
    with pytest.raises(ContextError):
        arr.element(0).contribute()


def test_negative_charge_rejected():
    rt = Runtime(ABE, n_pes=1)

    class Neg(Chare):
        def go(self):
            self.charge(-1.0)

    arr = rt.create_array(Neg, dims=(1,))
    arr.proxy[0].go()
    with pytest.raises(ContextError):
        rt.run()


def test_entity_after_helper():
    from repro.sim import Entity, Simulator

    sim = Simulator()
    e = Entity(sim, name="thing")
    got = []
    e.after(2e-6, got.append, "x")
    sim.run()
    assert got == ["x"]
    assert e.now == pytest.approx(2e-6)
