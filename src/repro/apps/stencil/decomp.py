"""3D domain decomposition for the Jacobi stencil (paper §4.1).

The global ``X×Y×Z`` domain is partitioned into cuboids, one per
chare.  :func:`choose_grid` picks the chare-grid shape that minimizes
total halo surface (hence communication volume) among all factor
triples of the chare count that evenly divide the domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

#: The six halo-exchange directions: (axis, side) with side -1 / +1.
DIRECTIONS: Tuple[Tuple[int, int], ...] = (
    (0, -1), (0, +1), (1, -1), (1, +1), (2, -1), (2, +1),
)


def opposite(direction: Tuple[int, int]) -> Tuple[int, int]:
    """The reverse of a (axis, side) direction."""
    axis, side = direction
    return (axis, -side)


def _divisors(n: int) -> List[int]:
    out = [d for d in range(1, int(n ** 0.5) + 1) if n % d == 0]
    out += [n // d for d in reversed(out) if d * d != n]
    return out


def factor_triples(n: int) -> Iterator[Tuple[int, int, int]]:
    """All ordered triples (a, b, c) with a*b*c == n."""
    for a in _divisors(n):
        m = n // a
        for b in _divisors(m):
            yield (a, b, m // b)


def choose_grid(
    domain: Tuple[int, int, int], n_chares: int
) -> Tuple[int, int, int]:
    """The chare grid minimizing halo surface area.

    Only triples that divide the domain evenly qualify; the best one
    minimizes the per-chare surface ``2(bx*by + by*bz + bx*bz)`` where
    ``b`` is the block shape — equivalently the total bytes exchanged
    per iteration.
    """
    X, Y, Z = domain
    best: Optional[Tuple[int, Tuple[int, int, int]]] = None
    for cx, cy, cz in factor_triples(n_chares):
        if X % cx or Y % cy or Z % cz:
            continue
        bx, by, bz = X // cx, Y // cy, Z // cz
        surface = 2 * (bx * by + by * bz + bx * bz)
        key = (surface, (cx, cy, cz))
        if best is None or key < best:
            best = key
    if best is None:
        raise ValueError(
            f"no factorization of {n_chares} chares divides domain {domain}"
        )
    return best[1]


@dataclass(frozen=True)
class BlockSpec:
    """Geometry of one chare's cuboid."""

    index: Tuple[int, int, int]  # chare-grid coordinates
    grid: Tuple[int, int, int]  # chare-grid shape
    shape: Tuple[int, int, int]  # interior elements per block

    def neighbor(self, direction: Tuple[int, int]) -> Optional[Tuple[int, int, int]]:
        """Neighbor chare index in ``direction`` or None at the domain
        boundary (non-periodic, Dirichlet boundary)."""
        axis, side = direction
        coord = list(self.index)
        coord[axis] += side
        if not (0 <= coord[axis] < self.grid[axis]):
            return None
        return tuple(coord)

    def neighbors(self) -> List[Tuple[Tuple[int, int], Tuple[int, int, int]]]:
        """All (direction, neighbor_index) pairs that exist."""
        out = []
        for d in DIRECTIONS:
            nb = self.neighbor(d)
            if nb is not None:
                out.append((d, nb))
        return out

    def face_elems(self, direction: Tuple[int, int]) -> int:
        """Interior elements on the face normal to ``direction``."""
        axis, _ = direction
        a, b = [s for i, s in enumerate(self.shape) if i != axis]
        return a * b

    def face_bytes(self, direction: Tuple[int, int], itemsize: int = 8) -> int:
        """Bytes of one halo face."""
        return self.face_elems(direction) * itemsize

    @property
    def interior_elems(self) -> int:
        """Elements in this block's interior."""
        sx, sy, sz = self.shape
        return sx * sy * sz


def make_blocks(
    domain: Tuple[int, int, int], grid: Tuple[int, int, int]
) -> dict:
    """BlockSpec for every chare index of the grid."""
    X, Y, Z = domain
    cx, cy, cz = grid
    if X % cx or Y % cy or Z % cz:
        raise ValueError(f"grid {grid} does not divide domain {domain}")
    shape = (X // cx, Y // cy, Z // cz)
    return {
        (i, j, k): BlockSpec((i, j, k), grid, shape)
        for i in range(cx)
        for j in range(cy)
        for k in range(cz)
    }
