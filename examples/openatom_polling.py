#!/usr/bin/env python
"""OpenAtom PairCalculator mini-app and the §5.2 polling story.

The paper's most instructive anecdote: their *initial* CkDirect port
of OpenAtom was slower than plain messages, because every one of the
thousands of persistent channels sat in the polling queue through all
the phases that never touch it, taxing every scheduler iteration.  The
fix — split ``CkDirect_ready`` into ``ReadyMark`` (cheap, do it as
soon as the buffer is free) and ``ReadyPollQ`` (defer until the phase
that expects data) — confines the polling cost to the PairCalculator
phase.

This example runs the mini-app three ways on the simulated Abe
(2 cores/node, as the paper used) and prints the step times:

* plain Charm++ messages,
* CkDirect with naive polling (ready() right after consumption),
* CkDirect with phased polling (the paper's optimization).

Run:  python examples/openatom_polling.py
"""

from repro import ABE
from repro.apps.openatom import abe_2cpn, run_openatom

N_PES = 32


def main() -> None:
    machine = abe_2cpn(ABE)
    print(f"OpenAtom mini-app on simulated Abe, {N_PES} PEs (2 cores/node)\n")

    rows = []
    for label, kwargs in [
        ("charm++ messages", dict(mode="msg")),
        ("ckdirect, naive polling", dict(mode="ckd", polling="naive")),
        ("ckdirect, ReadyMark+ReadyPollQ", dict(mode="ckd", polling="phased")),
    ]:
        r = run_openatom(machine, N_PES, **kwargs)
        rows.append((label, r.mean_step_time * 1e3))

    base = rows[0][1]
    print(f"{'variant':<34} {'step (ms)':>10} {'vs messages':>12}")
    for label, ms in rows:
        print(f"{label:<34} {ms:>10.2f} {100 * (1 - ms / base):>+11.1f}%")

    print(
        "\nWith naive polling every channel is scanned on every scheduler\n"
        "iteration of every phase; the phased discipline recovers the\n"
        "gain (paper §5.2).  Also try pc_only=True for the Figure 4(b)\n"
        "PairCalculator-only numbers."
    )


if __name__ == "__main__":
    main()
