"""Unit tests for chare-to-PE mappings."""

import pytest

from repro.charm.mapping import (
    BlockMap,
    CustomMap,
    MappingError,
    RoundRobinMap,
    linear_index,
)


def test_linear_index_row_major():
    assert linear_index((0, 0), (2, 3)) == 0
    assert linear_index((0, 2), (2, 3)) == 2
    assert linear_index((1, 0), (2, 3)) == 3
    assert linear_index((1, 2), (2, 3)) == 5


def test_linear_index_bounds():
    with pytest.raises(MappingError):
        linear_index((2, 0), (2, 3))
    with pytest.raises(MappingError):
        linear_index((0, -1), (2, 3))
    with pytest.raises(MappingError):
        linear_index((0,), (2, 3))


def test_block_map_contiguous():
    m = BlockMap()
    dims, n_pes = (8,), 4  # 2 per PE
    pes = [m.pe_for((i,), dims, n_pes) for i in range(8)]
    assert pes == [0, 0, 1, 1, 2, 2, 3, 3]


def test_block_map_covers_all_pes():
    m = BlockMap()
    dims, n_pes = (4, 4, 4), 8
    pes = {m.pe_for((i, j, k), dims, n_pes)
           for i in range(4) for j in range(4) for k in range(4)}
    assert pes == set(range(8))


def test_block_map_balanced():
    m = BlockMap()
    dims, n_pes = (16,), 4
    from collections import Counter

    counts = Counter(m.pe_for((i,), dims, n_pes) for i in range(16))
    assert set(counts.values()) == {4}


def test_round_robin():
    m = RoundRobinMap()
    pes = [m.pe_for((i,), (8,), 3) for i in range(8)]
    assert pes == [0, 1, 2, 0, 1, 2, 0, 1]


def test_custom_map():
    m = CustomMap(lambda idx, dims, n: (idx[0] * 2) % n)
    assert m.pe_for((3,), (8,), 4) == 2


def test_custom_map_range_checked():
    m = CustomMap(lambda idx, dims, n: n + 1)
    with pytest.raises(MappingError):
        m.pe_for((0,), (1,), 2)
