"""Blue Gene/P fabric model (DCMF two-sided transport on a 3D torus).

The paper's BG/P CkDirect (§2.2) is built on DCMF's *two-sided*
``DCMF_Send`` — the one-sided primitives were in flux — so it is **not
zero-copy**; its advantage over default Charm++ comes from skipping the
Charm++ envelope, allocation, scheduler queue, and entry-method
dispatch, with completion signalled by DCMF's receive-side callback
rather than polling.

Model structure:

* ``DCMF_Send`` costs a software issue, a base latency (a cheaper one
  for *short* messages below 224 bytes, whose receipt handler copies
  the payload itself), per-hop torus latency from the
  :class:`~repro.network.topology.Torus3D`, and a per-byte cost at one
  torus-link rate.
* The receive-side DCMF handler cost is exposed through
  :meth:`recv_handler_cost` so both the default-message path and the
  CkDirect path charge the same low-level handler, exactly as on the
  real machine.
* A CkDirect put carries an Info header of
  :attr:`BGPParams.info_qwords_ckdirect` quad words (the paper sends
  the receive-buffer pointer, callback, callback data, and request
  buffer in the Info to avoid lookup tables) — those bytes ride the
  wire with the payload.
* There is *no* rendezvous/RDMA crossover: the supporting protocol was
  not installed on Surveyor (paper §3), so per-byte cost is a single
  rate at all sizes.
"""

from __future__ import annotations

from typing import Callable

from .base import Fabric, FabricError
from .params import BGPParams


class BGPFabric(Fabric):
    """3D-torus Blue Gene/P with DCMF active-message transport.

    By default contention is modelled at node granularity (per-node
    injection/ejection occupancy with the six-link aggregate factor).
    :meth:`enable_link_contention` switches to per-link modelling:
    transfers follow dimension-order (x, then y, then z) minimal-path
    routes and serialize on each individual torus link they traverse —
    heavier to simulate, but it exposes path conflicts (e.g. two flows
    sharing one +x link) that node-granularity cannot."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not isinstance(self.machine.net, BGPParams):
            raise FabricError(
                f"machine {self.machine.name!r} does not carry BGPParams"
            )
        self._link_free: dict = {}
        self._link_contention = False

    # ------------------------------------------------------------------
    # Optional per-link contention
    # ------------------------------------------------------------------

    def enable_link_contention(self, on: bool = True) -> None:
        """Switch between node-granularity and per-link contention.

        Per-link routes read and update a global link-occupancy map in
        send order, which the sharded engine cannot partition; enabling
        contention therefore drops back to the serial legacy engine.
        """
        self._link_contention = bool(on)
        if on and self._engine:
            self._engine = False

    def min_remote_latency(self) -> float:
        """Cross-node latency floor: the cheaper short-message alpha
        plus one torus hop (every cross-node route crosses >= 1 link)."""
        return min(self.p.alpha, self.p.alpha_short) + self.p.hop_latency

    def route(self, src_node: int, dst_node: int):
        """Dimension-order minimal route: the directed links crossed.

        Each link is identified as ``(node, axis, direction)`` — the
        outgoing link of ``node`` along ``axis`` in ``direction``
        (+1/-1), taking the shorter way around each torus dimension.
        """
        topo = self.topology
        links = []
        cur = list(topo.coords(src_node))
        dst = topo.coords(dst_node)
        for axis, dim in enumerate(topo.dims):
            while cur[axis] != dst[axis]:
                fwd = (dst[axis] - cur[axis]) % dim
                direction = 1 if fwd <= dim - fwd else -1
                X, Y, Z = topo.dims
                node = cur[0] + X * (cur[1] + Y * cur[2])
                links.append((node, axis, direction))
                cur[axis] = (cur[axis] + direction) % dim
        return links

    def transfer(self, src, dst, wire_bytes, start, pre, alpha, beta, cb,
                 ser_extra=0.0, lat_extra=0.0):
        """Point-to-point transfer (see Fabric.transfer)."""
        if not self._link_contention or self.topology.same_node(src, dst):
            return super().transfer(src, dst, wire_bytes, start, pre, alpha,
                                    beta, cb, ser_extra, lat_extra)
        # Per-link model: the flow holds every link of its route for
        # its streaming time; it cannot start before the most-loaded
        # link frees up (wormhole-style bottleneck approximation).
        stream = wire_bytes * beta + lat_extra
        occ = wire_bytes * beta + ser_extra  # full link rate per link
        links = self.route(self.topology.node_of(src), self.topology.node_of(dst))
        t0 = start + pre
        ready = max([t0] + [self._link_free.get(l, 0.0) for l in links])
        for l in links:
            self._link_free[l] = ready + occ
        delivery = ready + alpha + len(links) * self._hop_latency() + stream
        self.trace.count("net.transfers")
        self.trace.count("net.bytes", wire_bytes)
        self.trace.count("bgp.link_routed")
        self._schedule_delivery(delivery, cb)
        return delivery

    @property
    def p(self) -> BGPParams:
        """The machine's transport parameter block."""
        return self.machine.net

    def _hop_latency(self) -> float:
        return self.p.hop_latency

    def is_short(self, total_bytes: int) -> bool:
        """DCMF short-message fast path (receipt handler does the copy)."""
        return total_bytes < self.p.short_max

    # ------------------------------------------------------------------
    # The underlying DCMF primitive
    # ------------------------------------------------------------------

    def dcmf_send(
        self,
        src: int,
        dst: int,
        total_bytes: int,
        start: float,
        cb: Callable[[], None],
        info_qwords: int = 0,
    ) -> float:
        """One ``DCMF_Send``: issue + torus traversal + delivery callback."""
        wire = total_bytes + info_qwords * self.p.quad_word
        if self.is_short(total_bytes):
            alpha = self.p.alpha_short
            self.trace.count("bgp.dcmf_short")
        else:
            alpha = self.p.alpha
            self.trace.count("bgp.dcmf_normal")
        return self.transfer(
            src, dst, wire, start,
            pre=self.p.issue_overhead, alpha=alpha, beta=self.p.beta, cb=cb,
        )

    # ------------------------------------------------------------------
    # Transport services
    # ------------------------------------------------------------------

    def recv_handler_cost(self, total_bytes: int) -> float:
        """Receive-side low-level handler cost for a message size."""
        return (
            self.p.handler_short
            if self.is_short(total_bytes)
            else self.p.handler_normal
        )

    def charm_transport(
        self, src: int, dst: int, payload_bytes: int, start: float, cb: Callable[[], None]
    ) -> float:
        """Default Charm++ message: envelope rides the wire with the data."""
        total = payload_bytes + self.machine.charm.header_bytes
        self.trace.count("bgp.charm_msg")
        return self.dcmf_send(src, dst, total, start, cb)

    def direct_put(
        self, src: int, dst: int, nbytes: int, start: float, cb: Callable[[], None]
    ) -> float:
        """CkDirect put: a DCMF_Send of the bare payload plus the
        two-quad-word Info header carrying the DCMF context (§2.2)."""
        self.trace.count("bgp.ckdirect_put")
        return self.dcmf_send(
            src, dst, nbytes, start, cb,
            info_qwords=self.p.info_qwords_ckdirect,
        )
