"""Simulated MPI ranks on the calibrated fabrics.

This is the baseline layer the paper compares CkDirect against.  It is
an event-driven skeleton of an MPI implementation: SPMD codes are
written in continuation style (callbacks on receive completion), which
suffices for the paper's benchmarks and for the synchronization-scheme
ablations.

Cost structure per message (constants from the machine's
:class:`~repro.network.params.MPIFlavorParams`):

* sender software (``sw_send``), then the flavor's transport regime —
  eager (bounce-buffered, higher per-byte), possibly a mid regime
  (MPICH-VMI needs one), or rendezvous (handshake + registration +
  zero-copy wire rate);
* receiver software (``sw_recv``) + tag matching on delivery;
* messages that arrive before their receive is posted pay an
  additional unexpected-queue copy when the receive finally posts.

On Blue Gene/P the wire transport is the shared DCMF model (the same
one Charm++ and CkDirect ride), plus MPI software overheads and the
empirical mid-size buffering correction from
:data:`~repro.network.params.IBM_MPI_BUFFERING_TABLE`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..network import BGPFabric, MachineParams, make_fabric
from ..network.params import IBM_MPI_BUFFERING_TABLE, interp_table
from ..projections.events import CAT_MPI, CAT_MSG
from ..projections.eventlog import current_tracer
from ..sim import Entity, Simulator, Trace, make_simulator
from .flavors import MPIError, regime_for, resolve_flavor, uses_rendezvous
from .p2p import ANY_SOURCE, ANY_TAG, Arrival, Matcher, RecvPost

#: Control-message wire size (RTS/CTS, epoch notifications).
CTRL_BYTES = 64


class Rank(Entity):
    """One MPI process bound to a PE."""

    def __init__(self, world: "MPIWorld", rank: int, pe: int) -> None:
        super().__init__(world.sim, name=f"rank{rank}")
        self.world = world
        self.rank = rank
        self.pe = pe
        self.matcher = Matcher()
        self.busy_until = 0.0
        self._cursor = 0.0
        self._executing = False

    # ------------------------------------------------------------------
    # Execution context
    # ------------------------------------------------------------------

    @property
    def cursor(self) -> float:
        """This rank's local clock (busy frontier while executing)."""
        return self._cursor if self._executing else max(self.now, self.busy_until)

    def charge(self, seconds: float) -> None:
        """Consume seconds of this rank's time (execution context only)."""
        if not self._executing:
            raise MPIError(f"{self.name}: charge() outside an execution context")
        self._cursor += seconds

    def exec_at(self, t: float, fn: Callable, *args) -> None:
        """Run ``fn`` in this rank's context, no earlier than ``t`` and
        never overlapping earlier work on this rank."""

        def _run() -> None:
            self._cursor = max(self.now, self.busy_until)
            self._executing = True
            try:
                fn(*args)
            finally:
                self._executing = False
                self.busy_until = self._cursor

        self.sim.at(max(t, self.sim.now), _run)

    # ------------------------------------------------------------------
    # Point-to-point API
    # ------------------------------------------------------------------

    def isend(self, dst: int, nbytes: int, tag: int = 0,
              on_complete: Optional[Callable[[], None]] = None) -> None:
        """Non-blocking send (buffered semantics: local completion is
        immediate after the software send overhead)."""
        self.world._send(self, dst, nbytes, tag)
        if on_complete is not None:
            on_complete()

    def irecv(self, cb: Callable[[Arrival], None], src: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> None:
        """Post a receive; ``cb(arrival)`` runs in this rank's context
        at completion."""
        self.world._post_recv(self, src, tag, cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rank {self.rank} on pe{self.pe}>"


class MPIWorld:
    """A set of MPI ranks over one simulated machine."""

    def __init__(
        self,
        machine: MachineParams,
        n_ranks: int,
        flavor: Optional[str] = None,
        placement: str = "spread",
        sim: Optional[Simulator] = None,
        record_samples: bool = False,
    ) -> None:
        if n_ranks <= 0:
            raise MPIError(f"n_ranks must be positive, got {n_ranks}")
        self.machine = machine
        self.params = resolve_flavor(machine, flavor)
        self.sim = sim if sim is not None else make_simulator()
        self.trace = Trace(record_samples=record_samples,
                           now_fn=lambda: self.sim.now)
        #: timeline tracer (ambient pickup, as in the charm Runtime).
        self.tracer = current_tracer()
        self._trace_run = 0
        if placement == "spread":
            # one rank per node — the paper's pingpong configuration
            n_pes = n_ranks * machine.cores_per_node
            pes = [r * machine.cores_per_node for r in range(n_ranks)]
        elif placement == "packed":
            n_pes = n_ranks
            pes = list(range(n_ranks))
        else:
            raise MPIError(f"unknown placement {placement!r}")
        self.fabric = make_fabric(self.sim, machine, n_pes, self.trace)
        if self.tracer is not None:
            self._trace_run = self.tracer.new_run(
                f"mpi:{self.params.name}@{machine.name}", owner=self, n_pes=n_pes
            )
            self.fabric.tracer = self.tracer
            self.fabric.trace_run = self._trace_run
        self.ranks: List[Rank] = [Rank(self, r, pes[r]) for r in range(n_ranks)]

    @property
    def n_ranks(self) -> int:
        """Number of MPI ranks in the world."""
        return len(self.ranks)

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation; returns the final simulated time."""
        self.sim.run(until=until)
        return self.sim.now

    # ------------------------------------------------------------------
    # Transport internals
    # ------------------------------------------------------------------

    def _is_bgp(self) -> bool:
        return isinstance(self.fabric, BGPFabric)

    def _transport(self, src: Rank, dst: Rank, nbytes: int, pre_extra: float,
                   cb: Callable[[], None], beta_override: Optional[float] = None,
                   start: Optional[float] = None) -> None:
        """One wire transfer under this flavor's constants."""
        t0 = start if start is not None else src.cursor
        if self._is_bgp():
            # BG/P: everyone rides DCMF; flavor adds software on top.
            self.fabric.dcmf_send(src.pe, dst.pe, nbytes, t0 + pre_extra, cb,
                                  info_qwords=2)
            return
        _, fixed, beta, _ = regime_for(self.params, nbytes)
        if beta_override is not None:
            beta = beta_override
        self.fabric.transfer(
            src.pe, dst.pe, nbytes, t0,
            pre=pre_extra + fixed, alpha=self.machine.net.alpha, beta=beta, cb=cb,
        )

    def _bgp_extra(self, nbytes: int) -> float:
        """IBM MPI's empirical mid-size buffering correction."""
        if not self._is_bgp():
            return 0.0
        return interp_table(IBM_MPI_BUFFERING_TABLE, nbytes)

    def _send(self, src: Rank, dst_rank: int, nbytes: int, tag: int) -> None:
        if not (0 <= dst_rank < self.n_ranks):
            raise MPIError(f"destination rank {dst_rank} out of range")
        if src._executing:
            src.charge(self.params.sw_send)
            t0 = src.cursor
        else:
            t0 = src.cursor + self.params.sw_send
        dst = self.ranks[dst_rank]
        self.trace.count("mpi.sends")
        self.trace.count("mpi.bytes", nbytes)
        tr = self.tracer
        send_eid = None
        if tr is not None:
            send_eid = tr.instant(
                self._trace_run, src.pe, CAT_MSG, "mpi_send", t0,
                cause=tr.current,
                args={"dst_rank": dst_rank, "bytes": nbytes, "tag": tag},
            )

        if not self._is_bgp() and uses_rendezvous(self.params, nbytes):
            self._send_rendezvous(src, dst, nbytes, tag, t0, send_eid)
        else:
            extra = self._bgp_extra(nbytes)
            self._transport(
                src, dst, nbytes, extra,
                lambda: self._data_arrived(dst, src.rank, tag, nbytes, send_eid),
                start=t0,
            )

    def _send_rendezvous(self, src: Rank, dst: Rank, nbytes: int, tag: int,
                         t0: float, send_eid: Optional[int] = None) -> None:
        """Rendezvous: announce via RTS; data moves once a receive is
        posted, paying handshake + registration, then the zero-copy
        wire rate.  The RTS/CTS latency is folded into ``rndv_fixed``
        (that is how the constants were calibrated)."""
        p = self.params

        def begin_data(recv: RecvPost) -> None:
            start = max(t0, recv.post_time)
            pre = p.rndv_fixed + p.reg_base + nbytes * p.reg_per_byte
            beta = p.regimes[-1][2]

            def data_done() -> None:
                done = Arrival(src.rank, tag, nbytes, self.sim.now,
                               trace_eid=send_eid)
                dst.exec_at(self.sim.now, self._finish_recv, dst, recv.cb, done, 0.0)

            self.fabric.transfer(
                src.pe, dst.pe, nbytes, start,
                pre=pre, alpha=self.machine.net.alpha, beta=beta, cb=data_done,
            )

        arrival = Arrival(src.rank, tag, nbytes, t0, begin_data=begin_data,
                          trace_eid=send_eid)
        recv = dst.matcher.arrive(arrival)
        self.trace.count("mpi.rendezvous")
        if recv is not None:
            begin_data(recv)
        # else: the matcher holds the RTS; _post_recv calls begin_data.

    def _data_arrived(self, dst: Rank, src_rank: int, tag: int, nbytes: int,
                      send_eid: Optional[int] = None) -> None:
        """Eager data landed at the receiver."""
        arrival = Arrival(src_rank, tag, nbytes, self.sim.now, trace_eid=send_eid)
        recv = dst.matcher.arrive(arrival)
        if recv is not None:
            dst.exec_at(self.sim.now, self._finish_recv, dst, recv.cb, arrival, 0.0)
        # else: waits in the unexpected queue; _post_recv completes it.

    def _post_recv(self, rank: Rank, src: int, tag: int,
                   cb: Callable[[Arrival], None]) -> None:
        recv = RecvPost(src, tag, cb, rank.cursor)
        arrival = rank.matcher.post(recv)
        if arrival is None:
            return
        if arrival.is_rendezvous:
            arrival.begin_data(recv)
        else:
            # Unexpected eager message: pay the bounce-buffer copy.
            copy = arrival.nbytes * self.params.unexpected_copy_per_byte
            self.trace.count("mpi.unexpected")
            rank.exec_at(max(rank.cursor, arrival.arrival_time),
                         self._finish_recv, rank, cb, arrival, copy)

    def _finish_recv(self, rank: Rank, cb: Callable[[Arrival], None],
                     arrival: Arrival, extra: float) -> None:
        t0 = rank._cursor
        rank.charge(self.params.tag_match + self.params.sw_recv + extra)
        self.trace.count("mpi.recvs")
        tr = self.tracer
        if tr is None:
            cb(arrival)
            return
        eid = tr.next_id()
        tr.push(eid)
        try:
            cb(arrival)
        finally:
            tr.pop()
            tr.span(self._trace_run, rank.pe, CAT_MPI, "mpi_recv",
                    t0, rank._cursor, eid=eid, cause=arrival.trace_eid,
                    args={"src_rank": arrival.src, "bytes": arrival.nbytes})
