"""Base class for simulation entities.

An entity is anything that lives inside a :class:`~repro.sim.engine.Simulator`
and schedules events: NICs, processing elements, MPI ranks.  The base
class only provides the common plumbing (a back reference to the
simulator and convenience scheduling helpers), keeping subclasses free
of boilerplate.
"""

from __future__ import annotations

from typing import Any, Callable

from .engine import Simulator
from .event import Event


class Entity:
    """Something that exists in simulated time."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name or type(self).__name__

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.sim.now

    def after(
        self, delay: float, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Event:
        """Schedule ``fn`` ``delay`` seconds from now."""
        return self.sim.schedule(delay, fn, *args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
