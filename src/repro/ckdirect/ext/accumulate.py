"""Accumulating channels — the paper's "reductions" extension (§6).

An :class:`AccumulateHandle` behaves like a normal CkDirect channel
except that delivery *combines* the incoming data into the receive
buffer (``+``, ``max`` or ``min``) instead of overwriting it.  The
receiver arms the channel once per iteration with an initialized
buffer; each put folds in remotely computed partials with no receiver
involvement beyond the completion callback.

The sentinel mechanics need one refinement: stamping the out-of-band
value into the trailing element would destroy the running partial
there, so an accumulating handle *saves* the displaced trailing value
when arming and restores it just before combining — the signalling
slot and the data slot time-share the same memory.  Strict mode still
detects the contract violation where the combined result happens to
equal the out-of-band value.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ...util.buffers import Buffer
from ..api import register_handle
from ..handle import ChannelState, CkDirectError, CkDirectHandle, SentinelError, UserCallback

if TYPE_CHECKING:  # pragma: no cover
    from ...charm.chare import Chare

ACCUMULATE_OPS = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
}


class AccumulateHandle(CkDirectHandle):
    """A channel whose puts combine into the destination buffer."""

    __slots__ = ("op", "_saved_last")

    def __init__(self, *args, op: str = "sum", **kwargs) -> None:
        if op not in ACCUMULATE_OPS:
            raise CkDirectError(
                f"unknown accumulate op {op!r}; expected {sorted(ACCUMULATE_OPS)}"
            )
        super().__init__(*args, **kwargs)
        self.op = op
        self._saved_last = None

    def stamp_sentinel(self) -> None:
        """Arm: park the trailing partial aside, then stamp the sentinel."""
        if not self.recv_buffer.is_virtual:
            self._saved_last = self.recv_buffer.get_last()
        super().stamp_sentinel()

    def deliver(self) -> None:
        """Land arriving data (combining, for accumulate channels)."""
        self._check_landing()
        src, dst = self.src_buffer, self.recv_buffer
        if not dst.is_virtual and self._saved_last is not None:
            dst.set_last(self._saved_last)  # restore the displaced partial
            self._saved_last = None
        if src is not None and not dst.is_virtual and not src.is_virtual:
            incoming = np.ascontiguousarray(src.array).reshape(dst.array.shape)
            ufunc = ACCUMULATE_OPS[self.op]
            ufunc(dst.array, incoming, out=dst.array)
        if not dst.is_virtual and not self.sentinel_clear():
            raise SentinelError(
                f"{self.name}: accumulated data left the trailing element "
                f"equal to the out-of-band value {self.oob!r}"
            )
        self.arrived = True
        self.state = ChannelState.DELIVERED
        self.puts_completed += 1
        self.bytes_received += dst.nbytes


def create_accumulate_handle(
    chare: "Chare",
    buffer: Buffer,
    oob: Any,
    callback: UserCallback,
    cbdata: Any = None,
    op: str = "sum",
    name: str = "",
) -> AccumulateHandle:
    """Receiver side: create an accumulating channel.

    The receive buffer must already hold the reduction identity (or a
    running partial); each put applies ``op`` element-wise.
    """
    handle = AccumulateHandle(
        chare.rt, chare._pe, buffer, oob, callback, cbdata, name, op=op
    )
    return register_handle(chare, handle)
