"""Unit tests for channel state-machine enforcement (misuse detection)."""

import numpy as np
import pytest

from repro import ABE, SURVEYOR, Buffer, Runtime
from repro import ckdirect as ckd
from repro.ckdirect.handle import ChannelState, ChannelStateError, CkDirectError

from tests.ckdirect.channel_helpers import CROSS, Endpoint


def test_put_before_assoc_rejected(machine):
    rt = Runtime(machine, n_pes=2 * machine.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    handle = arr.element(0).make_handle()
    arr.proxy[1].do_put(handle)
    with pytest.raises(CkDirectError, match="before assoc_local"):
        rt.run()


def test_double_assoc_rejected(channel):
    rt, arr, recv, send, handle = channel
    with pytest.raises(CkDirectError, match="twice"):
        ckd.assoc_local(send, handle, send.send_buf)


def test_size_mismatch_rejected(machine):
    rt = Runtime(machine, n_pes=2 * machine.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    handle = arr.element(0).make_handle()
    with pytest.raises(CkDirectError, match="B"):
        ckd.assoc_local(arr.element(1), handle, Buffer(nbytes=12345))


def test_put_outside_chare_context_rejected(channel):
    rt, arr, recv, send, handle = channel
    with pytest.raises(CkDirectError, match="outside"):
        ckd.put(handle)


def test_put_from_wrong_pe_rejected(machine):
    rt = Runtime(machine, n_pes=3 * machine.cores_per_node)
    from repro.charm import CustomMap

    arr = rt.create_array(
        Endpoint, dims=(3,),
        mapping=CustomMap(lambda idx, dims, n: idx[0] * machine.cores_per_node),
    )
    handle = arr.element(0).make_handle()
    ckd.assoc_local(arr.element(1), handle, arr.element(1).send_buf)
    arr.proxy[2].do_put(handle)  # element 2 did not associate
    with pytest.raises(CkDirectError, match="associated on PE"):
        rt.run()


def test_double_in_flight_put_rejected(machine):
    """Paper: "a CkDirect channel can have at most one message in
    flight"."""

    class DoublePutter(Endpoint):
        def two_puts(self, h):
            ckd.put(h)
            ckd.put(h)

    rt = Runtime(machine, n_pes=2 * machine.cores_per_node)
    arr = rt.create_array(DoublePutter, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle()
    ckd.assoc_local(send, handle, send.send_buf)
    arr.proxy[1].two_puts(handle)
    with pytest.raises(ChannelStateError):
        rt.run()


def test_put_before_rearm_rejected_on_ib():
    """After consumption, a new put without ready() means the receiver
    could never detect it — strict mode flags the app-level
    synchronization bug (Infiniband implementation)."""
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle()
    ckd.assoc_local(send, handle, send.send_buf)
    arr.proxy[1].do_put(handle)
    rt.run()
    assert handle.state is ChannelState.CONSUMED
    arr.proxy[1].do_put(handle)
    with pytest.raises(ChannelStateError, match="synchronization"):
        rt.run()


def test_put_after_consume_legal_on_bgp():
    """The BG/P implementation needs no ready(): completion re-arms."""
    rt = Runtime(SURVEYOR, n_pes=2 * SURVEYOR.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle()
    ckd.assoc_local(send, handle, send.send_buf)
    arr.proxy[1].do_put(handle)
    rt.run()
    arr.proxy[1].do_put(handle)
    rt.run()
    assert handle.puts_completed == 2


def test_ready_mark_before_consume_rejected_on_ib():
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    handle = arr.element(0).make_handle()
    ckd.assoc_local(arr.element(1), handle, arr.element(1).send_buf)
    arr.proxy[0].do_ready_mark(handle)  # nothing consumed yet
    with pytest.raises(ChannelStateError, match="consumed"):
        rt.run()


def test_ready_pollq_without_mark_rejected_on_ib():
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle()
    ckd.assoc_local(send, handle, send.send_buf)
    arr.proxy[1].do_put(handle)
    rt.run()
    arr.proxy[0].do_ready_pollq(handle)  # skipped ready_mark
    with pytest.raises(ChannelStateError, match="sentinel"):
        rt.run()


def test_ready_calls_are_noops_on_bgp():
    rt = Runtime(SURVEYOR, n_pes=2 * SURVEYOR.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle()
    ckd.assoc_local(send, handle, send.send_buf)
    arr.proxy[1].do_put(handle)
    rt.run()
    arr.proxy[0].do_ready(handle)  # legal, no effect required
    arr.proxy[0].do_ready_pollq(handle)
    rt.run()
    assert handle.state in (ChannelState.ARMED, ChannelState.CONSUMED)


def test_state_transitions_observable(channel):
    rt, arr, recv, send, handle = channel
    assert handle.state is ChannelState.ARMED
    arr.proxy[1].do_put(handle)
    rt.run()
    assert handle.state is ChannelState.CONSUMED
    arr.proxy[0].do_ready_mark(handle)
    rt.run()
    if rt.machine.kind == "ib":
        assert handle.state is ChannelState.MARKED
    else:
        assert handle.state is ChannelState.ARMED
