"""Tests for the event log core: records, context stack, installation."""

import pytest

from repro.projections.events import (
    CAT_ENTRY,
    CAT_MSG,
    KIND_INSTANT,
    KIND_SPAN,
    ProjectionsError,
    TraceEvent,
)
from repro.projections.eventlog import (
    EventLog,
    current_tracer,
    install_tracer,
    tracing,
    uninstall_tracer,
)


def test_span_and_instant_records():
    log = EventLog()
    a = log.span(0, 0, CAT_ENTRY, "go", 1.0, 2.0)
    b = log.instant(0, 1, CAT_MSG, "send:go", 1.5, cause=a)
    assert len(log) == 2
    ev_a, ev_b = log.events
    assert ev_a.kind == KIND_SPAN and ev_a.is_span
    assert ev_a.duration == pytest.approx(1.0)
    assert ev_b.kind == KIND_INSTANT and not ev_b.is_span
    assert ev_b.duration == 0.0
    assert ev_b.cause == a
    assert b > a  # ids are allocation-ordered


def test_backwards_span_rejected():
    with pytest.raises(ProjectionsError):
        TraceEvent(0, KIND_SPAN, 0, 0, CAT_ENTRY, "x", 2.0, 1.0)


def test_name_key_strips_qualifier():
    log = EventLog()
    log.instant(0, 0, CAT_MSG, "send:ping", 0.0)
    log.instant(0, 0, CAT_MSG, "send:pong", 0.0)
    log.instant(0, 0, CAT_MSG, "plain", 0.0)
    keys = [ev.name_key for ev in log.events]
    assert keys == ["send", "send", "plain"]


def test_preallocated_eid_for_wrapping_spans():
    log = EventLog()
    eid = log.next_id()
    log.push(eid)
    inner = log.instant(0, 0, CAT_MSG, "send:x", 1.0, cause=log.current)
    log.pop()
    outer = log.span(0, 0, CAT_ENTRY, "go", 0.0, 2.0, eid=eid)
    assert outer == eid
    assert log.events[0].cause == eid  # inner caused by the wrapping span
    assert inner != eid


def test_context_stack_nesting():
    log = EventLog()
    assert log.current is None
    log.push(7)
    log.push(9)
    assert log.current == 9
    log.pop()
    assert log.current == 7
    log.pop()
    assert log.current is None


def test_new_run_sequential_and_recorded():
    log = EventLog()
    owner = object()
    assert log.new_run("charm:Abe", owner=owner, n_pes=4) == 0
    assert log.new_run("mpi:MVAPICH@Abe") == 1
    assert log.runs[0] == ("charm:Abe", owner, 4)
    assert log.runs[1][2] == 0


def test_select_filters():
    log = EventLog()
    log.span(0, 0, CAT_ENTRY, "go", 0.0, 1.0)
    log.span(0, 1, CAT_ENTRY, "go", 0.0, 1.0)
    log.span(1, 0, CAT_ENTRY, "other", 0.0, 1.0)
    log.instant(0, 0, CAT_MSG, "send:go", 0.5)
    assert len(list(log.select(run=0))) == 3
    assert len(list(log.select(pe=0))) == 3
    assert len(list(log.select(category=CAT_MSG))) == 1
    assert len(list(log.select(name_key="send"))) == 1
    assert len(list(log.select(run=0, pe=0, spans_only=True))) == 1


def test_by_eid_and_clear():
    log = EventLog()
    log.new_run("r")
    a = log.span(0, 0, CAT_ENTRY, "go", 0.0, 1.0)
    assert log.by_eid()[a].name == "go"
    log.clear()
    assert len(log) == 0
    assert log.runs  # registrations survive a clear


def test_install_uninstall():
    assert current_tracer() is None
    log = EventLog()
    install_tracer(log)
    try:
        assert current_tracer() is log
    finally:
        uninstall_tracer()
    assert current_tracer() is None


def test_tracing_contextmanager_restores_previous():
    outer = EventLog()
    install_tracer(outer)
    try:
        with tracing() as inner:
            assert current_tracer() is inner
            assert inner is not outer
        assert current_tracer() is outer
    finally:
        uninstall_tracer()
    with tracing() as log:
        assert current_tracer() is log
    assert current_tracer() is None
