"""Fault injection at the fabric boundary.

A :class:`FaultInjector` realizes a :class:`~repro.faults.plan.FaultPlan`
against one :class:`~repro.network.base.Fabric` by *instance-attribute
wrapping*: :meth:`attach` shadows the fabric's ``transfer`` /
``charm_transport`` / ``direct_put`` bound methods with closures on the
instance.  A runtime built without a plan never takes this path, so the
disabled-faults cost is literally zero — no flag test, no indirection,
no extra attribute on the hot path (guarded by
``benchmarks/test_faults_off_micro.py``).

How faults act
--------------
Scope resolution: the ``charm_transport`` / ``direct_put`` wrappers set
the injector's *current scope* before delegating to the original
methods, whose internal ``self.transfer(...)`` calls land on the
``transfer`` wrapper — the single point where faults apply, once per
wire transfer.  (A multi-transfer service like IB rendezvous applies
its scope's rule to each transfer it issues synchronously; built-in
profiles leave the ``charm``/``raw`` scopes fault-free.)  The CkDirect
reliability layer wraps its ack sends in :meth:`scoped`\\ ``("ack")``
so they are governed by the ``ack`` rule rather than ``charm``.

* **stall** — the sending node's NIC freezes for ``stall_time`` before
  this transfer: its injection port is marked busy, back-pressuring the
  transfer (and every later one from that node) through the normal
  occupancy model.
* **drop** — the transfer runs (charging occupancy and wire time — the
  bytes *are* sent) but the delivery callback is replaced with a no-op:
  the receiver never learns anything arrived.
* **dup** — the delivery callback fires normally, then again after a
  sampled gap: the receiver sees the same delivery twice.
* **delay** — the delivery callback is deferred by exponential jitter
  beyond the modelled delivery time.

The CkDirect-specific **torn sentinel** cannot be expressed at this
layer (the fabric does not know the trailing word is special), so the
ckdirect api draws it via :meth:`draw_torn` at put-issue time and
routes delivery through the torn-landing path itself.

Determinism: every decision and every magnitude comes from a dedicated
``(scope, kind)`` :func:`~repro.sim.rng.substream` of the plan's seed,
and draws happen in simulated-event order — so a faulted run is a pure
function of the workload and the seed, byte-identical at any
``--jobs N``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from ..projections.events import CAT_FAULT, NET_TRACK
from ..sim.rng import substream
from .plan import SCOPES, FaultPlan, FaultRule

if TYPE_CHECKING:  # pragma: no cover
    from ..network.base import Fabric
    from ..sim import Simulator

#: Stable integer path keys for RNG substream derivation (names are
#: for humans; substream() takes small-int paths).
_FAULTS_NS = 7  # namespace key separating fault streams from app RNG
_SCOPE_IDX = {s: i for i, s in enumerate(SCOPES)}
_KIND_IDX = {"stall": 0, "drop": 1, "dup": 2, "delay": 3, "torn": 4}


class FaultInjector:
    """Applies a :class:`FaultPlan` to one fabric's transport services."""

    def __init__(self, plan: FaultPlan, sim: "Simulator", trace=None) -> None:
        self.plan = plan
        self.sim = sim
        self.trace = trace
        self.fabric: Optional["Fabric"] = None
        #: injected-fault tally, keyed ``(scope, kind)``.
        self.counts: Dict[Tuple[str, str], int] = {}
        self._scope = "raw"
        self._streams: Dict[Tuple[str, str], object] = {}

    # ------------------------------------------------------------------
    # Deterministic draws
    # ------------------------------------------------------------------

    def _stream(self, scope: str, kind: str):
        key = (scope, kind)
        rng = self._streams.get(key)
        if rng is None:
            rng = substream(
                self.plan.seed, _FAULTS_NS, _SCOPE_IDX[scope], _KIND_IDX[kind]
            )
            self._streams[key] = rng
        return rng

    def _hit(self, scope: str, kind: str, p: float) -> bool:
        return p > 0.0 and self._stream(scope, kind).random() < p

    def _jitter(self, scope: str, kind: str, mean: float) -> float:
        return float(self._stream(scope, kind).exponential(mean))

    def draw_torn(self) -> bool:
        """Put-issue-time draw for the torn-sentinel fault (``put`` scope).

        Called by the ckdirect api, which implements the torn landing —
        see the module docstring for why it cannot live here.
        """
        rule = self.plan.rule("put")
        if self._hit("put", "torn", rule.torn):
            self._note("put", "torn")
            return True
        return False

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _note(self, scope: str, kind: str) -> None:
        key = (scope, kind)
        self.counts[key] = self.counts.get(key, 0) + 1
        if self.trace is not None:
            self.trace.count(f"fault.{scope}.{kind}")
        fabric = self.fabric
        if fabric is not None and fabric.tracer is not None:
            fabric.tracer.instant(
                fabric.trace_run, NET_TRACK, CAT_FAULT, f"{kind}:{scope}",
                self.sim.now,
            )

    @property
    def total_injected(self) -> int:
        """Total faults injected so far (all scopes and kinds)."""
        return sum(self.counts.values())

    # ------------------------------------------------------------------
    # Scope plumbing
    # ------------------------------------------------------------------

    @contextmanager
    def scoped(self, scope: str):
        """Run fabric calls under an explicit fault scope (e.g. ``ack``).

        An explicit scope survives the service wrappers: ``scoped("ack")``
        around a ``charm_transport`` call applies the ``ack`` rule, not
        ``charm``.
        """
        prev, self._scope = self._scope, scope
        try:
            yield
        finally:
            self._scope = prev

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach(self, fabric: "Fabric") -> None:
        """Shadow the fabric's transport services with faulting wrappers."""
        if self.fabric is not None:
            raise RuntimeError("FaultInjector is already attached to a fabric")
        self.fabric = fabric
        sim = self.sim
        plan = self.plan
        orig_transfer = fabric.transfer
        orig_charm = fabric.charm_transport
        orig_put = fabric.direct_put

        def transfer(src, dst, wire_bytes, start, pre, alpha, beta, cb,
                     ser_extra=0.0, lat_extra=0.0):
            scope = self._scope
            rule = plan.rule(scope)
            if rule.active:
                cb = self._filter(scope, rule, src, dst, cb)
            return orig_transfer(src, dst, wire_bytes, start, pre, alpha,
                                 beta, cb, ser_extra, lat_extra)

        def charm_transport(src, dst, payload_bytes, start, cb):
            prev = self._scope
            # An explicitly set scope (ack) wins over the service default.
            self._scope = "charm" if prev == "raw" else prev
            try:
                return orig_charm(src, dst, payload_bytes, start, cb)
            finally:
                self._scope = prev

        def direct_put(src, dst, nbytes, start, cb):
            prev = self._scope
            self._scope = "put" if prev == "raw" else prev
            try:
                return orig_put(src, dst, nbytes, start, cb)
            finally:
                self._scope = prev

        fabric.transfer = transfer  # type: ignore[method-assign]
        fabric.charm_transport = charm_transport  # type: ignore[method-assign]
        fabric.direct_put = direct_put  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # The per-transfer fault pipeline
    # ------------------------------------------------------------------

    def _filter(
        self, scope: str, rule: FaultRule, src: int, dst: int,
        cb: Callable[[], None],
    ) -> Callable[[], None]:
        """Draw this transfer's faults (fixed order: stall, drop, dup,
        delay) and return the possibly transformed delivery callback."""
        sim = self.sim
        fabric = self.fabric
        if self._hit(scope, "stall", rule.stall):
            # Freeze the sender's injection port: this transfer (charged
            # at issue, below) and every later one queue behind it.
            node = fabric.topology.node_of(src)
            free = fabric._tx_free
            free[node] = max(free[node], sim.now) + rule.stall_time
            self._note(scope, "stall")
        if self._hit(scope, "drop", rule.drop):
            self._note(scope, "drop")
            return _dropped
        if self._hit(scope, "dup", rule.dup):
            gap = self._jitter(scope, "dup", rule.delay_mean)
            inner = cb

            def duplicated() -> None:
                inner()
                sim.schedule(gap, inner)

            cb = duplicated
            self._note(scope, "dup")
        if self._hit(scope, "delay", rule.delay):
            jitter = self._jitter(scope, "delay", rule.delay_mean)
            inner2 = cb

            def delayed() -> None:
                sim.schedule(jitter, inner2)

            cb = delayed
            self._note(scope, "delay")
        return cb


def _dropped() -> None:
    """Delivery callback of a dropped transfer (bytes sent, never seen)."""


class ProcFaultInjector:
    """Realizes a :class:`~repro.faults.plan.ProcFaultPlan` inside one
    shard worker process.

    Built post-fork by the worker from ``rt.proc_faults``; rules fire
    at epoch/GVT barriers (``at_barrier`` is called once per round,
    just before the worker reports its barrier state, so the
    coordinator observes the failure exactly where a real mid-epoch
    death would surface: on the next pipe read).  One-shot rules apply
    only to incarnation 0, so a supervised replacement does not re-die
    during its deterministic replay; ``every_incarnation`` rules
    re-fire and walk the run down the degradation ladder.
    """

    def __init__(self, plan, shard_id: int, incarnation: int) -> None:
        self.rules = plan.for_shard(shard_id, incarnation)

    def at_barrier(self, round_no: int) -> None:
        import os
        import signal
        import time

        for r in self.rules:
            if r.kind == "slow":
                time.sleep(r.slow_s)
            elif round_no == r.at_round:
                if r.kind == "kill":
                    os.kill(os.getpid(), signal.SIGKILL)
                else:  # hang: wedge, ignoring the supervisor's SIGTERM
                    signal.signal(signal.SIGTERM, signal.SIG_IGN)
                    while True:  # pragma: no cover - killed externally
                        time.sleep(3600)
