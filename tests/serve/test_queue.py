"""JobManager lifecycle: hit/coalesce/enqueue, backpressure, drain.

Synthetic point kinds keep these fast; they run through the real
SweepRunner (serial in-executor for speed — the forked-worker paths
are covered in test_runner_reuse.py).
"""

import asyncio
import time

import pytest

from repro.serve.jobs import JobManager, JobState, QueueFullError, ServerClosing
from repro.serve.metrics import ServeMetrics
from repro.serve.store import ResultStore
from repro.sweep import RunSpec, register_point


@register_point("q-echo")
def _echo(spec):
    return {"x": dict(spec.params)["x"], "events": 3}


@register_point("q-sleep")
def _sleep(spec):
    time.sleep(dict(spec.params).get("delay", 0.05))
    return {"x": dict(spec.params)["x"], "events": 1}


@register_point("q-fail")
def _fail(spec):
    raise ValueError("queue point exploded on purpose")


def spec_of(kind, x, **kw):
    return RunSpec.make(kind, "Abe", "m", x=x, **kw)


def run(coro):
    return asyncio.run(coro)


async def _manager(tmp_path, **kw):
    kw.setdefault("workers", 1)
    kw.setdefault("max_queue", 4)
    mgr = JobManager(ResultStore(tmp_path / "store"), ServeMetrics(), **kw)
    await mgr.start()
    return mgr


async def _wait_done(mgr, job, deadline=10.0):
    t_end = time.monotonic() + deadline
    version = -1
    while not job.terminal:
        if time.monotonic() >= t_end:
            raise TimeoutError(f"job {job.id} stuck in {job.state}")
        version = await asyncio.wait_for(
            job.wait_change(version if version >= 0 else 0), deadline
        )
    return job


class TestSubmit:
    def test_miss_then_hit(self, tmp_path):
        async def main():
            mgr = await _manager(tmp_path)
            j1 = mgr.submit([spec_of("q-echo", 1)])
            assert j1.state == JobState.QUEUED and not j1.cached
            await _wait_done(mgr, j1)
            assert j1.state == JobState.DONE and j1.payload

            j2 = mgr.submit([spec_of("q-echo", 1)])
            assert j2.cached and j2.state == JobState.DONE
            assert j2.payload == j1.payload          # byte-identical
            assert j2.id != j1.id
            assert mgr.metrics.hits == 1 and mgr.metrics.misses == 1
            assert mgr.metrics.completed == 1        # computed exactly once
            await mgr.shutdown()
        run(main())

    def test_concurrent_submits_coalesce(self, tmp_path):
        async def main():
            mgr = await _manager(tmp_path)
            j1 = mgr.submit([spec_of("q-sleep", 1, delay=0.2)])
            j2 = mgr.submit([spec_of("q-sleep", 1, delay=0.2)])
            assert j2 is j1                          # one computation, two callers
            assert mgr.metrics.coalesced == 1
            await _wait_done(mgr, j1)
            assert mgr.metrics.completed == 1
            await mgr.shutdown()
        run(main())

    def test_failed_point_fails_job_and_is_not_cached(self, tmp_path):
        async def main():
            mgr = await _manager(tmp_path)
            j = mgr.submit([spec_of("q-fail", 1)])
            await _wait_done(mgr, j)
            assert j.state == JobState.FAILED
            assert "exploded" in j.error
            assert j.payload is None
            assert len(mgr.store) == 0               # failures never cached
            # Resubmitting retries instead of hitting a poisoned cache.
            j2 = mgr.submit([spec_of("q-fail", 1)])
            assert not j2.cached
            await _wait_done(mgr, j2)
            assert mgr.metrics.failed == 2
            await mgr.shutdown()
        run(main())

    def test_progress_advances_per_point(self, tmp_path):
        async def main():
            mgr = await _manager(tmp_path)
            specs = [spec_of("q-sleep", i, delay=0.03) for i in range(4)]
            j = mgr.submit(specs)
            seen = set()
            version = -1
            while not j.terminal:
                seen.add(j.done_points)
                version = await j.wait_change(version if version >= 0 else 0)
            assert j.done_points == 4
            assert len(seen) >= 2                    # observed intermediate progress
            await mgr.shutdown()
        run(main())


class TestBackpressure:
    def test_queue_full_raises_with_retry_after(self, tmp_path):
        async def main():
            mgr = await _manager(tmp_path, workers=1, max_queue=2)
            jobs = [mgr.submit([spec_of("q-sleep", 0, delay=0.3)])]
            await asyncio.sleep(0.05)  # let the worker claim job 0
            jobs += [mgr.submit([spec_of("q-sleep", i, delay=0.3)]) for i in (1, 2)]
            with pytest.raises(QueueFullError) as exc:
                # Worker holds one job; two sit queued; the next must bounce.
                mgr.submit([spec_of("q-sleep", 99, delay=0.3)])
            assert exc.value.retry_after >= 1.0
            assert mgr.metrics.rejected == 1
            for j in jobs:
                await _wait_done(mgr, j)
            await mgr.shutdown()
        run(main())

    def test_queue_reopens_after_drain(self, tmp_path):
        async def main():
            mgr = await _manager(tmp_path, workers=1, max_queue=1)
            j1 = mgr.submit([spec_of("q-sleep", 1, delay=0.1)])
            await asyncio.sleep(0.05)  # worker claims j1, queue frees
            j2 = mgr.submit([spec_of("q-sleep", 2, delay=0.1)])
            await _wait_done(mgr, j1)
            await _wait_done(mgr, j2)
            j3 = mgr.submit([spec_of("q-echo", 3)])   # accepted again
            await _wait_done(mgr, j3)
            assert j3.state == JobState.DONE
            await mgr.shutdown()
        run(main())


class TestShutdown:
    def test_drain_completes_accepted_jobs(self, tmp_path):
        async def main():
            mgr = await _manager(tmp_path, workers=2, max_queue=8)
            jobs = [mgr.submit([spec_of("q-sleep", i, delay=0.05)]) for i in range(6)]
            await mgr.shutdown(drain=True)
            assert all(j.state == JobState.DONE for j in jobs)
            assert mgr.metrics.completed == 6
        run(main())

    def test_submit_after_close_rejected(self, tmp_path):
        async def main():
            mgr = await _manager(tmp_path)
            await mgr.shutdown()
            with pytest.raises(ServerClosing):
                mgr.submit([spec_of("q-echo", 1)])
        run(main())

    def test_drained_results_are_cached(self, tmp_path):
        async def main():
            mgr = await _manager(tmp_path)
            mgr.submit([spec_of("q-echo", 42)])
            await mgr.shutdown(drain=True)
            assert len(mgr.store) == 1
            # A fresh manager over the same store hits immediately.
            mgr2 = await _manager(tmp_path)
            j = mgr2.submit([spec_of("q-echo", 42)])
            assert j.cached and j.state == JobState.DONE
            await mgr2.shutdown()
        run(main())


class TestValidation:
    def test_bad_pool_config_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        with pytest.raises(ValueError):
            JobManager(store, workers=0)
        with pytest.raises(ValueError):
            JobManager(store, max_queue=0)
