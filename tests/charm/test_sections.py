"""Unit tests for array sections (sub-array multicast + reduction)."""

import pytest

from repro import ABE, Chare, CkCallback, Runtime
from repro.charm import CharmError
from repro.charm.errors import ContextError
from repro.charm.section import binomial_children, binomial_parent


class Member(Chare):
    def __init__(self):
        self.pings = 0

    def ping(self):
        self.pings += 1

    def contrib(self, section, cb):
        self.contribute(float(self.index1d), "sum", cb, section=section)

    def contrib_array(self, cb):
        self.contribute(1.0, "sum", cb)

    def bad_contrib(self, section, cb):
        self.contribute(1.0, "sum", cb, section=section)


def test_binomial_helpers():
    assert binomial_parent(0) is None
    assert binomial_parent(5) == 4
    assert binomial_parent(6) == 4
    assert binomial_children(0, 8) == [1, 2, 4]
    assert binomial_children(4, 8) == [5, 6]
    assert binomial_children(6, 8) == [7]
    assert binomial_children(7, 8) == []


def test_section_construction_normalizes_and_dedupes():
    rt = Runtime(ABE, n_pes=4)
    arr = rt.create_array(Member, dims=(8,))
    sec = arr.section([0, 2, (2,), 4])
    assert sec.indices == ((0,), (2,), (4,))
    assert sec.size == 3
    assert sec.contains(2)
    assert not sec.contains(1)


def test_empty_section_rejected():
    rt = Runtime(ABE, n_pes=4)
    arr = rt.create_array(Member, dims=(4,))
    with pytest.raises(CharmError, match="at least one"):
        arr.section([])


def test_section_multicast_hits_members_only():
    rt = Runtime(ABE, n_pes=4)
    arr = rt.create_array(Member, dims=(8,))
    sec = arr.section([1, 3, 5])
    sec.bcast("ping")
    rt.run()
    for i in range(8):
        assert arr.element(i).pings == (1 if i in (1, 3, 5) else 0)


def test_section_reduction():
    rt = Runtime(ABE, n_pes=4)
    arr = rt.create_array(Member, dims=(8,))
    sec = arr.section([2, 4, 6])
    got = []
    sec.bcast("contrib", sec, CkCallback.host(got.append))
    rt.run()
    assert got == [2.0 + 4.0 + 6.0]


def test_section_barrier_waits_for_all_members():
    class Slow(Chare):
        def go(self, section, cb):
            if self.index1d == 6:
                self.charge(3e-3)
            self.contribute(callback=cb, section=section)

    rt = Runtime(ABE, n_pes=4)
    arr = rt.create_array(Slow, dims=(8,))
    sec = arr.section([2, 6])
    t = []
    sec.bcast("go", sec, CkCallback.host(lambda v: t.append(rt.now)))
    rt.run()
    assert t[0] >= 3e-3


def test_section_and_array_epochs_independent():
    rt = Runtime(ABE, n_pes=4)
    arr = rt.create_array(Member, dims=(8,))
    sec = arr.section(list(range(8)))
    got = []
    # array-wide reduction and (full) section reduction interleave
    arr.proxy.bcast("contrib_array", CkCallback.host(lambda v: got.append(("arr", v))))
    sec.bcast("contrib", sec, CkCallback.host(lambda v: got.append(("sec", v))))
    rt.run()
    assert ("arr", 8.0) in got
    assert ("sec", float(sum(range(8)))) in got


def test_non_member_contribution_rejected():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Member, dims=(4,))
    sec = arr.section([0, 1])
    arr.proxy[3].bad_contrib(sec, CkCallback.ignore())
    with pytest.raises(ContextError, match="not a\n?.*member|not a member"):
        rt.run()


def test_foreign_array_section_rejected():
    rt = Runtime(ABE, n_pes=2)
    a1 = rt.create_array(Member, dims=(2,))
    a2 = rt.create_array(Member, dims=(2,))
    sec2 = a2.section([0])
    a1.proxy[0].bad_contrib(sec2, CkCallback.ignore())
    with pytest.raises(ContextError, match="different array"):
        rt.run()


def test_section_on_sparse_pes():
    from repro.charm import CustomMap

    rt = Runtime(ABE, n_pes=8)
    arr = rt.create_array(
        Member, dims=(6,),
        mapping=CustomMap(lambda idx, dims, n: idx[0]),
    )
    sec = arr.section([1, 3, 5])
    assert sec.home_pes == [1, 3, 5]
    sec.bcast("ping")
    rt.run()
    assert all(arr.element(i).pings == 1 for i in (1, 3, 5))


def test_section_tree_consistency():
    rt = Runtime(ABE, n_pes=16)
    arr = rt.create_array(Member, dims=(16,))
    sec = arr.section(list(range(0, 16, 2)))
    root = sec.home_pes[0]
    assert sec.tree_parent(root) is None
    children = [c for pe in sec.home_pes for c in sec.tree_children(pe)]
    assert sorted(children) == sorted(p for p in sec.home_pes if p != root)


def test_unknown_collective_id():
    rt = Runtime(ABE, n_pes=2)
    with pytest.raises(CharmError, match="unknown collective"):
        rt.collective(999)
