/* Compiled calendar-queue DES core.
 *
 * A CPython C implementation of the simulator hot path: the ladder
 * variant of a calendar queue (sorted current rung drained by index,
 * unsorted future rung, O(1) appends, one sort per refill) plus the
 * schedule / at / schedule_batch / run / run_before loops, and a
 * C-level Event type.
 *
 * Semantics mirror repro.sim.engine.Simulator exactly: events are
 * totally ordered by (time, priority, seq); time arithmetic is IEEE
 * double in both interpreters, so runs are bit-identical to the pure
 * Python engines.  See repro/sim/eventq.py for the pure-Python
 * fallback and DESIGN.md section 10 for the determinism argument.
 *
 * Built optionally (hand-written C99, no Cython/mypyc dependency) by
 * setup.py; repro.sim.eventq falls back to the pure-Python ladder
 * when the module is absent.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* Entry and ordering                                                 */
/* ------------------------------------------------------------------ */

typedef struct {
    double time;
    long prio;
    long long seq;
    PyObject *ev;          /* strong ref to CEvent */
} Entry;

/* (time, priority, seq) lexicographic; seq unique => never equal. */
static inline int
entry_lt(const Entry *a, const Entry *b)
{
    if (a->time != b->time)
        return a->time < b->time;
    if (a->prio != b->prio)
        return a->prio < b->prio;
    return a->seq < b->seq;
}

static int
entry_cmp_qsort(const void *pa, const void *pb)
{
    const Entry *a = (const Entry *)pa, *b = (const Entry *)pb;
    return entry_lt(a, b) ? -1 : 1;
}

/* ------------------------------------------------------------------ */
/* Types                                                              */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    double time;
    long priority;
    long long seq;
    PyObject *fn;          /* strong */
    PyObject *args;        /* strong, tuple */
    PyObject *kwargs;      /* strong dict or NULL (empty) */
    PyObject *sim;         /* strong ref to owning CalSim, or NULL */
    char cancelled;
    char popped;
} CEventObject;

typedef struct {
    PyObject_HEAD
    double now;
    long long seq;
    long long events_processed;
    long long cancelled_pending;   /* cancelled but still queued */
    int running;
    /* current rung: sorted ascending, drained via cur_pos */
    Entry *cur;
    Py_ssize_t cur_len, cur_cap, cur_pos;
    /* future rung: unsorted appends, every key > cur[cur_len-1] */
    Entry *top;
    Py_ssize_t top_len, top_cap;
} CalSimObject;

static PyTypeObject CEvent_Type;
static PyTypeObject CalSim_Type;
static PyObject *SimulationError;   /* borrowed from repro.sim.engine */

#define COMPACT_MIN 64
#define TRIM_POS 4096

static void calsim_note_cancel(CalSimObject *self);

/* ------------------------------------------------------------------ */
/* CEvent                                                             */
/* ------------------------------------------------------------------ */

static CEventObject *cevent_freelist[64];
static int cevent_numfree = 0;

static CEventObject *
cevent_new(double time, long priority, long long seq,
           PyObject *fn, PyObject *args, PyObject *kwargs, PyObject *sim)
{
    CEventObject *ev;
    if (cevent_numfree) {
        ev = cevent_freelist[--cevent_numfree];
        _Py_NewReference((PyObject *)ev);
    }
    else {
        ev = PyObject_GC_New(CEventObject, &CEvent_Type);
        if (ev == NULL)
            return NULL;
    }
    ev->time = time;
    ev->priority = priority;
    ev->seq = seq;
    Py_INCREF(fn);
    ev->fn = fn;
    Py_INCREF(args);
    ev->args = args;
    Py_XINCREF(kwargs);
    ev->kwargs = kwargs;
    Py_XINCREF(sim);
    ev->sim = sim;
    ev->cancelled = 0;
    ev->popped = 0;
    PyObject_GC_Track(ev);
    return ev;
}

static void
cevent_dealloc(CEventObject *self)
{
    PyObject_GC_UnTrack(self);
    Py_CLEAR(self->fn);
    Py_CLEAR(self->args);
    Py_CLEAR(self->kwargs);
    Py_CLEAR(self->sim);
    if (cevent_numfree < 64 && Py_TYPE(self) == &CEvent_Type)
        cevent_freelist[cevent_numfree++] = self;
    else
        PyObject_GC_Del(self);
}

static int
cevent_traverse(CEventObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->fn);
    Py_VISIT(self->args);
    Py_VISIT(self->kwargs);
    Py_VISIT(self->sim);
    return 0;
}

static int
cevent_clear(CEventObject *self)
{
    Py_CLEAR(self->fn);
    Py_CLEAR(self->args);
    Py_CLEAR(self->kwargs);
    Py_CLEAR(self->sim);
    return 0;
}

static PyObject *
cevent_cancel(CEventObject *self, PyObject *Py_UNUSED(ignored))
{
    if (!self->cancelled) {
        self->cancelled = 1;
        /* PyObject_TypeCheck, not an exact match: the Python wrapper
         * (CompiledSimulator) subclasses CalendarSimCore. */
        if (!self->popped && self->sim != NULL &&
            PyObject_TypeCheck(self->sim, &CalSim_Type))
            calsim_note_cancel((CalSimObject *)self->sim);
    }
    Py_RETURN_NONE;
}

static PyObject *
cevent_fire(CEventObject *self, PyObject *Py_UNUSED(ignored))
{
    if (self->cancelled)
        Py_RETURN_NONE;
    PyObject *res = PyObject_Call(self->fn, self->args, self->kwargs);
    if (res == NULL)
        return NULL;
    Py_DECREF(res);
    Py_RETURN_NONE;
}

static PyObject *
cevent_sort_key(CEventObject *self, PyObject *Py_UNUSED(ignored))
{
    return Py_BuildValue("(dlL)", self->time, self->priority, self->seq);
}

static PyObject *
cevent_richcompare(PyObject *a, PyObject *b, int op)
{
    if (op != Py_LT || Py_TYPE(a) != &CEvent_Type || Py_TYPE(b) != &CEvent_Type)
        Py_RETURN_NOTIMPLEMENTED;
    CEventObject *ea = (CEventObject *)a, *eb = (CEventObject *)b;
    Entry x = {ea->time, ea->priority, ea->seq, NULL};
    Entry y = {eb->time, eb->priority, eb->seq, NULL};
    return PyBool_FromLong(entry_lt(&x, &y));
}

static PyObject *
cevent_get_cancelled(CEventObject *self, void *closure)
{
    return PyBool_FromLong(self->cancelled);
}

static PyObject *
cevent_get_kwargs(CEventObject *self, void *closure)
{
    if (self->kwargs == NULL)
        Py_RETURN_NONE;
    Py_INCREF(self->kwargs);
    return self->kwargs;
}

static PyObject *
cevent_repr(CEventObject *self)
{
    PyObject *t = PyFloat_FromDouble(self->time);
    if (t == NULL)
        return NULL;
    PyObject *out = PyUnicode_FromFormat(
        "<Event t=%R prio=%ld seq=%lld%s>",
        t, self->priority, self->seq,
        self->cancelled ? " CANCELLED" : "");
    Py_DECREF(t);
    return out;
}

static PyMethodDef cevent_methods[] = {
    {"cancel", (PyCFunction)cevent_cancel, METH_NOARGS,
     "Mark the event so it is skipped when popped."},
    {"fire", (PyCFunction)cevent_fire, METH_NOARGS,
     "Invoke the callback unless cancelled."},
    {"sort_key", (PyCFunction)cevent_sort_key, METH_NOARGS,
     "The (time, priority, seq) ordering tuple."},
    {NULL}
};

static PyMemberDef cevent_members[] = {
    {"time", T_DOUBLE, offsetof(CEventObject, time), READONLY, NULL},
    {"priority", T_LONG, offsetof(CEventObject, priority), READONLY, NULL},
    {"fn", T_OBJECT, offsetof(CEventObject, fn), READONLY, NULL},
    {"args", T_OBJECT, offsetof(CEventObject, args), READONLY, NULL},
    {NULL}
};

static PyObject *
cevent_get_seq(CEventObject *self, void *closure)
{
    return PyLong_FromLongLong(self->seq);
}

static PyGetSetDef cevent_getset[] = {
    {"seq", (getter)cevent_get_seq, NULL, NULL, NULL},
    {"cancelled", (getter)cevent_get_cancelled, NULL,
     "True once cancel() was called.", NULL},
    {"_cancelled", (getter)cevent_get_cancelled, NULL, NULL, NULL},
    {"kwargs", (getter)cevent_get_kwargs, NULL, NULL, NULL},
    {NULL}
};

static PyTypeObject CEvent_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ceventq.Event",
    .tp_basicsize = sizeof(CEventObject),
    .tp_dealloc = (destructor)cevent_dealloc,
    .tp_repr = (reprfunc)cevent_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A pending callback in simulated time (compiled core).",
    .tp_traverse = (traverseproc)cevent_traverse,
    .tp_clear = (inquiry)cevent_clear,
    .tp_richcompare = cevent_richcompare,
    .tp_methods = cevent_methods,
    .tp_members = cevent_members,
    .tp_getset = cevent_getset,
};

/* ------------------------------------------------------------------ */
/* CalSim storage helpers                                             */
/* ------------------------------------------------------------------ */

static int
grow(Entry **arr, Py_ssize_t *cap, Py_ssize_t need)
{
    if (need <= *cap)
        return 0;
    Py_ssize_t ncap = *cap ? *cap : 64;
    while (ncap < need)
        ncap *= 2;
    Entry *p = (Entry *)PyMem_Realloc(*arr, (size_t)ncap * sizeof(Entry));
    if (p == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    *arr = p;
    *cap = ncap;
    return 0;
}

/* Insert into the sorted live region cur[cur_pos..cur_len). */
static int
cur_insort(CalSimObject *self, const Entry *e)
{
    if (grow(&self->cur, &self->cur_cap, self->cur_len + 1) < 0)
        return -1;
    Py_ssize_t lo = self->cur_pos, hi = self->cur_len;
    Entry *cur = self->cur;
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) >> 1;
        if (entry_lt(&cur[mid], e))
            lo = mid + 1;
        else
            hi = mid;
    }
    memmove(cur + lo + 1, cur + lo,
            (size_t)(self->cur_len - lo) * sizeof(Entry));
    cur[lo] = *e;
    self->cur_len++;
    return 0;
}

/* Push one entry; steals no references (caller must own e->ev and
 * keep that ownership transferring into the queue). */
static int
queue_push(CalSimObject *self, const Entry *e)
{
    if (self->cur_pos < self->cur_len &&
        entry_lt(e, &self->cur[self->cur_len - 1]))
        return cur_insort(self, e);
    if (grow(&self->top, &self->top_cap, self->top_len + 1) < 0)
        return -1;
    self->top[self->top_len++] = *e;
    return 0;
}

/* Drop the consumed prefix so cur cannot grow without bound when the
 * rung never fully drains (self-rescheduling chains insort ahead of
 * the read pointer). */
static inline void
cur_trim(CalSimObject *self)
{
    if (self->cur_pos >= TRIM_POS) {
        memmove(self->cur, self->cur + self->cur_pos,
                (size_t)(self->cur_len - self->cur_pos) * sizeof(Entry));
        self->cur_len -= self->cur_pos;
        self->cur_pos = 0;
    }
}

/* Refill cur from top when drained.  Returns live entry count. */
static Py_ssize_t
queue_refill(CalSimObject *self)
{
    if (self->cur_pos >= self->cur_len) {
        self->cur_len = 0;
        self->cur_pos = 0;
        if (self->top_len == 0)
            return 0;
        qsort(self->top, (size_t)self->top_len, sizeof(Entry),
              entry_cmp_qsort);
        /* swap rungs: sorted former-top becomes current */
        Entry *t = self->cur;
        Py_ssize_t tcap = self->cur_cap;
        self->cur = self->top;
        self->cur_cap = self->top_cap;
        self->cur_len = self->top_len;
        self->top = t;
        self->top_cap = tcap;
        self->top_len = 0;
    }
    return self->cur_len - self->cur_pos;
}

static void
calsim_note_cancel(CalSimObject *self)
{
    self->cancelled_pending++;
    Py_ssize_t pending = (self->cur_len - self->cur_pos) + self->top_len;
    if (self->cancelled_pending > COMPACT_MIN &&
        self->cancelled_pending * 2 > pending) {
        /* Compact in place: the run loop re-reads cur/cur_pos after
         * every callback and holds no Entry pointer across one, so
         * filtering the live regions here (possibly mid-run, from a
         * cancel inside a callback) is safe.  Only the unread tail of
         * cur moves; cur_pos stays valid. */
        Entry *cur = self->cur;
        Py_ssize_t w = self->cur_pos;
        for (Py_ssize_t i = self->cur_pos; i < self->cur_len; i++) {
            CEventObject *ev = (CEventObject *)cur[i].ev;
            if (ev->cancelled) {
                ev->popped = 1;
                Py_DECREF(ev);
            }
            else
                cur[w++] = cur[i];
        }
        self->cur_len = w;
        Entry *top = self->top;
        Py_ssize_t tw = 0;
        for (Py_ssize_t i = 0; i < self->top_len; i++) {
            CEventObject *ev = (CEventObject *)top[i].ev;
            if (ev->cancelled) {
                ev->popped = 1;
                Py_DECREF(ev);
            }
            else
                top[tw++] = top[i];
        }
        self->top_len = tw;
        self->cancelled_pending = 0;
    }
}

/* ------------------------------------------------------------------ */
/* CalSim lifecycle                                                   */
/* ------------------------------------------------------------------ */

static PyObject *
calsim_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    CalSimObject *self = (CalSimObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->now = 0.0;
    self->seq = 0;
    self->events_processed = 0;
    self->cancelled_pending = 0;
    self->running = 0;
    self->cur = NULL;
    self->cur_len = self->cur_cap = self->cur_pos = 0;
    self->top = NULL;
    self->top_len = self->top_cap = 0;
    return (PyObject *)self;
}

static int
calsim_traverse(CalSimObject *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = self->cur_pos; i < self->cur_len; i++)
        Py_VISIT(self->cur[i].ev);
    for (Py_ssize_t i = 0; i < self->top_len; i++)
        Py_VISIT(self->top[i].ev);
    return 0;
}

static int
calsim_clear_entries(CalSimObject *self)
{
    /* Release live refs; safe against re-entry because the regions
     * are emptied before the DECREFs run. */
    Entry *cur = self->cur;
    Py_ssize_t lo = self->cur_pos, hi = self->cur_len;
    self->cur_len = self->cur_pos = 0;
    for (Py_ssize_t i = lo; i < hi; i++)
        Py_DECREF(cur[i].ev);
    Entry *top = self->top;
    Py_ssize_t tn = self->top_len;
    self->top_len = 0;
    for (Py_ssize_t i = 0; i < tn; i++)
        Py_DECREF(top[i].ev);
    self->cancelled_pending = 0;
    return 0;
}

static int
calsim_clear(CalSimObject *self)
{
    return calsim_clear_entries(self);
}

static void
calsim_dealloc(CalSimObject *self)
{
    PyObject_GC_UnTrack(self);
    calsim_clear_entries(self);
    PyMem_Free(self->cur);
    PyMem_Free(self->top);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* ------------------------------------------------------------------ */
/* Scheduling                                                         */
/* ------------------------------------------------------------------ */

/* Shared tail of schedule()/at(): build the event, push, return it. */
static PyObject *
schedule_common(CalSimObject *self, double t, PyObject *args,
                PyObject *kwds)
{
    long priority = 0;
    PyObject *cb_kwargs = NULL;       /* owned when != NULL */
    if (kwds != NULL && PyDict_GET_SIZE(kwds) > 0) {
        PyObject *prio = PyDict_GetItemString(kwds, "priority");
        if (prio != NULL) {
            priority = PyLong_AsLong(prio);
            if (priority == -1 && PyErr_Occurred())
                return NULL;
            if (PyDict_GET_SIZE(kwds) > 1) {
                cb_kwargs = PyDict_Copy(kwds);
                if (cb_kwargs == NULL)
                    return NULL;
                if (PyDict_DelItemString(cb_kwargs, "priority") < 0) {
                    Py_DECREF(cb_kwargs);
                    return NULL;
                }
            }
        }
        else {
            cb_kwargs = kwds;
            Py_INCREF(cb_kwargs);
        }
    }
    PyObject *fn = PyTuple_GET_ITEM(args, 1);
    PyObject *cb_args = PyTuple_GetSlice(args, 2, PyTuple_GET_SIZE(args));
    if (cb_args == NULL) {
        Py_XDECREF(cb_kwargs);
        return NULL;
    }
    long long seq = self->seq++;
    CEventObject *ev = cevent_new(t, priority, seq, fn, cb_args,
                                  cb_kwargs, (PyObject *)self);
    Py_DECREF(cb_args);
    Py_XDECREF(cb_kwargs);
    if (ev == NULL) {
        self->seq--;
        return NULL;
    }
    Entry e = {t, priority, seq, (PyObject *)ev};
    Py_INCREF(ev);                    /* the queue's reference */
    if (queue_push(self, &e) < 0) {
        self->seq--;
        Py_DECREF(ev);
        Py_DECREF(ev);
        return NULL;
    }
    return (PyObject *)ev;
}

static PyObject *
calsim_schedule(CalSimObject *self, PyObject *args, PyObject *kwds)
{
    if (PyTuple_GET_SIZE(args) < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule() requires (delay, fn, ...)");
        return NULL;
    }
    double delay = PyFloat_AsDouble(PyTuple_GET_ITEM(args, 0));
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (!(delay >= 0.0)) {
        PyErr_Format(SimulationError, "negative delay: %R",
                     PyTuple_GET_ITEM(args, 0));
        return NULL;
    }
    return schedule_common(self, self->now + delay, args, kwds);
}

static PyObject *
calsim_at(CalSimObject *self, PyObject *args, PyObject *kwds)
{
    if (PyTuple_GET_SIZE(args) < 2) {
        PyErr_SetString(PyExc_TypeError, "at() requires (time, fn, ...)");
        return NULL;
    }
    double t = PyFloat_AsDouble(PyTuple_GET_ITEM(args, 0));
    if (t == -1.0 && PyErr_Occurred())
        return NULL;
    if (!(t >= self->now)) {
        PyObject *nowf = PyFloat_FromDouble(self->now);
        PyErr_Format(SimulationError,
                     "cannot schedule in the past: t=%R < now=%R",
                     PyTuple_GET_ITEM(args, 0), nowf);
        Py_XDECREF(nowf);
        return NULL;
    }
    return schedule_common(self, t, args, kwds);
}

static PyObject *
calsim_schedule_batch(CalSimObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"entries", "priority", NULL};
    PyObject *entries;
    long priority = 0;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|l", kwlist,
                                     &entries, &priority))
        return NULL;
    PyObject *seq_list = PySequence_Fast(entries, "entries must be iterable");
    if (seq_list == NULL)
        return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq_list);
    PyObject **items = PySequence_Fast_ITEMS(seq_list);
    /* Validate and stage first: a failed batch must admit nothing
     * (neither queue nor sequence counter may move). */
    PyObject *events = PyList_New(n);
    if (events == NULL) {
        Py_DECREF(seq_list);
        return NULL;
    }
    double now = self->now;
    long long seq = self->seq;
    Py_ssize_t done = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *item = items[i];
        if (!PyTuple_Check(item) || PyTuple_GET_SIZE(item) != 3) {
            PyErr_SetString(PyExc_TypeError,
                            "batch entries must be (time, fn, args) tuples");
            goto fail;
        }
        double t = PyFloat_AsDouble(PyTuple_GET_ITEM(item, 0));
        if (t == -1.0 && PyErr_Occurred())
            goto fail;
        if (!(t >= now)) {
            PyObject *nowf = PyFloat_FromDouble(now);
            PyErr_Format(SimulationError,
                         "cannot schedule in the past: t=%R < now=%R",
                         PyTuple_GET_ITEM(item, 0), nowf);
            Py_XDECREF(nowf);
            goto fail;
        }
        PyObject *cb_args = PyTuple_GET_ITEM(item, 2);
        if (!PyTuple_Check(cb_args)) {
            PyErr_SetString(PyExc_TypeError,
                            "batch entry args must be a tuple");
            goto fail;
        }
        CEventObject *ev = cevent_new(t, priority, seq + i,
                                      PyTuple_GET_ITEM(item, 1),
                                      cb_args,
                                      NULL, (PyObject *)self);
        if (ev == NULL)
            goto fail;
        PyList_SET_ITEM(events, i, (PyObject *)ev);
        done = i + 1;
    }
    /* Commit. */
    self->seq = seq + n;
    for (Py_ssize_t i = 0; i < n; i++) {
        CEventObject *ev = (CEventObject *)PyList_GET_ITEM(events, i);
        Entry e = {ev->time, ev->priority, ev->seq, (PyObject *)ev};
        Py_INCREF(ev);
        if (queue_push(self, &e) < 0) {
            /* OOM mid-commit: drop the uncommitted remainder. */
            Py_DECREF(ev);
            Py_DECREF(seq_list);
            Py_DECREF(events);
            return NULL;
        }
    }
    Py_DECREF(seq_list);
    return events;
fail:
    (void)done;
    Py_DECREF(seq_list);
    Py_DECREF(events);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* Execution                                                          */
/* ------------------------------------------------------------------ */

static int
fire_event(CEventObject *ev)
{
    PyObject *res = PyObject_Call(ev->fn, ev->args, ev->kwargs);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

static PyObject *
calsim_run(CalSimObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"until", "max_events", NULL};
    PyObject *until_obj = Py_None, *max_obj = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|OO", kwlist,
                                     &until_obj, &max_obj))
        return NULL;
    int has_until = until_obj != Py_None;
    int has_max = max_obj != Py_None;
    double until = 0.0;
    long long max_events = 0;
    if (has_until) {
        until = PyFloat_AsDouble(until_obj);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
    }
    if (has_max) {
        max_events = PyLong_AsLongLong(max_obj);
        if (max_events == -1 && PyErr_Occurred())
            return NULL;
    }
    if (self->running) {
        PyErr_SetString(SimulationError, "Simulator.run() is not reentrant");
        return NULL;
    }
    self->running = 1;
    long long fired = 0;
    int err = 0;
    int drained = 0;
    for (;;) {
        if (has_max && fired >= max_events)
            break;
        if (queue_refill(self) == 0) {
            drained = 1;
            break;
        }
        cur_trim(self);
        Entry *e = &self->cur[self->cur_pos];
        CEventObject *ev = (CEventObject *)e->ev;
        if (ev->cancelled) {
            self->cur_pos++;
            ev->popped = 1;
            self->cancelled_pending--;
            Py_DECREF(ev);
            continue;
        }
        if (has_until && e->time > until) {
            self->now = until;
            self->events_processed += fired;
            self->running = 0;
            Py_RETURN_NONE;
        }
        self->cur_pos++;
        ev->popped = 1;
        self->now = e->time;
        fired++;
        /* After the callback the entry pointer may be stale (insort
         * shifts or reallocs cur) — never touch e again. */
        err = fire_event(ev);
        Py_DECREF(ev);
        if (err < 0)
            break;
    }
    /* Python advances the clock to `until` only when the queue
     * drained (a max_events stop leaves the clock at the last
     * event). */
    if (err == 0 && drained && has_until && until > self->now)
        self->now = until;
    self->events_processed += fired;
    self->running = 0;
    if (err < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
calsim_run_before(CalSimObject *self, PyObject *arg)
{
    double bound = PyFloat_AsDouble(arg);
    if (bound == -1.0 && PyErr_Occurred())
        return NULL;
    if (self->running) {
        PyErr_SetString(SimulationError,
                        "Simulator.run_before() is not reentrant");
        return NULL;
    }
    self->running = 1;
    long long fired = 0;
    int err = 0;
    for (;;) {
        if (queue_refill(self) == 0)
            break;
        cur_trim(self);
        Entry *e = &self->cur[self->cur_pos];
        CEventObject *ev = (CEventObject *)e->ev;
        if (ev->cancelled) {
            self->cur_pos++;
            ev->popped = 1;
            self->cancelled_pending--;
            Py_DECREF(ev);
            continue;
        }
        if (e->time >= bound)
            break;
        self->cur_pos++;
        ev->popped = 1;
        self->now = e->time;
        fired++;
        err = fire_event(ev);
        Py_DECREF(ev);
        if (err < 0)
            break;
    }
    self->events_processed += fired;
    self->running = 0;
    if (err < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
calsim_step(CalSimObject *self, PyObject *Py_UNUSED(ignored))
{
    for (;;) {
        if (queue_refill(self) == 0)
            Py_RETURN_FALSE;
        cur_trim(self);
        Entry *e = &self->cur[self->cur_pos];
        CEventObject *ev = (CEventObject *)e->ev;
        self->cur_pos++;
        ev->popped = 1;
        if (ev->cancelled) {
            self->cancelled_pending--;
            Py_DECREF(ev);
            continue;
        }
        self->now = e->time;
        self->events_processed++;
        int err = fire_event(ev);
        Py_DECREF(ev);
        if (err < 0)
            return NULL;
        Py_RETURN_TRUE;
    }
}

static PyObject *
calsim_next_event_time(CalSimObject *self, PyObject *Py_UNUSED(ignored))
{
    for (;;) {
        if (queue_refill(self) == 0)
            return PyFloat_FromDouble(Py_HUGE_VAL);
        CEventObject *ev = (CEventObject *)self->cur[self->cur_pos].ev;
        if (ev->cancelled) {
            self->cur_pos++;
            ev->popped = 1;
            self->cancelled_pending--;
            Py_DECREF(ev);
            continue;
        }
        return PyFloat_FromDouble(self->cur[self->cur_pos].time);
    }
}

static PyObject *
calsim_note_cancel_py(CalSimObject *self, PyObject *Py_UNUSED(ignored))
{
    calsim_note_cancel(self);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* Checkpoint / restore (the Time Warp engine's rollback hooks)       */
/* ------------------------------------------------------------------ */

static PyObject *
calsim_checkpoint(CalSimObject *self, PyObject *Py_UNUSED(ignored))
{
    /* (now, seq, events_processed, [(event, cancelled), ...]).  The
     * list holds strong refs to the queued events, so the freelist
     * cannot recycle them while a checkpoint is alive. */
    Py_ssize_t n = (self->cur_len - self->cur_pos) + self->top_len;
    PyObject *entries = PyList_New(n);
    if (entries == NULL)
        return NULL;
    Py_ssize_t w = 0;
    for (Py_ssize_t i = self->cur_pos; i < self->cur_len; i++) {
        CEventObject *ev = (CEventObject *)self->cur[i].ev;
        PyObject *pair = Py_BuildValue("(Oi)", ev, (int)ev->cancelled);
        if (pair == NULL) {
            Py_DECREF(entries);
            return NULL;
        }
        PyList_SET_ITEM(entries, w++, pair);
    }
    for (Py_ssize_t i = 0; i < self->top_len; i++) {
        CEventObject *ev = (CEventObject *)self->top[i].ev;
        PyObject *pair = Py_BuildValue("(Oi)", ev, (int)ev->cancelled);
        if (pair == NULL) {
            Py_DECREF(entries);
            return NULL;
        }
        PyList_SET_ITEM(entries, w++, pair);
    }
    return Py_BuildValue("(dLLN)", self->now, self->seq,
                         self->events_processed, entries);
}

static PyObject *
calsim_restore(CalSimObject *self, PyObject *args)
{
    double now;
    long long seq, done;
    PyObject *entries;
    if (!PyArg_ParseTuple(args, "dLLO:restore",
                          &now, &seq, &done, &entries))
        return NULL;
    PyObject *fast = PySequence_Fast(entries, "restore entries");
    if (fast == NULL)
        return NULL;
    if (self->running) {
        Py_DECREF(fast);
        PyErr_SetString(SimulationError, "restore() during run()");
        return NULL;
    }
    calsim_clear_entries(self);
    self->now = now;
    self->seq = seq;
    self->events_processed = done;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    /* Refill everything through the future rung: the next refill
     * qsorts it into one fully sorted current rung. */
    if (grow(&self->top, &self->top_cap, n) < 0) {
        Py_DECREF(fast);
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *pair = PySequence_Fast_GET_ITEM(fast, i);
        PyObject *evo;
        int cancelled;
        if (!PyArg_ParseTuple(pair, "Oi", &evo, &cancelled) ||
            !PyObject_TypeCheck(evo, &CEvent_Type)) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_TypeError,
                                "restore entries must be (Event, flag)");
            Py_DECREF(fast);
            return NULL;
        }
        CEventObject *ev = (CEventObject *)evo;
        ev->cancelled = (char)(cancelled != 0);
        ev->popped = 0;
        Entry e = {ev->time, ev->priority, ev->seq, evo};
        Py_INCREF(evo);
        self->top[self->top_len++] = e;
        self->cancelled_pending += (cancelled != 0);
    }
    Py_DECREF(fast);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* Properties                                                         */
/* ------------------------------------------------------------------ */

static PyObject *
calsim_get_now(CalSimObject *self, void *closure)
{
    return PyFloat_FromDouble(self->now);
}

static int
calsim_set_now(CalSimObject *self, PyObject *value, void *closure)
{
    double v = PyFloat_AsDouble(value);
    if (v == -1.0 && PyErr_Occurred())
        return -1;
    self->now = v;
    return 0;
}

static PyObject *
calsim_get_events_processed(CalSimObject *self, void *closure)
{
    return PyLong_FromLongLong(self->events_processed);
}

static PyObject *
calsim_get_pending(CalSimObject *self, void *closure)
{
    return PyLong_FromSsize_t(
        (self->cur_len - self->cur_pos) + self->top_len);
}

static PyObject *
calsim_get_pending_active(CalSimObject *self, void *closure)
{
    return PyLong_FromLongLong(
        (long long)((self->cur_len - self->cur_pos) + self->top_len)
        - self->cancelled_pending);
}

static PyGetSetDef calsim_getset[] = {
    {"now", (getter)calsim_get_now, NULL,
     "Current simulated time in seconds.", NULL},
    {"_now", (getter)calsim_get_now, (setter)calsim_set_now, NULL, NULL},
    {"events_processed", (getter)calsim_get_events_processed, NULL,
     "Number of events fired since construction.", NULL},
    {"pending", (getter)calsim_get_pending, NULL,
     "Events still queued (including cancelled ones).", NULL},
    {"pending_active", (getter)calsim_get_pending_active, NULL,
     "Live (non-cancelled) events still queued.", NULL},
    {NULL}
};

static PyMethodDef calsim_methods[] = {
    {"schedule", (PyCFunction)calsim_schedule,
     METH_VARARGS | METH_KEYWORDS,
     "schedule(delay, fn, *args, priority=0, **kwargs) -> Event"},
    {"at", (PyCFunction)calsim_at, METH_VARARGS | METH_KEYWORDS,
     "at(time, fn, *args, priority=0, **kwargs) -> Event"},
    {"schedule_batch", (PyCFunction)calsim_schedule_batch,
     METH_VARARGS | METH_KEYWORDS,
     "schedule_batch(entries, priority=0) -> list[Event]"},
    {"run", (PyCFunction)calsim_run, METH_VARARGS | METH_KEYWORDS,
     "run(until=None, max_events=None)"},
    {"run_before", (PyCFunction)calsim_run_before, METH_O,
     "Fire every event with time < bound, strictly."},
    {"step", (PyCFunction)calsim_step, METH_NOARGS,
     "Fire the single next event; False if drained."},
    {"next_event_time", (PyCFunction)calsim_next_event_time, METH_NOARGS,
     "Time of the next live event, or inf."},
    {"_note_cancel", (PyCFunction)calsim_note_cancel_py, METH_NOARGS, NULL},
    {"checkpoint", (PyCFunction)calsim_checkpoint, METH_NOARGS,
     "Snapshot (now, seq, events_processed, [(event, cancelled), ...])."},
    {"restore", (PyCFunction)calsim_restore, METH_VARARGS,
     "Restore a checkpoint() snapshot in place."},
    {NULL}
};

static PyTypeObject CalSim_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ceventq.CalendarSimCore",
    .tp_basicsize = sizeof(CalSimObject),
    .tp_dealloc = (destructor)calsim_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                Py_TPFLAGS_BASETYPE,
    .tp_doc = "Compiled calendar-queue simulator core.",
    .tp_traverse = (traverseproc)calsim_traverse,
    .tp_clear = (inquiry)calsim_clear,
    .tp_getset = calsim_getset,
    .tp_methods = calsim_methods,
    .tp_new = calsim_new,
};

/* ------------------------------------------------------------------ */
/* Module                                                             */
/* ------------------------------------------------------------------ */

static struct PyModuleDef ceventq_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._ceventq",
    .m_doc = "Compiled calendar-queue DES core (optional fast path).",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__ceventq(void)
{
    PyObject *engine = PyImport_ImportModule("repro.sim.engine");
    if (engine == NULL)
        return NULL;
    SimulationError = PyObject_GetAttrString(engine, "SimulationError");
    Py_DECREF(engine);
    if (SimulationError == NULL)
        return NULL;
    if (PyType_Ready(&CEvent_Type) < 0 || PyType_Ready(&CalSim_Type) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&ceventq_module);
    if (m == NULL)
        return NULL;
    Py_INCREF(&CEvent_Type);
    PyModule_AddObject(m, "Event", (PyObject *)&CEvent_Type);
    Py_INCREF(&CalSim_Type);
    PyModule_AddObject(m, "CalendarSimCore", (PyObject *)&CalSim_Type);
    return m;
}
