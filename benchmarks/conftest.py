"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper, prints
it (visible with ``pytest -s``), saves it under
``benchmarks/results/``, and asserts the paper's shape claims.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_report(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
