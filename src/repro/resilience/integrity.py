"""Content-integrity helpers for the self-healing result store.

A stored object ``objects/<d[:2]>/<digest>`` gains a *sidecar*
``<digest>.sum`` holding the sha256 of the payload **bytes** (not the
spec digest that names the object — the name binds *which result this
is*, the sidecar binds *that these bytes are that result*).  The
sidecar is written atomically and **before** the object is moved into
place, so an object that exists always has its checksum on disk; a
crash between the two writes leaves only a harmless orphan sidecar.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Optional

#: Suffix of the per-object checksum sidecar file.
SIDECAR_SUFFIX = ".sum"


def checksum(payload: bytes) -> str:
    """Hex sha256 of the payload bytes."""
    return hashlib.sha256(payload).hexdigest()


def sidecar_path(obj_path: Path) -> Path:
    """The checksum sidecar next to a stored object."""
    return obj_path.with_name(obj_path.name + SIDECAR_SUFFIX)


def write_sidecar(obj_path: Path, digest: str) -> None:
    """Atomically record ``digest`` as ``obj_path``'s content checksum."""
    side = sidecar_path(obj_path)
    fd, tmp = tempfile.mkstemp(
        prefix=".sum-", dir=str(side.parent)
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(digest)
        os.replace(tmp, side)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover
            pass
        raise


def read_sidecar(obj_path: Path) -> Optional[str]:
    """The recorded checksum, or None when absent/unreadable (a
    pre-sidecar legacy object, or a machine with a torn sidecar)."""
    try:
        return sidecar_path(obj_path).read_text().strip() or None
    except OSError:
        return None
