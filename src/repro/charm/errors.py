"""Runtime error types."""

from __future__ import annotations


class CharmError(RuntimeError):
    """Base class for runtime misuse and internal errors."""


class EntryMethodError(CharmError):
    """Raised when an entry-method invocation cannot be completed
    (unknown method, exception inside user code is re-raised as-is)."""


class MappingError(CharmError):
    """Raised for invalid chare-to-PE mappings."""


class ReductionError(CharmError):
    """Raised for reduction misuse (mismatched reducers, double
    contribution in one reduction epoch, unknown reducer name)."""


class ContextError(CharmError):
    """Raised when an operation requiring a PE execution context is
    attempted from host code (or vice versa)."""
