"""Property-based tests: the parallel applications match their
sequential references for arbitrary (small) configurations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ABE
from repro.apps.matmul import gather_c, reference_c, run_matmul
from repro.apps.stencil import gather_grid, jacobi_reference, run_stencil
from tests.apps.test_stencil_validation import _reference_initial

# domains whose dimensions are products of small powers of two, so any
# chosen chare grid divides them
dims = st.sampled_from([4, 8, 16])


@given(
    dims, dims, dims,
    st.integers(min_value=1, max_value=4),  # PEs
    st.integers(min_value=1, max_value=4),  # virtualization
    st.integers(min_value=0, max_value=3),  # iterations
    st.sampled_from(["msg", "ckd"]),
)
@settings(max_examples=20, deadline=None)
def test_stencil_matches_reference_any_config(x, y, z, pes, vr, iters, mode):
    domain = (x, y, z)
    try:
        res = run_stencil(ABE, pes, domain, vr, iters, mode=mode,
                          validate=True, keep_runtime=True)
    except ValueError:
        # no factorization of pes*vr divides this domain — legal outcome
        return
    ref = jacobi_reference(_reference_initial(domain, res.grid), iters)
    assert np.array_equal(gather_grid(res), ref)


@given(
    st.sampled_from([(16, 2), (32, 2), (32, 4), (64, 4)]),
    st.integers(min_value=1, max_value=6),
    st.sampled_from(["msg", "ckd"]),
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=16, deadline=None)
def test_matmul_matches_numpy_any_config(nc, pes, mode, iters):
    N, c = nc
    r = run_matmul(ABE, pes, N=N, c=c, iterations=iters, mode=mode,
                   validate=True, keep_runtime=True)
    assert np.allclose(gather_c(r), reference_c(r), rtol=1e-12, atol=1e-9)


@given(
    st.sampled_from([1, 2, 4, 8]),  # power-of-two PE counts
    st.sampled_from(["msg", "ckd"]),
)
@settings(max_examples=12, deadline=None)
def test_stencil_result_independent_of_pe_count(pes, mode):
    """Physics must not depend on the machine: with the total chare
    count held at 8, every PE count gives the identical grid result."""
    domain = (8, 8, 8)
    res = run_stencil(ABE, pes, domain, vr=8 // pes, iterations=2,
                      mode=mode, validate=True, keep_runtime=True)
    ref = jacobi_reference(_reference_initial(domain, res.grid), 2)
    assert np.array_equal(gather_grid(res), ref)
