"""Shim for editable installs in environments without the ``wheel``
package (pip's legacy ``--no-use-pep517`` path needs a setup.py)."""

from setuptools import setup

setup()
