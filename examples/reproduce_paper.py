#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

Prints each artifact side by side with the paper's printed values
(Tables 1-2) or textual claims (Figures 2-5), plus the three design
ablations.  This is the same harness the benchmark suite asserts
shapes on; see EXPERIMENTS.md for the recorded comparison.

Run:  python examples/reproduce_paper.py            (~5-10 minutes)
      REPRO_FULL_SCALE=1 python examples/reproduce_paper.py
                        (adds the 2048/4096-PE BG/P points; slower)
"""

import time

from repro.bench import (
    run_backward_path_ablation,
    run_fig2a,
    run_fig2b,
    run_fig3,
    run_fig4,
    run_fig5,
    run_mpi_sync_ablation,
    run_polling_ablation,
    run_protocol_ablation,
    run_table1,
    run_table2,
    run_vr_ablation,
)
from repro.network.params import ABE, SURVEYOR

RUNNERS = [
    ("Table 1", lambda: run_table1(iterations=100)),
    ("Table 2", lambda: run_table2(iterations=100)),
    ("Figure 2(a)", run_fig2a),
    ("Figure 2(b)", run_fig2b),
    ("Figure 3 / BG-P", lambda: run_fig3(SURVEYOR)),
    ("Figure 3 / Abe", lambda: run_fig3(ABE)),
    ("Figure 4", run_fig4),
    ("Figure 5", run_fig5),
    ("Ablation A1 (polling)", run_polling_ablation),
    ("Ablation A2 (protocols)", run_protocol_ablation),
    ("Ablation A3 (MPI sync)", run_mpi_sync_ablation),
    ("Ablation A4 (virtualization)", run_vr_ablation),
    ("Ablation A5 (backward path)", run_backward_path_ablation),
]


def main() -> None:
    t0 = time.time()
    for name, runner in RUNNERS:
        start = time.time()
        result = runner()
        print(result["report"])
        print(f"[{name} regenerated in {time.time() - start:.1f}s]\n")
    print(f"all artifacts regenerated in {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main()
