"""Picklable sweep-point descriptions and results.

A *sweep* is a set of independent simulation runs — one per
``(kind, machine, mode, n_pes, params)`` point — whose results are
assembled into one table or figure.  :class:`RunSpec` describes one
point in a form that

* **pickles** cheaply (strings/ints/tuples only, no ``MachineParams``
  or runtime objects), so it can cross a process boundary to a worker;
* **hashes and orders** deterministically (:attr:`RunSpec.key`), so
  sweep results are always merged by spec key, never by completion
  order — the invariant that makes ``--jobs N`` output byte-identical
  to a serial run.

:class:`RunResult` is the worker's reply: plain values plus error /
timing / trace payloads.  A failed point carries its traceback in
``error``; :meth:`RunResult.unwrap` re-raises it in the parent.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from ..network.params import MACHINES, MachineParams


class SweepError(RuntimeError):
    """Raised for sweep misuse or failed sweep points."""


@dataclass(frozen=True, order=True)
class RunSpec:
    """One independent point of a sweep.

    ``params`` is a sorted tuple of ``(key, value)`` pairs so the spec
    stays hashable, comparable, and picklable; build specs with
    :meth:`make` to get the normalization for free.
    """

    kind: str        # registered point-function name (see sweep.points)
    machine: str     # machine preset name (a MACHINES key)
    mode: str        # stack / app variant ("msg", "ckd", "charm", ...)
    n_pes: int       # PE count (0 where the point fixes it itself)
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls, kind: str, machine: str, mode: str = "", n_pes: int = 0, **params: Any
    ) -> "RunSpec":
        """Build a spec, normalizing keyword params into sorted pairs."""
        return cls(kind, machine, mode, n_pes, tuple(sorted(params.items())))

    @property
    def kwargs(self) -> Dict[str, Any]:
        """The params as a keyword dict."""
        return dict(self.params)

    @property
    def key(self) -> tuple:
        """The deterministic merge key (the full identifying tuple)."""
        return (self.kind, self.machine, self.mode, self.n_pes, self.params)

    def label(self) -> str:
        """Compact human-readable form for progress/error messages."""
        parts = [self.kind, self.machine]
        if self.mode:
            parts.append(self.mode)
        if self.n_pes:
            parts.append(f"p{self.n_pes}")
        return "/".join(parts)

    def resolve_machine(self) -> MachineParams:
        """Reconstruct the MachineParams this point runs on.

        The preset is looked up by name; a ``cores_per_node`` param
        (see :func:`machine_overrides`) is applied on top — the only
        machine variation the paper's experiments use (Abe at 2
        cores/node for the OpenAtom runs).
        """
        try:
            machine = MACHINES[self.machine]
        except KeyError:
            raise SweepError(f"unknown machine preset {self.machine!r}") from None
        cpn = self.kwargs.get("cores_per_node")
        if cpn is not None and cpn != machine.cores_per_node:
            machine = dataclasses.replace(machine, cores_per_node=int(cpn))
        return machine


def machine_overrides(machine: MachineParams) -> Dict[str, Any]:
    """Express a MachineParams as spec params on top of its preset.

    Returns ``{}`` when ``machine`` *is* its preset, or
    ``{"cores_per_node": n}`` for the paper's cores-per-node variants.
    Anything else cannot cross a process boundary by name and is
    rejected.
    """
    base = MACHINES.get(machine.name)
    if base is None:
        raise SweepError(
            f"machine {machine.name!r} is not a registered preset; "
            "sweep specs carry machines by preset name"
        )
    if machine == base:
        return {}
    if dataclasses.replace(base, cores_per_node=machine.cores_per_node) == machine:
        return {"cores_per_node": machine.cores_per_node}
    raise SweepError(
        f"machine {machine.name!r} differs from its preset beyond "
        "cores_per_node and cannot be shipped to sweep workers"
    )


@dataclass
class RunResult:
    """Outcome of one sweep point (success or isolated failure)."""

    spec: RunSpec
    ok: bool
    values: Dict[str, Any] = field(default_factory=dict)
    error: str = ""
    wall_time: float = 0.0   # worker-side wall-clock seconds
    events: int = 0          # simulator events fired by the point
    #: per-point trace payload (parallel tracing runs only): serialized
    #: TraceEvent tuples + (label, n_pes) run registrations, merged
    #: into the parent's EventLog by the runner.
    trace_events: List[tuple] = field(default_factory=list)
    trace_runs: List[Tuple[str, int]] = field(default_factory=list)

    def unwrap(self) -> Dict[str, Any]:
        """The point's values, or raise the point's failure here."""
        if not self.ok:
            raise SweepError(
                f"sweep point {self.spec.label()} failed:\n{self.error}"
            )
        return self.values
