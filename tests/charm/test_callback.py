"""Unit tests for CkCallback construction and dispatch."""

import pytest

from repro import ABE, Chare, CkCallback, Runtime
from repro.charm import CharmError


class Target(Chare):
    def __init__(self):
        self.got = []

    def catch(self, v):
        self.got.append(v)

    def fire_host(self, cb):
        cb.invoke(self.rt, 42)

    def fire_send(self, cb):
        cb.invoke(self.rt, "hello")

    def fire_none(self, cb):
        cb.invoke(self.rt, None)


def test_host_callback():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Target, dims=(1,))
    got = []
    arr.proxy[0].fire_host(CkCallback.host(got.append))
    rt.run()
    assert got == [42]


def test_send_callback():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Target, dims=(2,))
    arr.proxy[0].fire_send(CkCallback.send(arr, 1, "catch"))
    rt.run()
    assert arr.element(1).got == ["hello"]


def test_bcast_callback():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Target, dims=(3,))
    arr.proxy[0].fire_send(CkCallback.bcast(arr, "catch"))
    rt.run()
    for e in arr.elements.values():
        assert e.got == ["hello"]


def test_ignore_callback():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Target, dims=(1,))
    arr.proxy[0].fire_host(CkCallback.ignore())
    rt.run()  # nothing to assert beyond not crashing


def test_none_value_sends_no_args():
    class NoArg(Chare):
        def __init__(self):
            self.hits = 0

        def bang(self):
            self.hits += 1

        def fire(self, cb):
            cb.invoke(self.rt, None)

    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(NoArg, dims=(1,))
    arr.proxy[0].fire(CkCallback.send(arr, 0, "bang"))
    rt.run()
    assert arr.element(0).hits == 1


def test_construction_validation():
    with pytest.raises(CharmError):
        CkCallback("host")  # missing fn
    with pytest.raises(CharmError):
        CkCallback("send", method="m")  # missing array/index
    with pytest.raises(CharmError):
        CkCallback("teleport")
    rt = Runtime(ABE, n_pes=1)
    arr = rt.create_array(Target, dims=(1,))
    with pytest.raises(CharmError):
        CkCallback("send", array=arr, method="catch")  # missing index


def test_send_callback_normalizes_index():
    rt = Runtime(ABE, n_pes=1)
    arr = rt.create_array(Target, dims=(2,))
    cb = CkCallback.send(arr, 1, "catch")  # bare int index
    assert cb.index == (1,)
