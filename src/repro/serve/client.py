"""Blocking HTTP client for the serve API (``repro submit``).

Built on :mod:`http.client` so tests and the CLI need no extra
dependencies.  One :class:`ServeClient` per server; each call opens a
fresh connection (the server closes after every response).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional, Sequence, Union

from ..sweep.spec import RunSpec


class ServeClientError(RuntimeError):
    """Server answered with an unexpected status; carries the details."""

    def __init__(self, status: int, body: Union[Dict, bytes, None]) -> None:
        super().__init__(f"server returned {status}: {body!r}")
        self.status = status
        self.body = body


class Backpressure(ServeClientError):
    """429 from the server; ``retry_after`` seconds suggested."""

    def __init__(self, body, retry_after: float) -> None:
        super().__init__(429, body)
        self.retry_after = retry_after


class ServeClient:
    """Thin wrapper over the serve HTTP API."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------

    def _request(self, method: str, path: str, body: Optional[Dict] = None):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            data = resp.read()
            return resp.status, dict(resp.getheaders()), data
        finally:
            conn.close()

    @staticmethod
    def _json(data: bytes):
        try:
            return json.loads(data)
        except (ValueError, UnicodeDecodeError):
            return None

    # -- API ------------------------------------------------------------

    def submit(self, specs: Union[RunSpec, Dict, Sequence]) -> Dict:
        """Submit one spec or a list; returns the job-status JSON.

        Raises :class:`Backpressure` on 429 and
        :class:`ServeClientError` on any other non-2xx answer.
        """
        if isinstance(specs, (RunSpec, dict)):
            specs = [specs]
        wire: List[Dict] = [
            s.to_dict() if isinstance(s, RunSpec) else s for s in specs
        ]
        status, headers, data = self._request("POST", "/v1/jobs", {"specs": wire})
        body = self._json(data)
        if status == 429:
            retry = float(headers.get("Retry-After", 1))
            raise Backpressure(body, retry)
        if status not in (200, 202):
            raise ServeClientError(status, body if body is not None else data)
        return body

    def status(self, job_id: str) -> Dict:
        status, _h, data = self._request("GET", f"/v1/jobs/{job_id}")
        body = self._json(data)
        if status != 200:
            raise ServeClientError(status, body)
        return body

    def result(self, job_id: str) -> bytes:
        """The job's canonical payload bytes (exactly as cached)."""
        status, _h, data = self._request("GET", f"/v1/jobs/{job_id}/result")
        if status != 200:
            raise ServeClientError(status, self._json(data))
        return data

    def wait(self, job_id: str, deadline_s: float = 300.0, poll_s: float = 0.05) -> Dict:
        """Poll until the job is terminal; returns the final status JSON."""
        t_end = time.monotonic() + deadline_s
        while True:
            body = self.status(job_id)
            if body["status"] in ("done", "failed"):
                return body
            if time.monotonic() >= t_end:
                raise TimeoutError(
                    f"job {job_id} still {body['status']} after {deadline_s:g}s"
                )
            time.sleep(poll_s)

    def stream(self, job_id: str):
        """Yield NDJSON progress dicts until the job is terminal."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/stream")
            resp = conn.getresponse()
            if resp.status != 200:
                raise ServeClientError(resp.status, self._json(resp.read()))
            buf = b""
            while True:
                chunk = resp.read1(4096) if hasattr(resp, "read1") else resp.read(4096)
                if not chunk:
                    break
                buf += chunk
                while b"\n" in buf:
                    line, buf = buf.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line)
        finally:
            conn.close()

    def metrics(self) -> Dict:
        status, _h, data = self._request("GET", "/metrics")
        body = self._json(data)
        if status != 200:
            raise ServeClientError(status, body)
        return body

    def healthy(self) -> bool:
        try:
            status, _h, _d = self._request("GET", "/healthz")
        except OSError:
            return False
        return status == 200
