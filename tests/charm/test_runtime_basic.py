"""Unit tests: runtime construction, sends, entry methods, timing."""

import numpy as np
import pytest

from repro import ABE, SURVEYOR, Chare, Runtime
from repro.charm import CharmError, EntryMethodError, Payload
from repro.charm.errors import ContextError


class Echo(Chare):
    def __init__(self):
        self.log = []

    def hit(self, *args):
        self.log.append((self.now, args))

    def relay(self, target):
        self.proxy[target].hit("from", tuple(self.thisIndex))


def test_construction_validates_pes():
    with pytest.raises(CharmError):
        Runtime(ABE, n_pes=0)


def test_create_array_and_elements():
    rt = Runtime(ABE, n_pes=4)
    arr = rt.create_array(Echo, dims=(2, 3))
    assert arr.size == 6
    assert set(arr.elements) == {(i, j) for i in range(2) for j in range(3)}
    assert all(isinstance(e, Echo) for e in arr.elements.values())


def test_array_rejects_non_chare():
    rt = Runtime(ABE, n_pes=2)
    with pytest.raises(CharmError):
        rt.create_array(object, dims=(2,))


def test_array_rejects_bad_dims():
    rt = Runtime(ABE, n_pes=2)
    with pytest.raises(CharmError):
        rt.create_array(Echo, dims=())
    with pytest.raises(CharmError):
        rt.create_array(Echo, dims=(0,))


def test_host_send_delivers():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Echo, dims=(2,))
    arr.proxy[0].hit(42)
    rt.run()
    assert arr.element(0).log[0][1] == (42,)


def test_chare_to_chare_send():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Echo, dims=(2,))
    arr.proxy[0].relay((1,))
    rt.run()
    assert arr.element(1).log[0][1] == ("from", (0,))


def test_unknown_entry_method_raises():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Echo, dims=(1,))
    arr.proxy[0].no_such_method()
    with pytest.raises(EntryMethodError):
        rt.run()


def test_message_costs_advance_time():
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
    from repro.charm import CustomMap

    arr = rt.create_array(
        Echo, dims=(2,),
        mapping=CustomMap(lambda idx, dims, n: 0 if idx[0] == 0 else n - 1),
    )
    arr.proxy[1].hit()
    rt.run()
    # host injection -> remote delivery costs at least sched+handler
    t = arr.element(1).log[0][0]
    charm = ABE.charm
    assert t >= charm.sched_overhead + charm.handler_overhead


def test_local_send_cheaper_than_remote():
    def delivery_time(src, dst, n_pes):
        from repro.charm import CustomMap

        rt = Runtime(ABE, n_pes=n_pes)
        arr = rt.create_array(
            Echo, dims=(2,),
            mapping=CustomMap(lambda idx, dims, n: src if idx[0] == 0 else dst),
        )
        arr.proxy[0].relay((1,))
        rt.run()
        return arr.element(1).log[0][0]

    local = delivery_time(0, 0, 8)
    remote = delivery_time(0, ABE.cores_per_node, 2 * ABE.cores_per_node)
    assert local < remote


def test_payload_bytes_counted():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Echo, dims=(1,))
    arr.proxy[0].hit(Payload.virtual(5000))
    rt.run()
    assert rt.trace.counter("charm.msg_bytes") == 5000


def test_ndarray_args_are_snapshotted():
    """A bare ndarray argument is marshalled: mutating the source after
    the send must not affect the delivered data."""
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Echo, dims=(2,))
    data = np.arange(4.0)

    class Sender(Chare):
        def go(self):
            self.proxy  # noqa: B018 - context check
            arr.proxy[1].hit(data)
            data[0] = 99.0

    sarr = rt.create_array(Sender, dims=(1,))
    sarr.proxy[0].go()
    rt.run()
    delivered = arr.element(1).log[0][1][0]
    assert delivered[0] == 0.0


def test_charge_outside_context_rejected():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Echo, dims=(1,))
    with pytest.raises(ContextError):
        arr.element(0).charge(1e-6)


def test_compute_charge_advances_completion():
    class Worker(Chare):
        def work(self, seconds):
            self.charge(seconds)
            self.done_at = self.now

    rt = Runtime(ABE, n_pes=1)
    arr = rt.create_array(Worker, dims=(1,))
    arr.proxy[0].work(1e-3)
    rt.run()
    assert arr.element(0).done_at >= 1e-3


def test_utilization_and_busy_accounting():
    class Worker(Chare):
        def work(self):
            self.charge(1e-3)

    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Worker, dims=(2,))
    arr.proxy.bcast("work")
    rt.run()
    assert 0.0 < rt.utilization() <= 1.0
    assert sum(pe.busy_time for pe in rt.pes) >= 2e-3


def test_bgp_runtime_works_end_to_end():
    rt = Runtime(SURVEYOR, n_pes=8)
    arr = rt.create_array(Echo, dims=(4,))
    for i in range(4):
        arr.proxy[i].hit(i)
    rt.run()
    for i in range(4):
        assert arr.element(i).log[0][1] == (i,)
