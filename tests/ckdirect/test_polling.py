"""Unit tests for the Infiniband polling-queue mechanics and costs."""

import pytest

from repro import ABE, Runtime
from repro import ckdirect as ckd
from repro.apps.pingpong import ckdirect_pingpong

from tests.ckdirect.channel_helpers import CROSS, Endpoint


def _wire_n_channels(rt, arr, n):
    """Element 0 creates n handles; element 1 associates all of them
    with its (shared) send buffer... one handle per fresh buffer."""
    import numpy as np

    from repro import Buffer

    recv, send = arr.element(0), arr.element(1)
    handles = []
    for i in range(n):
        buf = Buffer(array=np.zeros(8))
        h = ckd.create_handle(recv, buf, -1.0, recv.on_data, cbdata=i)
        ckd.assoc_local(send, h, Buffer(array=np.ones(8)))
        handles.append(h)
    return handles


def test_handles_join_pollq_at_creation():
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    handles = _wire_n_channels(rt, arr, 5)
    pe = arr.element(0)._pe
    assert len(pe.pollq) == 5
    for h in handles:
        assert h.hid in pe.pollq


def test_detection_removes_from_pollq(channel):
    rt, arr, recv, send, handle = channel
    if rt.machine.kind != "ib":
        pytest.skip("polling queue is the Infiniband implementation")
    pe = recv._pe
    assert handle.hid in pe.pollq
    arr.proxy[1].do_put(handle)
    rt.run()
    assert handle.hid not in pe.pollq
    assert rt.trace.counter("pe.poll_detections") == 1


def test_ready_reinserts_into_pollq(channel):
    rt, arr, recv, send, handle = channel
    if rt.machine.kind != "ib":
        pytest.skip("polling queue is the Infiniband implementation")
    arr.proxy[1].do_put(handle)
    rt.run()
    arr.proxy[0].do_ready(handle)
    rt.run()
    assert handle.hid in recv._pe.pollq


def test_poll_cost_scales_with_occupancy():
    """Detection under a crowded polling queue costs more than under a
    lone handle — the OpenAtom §5.2 effect in miniature."""

    def rtt_with_extra_handles(n_extra):
        rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
        arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
        _wire_n_channels(rt, arr, n_extra)  # idle channels, polled anyway
        recv, send = arr.element(0), arr.element(1)
        handle = recv.make_handle()
        ckd.assoc_local(send, handle, send.send_buf)
        arr.proxy[1].do_put(handle)
        rt.run()
        return recv.fired[0][0]

    lone = rtt_with_extra_handles(0)
    crowded = rtt_with_extra_handles(100)
    extra = crowded - lone
    ck = ABE.ckdirect
    assert extra >= 100 * ck.poll_per_handle * 0.9


def test_poll_sweep_counters():
    r = ckdirect_pingpong(ABE, 1000, iterations=10)
    # each detection implies at least one sweep
    assert r.iterations == 10


def test_bgp_has_no_polling():
    from repro import SURVEYOR

    rt = Runtime(SURVEYOR, n_pes=2 * SURVEYOR.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle()
    ckd.assoc_local(send, handle, send.send_buf)
    assert len(recv._pe.pollq) == 0  # never registered
    arr.proxy[1].do_put(handle)
    rt.run()
    assert rt.trace.counter("pe.poll_sweeps") == 0
    assert rt.trace.counter("pe.direct_completions") == 1
