#!/usr/bin/env python
"""Discover channel candidates automatically (paper §6's last item).

The paper's future-work list ends with "the eventual inclusion of
CkDirect into an automatic learning framework which will create
persistent channels where appropriate".  The
:class:`~repro.ckdirect.ext.ChannelAdvisor` implements that idea: it
watches an *unmodified* message-based application, finds flows that
repeat with stable payload sizes (the CkDirect precondition), and
estimates — from the machine's calibrated constants — how much each
would save as a persistent channel and how many messages amortize the
one-time setup.

Here it profiles the message-based Jacobi stencil and prints its
recommendations; the projected per-message saving can be checked
against the measured MSG-vs-CKD gap from Figure 2.

Run:  python examples/channel_advisor.py
"""

from repro import T3
from repro.apps.stencil.driver import run_stencil
from repro.charm import Runtime
from repro.ckdirect.ext import ChannelAdvisor


def main() -> None:
    # run the MSG stencil with the advisor attached
    import repro.apps.stencil.driver as driver

    # Build the runtime the same way the driver does, but attach the
    # advisor before any application traffic flows.
    from repro.apps.stencil.base import IterationMonitor
    from repro.apps.stencil.decomp import choose_grid
    from repro.apps.stencil.jacobi_msg import JacobiMsg

    machine, n_pes, vr, iterations = T3, 16, 2, 4
    domain = (128, 128, 64)
    grid = choose_grid(domain, n_pes * vr)
    rt = Runtime(machine, n_pes)
    advisor = ChannelAdvisor(rt, min_repeats=3).attach()
    monitor = IterationMonitor(rt, None, iterations)
    arr = rt.create_array(
        JacobiMsg, dims=grid,
        ctor_args=(domain, grid, iterations, False, 0, monitor),
    )
    monitor.proxy = arr.proxy
    arr.proxy.bcast("setup")
    rt.run()

    print(f"profiled {iterations} Jacobi iterations on {n_pes} PEs "
          f"({len(arr.elements)} chares)\n")
    print(advisor.report())

    cands = advisor.candidates()
    if cands:
        best = cands[0]
        print(
            f"\nbest candidate saves {best.saving_per_message * 1e6:.2f}us "
            f"per message and amortizes its channel setup after "
            f"{best.amortization_messages:.0f} messages — an iterative "
            f"code reaches that within a few iterations."
        )


if __name__ == "__main__":
    main()
