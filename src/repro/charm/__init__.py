"""A Charm++-style message-driven runtime on the discrete-event core.

Public surface:

* :class:`Runtime` — machine + PEs + arrays; the entry point.
* :class:`Chare` — base class for message-driven objects.
* :class:`ChareArray` / proxies — N-dimensional chare collections.
* :class:`CkCallback` — deliverable continuations.
* :class:`Payload` — bulk entry-method arguments (packed or zero-pack).
* Mappings — :class:`BlockMap`, :class:`RoundRobinMap`, :class:`CustomMap`.
"""

from .array import ArrayProxy, ChareArray, ElementProxy
from .callback import CkCallback
from .chare import Chare
from .errors import (
    CharmError,
    ContextError,
    EntryMethodError,
    MappingError,
    ReductionError,
)
from .mapping import BlockMap, CustomMap, Mapping, RoundRobinMap, linear_index
from .message import Message, Payload
from .pe import PE
from .reduction import REDUCERS, ReductionManager
from .runtime import Runtime
from .scheduler import DirectItem, SchedulerQueue
from .section import ArraySection

__all__ = [
    "Runtime",
    "Chare",
    "ChareArray",
    "ArraySection",
    "ArrayProxy",
    "ElementProxy",
    "CkCallback",
    "Payload",
    "Message",
    "PE",
    "Mapping",
    "BlockMap",
    "RoundRobinMap",
    "CustomMap",
    "linear_index",
    "ReductionManager",
    "REDUCERS",
    "SchedulerQueue",
    "DirectItem",
    "CharmError",
    "ContextError",
    "EntryMethodError",
    "MappingError",
    "ReductionError",
]
