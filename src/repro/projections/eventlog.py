"""The event log and the tracer installation protocol.

An :class:`EventLog` collects :class:`~repro.projections.events.TraceEvent`
records from the instrumentation hooks threaded through the runtime,
the scheduler, the CkDirect layer, and the fabrics.

Cost discipline
---------------
Tracing is **off by default** and the hooks are written so a disabled
run pays one attribute load and one ``is None`` branch per hook — no
allocation, no call.  Every hook follows the pattern::

    tr = self.rt.tracer          # None when tracing is off
    if tr is not None:
        tr.span(...)

The per-run wall-clock overhead of a disabled run is therefore
indistinguishable from the pre-instrumentation build (asserted by
``tests/projections/test_overhead.py``).

Installation
------------
Components discover the tracer two ways:

* explicitly — ``Runtime(machine, n, tracer=log)``;
* ambiently — :func:`install_tracer` sets a module-global that every
  ``Runtime`` / ``MPIWorld`` constructed afterwards picks up.  This is
  how ``--trace-out`` traces multi-run artifacts (tables, sweeps)
  without threading a parameter through every bench runner; each
  constructed runtime registers its own *run* (one Chrome-trace
  process) via :meth:`EventLog.new_run`.

Causality context
-----------------
While a handler executes on a PE, the hook that wraps it pushes the
handler's (pre-allocated) event id onto the log's context stack; sends
and puts issued inside read :attr:`EventLog.current` as their cause.
The stack nests correctly because handler invocation is synchronous.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .events import KIND_INSTANT, KIND_SPAN, TraceEvent


class EventLog:
    """An append-only, causally-linked timeline event log."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        #: one entry per registered run: (label, owner, n_pes).
        self.runs: List[Tuple[str, Any, int]] = []
        self._next_eid = 0
        self._ctx: List[int] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def new_run(self, label: str, owner: Any = None, n_pes: int = 0) -> int:
        """Register a runtime instance; returns its run id (trace pid).

        ``owner`` keeps a reference to the runtime so analyses can
        reconcile timeline events against its aggregate ``Trace``
        counters; ``n_pes`` sizes the per-PE track metadata.
        """
        self.runs.append((label, owner, n_pes))
        return len(self.runs) - 1

    # ------------------------------------------------------------------
    # Causality context
    # ------------------------------------------------------------------

    def next_id(self) -> int:
        """Allocate an event id ahead of recording (for wrapping spans
        whose end time is only known after the handler returns)."""
        eid = self._next_eid
        self._next_eid += 1
        return eid

    def push(self, eid: int) -> None:
        """Enter a handler context: subsequent sends are caused by ``eid``."""
        self._ctx.append(eid)

    def pop(self) -> None:
        """Leave the innermost handler context."""
        self._ctx.pop()

    @property
    def current(self) -> Optional[int]:
        """The innermost executing handler's event id (None at top level)."""
        return self._ctx[-1] if self._ctx else None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def span(
        self,
        run: int,
        pe: int,
        category: str,
        name: str,
        t0: float,
        t1: float,
        cause: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
        eid: Optional[int] = None,
    ) -> int:
        """Append a complete interval event; returns its id."""
        if eid is None:
            eid = self.next_id()
        self.events.append(
            TraceEvent(eid, KIND_SPAN, run, pe, category, name, t0, t1, cause, args)
        )
        return eid

    def instant(
        self,
        run: int,
        pe: int,
        category: str,
        name: str,
        t: float,
        cause: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Append a point event; returns its id."""
        eid = self.next_id()
        self.events.append(
            TraceEvent(eid, KIND_INSTANT, run, pe, category, name, t, t, cause, args)
        )
        return eid

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def select(
        self,
        run: Optional[int] = None,
        pe: Optional[int] = None,
        category: Optional[str] = None,
        name_key: Optional[str] = None,
        spans_only: bool = False,
    ) -> Iterator[TraceEvent]:
        """Iterate events matching every given filter."""
        for ev in self.events:
            if run is not None and ev.run != run:
                continue
            if pe is not None and ev.pe != pe:
                continue
            if category is not None and ev.category != category:
                continue
            if name_key is not None and ev.name_key != name_key:
                continue
            if spans_only and not ev.is_span:
                continue
            yield ev

    def by_eid(self) -> Dict[int, TraceEvent]:
        """An eid → event index (events hold unique ids)."""
        return {ev.eid: ev for ev in self.events}

    def clear(self) -> None:
        """Drop all recorded events (registrations are kept)."""
        self.events.clear()
        self._ctx.clear()


# ---------------------------------------------------------------------------
# Ambient installation (used by the CLI's --trace-out / profile paths)
# ---------------------------------------------------------------------------

_active: Optional[EventLog] = None


def install_tracer(log: EventLog) -> EventLog:
    """Make ``log`` the ambient tracer new runtimes attach to."""
    global _active
    _active = log
    return log


def uninstall_tracer() -> None:
    """Clear the ambient tracer (new runtimes run untraced)."""
    global _active
    _active = None


def current_tracer() -> Optional[EventLog]:
    """The ambient tracer, or None when tracing is off."""
    return _active


@contextmanager
def tracing(log: Optional[EventLog] = None):
    """Context manager: install a tracer for the duration of a block.

    >>> from repro.projections import tracing
    >>> with tracing() as log:      # doctest: +SKIP
    ...     run_openatom(ABE, 16, mode="ckd")
    ... write_chrome_trace(log, "openatom.trace.json")
    """
    log = log if log is not None else EventLog()
    prev = _active
    install_tracer(log)
    try:
        yield log
    finally:
        if prev is None:
            uninstall_tracer()
        else:
            install_tracer(prev)
