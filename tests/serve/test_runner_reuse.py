"""SweepRunner reuse under the server: the isolation properties hold.

The server funnels jobs through the same runner the batch harness
uses; these tests pin that its guarantees survive the trip — a point
that hangs past the per-point timeout or kills its worker process
fails *that job only* and leaves the server serving, and an evicted
cache entry recomputes to byte-identical payload.
"""

import asyncio
import os
import time

from repro.serve.digest import job_digest, result_payload
from repro.serve.jobs import JobManager, JobState
from repro.serve.metrics import ServeMetrics
from repro.serve.store import ResultStore
from repro.sweep import RunSpec, SweepRunner, register_point


@register_point("r-echo")
def _echo(spec):
    return {"x": dict(spec.params)["x"], "events": 2}


@register_point("r-die")
def _die(spec):
    os._exit(23)  # worker vanishes without a result


@register_point("r-hang")
def _hang(spec):
    time.sleep(60.0)
    return {"x": 0}


def spec_of(kind, x, **kw):
    return RunSpec.make(kind, "Abe", "m", x=x, **kw)


async def _manager(tmp_path, **kw):
    mgr = JobManager(ResultStore(tmp_path / "store"), ServeMetrics(), **kw)
    await mgr.start()
    return mgr


async def _wait(job):
    version = 0
    while not job.terminal:
        version = await job.wait_change(version)
    return job


class TestPerPointTimeout:
    def test_hanging_point_fails_job_not_server(self, tmp_path):
        async def main():
            # jobs_per_run=2 puts points in forked workers, where the
            # runner's supervision (not the server) enforces timeouts.
            mgr = await _manager(
                tmp_path, workers=1, jobs_per_run=2, point_timeout=1.0
            )
            bad = mgr.submit([spec_of("r-hang", 0), spec_of("r-hang", 1)])
            good = mgr.submit([spec_of("r-echo", 7)])
            await _wait(bad)
            assert bad.state == JobState.FAILED
            assert "timed out" in bad.error
            await _wait(good)
            assert good.state == JobState.DONE       # server still serving
            assert len(mgr.store) == 1               # only the good payload
            await mgr.shutdown()
        asyncio.run(main())


class TestWorkerCrashIsolation:
    def test_dying_worker_fails_job_not_server(self, tmp_path):
        async def main():
            mgr = await _manager(tmp_path, workers=1, jobs_per_run=2)
            bad = mgr.submit([spec_of("r-die", 0), spec_of("r-die", 1)])
            good = mgr.submit([spec_of("r-echo", 8)])
            await _wait(bad)
            assert bad.state == JobState.FAILED
            assert "died" in bad.error
            await _wait(good)
            assert good.state == JobState.DONE
            assert mgr.metrics.failed == 1 and mgr.metrics.completed == 1
            await mgr.shutdown()
        asyncio.run(main())


class TestStoreRoundTrip:
    def test_write_evict_recompute_identical_bytes(self, tmp_path):
        """The cache contract end to end: losing an entry is harmless."""
        specs = [spec_of("r-echo", i) for i in range(3)]
        digest = job_digest(specs)
        first = result_payload(SweepRunner(jobs=1).run(specs))

        store = ResultStore(tmp_path / "store", max_bytes=len(first) + 10)
        store.put(digest, first)
        assert store.get(digest) == first

        # Evict by crowding it out with filler entries.
        import hashlib
        for i in range(3):
            filler = hashlib.sha256(f"filler{i}".encode()).hexdigest()
            store.put(filler, b"f" * len(first))
        assert store.get(digest) is None and store.evictions >= 1

        # Recompute: byte-identical, so re-caching is safe forever.
        second = result_payload(SweepRunner(jobs=2).run(specs))
        assert second == first
        store.put(digest, second)
        assert store.get(digest) == first

    def test_manager_recomputes_after_eviction(self, tmp_path):
        async def main():
            store = ResultStore(tmp_path / "store")
            mgr = JobManager(store, ServeMetrics())
            await mgr.start()
            j1 = mgr.submit([spec_of("r-echo", 5)])
            await _wait(j1)
            payload = j1.payload

            # Simulate external eviction, then resubmit: miss + recompute.
            os.unlink(tmp_path / "store" / "objects" / j1.digest[:2] / j1.digest)
            store._index.pop(j1.digest)
            j2 = mgr.submit([spec_of("r-echo", 5)])
            assert not j2.cached
            await _wait(j2)
            assert j2.payload == payload
            await mgr.shutdown()
        asyncio.run(main())
