"""Fault plans: what can go wrong on the simulated fabric, and how often.

A :class:`FaultPlan` is a declarative description of an imperfect
fabric: per-delivery probabilities of a delivery being **dropped**,
**duplicated**, or **delayed** by sampled jitter, of the sending NIC
**stalling**, and — specific to CkDirect's out-of-band completion
scheme — of a put landing its payload but losing (**tearing**) the
trailing sentinel word, the failure mode that silently defeats the
poll sweep (paper §2.1).

Faults are *scoped* per transport service so a profile can target the
unprotected CkDirect data path without starving the control plane:

* ``"put"``   — :meth:`Fabric.direct_put` deliveries (the RDMA write /
  DCMF send carrying a CkDirect put),
* ``"ack"``   — the reliability layer's completion acks,
* ``"charm"`` — :meth:`Fabric.charm_transport` messages,
* ``"raw"``   — bare :meth:`Fabric.transfer` calls (the simulated-MPI
  driving path).

The built-in profiles (:data:`PROFILES`) only fault the ``put``/``ack``
scopes: those are exactly the deliveries the new reliability machinery
(sequence numbers + retransmit + watchdog + fallback) can recover, so
an application run under any built-in profile must still produce
bit-identical results — the property ``repro chaos`` asserts.
Dropping ``charm``/``raw`` deliveries deadlocks a run by design (no
retransmission exists there); custom plans may still do it to study
exactly that.

All randomness is drawn from per-category :func:`repro.sim.rng.substream`
generators seeded from the plan's seed, so a faulted run is a pure
function of ``(workload, seed)`` and is reproducible at any ``--jobs N``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Tuple


class FaultConfigError(ValueError):
    """Raised for malformed fault plans or unknown profile names."""


@dataclass(frozen=True)
class FaultRule:
    """Fault probabilities for one transport-service scope.

    All probabilities are per delivery (or per ack, for ``ack_drop`` on
    the ``ack`` scope).  ``delay_mean`` parameterizes an exponential
    jitter added on top of the modelled delivery time; ``stall_time``
    is the length of a NIC freeze charged to the sending node's
    injection port.
    """

    drop: float = 0.0          # P(delivery lost)
    dup: float = 0.0           # P(delivery duplicated)
    delay: float = 0.0         # P(delivery jittered)
    delay_mean: float = 50e-6  # mean of the exponential jitter (s)
    torn: float = 0.0          # P(payload lands, sentinel word lost)
    stall: float = 0.0         # P(sender NIC stalls at injection)
    stall_time: float = 300e-6  # NIC freeze duration (s)

    def __post_init__(self) -> None:
        for name in ("drop", "dup", "delay", "torn", "stall"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise FaultConfigError(f"{name} must be a probability, got {p!r}")
        if self.delay_mean < 0 or self.stall_time < 0:
            raise FaultConfigError("delay_mean/stall_time must be non-negative")

    @property
    def active(self) -> bool:
        """True when any fault of this rule can actually fire."""
        return any(
            getattr(self, f) > 0.0
            for f in ("drop", "dup", "delay", "torn", "stall")
        )


#: Transport-service scopes a rule can attach to.
SCOPES = ("put", "ack", "charm", "raw")

_NO_FAULTS = FaultRule()


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of per-scope fault rules."""

    profile: str
    seed: int = 0x0FA11
    rules: Tuple[Tuple[str, FaultRule], ...] = ()

    def __post_init__(self) -> None:
        for scope, _rule in self.rules:
            if scope not in SCOPES:
                raise FaultConfigError(
                    f"unknown fault scope {scope!r}; expected one of {SCOPES}"
                )

    def rule(self, scope: str) -> FaultRule:
        """The rule for a scope (an all-zero rule when unconfigured)."""
        for s, r in self.rules:
            if s == scope:
                return r
        return _NO_FAULTS

    @property
    def active(self) -> bool:
        """True when any configured rule can fire a fault."""
        return any(r.active for _s, r in self.rules)

    @classmethod
    def named(cls, profile: str, seed: int = 0x0FA11) -> "FaultPlan":
        """Build one of the built-in profiles by name."""
        try:
            rules = PROFILES[profile]
        except KeyError:
            raise FaultConfigError(
                f"unknown fault profile {profile!r}; "
                f"known: {sorted(PROFILES)}"
            ) from None
        return cls(profile=profile, seed=seed, rules=rules)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same plan reseeded (independent fault sequence)."""
        return dataclasses.replace(self, seed=seed)


#: Built-in profiles, keyed by the ``--faults`` CLI names.  Each is a
#: tuple of (scope, rule) pairs — tuples, not dicts, so plans stay
#: hashable and cheaply picklable for sweep workers.
PROFILES: Dict[str, Tuple[Tuple[str, FaultRule], ...]] = {
    # Reliability machinery armed, fabric perfect: measures the cost of
    # the protection itself and anchors the chaos oracle's comparisons.
    "none": (),
    # Put deliveries vanish; some acks vanish too, exercising duplicate
    # detection on the receiver when the sender retransmits a put that
    # actually arrived.
    "drop": (
        ("put", FaultRule(drop=0.15)),
        ("ack", FaultRule(drop=0.10)),
    ),
    # The CkDirect-specific failure: the RDMA write completes for the
    # payload but the trailing double word never lands, so the poll
    # sweep can never observe arrival (§2.1's sharp edge).
    "torn-sentinel": (
        ("put", FaultRule(torn=0.20)),
    ),
    # Deliveries arrive late (sometimes later than the retransmit
    # timeout — the stale-duplicate path) and occasionally twice.
    "delay": (
        ("put", FaultRule(delay=0.30, delay_mean=400e-6, dup=0.05)),
    ),
    # The sending NIC freezes, back-pressuring every later transfer
    # from that node through the injection-occupancy model.
    "nic-stall": (
        ("put", FaultRule(stall=0.08, stall_time=500e-6)),
    ),
}


def parse_profiles(spec: str) -> Tuple[str, ...]:
    """Parse a ``--faults`` value: comma-separated profile names.

    ``"all"`` expands to every built-in profile (deterministic order).
    """
    if spec.strip() == "all":
        return tuple(sorted(PROFILES))
    names = tuple(s.strip() for s in spec.split(",") if s.strip())
    if not names:
        raise FaultConfigError(f"no fault profiles in {spec!r}")
    for name in names:
        if name not in PROFILES:
            raise FaultConfigError(
                f"unknown fault profile {name!r}; known: {sorted(PROFILES)}"
            )
    return names


@dataclass(frozen=True)
class ReliabilityParams:
    """Knobs of the put-reliability layer (all simulated seconds).

    Installed on the runtime whenever a :class:`FaultPlan` is; the
    defaults sit well above Abe/Surveyor delivery latencies (tens of
    microseconds) so a clean put is never spuriously retransmitted,
    while a lost one recovers within a few hundred microseconds.
    """

    rto_initial: float = 200e-6   # first retransmit timeout
    rto_backoff: float = 2.0      # exponential backoff factor
    max_attempts: int = 4         # RDMA attempts before falling back
    ack_bytes: int = 16           # completion-ack control payload
    watchdog_period: float = 500e-6   # poll-queue scan interval
    watchdog_timeout: float = 1.2e-3  # in-flight age that counts as a stall

    def __post_init__(self) -> None:
        if self.rto_initial <= 0 or self.rto_backoff < 1.0:
            raise FaultConfigError("rto_initial must be > 0 and backoff >= 1")
        if self.max_attempts < 1:
            raise FaultConfigError("max_attempts must be at least 1")
        if self.watchdog_period <= 0 or self.watchdog_timeout <= 0:
            raise FaultConfigError("watchdog period/timeout must be > 0")

    def rto(self, attempt: int) -> float:
        """Retransmit timeout for the given 1-based attempt number."""
        return self.rto_initial * self.rto_backoff ** (attempt - 1)
