"""Persistent-channel discovery — the paper's final future-work item
(§6): "the eventual inclusion of CkDirect into an automatic learning
framework which will create persistent channels where appropriate".

:class:`ChannelAdvisor` observes an application's ordinary message
traffic and finds the flows a CkDirect channel would pay for:

* a **flow** is a (sender element, receiver element, entry method)
  triple;
* a flow is a channel *candidate* once it repeats with a **stable
  payload size** for at least ``min_repeats`` consecutive observations
  (the paper's precondition: "iterative applications with stable
  communication patterns");
* for each candidate the advisor estimates the per-iteration saving
  from the machine's calibrated parameters — exactly the costs the
  evaluation shows CkDirect eliding: the envelope header on the wire,
  the scheduler dispatch + entry overhead, the rendezvous registration
  (Infiniband, large messages), and the RTS receive copy (BG/P) — and
  the number of iterations needed to amortize the one-time channel
  setup.

Attach with :meth:`ChannelAdvisor.attach`; it wraps ``Runtime.send``
non-invasively, so applications run unmodified while being profiled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...charm.runtime import Runtime
from ...network.infiniband import InfinibandFabric

FlowKey = Tuple[int, Tuple[int, ...], Tuple[int, ...], str]  # array, src, dst, method


@dataclass
class FlowStats:
    """Observation record for one message flow."""

    count: int = 0
    last_nbytes: Optional[int] = None
    stable_run: int = 0  # consecutive observations at last_nbytes
    total_bytes: int = 0

    def observe(self, nbytes: int) -> None:
        """Record one message of this flow."""
        self.count += 1
        self.total_bytes += nbytes
        if nbytes == self.last_nbytes:
            self.stable_run += 1
        else:
            self.last_nbytes = nbytes
            self.stable_run = 1


@dataclass
class ChannelCandidate:
    """One flow the advisor recommends converting to a channel."""

    array_id: int
    src_index: Tuple[int, ...]
    dst_index: Tuple[int, ...]
    method: str
    nbytes: int
    observations: int
    saving_per_message: float  # seconds
    setup_cost: float  # seconds (createHandle + assocLocal)

    @property
    def amortization_messages(self) -> float:
        """Messages needed before the channel has paid for itself."""
        if self.saving_per_message <= 0:
            return float("inf")
        return self.setup_cost / self.saving_per_message

    def __str__(self) -> str:  # pragma: no cover - formatting
        return (
            f"array{self.array_id} {self.src_index}->{self.dst_index}"
            f".{self.method} ({self.nbytes}B x{self.observations}): "
            f"saves {self.saving_per_message * 1e6:.2f}us/msg, amortizes "
            f"after {self.amortization_messages:.0f} messages"
        )


class ChannelAdvisor:
    """Observes a runtime's sends and recommends persistent channels."""

    def __init__(self, rt: Runtime, min_repeats: int = 3,
                 min_bytes: int = 256) -> None:
        self.rt = rt
        self.min_repeats = min_repeats
        self.min_bytes = min_bytes
        self.flows: Dict[FlowKey, FlowStats] = {}
        self._orig_send = None
        self._sender_ctx: List = []

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach(self) -> "ChannelAdvisor":
        """Start observing (idempotent)."""
        if self._orig_send is not None:
            return self
        rt, advisor = self.rt, self
        self._orig_send = rt.send

        def observing_send(array, index, method, args=(), internal=False,
                           nbytes_override=None):
            if not internal and rt.current_pe is not None:
                advisor._record(array, index, method, args)
            return advisor._orig_send(array, index, method, args,
                                      internal, nbytes_override)

        rt.send = observing_send
        return self

    def detach(self) -> None:
        """Stop observing and restore Runtime.send."""
        if self._orig_send is not None:
            self.rt.send = self._orig_send
            self._orig_send = None

    def _record(self, array, index, method, args) -> None:
        from ...charm.message import Payload

        nbytes = sum(
            a.nbytes for a in args
            if isinstance(a, Payload) or hasattr(a, "nbytes")
        )
        if nbytes < self.min_bytes:
            return
        # the sender element is not identified by the runtime directly;
        # key flows by (destination, method, source PE) via the current
        # PE — distinct senders on one PE to one target merge, which is
        # conservative (they would share a channel's amortization).
        src = (self.rt.current_pe.rank,)
        key = (array.id, src, array.normalize_index(index), method)
        self.flows.setdefault(key, FlowStats()).observe(int(nbytes))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def _saving_per_message(self, nbytes: int) -> float:
        """Calibrated per-message saving of channel vs message."""
        m = self.rt.machine
        charm, ck = m.charm, m.ckdirect
        # costs the message path pays and the channel skips:
        saving = (
            charm.header_bytes * m.net.beta  # envelope on the wire
            + charm.send_overhead - ck.put_issue  # send-side software
            + charm.sched_overhead + charm.handler_overhead
            + charm.recv_overhead
        )
        # receive-side detection costs the channel *does* pay:
        saving -= ck.poll_base + ck.poll_per_handle + ck.detect_overhead
        saving -= ck.callback_overhead
        if isinstance(self.rt.fabric, InfinibandFabric):
            saving += self.rt.fabric.recv_handler_cost(
                nbytes + charm.header_bytes
            )  # per-message registration, paid once by the channel
        if charm.rts_copy_per_byte:
            exposed = min(nbytes, charm.rts_copy_cap) if charm.rts_copy_cap else nbytes
            saving += exposed * charm.rts_copy_per_byte
        return saving

    def candidates(self) -> List[ChannelCandidate]:
        """Flows worth converting, best saving first."""
        ck = self.rt.machine.ckdirect
        setup = ck.handle_setup + ck.assoc_overhead
        out = []
        for (array_id, src, dst, method), st in self.flows.items():
            if st.stable_run < self.min_repeats or st.last_nbytes is None:
                continue
            saving = self._saving_per_message(st.last_nbytes)
            if saving <= 0:
                continue
            out.append(
                ChannelCandidate(
                    array_id=array_id,
                    src_index=src,
                    dst_index=dst,
                    method=method,
                    nbytes=st.last_nbytes,
                    observations=st.count,
                    saving_per_message=saving,
                    setup_cost=setup,
                )
            )
        out.sort(key=lambda c: -c.saving_per_message * c.observations)
        return out

    def report(self) -> str:
        """Human-readable recommendation summary."""
        cands = self.candidates()
        lines = [
            f"ChannelAdvisor: {len(self.flows)} flows observed, "
            f"{len(cands)} channel candidates"
        ]
        total = 0.0
        for c in cands:
            lines.append("  " + str(c))
            total += c.saving_per_message * c.observations
        lines.append(
            f"  projected total saving so far: {total * 1e6:.1f}us"
        )
        return "\n".join(lines)
