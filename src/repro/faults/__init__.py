"""Deterministic fault injection + the reliability layer's knobs.

The paper's CkDirect trusts the fabric completely: a put is a bare RDMA
write and completion is *inferred* from the out-of-band sentinel — no
ack, no timeout, no retry (§2.1).  This package supplies the imperfect
fabric that design must eventually face (:class:`FaultPlan`,
:class:`FaultInjector`) and the tuning block for the reliability
machinery that tolerates it (:class:`ReliabilityParams`; the machinery
itself lives in :mod:`repro.ckdirect.api` and
:mod:`repro.charm.scheduler`).

Install both by constructing the runtime with a plan::

    rt = Runtime(ABE, 16, fault_plan=FaultPlan.named("drop"))

``repro chaos`` runs the paper's applications under every built-in
profile and asserts their results remain bit-identical.
"""

from .injector import FaultInjector
from .plan import (
    PROFILES,
    FaultConfigError,
    FaultPlan,
    FaultRule,
    ReliabilityParams,
    parse_profiles,
)

__all__ = [
    "FaultConfigError",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "PROFILES",
    "ReliabilityParams",
    "parse_profiles",
]
