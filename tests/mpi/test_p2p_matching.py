"""Unit tests for the two-sided matching engine (pure bookkeeping)."""

from repro.mpi.p2p import ANY_SOURCE, ANY_TAG, Arrival, Matcher, RecvPost


def _recv(src=ANY_SOURCE, tag=ANY_TAG, t=0.0):
    return RecvPost(src, tag, lambda a: None, t)


def _arr(src=0, tag=0, nbytes=8, t=0.0):
    return Arrival(src, tag, nbytes, t)


def test_posted_recv_matches_arrival():
    m = Matcher()
    r = _recv(src=1, tag=5)
    assert m.post(r) is None
    got = m.arrive(_arr(src=1, tag=5))
    assert got is r
    assert m.pending_recvs == 0


def test_unexpected_then_post():
    m = Matcher()
    a = _arr(src=2, tag=9)
    assert m.arrive(a) is None
    assert m.pending_unexpected == 1
    got = m.post(_recv(src=2, tag=9))
    assert got is a
    assert m.pending_unexpected == 0


def test_wildcard_source():
    m = Matcher()
    m.post(_recv(src=ANY_SOURCE, tag=3))
    assert m.arrive(_arr(src=7, tag=3)) is not None


def test_wildcard_tag():
    m = Matcher()
    m.post(_recv(src=4, tag=ANY_TAG))
    assert m.arrive(_arr(src=4, tag=11)) is not None


def test_mismatched_tag_does_not_match():
    m = Matcher()
    m.post(_recv(src=1, tag=5))
    assert m.arrive(_arr(src=1, tag=6)) is None
    assert m.pending_recvs == 1
    assert m.pending_unexpected == 1


def test_posted_order_fifo():
    m = Matcher()
    r1, r2 = _recv(tag=ANY_TAG), _recv(tag=ANY_TAG)
    m.post(r1)
    m.post(r2)
    assert m.arrive(_arr()) is r1
    assert m.arrive(_arr()) is r2


def test_unexpected_order_fifo():
    m = Matcher()
    a1, a2 = _arr(tag=1), _arr(tag=1)
    m.arrive(a1)
    m.arrive(a2)
    assert m.post(_recv(tag=1)) is a1
    assert m.post(_recv(tag=1)) is a2


def test_specific_recv_skips_nonmatching_unexpected():
    m = Matcher()
    a_wrong = _arr(src=9, tag=1)
    a_right = _arr(src=2, tag=1)
    m.arrive(a_wrong)
    m.arrive(a_right)
    assert m.post(_recv(src=2, tag=1)) is a_right
    assert m.pending_unexpected == 1


def test_rendezvous_arrival_flag():
    a = Arrival(0, 0, 8, 0.0, begin_data=lambda r: None)
    assert a.is_rendezvous
    assert not _arr().is_rendezvous
