"""CkDirect channel handles and the channel state machine.

A handle represents one persistent, one-way, one-sided channel between
a sender buffer and a receiver buffer (paper §2).  The state machine
encodes the usage contract the paper states in prose, and the strict
checks turn silent data races into loud errors:

::

            create_handle (+assoc_local)
                     │
                     ▼
      ┌─────────► ARMED ── put ──► IN_FLIGHT ── delivery ──► DELIVERED
      │              ▲                                            │
      │   ready_poll_q│                                  callback │
      │              │                                      fired │
      │            MARKED ◄── ready_mark ──── CONSUMED ◄──────────┘
      │                                          │
      └────────────── ready (mark + poll) ───────┘

* ``put`` is legal from **ARMED** or **MARKED** (data may arrive while
  un-polled; ``ready_poll_q`` then finds it already there — §2.1).
  A put from IN_FLIGHT violates the one-message-in-flight rule; a put
  from DELIVERED/CONSUMED would overwrite data the receiver has not
  finished with — exactly the bug the application-level synchronization
  must prevent, so strict mode raises :class:`ChannelStateError`.
* On Blue Gene/P ``ready`` has no effect in the paper's implementation;
  completion re-arms the channel, so ``put`` from CONSUMED is legal
  there (see :mod:`repro.ckdirect.api`).

The out-of-band sentinel is real: for numpy-backed receive buffers the
final element is set to the user's out-of-band value on arm/mark, and
arrival is (also) observable as that element changing — tests verify
the mechanism end to end, including the user-contract violation where
transferred data itself equals the sentinel.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Optional, Union

from ..charm.callback import CkCallback
from ..charm.errors import (  # re-exported for back-compat
    ChannelStateError,
    CkDirectError,
    PutRaceError,
    SentinelError,
)
from ..util.buffers import Buffer

if TYPE_CHECKING:  # pragma: no cover
    from ..charm.pe import PE
    from ..charm.runtime import Runtime

#: Debug-mode use-before-ready check (on by default): a put landing in
#: a buffer whose sentinel was consumed but not re-marked raises
#: :class:`~repro.charm.errors.PutRaceError` instead of silently
#: overwriting data the receiver still owns.  Flip off to model the
#: real hardware, which performs the errant write without complaint.
RACE_CHECK = True


class ChannelState(enum.Enum):
    """Lifecycle states of a CkDirect channel (see module diagram)."""
    ARMED = "armed"  # sentinel set; being polled (or BG/P ready)
    IN_FLIGHT = "in_flight"  # one put travelling
    DELIVERED = "delivered"  # data landed, callback not yet fired
    CONSUMED = "consumed"  # callback fired; receiver owns the buffer
    MARKED = "marked"  # sentinel re-set but not yet polled (IB)


UserCallback = Union[Callable[[Any], None], CkCallback]


class CkDirectHandle:
    """One persistent one-sided channel (receiver side + sender view).

    In the real system the handle struct is copied to the sender in a
    message; in this single-process simulation both sides share the
    object (the runtime still *transfers* it through a real message in
    the examples, preserving the setup protocol of Figure 1).
    """

    __slots__ = (
        "hid",
        "rt",
        "recv_pe",
        "recv_buffer",
        "oob",
        "callback",
        "cbdata",
        "state",
        "src_pe",
        "src_buffer",
        "arrived",
        "puts_completed",
        "bytes_received",
        "name",
        "remote",
        "trace_put_eid",
        "trace_eid",
        # Reliability-layer state (inert unless the runtime carries a
        # ReliabilityParams — see repro.ckdirect.api._reliable_put).
        "sentinel_armed",
        "put_seq",
        "last_delivered_seq",
        "acked_seq",
        "attempt",
        "degraded",
        "put_issue_time",
        "rto_event",
        "watchdog_fired_seq",
        "torn_landed",
        "_torn_true_last",
    )

    def __init__(
        self,
        rt: "Runtime",
        recv_pe: "PE",
        recv_buffer: Buffer,
        oob: Any,
        callback: UserCallback,
        cbdata: Any = None,
        name: str = "",
    ) -> None:
        # Handle ids come from the runtime so that a Time Warp rollback
        # replays handle creation under the original ids (the module
        # counter would drift forward, breaking replay bit-identity).
        self.hid = rt._alloc_hid()
        if rt._tw_handles is not None:
            # Optimistic engine: self-register so checkpoint capture
            # can snapshot every live handle (including wire-codec
            # proxies that never enter rt._handles) without walking
            # chare attributes.
            rt._tw_handles[id(self)] = self
        self.rt = rt
        self.recv_pe = recv_pe
        self.recv_buffer = recv_buffer
        self.oob = oob
        self.callback = callback
        self.cbdata = cbdata
        self.state = ChannelState.ARMED
        self.src_pe: Optional["PE"] = None
        self.src_buffer: Optional[Buffer] = None
        self.arrived = False
        self.puts_completed = 0
        self.bytes_received = 0
        self.name = name or f"chan{self.hid}"
        #: True on a sender-side *proxy* of a channel whose receive
        #: buffer lives on another shard of a sharded run (see
        #: repro.sim.parallel).  Proxy puts skip the local state
        #: machine — the real handle on the owning shard enforces the
        #: landing-side contract.
        self.remote = False
        #: timeline causality (None untraced): the in-flight put's
        #: issue span, and the completion instant the callback chains to.
        self.trace_put_eid = None
        self.trace_eid = None
        #: True while the receiver has ceded the buffer to the network
        #: (sentinel stamped, callback not yet fired) — the invariant
        #: the use-before-ready race check enforces at delivery.
        self.sentinel_armed = True
        self.put_seq = 0  # sender-side: last sequence number issued
        self.last_delivered_seq = 0  # receiver-side duplicate filter
        self.acked_seq = 0  # sender-side: newest acknowledged put
        self.attempt = 0  # RDMA attempts for the current put
        self.degraded = False  # permanently on the charm_transport path
        self.put_issue_time = 0.0
        self.rto_event = None  # pending retransmit-timeout sim event
        self.watchdog_fired_seq = 0  # once-per-stall watchdog filter
        self.torn_landed = False  # payload present, sentinel lost
        self._torn_true_last = None

    # ------------------------------------------------------------------
    # Sentinel mechanics (real buffers only)
    # ------------------------------------------------------------------

    def stamp_sentinel(self) -> None:
        """Write the out-of-band value into the trailing element."""
        self.sentinel_armed = True
        if not self.recv_buffer.is_virtual:
            self.recv_buffer.set_last(self.oob)

    def sentinel_clear(self) -> bool:
        """True when the trailing element no longer equals the
        out-of-band value — i.e. data has (observably) arrived."""
        if self.recv_buffer.is_virtual:
            return self.arrived
        return bool(self.recv_buffer.get_last() != self.oob)

    # ------------------------------------------------------------------
    # Delivery-side transitions (driven by the api module)
    # ------------------------------------------------------------------

    def _check_landing(self) -> None:
        """Use-before-ready race check, at the moment a put lands.

        The state machine catches misuse at *issue* time, but real RDMA
        lands whatever was posted: a write arriving after the receiver
        consumed the buffer and before ``ready_mark`` silently destroys
        data the receiver still owns.  With :data:`RACE_CHECK` on
        (default) that landing raises instead.
        """
        if RACE_CHECK and not self.sentinel_armed:
            raise PutRaceError(
                f"{self.name}: a put landed while the receiver owns the "
                "buffer (sentinel consumed, ready_mark not yet called) — "
                "the application's phase synchronization has a race"
            )

    def deliver(self) -> None:
        """The put's last byte arrived: land the data, flip state."""
        assert self.state is ChannelState.IN_FLIGHT or True  # see api.put
        self._check_landing()
        self.torn_landed = False
        if self.src_buffer is not None:
            self.recv_buffer.copy_from(self.src_buffer)
        if not self.recv_buffer.is_virtual and not self.sentinel_clear():
            raise SentinelError(
                f"{self.name}: transferred data ends with the out-of-band "
                f"value {self.oob!r}; the user contract (\"a pattern that "
                "will never appear as received data\") is violated and the "
                "receiver could never detect this message"
            )
        self.arrived = True
        self.state = ChannelState.DELIVERED
        self.puts_completed += 1
        self.bytes_received += self.recv_buffer.nbytes

    # ------------------------------------------------------------------
    # Torn-sentinel landings (fault-injection path only)
    # ------------------------------------------------------------------

    def deliver_torn(self) -> None:
        """Land the payload but lose the trailing sentinel word.

        Models the RDMA failure the paper's completion scheme is blind
        to: every byte except the last word arrives, so the sentinel
        still reads as the out-of-band value and the poll sweep can
        never detect the message.  The true trailing value is parked in
        ``_torn_true_last`` so a watchdog :meth:`recover_torn` (or a
        full retransmit) can complete the delivery.  State stays
        IN_FLIGHT and ``arrived`` stays False — to both endpoints the
        put simply looks lost.
        """
        self._check_landing()
        if self.src_buffer is not None:
            self.recv_buffer.copy_from(self.src_buffer)
        if not self.recv_buffer.is_virtual:
            self._torn_true_last = self.recv_buffer.get_last()
            self.recv_buffer.set_last(self.oob)  # the word that never landed
        self.torn_landed = True

    def recover_torn(self) -> None:
        """Repair a torn landing locally (watchdog recovery path).

        The retransmit protocol carries the payload's true trailing
        word in its control header, so the watchdog can finish the
        delivery without moving the payload again.
        """
        if not self.torn_landed:
            raise CkDirectError(f"{self.name}: recover_torn without a torn landing")
        if not self.recv_buffer.is_virtual:
            self.recv_buffer.set_last(self._torn_true_last)
        self._torn_true_last = None
        self.torn_landed = False
        self.arrived = True
        self.state = ChannelState.DELIVERED
        self.puts_completed += 1
        self.bytes_received += self.recv_buffer.nbytes

    def fire(self) -> None:
        """Run the user callback (a plain function call — no scheduling).

        Invoked by the PE's poll sweep (Infiniband) or by the DCMF
        completion path (BG/P), already inside the PE's context.
        """
        self.arrived = False
        self.sentinel_armed = False  # receiver owns the buffer again
        self.state = ChannelState.CONSUMED
        if isinstance(self.callback, CkCallback):
            self.callback.invoke(self.rt, self.cbdata)
        else:
            self.callback(self.cbdata)

    # ------------------------------------------------------------------
    # Time Warp checkpoint/restore (see repro.sim.timewarp)
    # ------------------------------------------------------------------

    def tw_checkpoint(self) -> tuple:
        """Snapshot every mutable slot (plus buffer contents).

        Object-valued slots (callback, cbdata, src_pe, src_buffer,
        rto_event) are captured by reference: replayed events re-assign
        them to equal values, and the referenced objects are themselves
        checkpointed by their owning layer.
        """
        recv = None
        if not self.recv_buffer.is_virtual:
            recv = self.recv_buffer.array.copy()
        src = None
        if self.src_buffer is not None and not self.src_buffer.is_virtual:
            src = self.src_buffer.array.copy()
        return (
            self.state, self.arrived, self.sentinel_armed,
            self.puts_completed, self.bytes_received,
            self.put_seq, self.last_delivered_seq, self.acked_seq,
            self.attempt, self.degraded, self.put_issue_time,
            self.rto_event, self.watchdog_fired_seq,
            self.torn_landed, self._torn_true_last,
            self.src_pe, self.src_buffer, src,
            self.callback, self.cbdata,
            self.trace_put_eid, self.trace_eid,
            recv,
        )

    def tw_restore(self, snap: tuple) -> None:
        (self.state, self.arrived, self.sentinel_armed,
         self.puts_completed, self.bytes_received,
         self.put_seq, self.last_delivered_seq, self.acked_seq,
         self.attempt, self.degraded, self.put_issue_time,
         self.rto_event, self.watchdog_fired_seq,
         self.torn_landed, self._torn_true_last,
         self.src_pe, self.src_buffer, src,
         self.callback, self.cbdata,
         self.trace_put_eid, self.trace_eid,
         recv) = snap
        if recv is not None:
            self.recv_buffer.array[...] = recv
        if src is not None and self.src_buffer is not None:
            self.src_buffer.array[...] = src

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CkDirectHandle {self.name} #{self.hid} {self.state.value} "
            f"{self.recv_buffer.nbytes}B -> pe{self.recv_pe.rank}>"
        )
