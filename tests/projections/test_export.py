"""Tests for the Chrome trace-event exporter and terminal views."""

import json

import pytest

from repro.projections.events import (
    CAT_ENTRY,
    CAT_MSG,
    CAT_NET,
    HOST_TRACK,
    NET_TRACK,
)
from repro.projections.eventlog import EventLog
from repro.projections.export import (
    chrome_trace,
    render_utilization,
    write_chrome_trace,
)


def _sample_log() -> EventLog:
    log = EventLog()
    log.new_run("charm:Abe", n_pes=2)
    e = log.span(0, 0, CAT_ENTRY, "go", 0.0, 2e-6)
    log.instant(0, HOST_TRACK, CAT_MSG, "send:go", 0.0)
    log.instant(0, NET_TRACK, CAT_NET, "transfer", 1e-6, cause=e)
    log.span(0, 1, CAT_ENTRY, "recv", 2e-6, 3e-6, cause=e)
    return log


def test_chrome_trace_structure():
    doc = chrome_trace(_sample_log())
    events = doc["traceEvents"]
    meta = [r for r in events if r["ph"] == "M"]
    names = {r["name"]: r for r in meta}
    assert names["process_name"]["args"]["name"] == "charm:Abe"
    thread_names = {r["args"]["name"] for r in meta if r["name"] == "thread_name"}
    # both declared PE tracks plus the pseudo-tracks that saw events
    assert {"PE 0", "PE 1", "host", "net"} <= thread_names
    assert doc["otherData"]["runs"] == ["charm:Abe"]


def test_tid_mapping_and_phases():
    doc = chrome_trace(_sample_log())
    data = [r for r in doc["traceEvents"] if r["ph"] in ("X", "i")]
    by_name = {r["name"]: r for r in data}
    assert by_name["go"]["tid"] == 2          # PE 0 -> tid 2
    assert by_name["recv"]["tid"] == 3        # PE 1 -> tid 3
    assert by_name["send:go"]["tid"] == 1     # host pseudo-track
    assert by_name["transfer"]["tid"] == 0    # net pseudo-track
    assert by_name["go"]["ph"] == "X"
    assert by_name["go"]["dur"] == pytest.approx(2.0)   # us
    assert by_name["transfer"]["ph"] == "i"
    assert by_name["transfer"]["s"] == "t"
    assert by_name["transfer"]["ts"] == pytest.approx(1.0)


def test_causality_survives_export():
    doc = chrome_trace(_sample_log())
    data = [r for r in doc["traceEvents"] if r["ph"] in ("X", "i")]
    by_name = {r["name"]: r for r in data}
    assert by_name["recv"]["args"]["cause"] == by_name["go"]["args"]["eid"]


def test_events_sorted_by_time():
    doc = chrome_trace(_sample_log())
    ts = [r["ts"] for r in doc["traceEvents"] if r["ph"] in ("X", "i")]
    assert ts == sorted(ts)


def test_write_chrome_trace_roundtrip(tmp_path):
    log = _sample_log()
    path = tmp_path / "out.trace.json"
    n = write_chrome_trace(log, str(path))
    assert n == len(log.events)
    doc = json.loads(path.read_text())
    assert len([r for r in doc["traceEvents"] if r["ph"] in ("X", "i")]) == n


def test_render_utilization():
    out = render_utilization(_sample_log())
    assert "run0/PE 0" in out
    assert "util %" in out
    assert render_utilization(EventLog()) == "(no span events recorded)"
