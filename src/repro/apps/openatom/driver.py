"""Driver for the OpenAtom mini-app experiments (Figures 4 and 5).

Figures 4(a,b) and 5(a,b) plot time per step versus processor count
for the full application and for the PairCalculator-only variant
("PC"), each with CHARM++ messages versus CkDirect.  The Abe runs use
2 cores per node, as the paper did for these experiments.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ...charm import CkCallback, Runtime
from ...faults import FaultPlan
from ...network.params import MachineParams
from ...sim.parallel import resolve_shards
from .config import OpenAtomConfig
from .gspace import GSpaceBase
from .paircalc import Ortho
from .variants import (
    GSpaceCkd,
    GSpaceCkdFull,
    GSpaceMsg,
    PairCalcCkd,
    PairCalcCkdFull,
    PairCalcMsg,
)

MODES = {
    "msg": (GSpaceMsg, PairCalcMsg),
    "ckd": (GSpaceCkd, PairCalcCkd),
    # the paper's anticipated extension: CkDirect in the backward
    # (orthonormalization-return) path as well
    "ckd-full": (GSpaceCkdFull, PairCalcCkdFull),
}


class OpenAtomMonitor:
    """Barrier callbacks + per-step timing; re-arms PCs and resumes GS."""

    def __init__(self, rt: Runtime, iterations: int) -> None:
        self.rt = rt
        self.iterations = iterations
        self.gs_proxy = None
        self.pc_proxy = None
        self.barriers_seen = 0
        self.marks: List[float] = []
        # Host callbacks mutate this object; the optimistic engine
        # must checkpoint it alongside chare state.
        rt.register_host_state(self)

    def on_barrier(self, _value=None) -> None:
        """Barrier-release hook: record the time, start the next step."""
        self.marks.append(self.rt.now)
        self.barriers_seen += 1
        if self.barriers_seen <= self.iterations:
            # phase notification first (ReadyPollQ), then the new step
            self.pc_proxy.bcast("arm")
            self.gs_proxy.bcast("resume")

    @property
    def step_times(self) -> List[float]:
        """Per-step durations (diffs of barrier marks)."""
        return [b - a for a, b in zip(self.marks, self.marks[1:])]

    def callback(self) -> CkCallback:
        """A CkCallback delivering to on_barrier."""
        return CkCallback.host(self.on_barrier)


@dataclass
class OpenAtomResult:
    """Result record of one OpenAtom run."""
    machine: str
    mode: str
    n_pes: int
    cfg: OpenAtomConfig
    step_times: List[float]
    runtime: Optional[Runtime] = field(default=None, repr=False)
    events: int = 0  # simulator events fired by the run

    @property
    def mean_step_time(self) -> float:
        """Steady-state step time (first step excluded)."""
        times = self.step_times[1:] if len(self.step_times) > 1 else self.step_times
        return float(np.mean(times))


def run_openatom(
    machine: MachineParams,
    n_pes: int,
    cfg: Optional[OpenAtomConfig] = None,
    mode: str = "msg",
    keep_runtime: bool = False,
    faults: Optional[str] = None,
    fault_seed: int = 0x0FA11,
    shards: Optional[int] = None,
    engine: Optional[str] = None,
    transport: Optional[str] = None,
    **cfg_overrides,
) -> OpenAtomResult:
    """One OpenAtom mini-app run.

    ``faults`` names a built-in fault profile: the run then executes on
    an imperfect fabric with the CkDirect reliability layer armed.

    ``shards`` (or ``REPRO_SHARDS``) selects the sharded parallel
    engine — bit-identical results, partitioned wall-clock work.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {sorted(MODES)}, got {mode!r}")
    if cfg is None:
        cfg = OpenAtomConfig(**cfg_overrides)
    elif cfg_overrides:
        cfg = dataclasses.replace(cfg, **cfg_overrides)
    gs_cls, pc_cls = MODES[mode]
    plan = FaultPlan.named(faults, fault_seed) if faults is not None else None
    rt = Runtime(machine, n_pes, fault_plan=plan,
                 shards=resolve_shards(shards), engine=engine,
                 transport=transport)
    monitor = OpenAtomMonitor(rt, cfg.iterations)
    gs = rt.create_array(
        gs_cls, dims=(cfg.nstates, cfg.nplanes), ctor_args=(cfg, monitor)
    )
    pc = rt.create_array(
        pc_cls,
        dims=(cfg.nblocks, cfg.nblocks, cfg.nplanes),
        ctor_args=(cfg, monitor),
    )
    ortho = rt.create_array(Ortho, dims=(1,), ctor_args=(cfg, pc.id))
    monitor.gs_proxy = gs.proxy
    monitor.pc_proxy = pc.proxy
    for elem in gs.elements.values():
        elem._pc_array_id = pc.id
    for elem in pc.elements.values():
        elem._gs_array_id = gs.id
        elem._ortho_array_id = ortho.id

    pc.proxy.bcast("setup")
    gs.proxy.bcast("setup")
    rt.run()
    if monitor.barriers_seen != cfg.iterations + 1:
        raise RuntimeError(
            f"openatom deadlocked: saw {monitor.barriers_seen} barriers, "
            f"expected {cfg.iterations + 1}"
        )
    return OpenAtomResult(
        machine=machine.name,
        mode=mode,
        n_pes=n_pes,
        cfg=cfg,
        step_times=monitor.step_times,
        runtime=rt if keep_runtime else None,
        events=rt.events_processed,
    )


def openatom_point(
    machine: MachineParams, mode: str, n_pes: int, **cfg_overrides
) -> dict:
    """Picklable sweep-point adapter: one OpenAtom run → plain floats."""
    r = run_openatom(machine, n_pes, mode=mode, **cfg_overrides)
    return {"mean_s": r.mean_step_time, "events": r.events}


def abe_2cpn(machine: MachineParams) -> MachineParams:
    """The paper's Abe configuration for these runs: 2 cores per node
    ("to simplify analysis and highlight network effects", §5.2)."""
    if machine.kind != "ib":
        return machine
    return dataclasses.replace(machine, cores_per_node=2)


def openatom_pair(
    machine: MachineParams,
    n_pes: int,
    cfg: Optional[OpenAtomConfig] = None,
    **cfg_overrides,
) -> Tuple[OpenAtomResult, OpenAtomResult]:
    """MSG and CKD runs at identical configuration."""
    msg = run_openatom(machine, n_pes, cfg, mode="msg", **cfg_overrides)
    ckdr = run_openatom(machine, n_pes, cfg, mode="ckd", **cfg_overrides)
    return msg, ckdr
