"""Messages and payloads.

A :class:`Message` is the unit the scheduler queues: target chare,
entry-method name, arguments, and the number of *user payload bytes*
(the fabric adds the Charm++ envelope header on the wire — the paper's
"≈ 80 bytes").

Arguments that carry bulk data are :class:`Payload` objects (or bare
``numpy`` arrays, which are auto-wrapped with ``pack=True``):

* ``pack=True`` — marshalling: the runtime charges a memcpy on the
  sender (``copy_base + nbytes * copy_per_byte``) and snapshots the
  data so the in-flight message is insulated from later writes to the
  source.  This is the normal Charm++ parameter-marshalling cost that
  CkDirect elides.
* ``pack=False`` — a pre-built / reused message buffer (the pingpong
  benchmark does this, as the paper's does): no copy is charged and
  the data travels by reference; the sender must not mutate it until
  delivery.  Application code opts in explicitly.

A payload may be *virtual* (``data=None, nbytes=...``): timing is
identical, no bytes move — used for paper-scale performance runs.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Tuple

import numpy as np

from .errors import CharmError

_msg_ids = itertools.count()


class Payload:
    """Bulk data attached to an entry-method invocation.

    ``auto`` marks payloads created by the runtime's auto-wrapping of
    bare ndarray arguments; these are unwrapped back to arrays at
    delivery so handlers see exactly the type the sender passed.
    """

    __slots__ = ("data", "_nbytes", "pack", "auto")

    def __init__(
        self,
        data: Optional[np.ndarray] = None,
        nbytes: Optional[int] = None,
        pack: bool = True,
        auto: bool = False,
    ) -> None:
        if data is None and nbytes is None:
            raise CharmError("Payload needs data= or nbytes=")
        if data is not None and nbytes is not None and int(nbytes) != int(data.nbytes):
            raise CharmError(
                f"Payload nbytes={nbytes} disagrees with data.nbytes={data.nbytes}"
            )
        self.data = data
        self._nbytes = int(data.nbytes if data is not None else nbytes)  # type: ignore[union-attr]
        self.pack = bool(pack)
        self.auto = bool(auto)

    @property
    def nbytes(self) -> int:
        """Size in bytes."""
        return self._nbytes

    @property
    def is_virtual(self) -> bool:
        """True when no real data backs this payload."""
        return self.data is None

    @classmethod
    def virtual(cls, nbytes: int) -> "Payload":
        """Size-only payload for performance-mode runs."""
        return cls(nbytes=nbytes, pack=False)

    def marshalled(self) -> "Payload":
        """The on-the-wire form: snapshot real data when packing."""
        if self.pack and self.data is not None:
            return Payload(data=np.array(self.data, copy=True), pack=False,
                           auto=self.auto)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "virtual" if self.is_virtual else "real"
        return f"<Payload {kind} {self._nbytes}B pack={self.pack}>"


def wrap_args(args: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Auto-wrap bare ndarrays as packed payloads (the safe default)."""
    return tuple(
        Payload(data=a, pack=True, auto=True) if isinstance(a, np.ndarray) else a
        for a in args
    )


def unwrap_args(args: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Undo auto-wrapping at delivery: handlers receive ndarrays where
    ndarrays were sent, and explicit Payloads stay Payloads."""
    return tuple(
        a.data if isinstance(a, Payload) and a.auto else a for a in args
    )


def payload_bytes(args: Tuple[Any, ...]) -> int:
    """Total payload bytes across an argument tuple."""
    return sum(a.nbytes for a in args if isinstance(a, Payload))


class Message:
    """A scheduled entry-method invocation."""

    __slots__ = (
        "id",
        "array_id",
        "index",
        "method",
        "args",
        "nbytes",
        "src_pe",
        "send_time",
        "is_internal",
        "trace_eid",
    )

    def __init__(
        self,
        array_id: int,
        index: Tuple[int, ...],
        method: str,
        args: Tuple[Any, ...],
        nbytes: int,
        src_pe: Optional[int],
        send_time: float,
        is_internal: bool = False,
    ) -> None:
        self.id = next(_msg_ids)
        self.array_id = array_id
        self.index = index
        self.method = method
        self.args = args
        self.nbytes = nbytes
        self.src_pe = src_pe
        self.send_time = send_time
        self.is_internal = is_internal
        #: latest timeline event on this message's causal chain (the
        #: send instant, then the enqueue instant) — None untraced.
        self.trace_eid = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Message #{self.id} -> array{self.array_id}{self.index}"
            f".{self.method} {self.nbytes}B>"
        )
