#!/usr/bin/env python
"""Timeline-trace OpenAtom both ways and measure the scheduler tax.

Runs the OpenAtom mini-app twice at identical (scaled-down)
configuration — plain Charm++ messages vs CkDirect — each under the
Projections tracer, writes both Chrome trace-event timelines, and
prints where the scheduler/RTS time went.  The delta is the paper's
core claim made visible: CkDirect completions bypass the scheduler
queue, so the `sched` category (dispatch overhead, which grows with
queue depth) shrinks, replaced by cheaper poll sweeps.

Open the written files in Perfetto (https://ui.perfetto.dev) or
chrome://tracing: one track per PE, spans for entry execution and
scheduler work, instants for sends, puts, and wire transfers — click
any event and its `cause` arg names the event that caused it.

Run:  python examples/trace_openatom.py
"""

from repro import ABE
from repro.apps.openatom import abe_2cpn, run_openatom
from repro.projections import (
    EventLog,
    category_totals,
    tracing,
    write_chrome_trace,
)

N_PES = 8
CFG = dict(nstates=16, nplanes=4, grain=4, iterations=2)


def traced_run(mode: str) -> tuple[float, EventLog]:
    with tracing() as log:
        result = run_openatom(abe_2cpn(ABE), N_PES, mode=mode, **CFG)
    return result.mean_step_time, log


def sched_time(log: EventLog) -> float:
    cats = category_totals(log)
    return sum(cats.get(c, {"time": 0.0})["time"] for c in ("sched", "rts"))


def main() -> None:
    msg_step, msg_log = traced_run("msg")
    ckd_step, ckd_log = traced_run("ckd")

    n_msg = write_chrome_trace(msg_log, "openatom_msg.trace.json")
    n_ckd = write_chrome_trace(ckd_log, "openatom_ckd.trace.json")
    print(f"wrote openatom_msg.trace.json ({n_msg} events) and "
          f"openatom_ckd.trace.json ({n_ckd} events)")
    print("open them side by side in https://ui.perfetto.dev\n")

    msg_sched = sched_time(msg_log)
    ckd_sched = sched_time(ckd_log)
    print(f"{'':14} {'step time':>12} {'sched+rts PE time':>18}")
    print(f"{'messages':14} {msg_step * 1e3:>9.3f} ms {msg_sched * 1e6:>15.1f} us")
    print(f"{'ckdirect':14} {ckd_step * 1e3:>9.3f} ms {ckd_sched * 1e6:>15.1f} us")
    saved = msg_sched - ckd_sched
    pct = saved / msg_sched * 100 if msg_sched else 0.0
    print(f"\nscheduler overhead saved by CkDirect: "
          f"{saved * 1e6:.1f} us ({pct:.1f}% of the message version's)")


if __name__ == "__main__":
    main()
