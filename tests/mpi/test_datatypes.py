"""Unit tests for the MPI datatype surface."""

import numpy as np
import pytest

from repro.mpi import (
    MPI_BYTE,
    MPI_DOUBLE,
    MPI_DOUBLE_COMPLEX,
    MPI_FLOAT,
    MPI_INT,
    MPI_LONG,
    count_bytes,
    from_numpy,
)


def test_sizes():
    assert MPI_BYTE.size == 1
    assert MPI_INT.size == 4
    assert MPI_FLOAT.size == 4
    assert MPI_LONG.size == 8
    assert MPI_DOUBLE.size == 8
    assert MPI_DOUBLE_COMPLEX.size == 16


def test_count_bytes():
    assert count_bytes(1000, MPI_DOUBLE) == 8000
    assert count_bytes(0, MPI_INT) == 0
    with pytest.raises(ValueError):
        count_bytes(-1, MPI_INT)


def test_multiplication_sugar():
    assert MPI_DOUBLE * 100 == 800


def test_from_numpy():
    assert from_numpy(np.float64) is MPI_DOUBLE
    assert from_numpy(np.int32) is MPI_INT
    assert from_numpy(np.complex128) is MPI_DOUBLE_COMPLEX
    assert from_numpy("float32") is MPI_FLOAT


def test_from_numpy_unknown():
    with pytest.raises(KeyError):
        from_numpy(np.float16)
