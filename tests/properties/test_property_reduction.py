"""Property-based tests: reductions compute the right value for any
array size, PE count, and mapping; the runtime stays deterministic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ABE, Chare, CkCallback, Runtime
from repro.charm import CustomMap


class Summer(Chare):
    def go(self, cb):
        self.contribute(float(self.index1d), "sum", cb)

    def go_min(self, cb):
        self.contribute(float(self.index1d), "min", cb)


@given(
    st.integers(min_value=1, max_value=24),  # elements
    st.integers(min_value=1, max_value=12),  # PEs
    st.randoms(use_true_random=False),
)
@settings(max_examples=40, deadline=None)
def test_sum_reduction_any_shape(n_elems, n_pes, rnd):
    placement = [rnd.randrange(n_pes) for _ in range(n_elems)]
    rt = Runtime(ABE, n_pes=n_pes)
    arr = rt.create_array(
        Summer, dims=(n_elems,),
        mapping=CustomMap(lambda idx, dims, n: placement[idx[0]]),
    )
    got = []
    arr.proxy.bcast("go", CkCallback.host(got.append))
    rt.run()
    assert got == [float(sum(range(n_elems)))]


@given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None)
def test_min_reduction(n_elems, n_pes):
    rt = Runtime(ABE, n_pes=n_pes)
    arr = rt.create_array(Summer, dims=(n_elems,))
    got = []
    arr.proxy.bcast("go_min", CkCallback.host(got.append))
    rt.run()
    assert got == [0.0]


@given(st.integers(min_value=2, max_value=16))
@settings(max_examples=20, deadline=None)
def test_runtime_determinism(n_pes):
    """Identical programs on identical machines finish at identical
    simulated times."""

    def run_once():
        rt = Runtime(ABE, n_pes=n_pes)
        arr = rt.create_array(Summer, dims=(2 * n_pes,))
        got = []
        arr.proxy.bcast("go", CkCallback.host(lambda v: got.append(rt.now)))
        rt.run()
        return got[0]

    assert run_once() == run_once()
