"""Property-based tests: torus distance is a metric; mappings are
total and in-range; segment counting matches a brute-force scan."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.charm.mapping import BlockMap, RoundRobinMap
from repro.ckdirect.ext.strided import segment_count
from repro.network.topology import Torus3D

dims_st = st.tuples(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
)


@given(dims_st, st.data())
@settings(max_examples=60, deadline=None)
def test_torus_distance_is_a_metric(dims, data):
    t = Torus3D(dims, cores_per_node=1)
    n = t.n_nodes
    a = data.draw(st.integers(min_value=0, max_value=n - 1))
    b = data.draw(st.integers(min_value=0, max_value=n - 1))
    c = data.draw(st.integers(min_value=0, max_value=n - 1))
    # identity, symmetry, triangle inequality
    assert t.hops(a, a) == 0
    assert t.hops(a, b) == t.hops(b, a)
    assert t.hops(a, c) <= t.hops(a, b) + t.hops(b, c)
    # diameter bound: sum of floor(dim/2)
    assert t.hops(a, b) <= sum(d // 2 for d in dims)


@given(
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=16),
)
@settings(max_examples=60, deadline=None)
def test_mappings_total_and_balanced(n_elems, n_pes):
    for mapping in (BlockMap(), RoundRobinMap()):
        pes = [mapping.pe_for((i,), (n_elems,), n_pes) for i in range(n_elems)]
        assert all(0 <= p < n_pes for p in pes)
        from collections import Counter

        counts = Counter(pes)
        # a fair partition: per-PE loads differ by at most one
        if n_elems >= n_pes:
            assert max(counts.values()) - min(counts.values()) <= 1


@given(
    st.tuples(st.integers(min_value=1, max_value=5),
              st.integers(min_value=1, max_value=5),
              st.integers(min_value=1, max_value=5)),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_segment_count_matches_address_scan(shape, data):
    base = np.zeros(shape)
    axis = data.draw(st.integers(min_value=0, max_value=2))
    sl = [slice(None)] * 3
    sl[axis] = 0
    view = base[tuple(sl)]

    # brute force: walk elements in C order of the view, counting
    # address discontinuities
    itemsize = view.itemsize
    flat_addrs = []
    for idx in np.ndindex(view.shape):
        offset = sum(i * s for i, s in zip(idx, view.strides))
        flat_addrs.append(offset)
    runs = 1
    for a, b in zip(flat_addrs, flat_addrs[1:]):
        if b - a != itemsize:
            runs += 1
    assert segment_count(view) == runs
