"""Disk-backed content-addressed result store with an LRU size cap.

Layout under the store root::

    objects/<digest[:2]>/<digest>         # one file per cached payload
    objects/<digest[:2]>/<digest>.sum     # sha256 of the payload bytes
    objects/.quarantine/                  # corrupt objects, preserved

Writes are atomic (tmp file + ``os.replace`` in the same directory),
so a crashed server never leaves a truncated object — readers either
see the full payload or nothing.  Recency is tracked in memory and
persisted opportunistically via file mtimes, so a reopened store
rebuilds a sensible LRU order from disk.

The cap is enforced on insert: after a put, least-recently-used
objects are dropped until total bytes fit (the entry just written is
never evicted, even if it alone exceeds the cap — one oversized
result beats a store that can never hold it).

**Self-healing** (see :mod:`repro.resilience.integrity`): every object
carries a checksum sidecar, written *before* the object lands so an
object on disk always has its checksum.  Every read verifies the bytes
against the sidecar; a mismatch (bit rot, truncation by an external
actor) quarantines the object under ``objects/.quarantine/`` —
preserved for forensics, never served — counts the corruption, and
returns a miss so the caller transparently recomputes.  Objects from
pre-sidecar stores are adopted trust-on-first-use: their first clean
read writes the missing sidecar.
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional

from ..resilience.integrity import (
    checksum,
    read_sidecar,
    sidecar_path,
    write_sidecar,
)

_HEX = set("0123456789abcdef")

#: Quarantine directory name (inside ``objects/``; skipped by _scan).
QUARANTINE_DIR = ".quarantine"


class StoreError(RuntimeError):
    """Raised for malformed digests or store misuse."""


def _check_digest(digest: str) -> str:
    if not isinstance(digest, str) or len(digest) != 64 or set(digest) - _HEX:
        raise StoreError(f"not a sha256 hex digest: {digest!r}")
    return digest


class ResultStore:
    """Content-addressed payload store: ``digest -> bytes`` on disk.

    ``verify=False`` turns off read-path checksum verification (the
    sidecars are still written): a benchmarking escape hatch, not a
    production mode.
    """

    def __init__(self, root: os.PathLike, max_bytes: Optional[int] = None,
                 verify: bool = True) -> None:
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)
        if max_bytes is not None and max_bytes <= 0:
            raise StoreError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self.verify = verify
        self.evictions = 0
        #: reads whose bytes contradicted their sidecar.
        self.corruptions = 0
        #: objects moved to the quarantine since open.
        self.quarantined = 0
        #: puts that replaced a previously quarantined digest.
        self.healed = 0
        self._lock = threading.Lock()
        #: digest -> size, in LRU order (first = coldest).
        self._index: "OrderedDict[str, int]" = OrderedDict()
        self._scan()

    # -- internals ------------------------------------------------------

    def _path(self, digest: str) -> Path:
        return self.objects / digest[:2] / digest

    def _quarantine_dir(self) -> Path:
        q = self.objects / QUARANTINE_DIR
        q.mkdir(parents=True, exist_ok=True)
        return q

    def _scan(self) -> None:
        """Rebuild the index from disk, ordered by mtime (oldest first)."""
        found = []
        for shard in self.objects.iterdir() if self.objects.exists() else []:
            # Only the 2-hex-char fan-out dirs hold live objects; the
            # quarantine (and any other stray dir) is not the index's
            # business.
            if not shard.is_dir() or len(shard.name) != 2:
                continue
            for obj in shard.iterdir():
                name = obj.name
                if len(name) == 64 and not (set(name) - _HEX):
                    try:
                        st = obj.stat()
                    except OSError:
                        continue
                    found.append((st.st_mtime, name, st.st_size))
        found.sort()
        for _mtime, name, size in found:
            self._index[name] = size

    def _touch(self, digest: str) -> None:
        self._index.move_to_end(digest)
        try:
            os.utime(self._path(digest))
        except OSError:
            pass  # recency persistence is best-effort

    def _evict_to_fit(self, protect: str) -> None:
        if self.max_bytes is None:
            return
        while self.total_bytes > self.max_bytes and len(self._index) > 1:
            coldest = next(iter(self._index))
            if coldest == protect:
                break
            self._index.pop(coldest)
            try:
                self._path(coldest).unlink()
            except OSError:
                pass
            try:
                sidecar_path(self._path(coldest)).unlink()
            except OSError:
                pass
            self.evictions += 1

    def _quarantine(self, digest: str) -> None:
        """Move a corrupt object (and its sidecar) out of service."""
        self._index.pop(digest, None)
        q = self._quarantine_dir()
        path = self._path(digest)
        for src, dst in (
            (path, q / digest),
            (sidecar_path(path), q / sidecar_path(path).name),
        ):
            try:
                os.replace(src, dst)
            except OSError:
                pass  # the object may have vanished mid-move; the
                # index drop above already makes it unservable
        self.quarantined += 1

    # -- public API -----------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return sum(self._index.values())

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return _check_digest(digest) in self._index

    def get(self, digest: str) -> Optional[bytes]:
        """The payload for ``digest``, or None; a hit refreshes recency.

        Verifies the bytes against the checksum sidecar: corruption is
        quarantined, counted, and reported as a miss (the caller
        recomputes and re-puts — the healing loop).
        """
        _check_digest(digest)
        with self._lock:
            if digest not in self._index:
                return None
            path = self._path(digest)
            try:
                data = path.read_bytes()
            except OSError:
                # File vanished under us (external cleanup): drop the entry.
                self._index.pop(digest, None)
                return None
            if self.verify:
                actual = checksum(data)
                recorded = read_sidecar(path)
                if recorded is None:
                    # Pre-sidecar legacy object: adopt trust-on-first-use.
                    try:
                        write_sidecar(path, actual)
                    except OSError:  # pragma: no cover - disk trouble
                        pass
                elif recorded != actual:
                    self.corruptions += 1
                    self._quarantine(digest)
                    return None
            self._touch(digest)
            return data

    def put(self, digest: str, payload: bytes) -> None:
        """Store ``payload`` under ``digest`` atomically; evict LRU to fit.

        Re-putting an existing digest is a no-op apart from a recency
        refresh — content-addressed entries never change.  The checksum
        sidecar lands *before* the object (an object on disk therefore
        always has its checksum; a crash in between leaves only an
        orphan sidecar the next put overwrites).
        """
        _check_digest(digest)
        if not isinstance(payload, (bytes, bytearray)):
            raise StoreError("payload must be bytes")
        with self._lock:
            if digest in self._index:
                self._touch(digest)
                return
            path = self._path(digest)
            path.parent.mkdir(parents=True, exist_ok=True)
            write_sidecar(path, checksum(bytes(payload)))
            fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=path.parent)
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            if (self.objects / QUARANTINE_DIR / digest).exists():
                self.healed += 1
            self._index[digest] = len(payload)
            self._evict_to_fit(protect=digest)

    def manifest(self) -> Dict:
        """JSON-ready store inventory (coldest entry first)."""
        with self._lock:
            entries: List[Dict] = [
                {"digest": d, "bytes": size} for d, size in self._index.items()
            ]
            return {
                "root": str(self.root),
                "objects": len(entries),
                "total_bytes": self.total_bytes,
                "max_bytes": self.max_bytes,
                "evictions": self.evictions,
                "corruptions": self.corruptions,
                "quarantined": self.quarantined,
                "healed": self.healed,
                "entries": entries,
            }

    def write_manifest(self, path: os.PathLike) -> None:
        """Write :meth:`manifest` as indented JSON (CI artifact helper)."""
        import json

        Path(path).write_text(json.dumps(self.manifest(), indent=2) + "\n")
