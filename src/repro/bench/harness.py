"""Experiment runners: one function per table / figure / ablation.

Each runner regenerates its artifact on the simulated machines, prints
the same rows/series the paper reports (side by side with the paper's
printed values where they exist), and returns the structured results
the benchmark suite asserts shapes on.

PE counts default to a laptop-friendly subset of the paper's sweeps;
set ``REPRO_FULL_SCALE=1`` to run the full ranges (the BG/P 4096-PE
points take a few minutes each in pure Python).

Every table/figure runner takes ``jobs=`` (default: the ``REPRO_JOBS``
environment variable, else serial) and fans its independent simulation
points out over a :class:`~repro.sweep.SweepRunner` worker pool.  All
derived values (milli-second conversions, percent improvements) are
computed here in the parent from the raw per-point means, so the
rendered reports are byte-identical at any jobs count.  The ablations
stay serial: they share runtime state (forced protocols, polling
modes) whose interplay is the point of the measurement.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.openatom import abe_2cpn, run_openatom
from ..apps.pingpong import ckdirect_pingpong
from ..network.params import ABE, SURVEYOR, T3, MachineParams
from ..sweep import RunSpec, SweepRunner, machine_overrides
from ..util.stats import percent_improvement
from . import paper_data
from .report import render_series, render_table


def full_scale() -> bool:
    """True when REPRO_FULL_SCALE requests the paper's full PE ranges."""
    return os.environ.get("REPRO_FULL_SCALE", "0") not in ("0", "", "false")


# ---------------------------------------------------------------------------
# Tables 1 and 2 (pingpong)
# ---------------------------------------------------------------------------


def _pingpong_table(
    machine: MachineParams,
    rows: Sequence[Tuple[str, str, Optional[str]]],
    sizes: Sequence[int],
    iterations: int,
    jobs: Optional[int],
    label: str,
) -> Dict[str, List[float]]:
    """Run a pingpong table's points (one per row x size) as a sweep."""
    specs = [
        RunSpec.make(
            "pingpong", machine.name, stack,
            size=s, iterations=iterations,
            **({"flavor": flavor} if flavor else {}),
        )
        for (_name, stack, flavor) in rows
        for s in sizes
    ]
    results = SweepRunner(jobs=jobs, label=label).run(specs)
    n = len(sizes)
    return {
        name: [results[i * n + j].unwrap()["rtt_us"] for j in range(n)]
        for i, (name, _stack, _flavor) in enumerate(rows)
    }


def run_table1(
    sizes: Optional[Sequence[int]] = None, iterations: int = 100,
    jobs: Optional[int] = None,
) -> Dict:
    """Table 1: pingpong RTT on Infiniband for all five stacks."""
    sizes = list(sizes if sizes is not None else paper_data.PINGPONG_SIZES)
    measured = _pingpong_table(
        ABE,
        [
            ("Default CHARM++", "charm", None),
            ("CkDirect CHARM++", "ckdirect", None),
            ("MPICH-VMI", "mpi", "MPICH-VMI"),
            ("MVAPICH", "mpi", "MVAPICH"),
            ("MVAPICH-Put", "mpi-put", "MVAPICH"),
        ],
        sizes, iterations, jobs, label="table1",
    )
    paper = paper_data.TABLE1_RTT_US if sizes == paper_data.PINGPONG_SIZES else None
    report = render_table(
        "Table 1: pingpong round-trip time, Infiniband (Abe)",
        sizes, measured, paper,
    )
    return {"sizes": sizes, "measured": measured, "paper": paper, "report": report}


def run_table2(
    sizes: Optional[Sequence[int]] = None, iterations: int = 100,
    jobs: Optional[int] = None,
) -> Dict:
    """Table 2: pingpong RTT on Blue Gene/P for all four stacks."""
    sizes = list(sizes if sizes is not None else paper_data.PINGPONG_SIZES)
    measured = _pingpong_table(
        SURVEYOR,
        [
            ("Default CHARM++", "charm", None),
            ("CkDirect CHARM++", "ckdirect", None),
            ("MPI", "mpi", None),
            ("MPI-Put", "mpi-put", None),
        ],
        sizes, iterations, jobs, label="table2",
    )
    paper = paper_data.TABLE2_RTT_US if sizes == paper_data.PINGPONG_SIZES else None
    report = render_table(
        "Table 2: pingpong round-trip time, Blue Gene/P (Surveyor)",
        sizes, measured, paper,
    )
    return {"sizes": sizes, "measured": measured, "paper": paper, "report": report}


# ---------------------------------------------------------------------------
# Figure 2 (stencil)
# ---------------------------------------------------------------------------


def _pair_sweep(
    kind: str,
    machine: MachineParams,
    pes: Sequence[int],
    jobs: Optional[int],
    label: str,
    **params,
) -> Tuple[List[float], List[float], List[float]]:
    """Run msg/ckd pairs at each PE count; return (gains, msg_ms, ckd_ms).

    The gain is computed here from the raw per-point means — the exact
    computation the serial drivers do — so the figures render
    identically at any jobs count.
    """
    specs = [
        RunSpec.make(kind, machine.name, mode, p,
                     **params, **machine_overrides(machine))
        for p in pes
        for mode in ("msg", "ckd")
    ]
    results = SweepRunner(jobs=jobs, label=label).run(specs)
    gains, msg_ms, ckd_ms = [], [], []
    for i in range(len(pes)):
        m = results[2 * i].unwrap()["mean_s"]
        c = results[2 * i + 1].unwrap()["mean_s"]
        gains.append(percent_improvement(m, c))
        msg_ms.append(m * 1e3)
        ckd_ms.append(c * 1e3)
    return gains, msg_ms, ckd_ms


def run_fig2a(
    pes: Optional[Sequence[int]] = None, iterations: int = 4,
    jobs: Optional[int] = None,
) -> Dict:
    """Figure 2(a): stencil % improvement on Infiniband (T3)."""
    pes = list(pes if pes is not None else (32, 64, 128, 256))
    gains, msg_ms, ckd_ms = _pair_sweep(
        "stencil", T3, pes, jobs, "fig2a", iterations=iterations
    )
    report = render_series(
        "Figure 2(a): Jacobi 1024x1024x512, VR 8 — Infiniband (T3)",
        "PEs", pes,
        {"msg iter (ms)": msg_ms, "ckd iter (ms)": ckd_ms, "improvement %": gains},
        unit="ms / %", claim=paper_data.FIGURE_CLAIMS["fig2a"],
    )
    return {"pes": pes, "gains": gains, "msg_ms": msg_ms, "ckd_ms": ckd_ms,
            "report": report}


def run_fig2b(
    pes: Optional[Sequence[int]] = None, iterations: int = 3,
    jobs: Optional[int] = None,
) -> Dict:
    """Figure 2(b): stencil % improvement on Blue Gene/P."""
    default = (64, 128, 256, 512, 1024, 2048, 4096) if full_scale() else (64, 128, 256, 512)
    pes = list(pes if pes is not None else default)
    gains, msg_ms, ckd_ms = _pair_sweep(
        "stencil", SURVEYOR, pes, jobs, "fig2b", iterations=iterations
    )
    report = render_series(
        "Figure 2(b): Jacobi 1024x1024x512, VR 8 — Blue Gene/P",
        "PEs", pes,
        {"msg iter (ms)": msg_ms, "ckd iter (ms)": ckd_ms, "improvement %": gains},
        unit="ms / %", claim=paper_data.FIGURE_CLAIMS["fig2b"],
    )
    return {"pes": pes, "gains": gains, "msg_ms": msg_ms, "ckd_ms": ckd_ms,
            "report": report}


# ---------------------------------------------------------------------------
# Figure 3 (matmul)
# ---------------------------------------------------------------------------


def run_fig3(
    machine: MachineParams,
    pes: Optional[Sequence[int]] = None,
    iterations: int = 2,
    jobs: Optional[int] = None,
) -> Dict:
    """Figure 3: matmul execution time versus PE count, one machine."""
    if pes is None:
        if machine.kind == "bgp":
            pes = (256, 512, 1024, 2048, 4096) if full_scale() else (64, 256, 1024)
        else:
            pes = (16, 64, 256)
    pes = list(pes)
    gains, msg_ms, ckd_ms = _pair_sweep(
        "matmul", machine, pes, jobs, f"fig3:{machine.name}",
        iterations=iterations,
    )
    report = render_series(
        f"Figure 3: MatMul 2048x2048 — {machine.name}",
        "PEs", pes,
        {"msg iter (ms)": msg_ms, "ckd iter (ms)": ckd_ms, "improvement %": gains},
        unit="ms / %", claim=paper_data.FIGURE_CLAIMS["fig3"],
    )
    return {"pes": pes, "gains": gains, "msg_ms": msg_ms, "ckd_ms": ckd_ms,
            "report": report}


# ---------------------------------------------------------------------------
# Figures 4 and 5 (OpenAtom)
# ---------------------------------------------------------------------------


def run_openatom_figure(
    machine: MachineParams,
    pes: Sequence[int],
    pc_only: bool,
    label: str,
    claim_key: str,
    jobs: Optional[int] = None,
    **cfg_overrides,
) -> Dict:
    """Shared sweep runner for the Figure 4/5 panels."""
    gains, msg_ms, ckd_ms = _pair_sweep(
        "openatom", machine, pes, jobs,
        f"{claim_key}:{'pc' if pc_only else 'full'}",
        pc_only=pc_only, **cfg_overrides,
    )
    report = render_series(
        label, "PEs", list(pes),
        {"msg step (ms)": msg_ms, "ckd step (ms)": ckd_ms, "improvement %": gains},
        unit="ms / %", claim=paper_data.FIGURE_CLAIMS[claim_key],
    )
    return {"pes": list(pes), "gains": gains, "msg_ms": msg_ms, "ckd_ms": ckd_ms,
            "report": report}


def run_fig4(
    pes: Optional[Sequence[int]] = None, jobs: Optional[int] = None
) -> Dict:
    """Figure 4: OpenAtom step time on Abe (2 cores/node): (a) full
    application, (b) PairCalculator-only."""
    pes = list(pes if pes is not None else (16, 32, 64))
    abe2 = abe_2cpn(ABE)
    full = run_openatom_figure(
        abe2, pes, False, "Figure 4(a): OpenAtom w256M-like — Abe, full step",
        "fig4", jobs=jobs,
    )
    pc = run_openatom_figure(
        abe2, pes, True, "Figure 4(b): OpenAtom w256M-like — Abe, PC-only",
        "fig4", jobs=jobs,
    )
    return {"full": full, "pc_only": pc,
            "report": full["report"] + "\n\n" + pc["report"]}


def run_fig5(
    pes: Optional[Sequence[int]] = None, jobs: Optional[int] = None
) -> Dict:
    """Figure 5: OpenAtom step time on Blue Gene/P: (a) full, (b) PC-only."""
    default = (64, 128, 256, 512) if full_scale() else (64, 128, 256)
    pes = list(pes if pes is not None else default)
    full = run_openatom_figure(
        SURVEYOR, pes, False, "Figure 5(a): OpenAtom w256M-like — BG/P, full step",
        "fig5", jobs=jobs,
    )
    pc = run_openatom_figure(
        SURVEYOR, pes, True, "Figure 5(b): OpenAtom w256M-like — BG/P, PC-only",
        "fig5", jobs=jobs,
    )
    return {"full": full, "pc_only": pc,
            "report": full["report"] + "\n\n" + pc["report"]}


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md A1-A3)
# ---------------------------------------------------------------------------


def run_polling_ablation(n_pes: int = 64) -> Dict:
    """A1 — §5.2: naive ``ready`` everywhere versus the ReadyMark /
    ReadyPollQ phase-confined polling, versus plain messages."""
    abe2 = abe_2cpn(ABE)
    msg = run_openatom(abe2, n_pes, mode="msg").mean_step_time * 1e3
    phased = run_openatom(abe2, n_pes, mode="ckd", polling="phased").mean_step_time * 1e3
    naive = run_openatom(abe2, n_pes, mode="ckd", polling="naive").mean_step_time * 1e3
    report = render_series(
        "Ablation A1: polling discipline (OpenAtom, Abe)",
        "variant", ["msg", "ckd-naive", "ckd-phased"],
        {"step (ms)": [msg, naive, phased]},
        unit="ms", claim=paper_data.FIGURE_CLAIMS["sec5.2"],
    )
    return {"msg_ms": msg, "naive_ms": naive, "phased_ms": phased, "report": report}


def run_protocol_ablation(
    sizes: Sequence[int] = (10_000, 30_000, 70_000, 200_000),
    iterations: int = 100,
) -> Dict:
    """A2 — §3: force each two-sided protocol across sizes to expose
    the crossover structure: packetization's per-byte overhead loses to
    rendezvous's fixed handshake+registration as messages grow."""
    from ..charm import Runtime
    from ..apps.pingpong import CROSS_NODE, _MsgPinger

    results: Dict[str, List[float]] = {"packet": [], "rendezvous": []}
    for proto in results:
        for nbytes in sizes:
            rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
            rt.fabric.force_protocol(proto)
            arr = rt.create_array(
                _MsgPinger, dims=(2,), ctor_args=(iterations, nbytes),
                mapping=CROSS_NODE,
            )
            arr.proxy[0].start()
            rt.run()
            results[proto].append(rt.result_time * 1e6)
    report = render_series(
        "Ablation A2: forced two-sided protocol vs message size (Abe)",
        "size (B)", list(sizes),
        {k: v for k, v in results.items()},
        unit="us RTT",
        claim="Default Charm++ switches packet->rendezvous between 20KB "
              "and 30KB; rendezvous wins decisively as size grows "
              "(Table 1 discussion).",
    )
    return {"sizes": list(sizes), "rtt_us": results, "report": report}


def run_vr_ablation(
    n_pes: int = 64, ratios: Sequence[int] = (1, 2, 4, 8, 16),
    iterations: int = 3,
) -> Dict:
    """A4 — §4.1's virtualization observations: "the program benefited
    greatly from processor virtualization", best execution near VR 8,
    and "greater percentage gains at finer granularities" (the message
    version pays per-message overheads that grow with the chare count;
    CkDirect does not)."""
    from ..apps.stencil.driver import run_stencil

    msg_ms, ckd_ms, gains = [], [], []
    for vr in ratios:
        m = run_stencil(T3, n_pes, vr=vr, iterations=iterations, mode="msg")
        c = run_stencil(T3, n_pes, vr=vr, iterations=iterations, mode="ckd")
        msg_ms.append(m.mean_iter_time * 1e3)
        ckd_ms.append(c.mean_iter_time * 1e3)
        gains.append(percent_improvement(m.mean_iter_time, c.mean_iter_time))
    report = render_series(
        f"Ablation A4: virtualization ratio (stencil, T3, {n_pes} PEs)",
        "chares/PE", list(ratios),
        {"msg iter (ms)": msg_ms, "ckd iter (ms)": ckd_ms, "improvement %": gains},
        unit="ms / %",
        claim="Virtualization overlaps communication with computation; "
              "CkDirect keeps the benefit at fine granularity where the "
              "message version's scheduling overheads bite (§4.1).",
    )
    return {"ratios": list(ratios), "msg_ms": msg_ms, "ckd_ms": ckd_ms,
            "gains": gains, "report": report}


def run_backward_path_ablation(n_pes: int = 32) -> Dict:
    """A5 — §5.2's anticipation: "further improvements in OpenAtom's
    performance when the CkDirect optimization is integrated into other
    phases".  Compares messages, forward-only CkDirect (the paper's
    implementation), and CkDirect in the backward return path too."""
    abe2 = abe_2cpn(ABE)
    rows = {
        "msg": run_openatom(abe2, n_pes, mode="msg").mean_step_time * 1e3,
        "ckd (paper)": run_openatom(abe2, n_pes, mode="ckd").mean_step_time * 1e3,
        "ckd-full (both paths)": run_openatom(
            abe2, n_pes, mode="ckd-full"
        ).mean_step_time * 1e3,
    }
    report = render_series(
        f"Ablation A5: CkDirect in the backward path too (OpenAtom, Abe, {n_pes} PEs)",
        "variant", list(rows),
        {"step (ms)": list(rows.values())},
        unit="ms",
        claim="'We anticipate further improvements ... when the CkDirect "
              "optimization is integrated into other phases' (§5.2).",
    )
    return {"step_ms": rows, "report": report}


def run_mpi_sync_ablation(nbytes: int = 10_000, epochs: int = 50) -> Dict:
    """A3 — §2.3: cost of completing one put under each MPI
    synchronization scheme (fence / PSCW / lock-unlock), versus a bare
    CkDirect put+detect.  Reproduces the related-work argument that
    every MPI scheme drags synchronization the application did not
    need."""
    from ..mpi import MPIWorld, Win

    def fence_loop() -> float:
        world = MPIWorld(ABE, 2, flavor="MVAPICH")
        win = Win(world)
        r0, r1 = world.ranks
        state = {"n": 0}

        def one_epoch():
            if state["n"] >= epochs:
                return
            state["n"] += 1
            win.put_raw(r0, 1, nbytes)
            done = {"c": 0}
            def after_fence():
                done["c"] += 1
                if done["c"] == 2:
                    one_epoch()
            win.fence(r0, after_fence)
            win.fence(r1, after_fence)

        win.fence(r0, lambda: None)
        win.fence(r1, one_epoch)
        world.run()
        return world.sim.now / epochs * 1e6

    def pscw_loop() -> float:
        world = MPIWorld(ABE, 2, flavor="MVAPICH")
        win = Win(world)
        r0, r1 = world.ranks
        state = {"n": 0}

        def one_epoch():
            if state["n"] >= epochs:
                return
            state["n"] += 1
            win.post(r1, [0])
            win.wait(r1, one_epoch)
            def started():
                win.put_raw(r0, 1, nbytes)
                win.complete(r0, 1)
            win.start(r0, started)

        one_epoch()
        world.run()
        return world.sim.now / epochs * 1e6

    def lock_loop() -> float:
        world = MPIWorld(ABE, 2, flavor="MVAPICH")
        win = Win(world)
        r0, r1 = world.ranks
        state = {"n": 0}

        def one_epoch():
            if state["n"] >= epochs:
                return
            state["n"] += 1
            def locked():
                win.put_raw(r0, 1, nbytes)
                win.unlock(r0, 1, one_epoch)
            win.lock(r0, 1, locked)

        one_epoch()
        world.run()
        return world.sim.now / epochs * 1e6

    ckd = ckdirect_pingpong(ABE, nbytes, iterations=epochs).rtt_us / 2.0
    results = {
        "fence": fence_loop(),
        "pscw": pscw_loop(),
        "lock-unlock": lock_loop(),
        "ckdirect (one-way)": ckd,
    }
    report = render_series(
        f"Ablation A3: one {nbytes}B put per epoch under each MPI sync scheme",
        "scheme", list(results.keys()),
        {"epoch time (us)": list(results.values())},
        unit="us",
        claim="MPI one-sided completion drags synchronization the "
              "application's own structure already provides (§2.3).",
    )
    return {"nbytes": nbytes, "epoch_us": results, "report": report}
