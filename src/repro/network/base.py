"""Interconnect model base class.

A :class:`Fabric` turns "send B bytes from PE *a* to PE *b* starting at
time *t*" into a delivery event, charging:

* **software pre-cost** on the sender (protocol processing), then
* **NIC injection occupancy** — a *node's* outgoing transfers share
  its network interface; concurrent transfers back-pressure each other
  through per-node ``tx``/``rx`` occupancy.  Occupancy is the transfer's
  streaming time scaled by :meth:`_occupancy_factor`: 1.0 on the
  single-HCA Infiniband nodes (the paper itself points at "a single
  Infiniband connection per node" as the Abe bottleneck), and 1/6 on
  Blue Gene/P, whose node routes over six torus links,
* **wire latency** — base latency plus per-hop latency from the
  topology plus the per-byte streaming time counted once, then
* **NIC ejection occupancy** at the receiver, symmetric with
  injection, so incast patterns (e.g. a reduction root) serialize
  realistically.

For an uncontended transfer the delivery time is exactly
``start + pre + alpha + hops·hop + bytes·beta`` — the pingpong
calibration is independent of the occupancy model.

Intra-node transfers bypass the NIC entirely and use a shared-memory
latency/bandwidth pair.

Subclasses (:class:`~repro.network.infiniband.InfinibandFabric`,
:class:`~repro.network.bluegene.BGPFabric`) implement the three
transport services the upper layers consume:

* ``charm_transport`` — the default Charm++ message path (protocol
  selection happens here),
* ``direct_put`` — the CkDirect data path,
* ``transfer`` — the raw parameterized primitive the simulated MPI
  layers drive with their own flavor constants.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from heapq import heapify, heappop, heappush
from typing import Callable, List, Optional, Tuple

from ..projections.events import CAT_NET, NET_TRACK
from ..sim import Entity, Simulator, Trace
from .params import MachineParams
from .topology import Topology

#: Event priority of the engine-mode arrival-admission wake: it must
#: fire before any ordinary (priority-0) event at the same instant so
#: ejection-port admission order is independent of event seq numbers
#: (which differ across shard counts).
_ADMIT_PRIORITY = -16


class FabricError(RuntimeError):
    """Raised for invalid transfer requests."""


class Fabric(Entity):
    """Base interconnect: NIC serialization + latency accounting."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        machine: MachineParams,
        trace: Optional[Trace] = None,
    ) -> None:
        super().__init__(sim, name=f"fabric:{machine.name}")
        self.topology = topology
        self.machine = machine
        self.trace = trace if trace is not None else Trace()
        #: timeline tracer + run id, attached by the owning runtime
        #: when Projections tracing is on (None = off, zero cost).
        self.tracer = None
        self.trace_run = 0
        n = topology.n_nodes
        self._tx_free = [0.0] * n
        self._rx_free = [0.0] * n
        #: deferred (delivery, cb) pairs while inside a batch() block.
        self._batch: Optional[List[Tuple[float, Callable[[], None]]]] = None
        # --- parallel-engine mode (see repro.sim.parallel) -------------
        #: False = legacy semantics (receiver ejection occupancy charged
        #: at *send* time in global send order).  True = engine
        #: semantics: the rx half of every cross-node transfer is
        #: admitted in canonical head-arrival order, which is the same
        #: at any shard count.
        self._engine = False
        #: descriptor for the transfer about to be issued (set by the
        #: runtime / ckdirect layers immediately before each service
        #: call; consumed and cleared by :meth:`transfer`).
        self._engine_desc = None
        #: heap of in-flight arrival records, as entries
        #: ``(head_arrival, dst, src, k, admit_seq, rec)`` where rec is
        #: ``(head_arrival, dst, src, k, stream, occ, wire_bytes, desc)``.
        #: The local admit_seq guarantees the heap never compares desc
        #: payloads: under the optimistic engine a stale record and its
        #: regenerated divergent twin (same ``(src, k)`` identity by
        #: design, different payload) can transiently coexist until the
        #: twin's anti-message lands, and their order only affects a
        #: speculative timeline the rollback repairs.
        self._records: list = []
        self._admit_seq = 0
        #: per-source-PE monotone transfer counter (deterministic
        #: record tiebreak, identical at any shard count).
        self._send_k: dict = {}
        #: node ranks owned by this shard (None = all; records to other
        #: shards go to the outbox instead of the local heap).
        self._owned_nodes = None
        #: cross-shard records awaiting the next epoch exchange.
        self._outbox: list = []
        #: delivery resolver ``(dst_rank, desc) -> None`` installed by
        #: the runtime when engine mode is enabled.
        self._engine_deliver: Optional[Callable] = None

    # ------------------------------------------------------------------
    # Delivery scheduling (batchable)
    # ------------------------------------------------------------------

    def _schedule_delivery(self, delivery: float, cb: Callable[[], None]) -> None:
        """Create the delivery event now, or defer it to the open batch."""
        if self._batch is None:
            self.sim.at(delivery, cb)
        else:
            self._batch.append((delivery, cb))

    @contextmanager
    def batch(self):
        """Defer delivery-event creation for a burst of transfers.

        Multi-put senders (multicast fan-out, a stencil chare's halo
        puts, multi-packet sends) issue several transfers back to back
        within one entry-method execution; this context collects their
        delivery events and admits them with one
        :meth:`~repro.sim.Simulator.schedule_batch` call on exit.

        Delivery *times* and occupancy accounting are computed exactly
        as in the unbatched path, at issue time.  Because no simulator
        event can fire while the issuing handler is still executing,
        and sequence numbers are assigned in issue order at flush,
        event ordering is unchanged.  Nested use is a no-op (the
        outermost batch flushes).

        ``schedule_batch`` is part of the pluggable event-queue
        surface (:mod:`repro.sim.eventq`): every implementation admits
        the burst atomically with consecutive sequence numbers, so
        batching is ordering-neutral under heap, calendar and
        compiled queues alike.
        """
        if self._batch is not None:  # nested: defer to the outer batch
            yield
            return
        self._batch = []
        try:
            yield
        finally:
            entries, self._batch = self._batch, None
            if entries:
                self.sim.schedule_batch(
                    [(t, cb, ()) for t, cb in entries]
                )

    # ------------------------------------------------------------------
    # Core primitive
    # ------------------------------------------------------------------

    def transfer(
        self,
        src: int,
        dst: int,
        wire_bytes: int,
        start: float,
        pre: float,
        alpha: float,
        beta: float,
        cb: Callable[[], None],
        ser_extra: float = 0.0,
        lat_extra: float = 0.0,
    ) -> float:
        """Schedule a point-to-point transfer; returns projected delivery.

        Parameters
        ----------
        wire_bytes:
            Bytes crossing the wire (payload + protocol headers).
        start:
            Absolute time the sending software initiates the transfer
            (the sender PE's local cursor; must not precede ``sim.now``).
        pre:
            Sender-side software/protocol cost paid before injection.
        alpha / beta:
            Base latency and per-byte cost for this protocol path.
        ser_extra:
            Additional NIC occupancy (e.g. per-packet overheads).
        lat_extra:
            Additional end-to-end latency added to the streaming time
            (per-packet overheads delay delivery as well as occupying
            the NIC).
        cb:
            Invoked (no args) at the delivery instant.
        """
        desc = None
        if self._engine:
            desc, self._engine_desc = self._engine_desc, None
        if src == dst:
            raise FabricError("self-send must be short-circuited by the caller")
        if wire_bytes < 0:
            raise FabricError(f"negative wire_bytes: {wire_bytes}")
        if start < self.sim.now - 1e-15:
            raise FabricError(
                f"transfer start {start!r} precedes simulated now {self.sim.now!r}"
            )
        if self.topology.same_node(src, dst):
            delivery = start + pre + self._shm_alpha() + wire_bytes * self._shm_beta()
            self.trace.count("net.shm_transfers")
            if self.tracer is not None:
                self.tracer.instant(
                    self.trace_run, NET_TRACK, CAT_NET, "shm_transfer", delivery,
                    args={"src": src, "dst": dst, "bytes": wire_bytes},
                )
            self._schedule_delivery(delivery, cb)
            return delivery

        stream = wire_bytes * beta + lat_extra  # streaming (latency) part
        occ = wire_bytes * beta * self._occupancy_factor() + ser_extra
        src_node = self.topology.node_of(src)
        dst_node = self.topology.node_of(dst)
        tx_start = max(start + pre, self._tx_free[src_node])
        self._tx_free[src_node] = tx_start + occ
        head_arrival = tx_start + alpha + self.topology.hops(src, dst) * self._hop_latency()
        self.trace.count("net.transfers")
        self.trace.count("net.bytes", wire_bytes)
        if self._engine:
            # Engine semantics: the tx half (above) runs sender-side at
            # issue; the rx half is deferred until head arrival and
            # admitted in canonical record order by _admit_arrivals, so
            # ejection occupancy is charged identically at any shard
            # count.  The return value is therefore only the
            # contention-free delivery estimate (no engine-mode caller
            # consumes it; MPI, which does, forces the legacy path).
            k = self._send_k.get(src, 0)
            self._send_k[src] = k + 1
            rec = (head_arrival, dst, src, k, stream, occ, wire_bytes,
                   cb if desc is None else desc)
            owned = self._owned_nodes
            if owned is None or dst_node in owned:
                heappush(self._records,
                         (head_arrival, dst, src, k, self._admit_seq, rec))
                self._admit_seq += 1
                self.sim.at(head_arrival, self._admit_arrivals,
                            priority=_ADMIT_PRIORITY)
            else:
                if desc is None:
                    raise FabricError(
                        "cross-shard transfer lacks a descriptor; this "
                        "workload must run with the serial engine"
                    )
                self._outbox.append(rec)
            return head_arrival + stream
        rx_start = max(head_arrival, self._rx_free[dst_node])
        delivery = rx_start + stream
        self._rx_free[dst_node] = rx_start + occ
        if self.tracer is not None:
            self.tracer.instant(
                self.trace_run, NET_TRACK, CAT_NET, "transfer", delivery,
                args={"src": src, "dst": dst, "bytes": wire_bytes,
                      "injected": start, "latency": delivery - start},
            )
        self._schedule_delivery(delivery, cb)
        return delivery

    # ------------------------------------------------------------------
    # Parallel-engine mode (see repro.sim.parallel)
    # ------------------------------------------------------------------

    def enable_engine(self, deliver: Callable) -> None:
        """Switch to engine semantics; ``deliver(dst_rank, desc)``
        resolves a transfer descriptor into its receiver-side effect."""
        self._engine = True
        self._engine_deliver = deliver

    def min_remote_latency(self) -> float:
        """Strictly positive floor on cross-node end-to-end latency.

        Every cross-node transfer issued at time *t* arrives no earlier
        than ``t + min_remote_latency()`` (``pre >= 0``, occupancy only
        delays).  This is the conservative lookahead of the parallel
        engine's epoch windows.
        """
        raise NotImplementedError

    def _admit_arrivals(self) -> None:
        """Admit every record whose head has arrived (``ha <= now``).

        Records are drained in canonical ``(ha, dst, src, k)`` order —
        a total order independent of the shard count — so receiver
        ejection occupancy (``_rx_free``) evolves identically whether a
        record was produced locally or exchanged at an epoch barrier.
        One wake is scheduled per record; the first wake at an instant
        drains all records due then, later ones find nothing.
        """
        recs = self._records
        now = self.sim.now
        rx_free = self._rx_free
        node_of = self.topology.node_of
        at = self.sim.at
        tracer = self.tracer
        while recs and recs[0][0] <= now:
            ha, dst, src, _k, stream, occ, wire_bytes, payload = heappop(recs)[5]
            dn = node_of(dst)
            rx_start = rx_free[dn] if rx_free[dn] > ha else ha
            delivery = rx_start + stream
            rx_free[dn] = rx_start + occ
            if tracer is not None:
                tracer.instant(
                    self.trace_run, NET_TRACK, CAT_NET, "transfer", delivery,
                    args={"src": src, "dst": dst, "bytes": wire_bytes},
                )
            if isinstance(payload, tuple):
                at(delivery, self._engine_deliver, dst, payload)
            else:
                at(delivery, payload)

    def take_outbox(self) -> list:
        """Drain the cross-shard records buffered since the last epoch."""
        out, self._outbox = self._outbox, []
        return out

    def admit_remote(self, rec: tuple) -> None:
        """Insert one exchanged record (its ha lies in a future window)."""
        heappush(self._records,
                 (rec[0], rec[1], rec[2], rec[3], self._admit_seq, rec))
        self._admit_seq += 1
        self.sim.at(rec[0], self._admit_arrivals, priority=_ADMIT_PRIORITY)

    # ------------------------------------------------------------------
    # Time Warp engine-state hooks (see repro.sim.timewarp)
    # ------------------------------------------------------------------

    def engine_checkpoint(self) -> tuple:
        """Snapshot the engine-mode buffered state.

        Record tuples are immutable and shared with the snapshot; the
        outbox keeps the *same* record objects so a rollback can tell
        which speculative sends were already generated at checkpoint
        time (identity-based accounting in the Time Warp send log).
        """
        return (
            list(self._records),
            list(self._outbox),
            dict(self._send_k),
            list(self._tx_free),
            list(self._rx_free),
        )

    def engine_restore(self, snap: tuple) -> None:
        records, outbox, send_k, tx_free, rx_free = snap
        self._records = list(records)
        heapify(self._records)
        self._outbox = list(outbox)
        self._send_k = dict(send_k)
        self._tx_free = list(tx_free)
        self._rx_free = list(rx_free)

    def engine_remove_records(self, dead: set) -> int:
        """Drop admitted remote records by identity (anti-messages).

        Every record in the heap has ``ha >= now`` at an epoch barrier,
        so an anti-message whose target has not been executed yet can
        simply delete it; its scheduled admission wake then finds
        nothing due.  Returns the number removed.
        """
        before = len(self._records)
        self._records = [e for e in self._records if id(e[5]) not in dead]
        heapify(self._records)
        return before - len(self._records)

    # ------------------------------------------------------------------
    # Machine-specific constants (overridden per fabric)
    # ------------------------------------------------------------------

    def _shm_alpha(self) -> float:
        return self.machine.net.shm_alpha

    def _shm_beta(self) -> float:
        return self.machine.net.shm_beta

    def _hop_latency(self) -> float:
        return 0.0

    def _occupancy_factor(self) -> float:
        """Fraction of a transfer's streaming time that occupies the
        node's NIC resources (see the per-machine ``occupancy_factor``
        derivations in :mod:`repro.network.params`)."""
        return getattr(self.machine.net, "occupancy_factor", 1.0)

    # ------------------------------------------------------------------
    # Transport services (abstract)
    # ------------------------------------------------------------------

    def charm_transport(
        self, src: int, dst: int, payload_bytes: int, start: float, cb: Callable[[], None]
    ) -> float:
        """Default Charm++ message path (adds the envelope header)."""
        raise NotImplementedError

    def direct_put(
        self, src: int, dst: int, nbytes: int, start: float, cb: Callable[[], None]
    ) -> float:
        """CkDirect data path: memory-to-memory, no envelope."""
        raise NotImplementedError

    def recv_handler_cost(self, total_bytes: int) -> float:
        """Receive-side low-level handler cost for the two-sided path.

        Zero on Infiniband (the RTS hands the received buffer straight
        to the scheduler); the DCMF receipt-handler cost on BG/P.
        """
        return 0.0

    @staticmethod
    def packets(nbytes: int, packet_size: int) -> int:
        """Number of wire packets for a transfer (at least one)."""
        return max(1, math.ceil(nbytes / packet_size))
