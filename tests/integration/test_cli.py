"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "fig5" in out


def test_pingpong_stacks(capsys):
    for stack in ("charm", "ckdirect", "mpi", "mpi-put"):
        assert main(["pingpong", "--stack", stack, "--machine", "Abe",
                     "--size", "1000", "--iterations", "10"]) == 0
        out = capsys.readouterr().out
        assert "us round trip" in out


def test_pingpong_bgp(capsys):
    assert main(["pingpong", "--machine", "Surveyor", "--size", "100",
                 "--iterations", "10"]) == 0
    assert "Surveyor" in capsys.readouterr().out


def test_fig2a_small(capsys):
    assert main(["fig2a", "--pes", "8", "16"]) == 0
    out = capsys.readouterr().out
    assert "improvement %" in out


def test_table_runs(capsys):
    assert main(["table1", "--iterations", "5"]) == 0
    out = capsys.readouterr().out
    assert "CkDirect CHARM++ (ours)" in out
    assert "(paper)" in out


def test_unknown_artifact_rejected():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_bad_machine_rejected():
    with pytest.raises(SystemExit):
        main(["pingpong", "--machine", "Frontier"])
