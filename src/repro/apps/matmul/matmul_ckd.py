"""Matmul with CkDirect channels (the paper's CKD version).

Channel wiring (all at setup, once):

* for every remote A/B slice a chare expects, it registers the exact
  destination — a *view into the middle of its assembled block* — and
  ships the handle to the slice's owner (who associates its static
  slice buffer: one source buffer, ``c-1`` handles, no copies);
* every ``z > 0`` chare gets a handle onto its slot in the reduction
  root's collector, associated with its persistent partial-C buffer.

Per iteration the data flows with bare puts: inputs land assembled,
partials land in their slots, completion callbacks count — no
scheduler, no placement copies.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ... import ckdirect as ckd
from .base import MATMUL_OOB, MatMulBase


class MatMulCkd(MatMulBase):
    """CkDirect matmul chare (slices land assembled)."""
    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.recv_handles = []  # channels I receive on (for re-arming)
        self.a_put = []  # channels I put my A slice into
        self.b_put = []  # channels I put my B slice into
        self.c_put = None  # my slot at the reduction root (z > 0)
        self._assocs_expected = 2 * (self.spec.c - 1) + (0 if self.is_root else 1)
        self._assocs_done = 0
        self._dgemm_enqueued = False
        self._finish_enqueued = False

    # ------------------------------------------------------------------
    # Setup: create handles for everything I receive, ship them out
    # ------------------------------------------------------------------

    def setup(self) -> None:
        """Entry method: wire channels / join the setup barrier."""
        spec = self.spec
        x, y, z = self.thisIndex
        for peer in spec.a_peers(self.thisIndex):
            h = ckd.create_handle(
                self, self.a_dest(peer[1]), MATMUL_OOB, self._on_slice,
                name=f"mm{self.thisIndex}:a{peer[1]}",
            )
            self.recv_handles.append(h)
            self.proxy[peer].take_a_handle(h)
        for peer in spec.b_peers(self.thisIndex):
            h = ckd.create_handle(
                self, self.b_dest(peer[0]), MATMUL_OOB, self._on_slice,
                name=f"mm{self.thisIndex}:b{peer[0]}",
            )
            self.recv_handles.append(h)
            self.proxy[peer].take_b_handle(h)
        if self.is_root:
            for from_z in range(1, spec.c):
                h = ckd.create_handle(
                    self, self.c_slot(from_z), MATMUL_OOB, self._on_cpart,
                    name=f"mm{self.thisIndex}:c{from_z}",
                )
                self.recv_handles.append(h)
                self.proxy[(x, y, from_z)].take_c_handle(h)

    def _src(self, which: str):
        from ...util.buffers import Buffer

        if which == "a":
            return (
                Buffer(array=self.my_a)
                if self.validate
                else Buffer(nbytes=self.spec.a_slice_bytes)
            )
        if which == "b":
            return (
                Buffer(array=self.my_b)
                if self.validate
                else Buffer(nbytes=self.spec.b_slice_bytes)
            )
        return (
            Buffer(array=self.Cpart)
            if self.validate
            else Buffer(nbytes=self.spec.c_block_bytes)
        )

    def take_a_handle(self, handle) -> None:
        """Entry method: bind my A slice to a peer's channel."""
        ckd.assoc_local(self, handle, self._src("a"))
        self.a_put.append(handle)
        self._assoc_done()

    def take_b_handle(self, handle) -> None:
        """Entry method: bind my B slice to a peer's channel."""
        ckd.assoc_local(self, handle, self._src("b"))
        self.b_put.append(handle)
        self._assoc_done()

    def take_c_handle(self, handle) -> None:
        """Entry method: bind my partial-C buffer to the root's slot."""
        ckd.assoc_local(self, handle, self._src("c"))
        self.c_put = handle
        self._assoc_done()

    def _assoc_done(self) -> None:
        self._assocs_done += 1
        if self._assocs_done == self._assocs_expected:
            self.contribute(callback=self.monitor.callback())

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def resume(self) -> None:
        """Entry method: run one iteration's send phase."""
        if self.it >= self.iterations:
            return
        self._seed_own_slices()
        # Both slice fan-outs leave as one delivery batch.
        with self.rt.fabric.batch():
            for h in self.a_put:
                ckd.put(h)
            for h in self.b_put:
                ckd.put(h)
        self.sent_this_iter = True
        self._maybe_dgemm()

    def _on_slice(self, _cbdata) -> None:
        self.got_slices += 1
        self._maybe_dgemm()

    def _on_cpart(self, _cbdata) -> None:
        self.got_cparts += 1
        self._maybe_finish_root()

    # CkDirect callbacks stay lightweight: heavy work re-enters through
    # the scheduler, exactly the paper's §5.1 pattern ("the callback
    # enqueues a CHARM++ entry method to perform the multiplication").

    def _maybe_dgemm(self) -> None:
        if self._dgemm_ready() and not self._dgemm_enqueued:
            self._dgemm_enqueued = True
            self.proxy[self.thisIndex].do_dgemm()

    def do_dgemm(self) -> None:
        """Entry method: run the deferred DGEMM (callback-enqueued)."""
        self._dgemm_enqueued = False
        if self._dgemm_ready():
            self._run_dgemm()

    def _maybe_finish_root(self) -> None:
        if self._root_ready() and not self._finish_enqueued:
            self._finish_enqueued = True
            self.proxy[self.thisIndex].do_finish_root()

    def do_finish_root(self) -> None:
        """Entry method: run the deferred root accumulation."""
        self._finish_enqueued = False
        if self._root_ready():
            self._finish_root()

    def _after_dgemm(self) -> None:
        if self.is_root:
            self._maybe_finish_root()
        else:
            ckd.put(self.c_put)
            self._close_iteration()

    def _post_iteration(self) -> None:
        for h in self.recv_handles:
            ckd.ready(h)
