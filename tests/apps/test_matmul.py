"""Unit + integration tests for the 3D matmul application."""

import numpy as np
import pytest

from repro import ABE, SURVEYOR
from repro.apps.matmul import (
    MatMulSpec,
    choose_side,
    gather_c,
    global_a,
    global_b,
    reference_c,
    run_matmul,
    slice_a,
    slice_b,
)


def test_spec_geometry():
    spec = MatMulSpec(64, 4)
    assert spec.n == 16
    assert spec.slice_rows == 4
    assert spec.a_slice_bytes == 16 * 4 * 8
    assert spec.c_block_bytes == 16 * 16 * 8
    assert spec.dgemm_flops == 2 * 16 ** 3


def test_spec_validation():
    with pytest.raises(ValueError):
        MatMulSpec(64, 5)  # 5 does not divide 64
    with pytest.raises(ValueError):
        MatMulSpec(24, 6)  # n=4 not divisible by c=6 (ragged slices)


def test_peers():
    spec = MatMulSpec(64, 4)
    assert spec.a_peers((1, 2, 3)) == [(1, y, 3) for y in (0, 1, 3)]
    assert spec.b_peers((1, 2, 3)) == [(x, 2, 3) for x in (0, 2, 3)]
    assert spec.c_root((1, 2, 3)) == (1, 2, 0)


def test_choose_side():
    assert choose_side(2048, 16) == 4  # 4^3 = 64 >= 16
    assert choose_side(2048, 64) == 4
    assert choose_side(2048, 65) == 8
    assert choose_side(2048, 4096) == 16


def test_global_matrices_assembled_from_slices():
    spec = MatMulSpec(32, 2)
    A = global_a(spec, seed=1)
    assert A.shape == (32, 32)
    # block (x=0, z=1) column slice y=1 must be exactly slice_a
    s = slice_a(spec, (0, 1, 1), seed=1)
    n, sr = spec.n, spec.slice_rows
    assert np.array_equal(A[0:n, n + sr:n + 2 * sr], s)


@pytest.mark.parametrize("machine", [ABE, SURVEYOR], ids=["ib", "bgp"])
@pytest.mark.parametrize("mode", ["msg", "ckd"])
def test_product_matches_numpy(machine, mode):
    r = run_matmul(machine, n_pes=8, N=64, c=4, iterations=2, mode=mode,
                   validate=True, keep_runtime=True)
    got = gather_c(r)
    ref = reference_c(r)
    assert np.allclose(got, ref, rtol=1e-12, atol=1e-9)


def test_minimal_grid_c2():
    r = run_matmul(ABE, n_pes=4, N=16, c=2, iterations=1, mode="ckd",
                   validate=True, keep_runtime=True)
    assert np.allclose(gather_c(r), reference_c(r))


def test_more_chares_than_pes():
    r = run_matmul(ABE, n_pes=2, N=32, c=4, iterations=1, mode="msg",
                   validate=True, keep_runtime=True)
    assert np.allclose(gather_c(r), reference_c(r))


def test_iteration_times_reported():
    r = run_matmul(ABE, n_pes=8, N=64, c=4, iterations=3, mode="msg")
    assert len(r.iter_times) == 3
    assert all(t > 0 for t in r.iter_times)


def test_repeated_iterations_stable():
    """Re-multiplying the same inputs must give identical results."""
    r = run_matmul(ABE, n_pes=8, N=32, c=2, iterations=3, mode="ckd",
                   validate=True, keep_runtime=True)
    assert np.allclose(gather_c(r), reference_c(r))


def test_ckd_uses_no_placement_copies():
    """CkDirect lands slices in place: far fewer pack copies than the
    message version."""
    m = run_matmul(ABE, 8, N=64, c=4, iterations=2, mode="msg", keep_runtime=True)
    c = run_matmul(ABE, 8, N=64, c=4, iterations=2, mode="ckd", keep_runtime=True)
    assert (
        c.runtime.trace.counter("charm.pack_copies")
        < m.runtime.trace.counter("charm.pack_copies") / 2
    )


def test_invalid_mode():
    with pytest.raises(ValueError, match="mode"):
        run_matmul(ABE, 2, N=16, c=2, mode="nope")
