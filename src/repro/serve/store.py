"""Disk-backed content-addressed result store with an LRU size cap.

Layout under the store root::

    objects/<digest[:2]>/<digest>     # one file per cached payload

Writes are atomic (tmp file + ``os.replace`` in the same directory),
so a crashed server never leaves a truncated object — readers either
see the full payload or nothing.  Recency is tracked in memory and
persisted opportunistically via file mtimes, so a reopened store
rebuilds a sensible LRU order from disk.

The cap is enforced on insert: after a put, least-recently-used
objects are dropped until total bytes fit (the entry just written is
never evicted, even if it alone exceeds the cap — one oversized
result beats a store that can never hold it).
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional

_HEX = set("0123456789abcdef")


class StoreError(RuntimeError):
    """Raised for malformed digests or store misuse."""


def _check_digest(digest: str) -> str:
    if not isinstance(digest, str) or len(digest) != 64 or set(digest) - _HEX:
        raise StoreError(f"not a sha256 hex digest: {digest!r}")
    return digest


class ResultStore:
    """Content-addressed payload store: ``digest -> bytes`` on disk."""

    def __init__(self, root: os.PathLike, max_bytes: Optional[int] = None) -> None:
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)
        if max_bytes is not None and max_bytes <= 0:
            raise StoreError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self.evictions = 0
        self._lock = threading.Lock()
        #: digest -> size, in LRU order (first = coldest).
        self._index: "OrderedDict[str, int]" = OrderedDict()
        self._scan()

    # -- internals ------------------------------------------------------

    def _path(self, digest: str) -> Path:
        return self.objects / digest[:2] / digest

    def _scan(self) -> None:
        """Rebuild the index from disk, ordered by mtime (oldest first)."""
        found = []
        for shard in self.objects.iterdir() if self.objects.exists() else []:
            if not shard.is_dir():
                continue
            for obj in shard.iterdir():
                name = obj.name
                if len(name) == 64 and not (set(name) - _HEX):
                    try:
                        st = obj.stat()
                    except OSError:
                        continue
                    found.append((st.st_mtime, name, st.st_size))
        found.sort()
        for _mtime, name, size in found:
            self._index[name] = size

    def _touch(self, digest: str) -> None:
        self._index.move_to_end(digest)
        try:
            os.utime(self._path(digest))
        except OSError:
            pass  # recency persistence is best-effort

    def _evict_to_fit(self, protect: str) -> None:
        if self.max_bytes is None:
            return
        while self.total_bytes > self.max_bytes and len(self._index) > 1:
            coldest = next(iter(self._index))
            if coldest == protect:
                break
            self._index.pop(coldest)
            try:
                self._path(coldest).unlink()
            except OSError:
                pass
            self.evictions += 1

    # -- public API -----------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return sum(self._index.values())

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return _check_digest(digest) in self._index

    def get(self, digest: str) -> Optional[bytes]:
        """The payload for ``digest``, or None; a hit refreshes recency."""
        _check_digest(digest)
        with self._lock:
            if digest not in self._index:
                return None
            try:
                data = self._path(digest).read_bytes()
            except OSError:
                # File vanished under us (external cleanup): drop the entry.
                self._index.pop(digest, None)
                return None
            self._touch(digest)
            return data

    def put(self, digest: str, payload: bytes) -> None:
        """Store ``payload`` under ``digest`` atomically; evict LRU to fit.

        Re-putting an existing digest is a no-op apart from a recency
        refresh — content-addressed entries never change.
        """
        _check_digest(digest)
        if not isinstance(payload, (bytes, bytearray)):
            raise StoreError("payload must be bytes")
        with self._lock:
            if digest in self._index:
                self._touch(digest)
                return
            path = self._path(digest)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=path.parent)
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._index[digest] = len(payload)
            self._evict_to_fit(protect=digest)

    def manifest(self) -> Dict:
        """JSON-ready store inventory (coldest entry first)."""
        with self._lock:
            entries: List[Dict] = [
                {"digest": d, "bytes": size} for d, size in self._index.items()
            ]
            return {
                "root": str(self.root),
                "objects": len(entries),
                "total_bytes": self.total_bytes,
                "max_bytes": self.max_bytes,
                "evictions": self.evictions,
                "entries": entries,
            }

    def write_manifest(self, path: os.PathLike) -> None:
        """Write :meth:`manifest` as indented JSON (CI artifact helper)."""
        import json

        Path(path).write_text(json.dumps(self.manifest(), indent=2) + "\n")
