"""Unit tests for report rendering."""

import pytest

from repro.bench.report import (
    max_abs_relative_error,
    relative_error,
    render_series,
    render_table,
)


def test_render_table_contains_everything():
    out = render_table(
        "Title X", [100, 1000],
        {"A": [1.0, 2.0]}, {"A": [1.1, 2.1]},
    )
    assert "Title X" in out
    assert "A (ours)" in out
    assert "A (paper)" in out
    assert "100B" in out and "1KB" in out
    assert "1.00" in out and "2.10" in out


def test_render_table_without_paper():
    out = render_table("T", [5], {"A": [3.0]}, None)
    assert "(paper)" not in out


def test_render_series():
    out = render_series(
        "Fig Z", "PEs", [64, 128],
        {"gain %": [1.5, 2.5]}, unit="%", claim="it grows",
    )
    assert "Fig Z" in out
    assert "paper claim: it grows" in out
    assert "64" in out and "2.500" in out


def test_relative_error():
    errs = relative_error([110.0, 90.0], [100.0, 100.0])
    assert errs[0] == pytest.approx(0.10)
    assert errs[1] == pytest.approx(-0.10)
    assert max_abs_relative_error([110.0, 80.0], [100.0, 100.0]) == pytest.approx(0.20)


def test_paper_data_tables_complete():
    from repro.bench.paper_data import (
        PINGPONG_SIZES,
        TABLE1_RTT_US,
        TABLE2_RTT_US,
    )

    assert len(PINGPONG_SIZES) == 10
    for table, n_stacks in ((TABLE1_RTT_US, 5), (TABLE2_RTT_US, 4)):
        assert len(table) == n_stacks
        for stack, vals in table.items():
            assert len(vals) == 10, stack
            # RTTs grow with size within each stack
            assert vals[-1] > vals[0]
