"""Two-sided matching: posted-receive and unexpected-message queues.

MPI two-sided semantics in miniature: receives match arrivals on
``(source, tag)`` with wildcards, in posted order.  Matching *cost*
(tag matching software, plus the bounce-buffer copy for messages that
arrived before their receive was posted) is charged by the rank layer;
this module is the pure bookkeeping, kept separate so it can be tested
exhaustively on its own.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Optional

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class RecvPost:
    """A posted receive awaiting data."""

    src: int
    tag: int
    cb: Callable[["Arrival"], None]
    post_time: float
    nbytes_max: Optional[int] = None

    def matches(self, arrival: "Arrival") -> bool:
        """True when this receive matches an arrival's (src, tag)."""
        return (self.src in (ANY_SOURCE, arrival.src)) and (
            self.tag in (ANY_TAG, arrival.tag)
        )


@dataclass
class Arrival:
    """An arrived (or, for rendezvous, announced) message."""

    src: int
    tag: int
    nbytes: int
    arrival_time: float
    #: None for delivered eager data; for rendezvous, a thunk the
    #: matcher calls to begin the data transfer once a receive matches.
    begin_data: Optional[Callable[[RecvPost], None]] = None
    user: Any = None
    #: causing timeline event (the send instant) — None untraced.
    trace_eid: Optional[int] = None

    @property
    def is_rendezvous(self) -> bool:
        """True for announced (RTS) arrivals whose data is pending."""
        return self.begin_data is not None


class Matcher:
    """Per-rank matching engine."""

    def __init__(self) -> None:
        self.posted: Deque[RecvPost] = deque()
        self.unexpected: Deque[Arrival] = deque()

    def post(self, recv: RecvPost) -> Optional[Arrival]:
        """Post a receive; returns the matching arrival if one is
        already waiting (earliest first), else queues the receive."""
        for i, arr in enumerate(self.unexpected):
            if recv.matches(arr):
                del self.unexpected[i]
                return arr
        self.posted.append(recv)
        return None

    def arrive(self, arrival: Arrival) -> Optional[RecvPost]:
        """Record an arrival; returns the matching posted receive if
        any (oldest first), else queues the arrival as unexpected."""
        for i, recv in enumerate(self.posted):
            if recv.matches(arrival):
                del self.posted[i]
                return recv
        self.unexpected.append(arrival)
        return None

    @property
    def pending_recvs(self) -> int:
        """Number of posted, unmatched receives."""
        return len(self.posted)

    @property
    def pending_unexpected(self) -> int:
        """Number of unmatched arrivals queued."""
        return len(self.unexpected)
