"""Property-based equivalence of the event-queue implementations.

The load-bearing claim behind ``--eventq`` being a pure wall-clock
knob: every implementation pops the identical ``(time, priority,
seq)`` sequence under arbitrary interleavings of ``schedule``,
``schedule_batch`` and ``cancel`` — including operations performed
*from inside running callbacks*, which is where the calendar queue's
mid-rung insort and in-place compaction paths live.  Rejection
atomicity is part of the contract too: a failed batch must leave
queue state (and the sequence counter, which feeds tie-breaking)
untouched on every implementation.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationError, Simulator
from repro.sim.eventq import (
    AutoSimulator,
    CalendarSimulator,
    CompiledSimulator,
    compiled_available,
)

IMPLS = [CalendarSimulator, AutoSimulator]
if compiled_available():
    IMPLS.append(CompiledSimulator)

# An op either runs at the top level or inside a driver callback:
#   ("schedule", delay, priority)
#   ("batch", [offsets...], priority)
#   ("cancel", index-into-created-events)
_op = st.one_of(
    st.tuples(st.just("schedule"),
              st.floats(min_value=0.0, max_value=2e-5, allow_nan=False),
              st.integers(min_value=-2, max_value=2)),
    st.tuples(st.just("batch"),
              st.lists(st.floats(min_value=0.0, max_value=2e-5,
                                 allow_nan=False), min_size=1, max_size=6),
              st.integers(min_value=-2, max_value=2)),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10_000)),
)

programs = st.lists(_op, min_size=1, max_size=40)


def _execute(sim_factory, prog):
    """Run a program with ops firing from inside driver callbacks."""
    sim = sim_factory()
    fired = []
    created = []

    def leaf(i):
        fired.append((sim.now, "leaf", i))

    def do(op):
        kind = op[0]
        fired.append((sim.now, kind))
        if kind == "schedule":
            _, delay, prio = op
            created.append(
                sim.schedule(delay, leaf, len(created), priority=prio))
        elif kind == "batch":
            _, offsets, prio = op
            base = len(created)
            created.extend(sim.schedule_batch(
                [(sim.now + off, leaf, (base + j,))
                 for j, off in enumerate(offsets)],
                priority=prio,
            ))
        else:
            _, idx = op
            if created:
                created[idx % len(created)].cancel()

    for i, op in enumerate(prog):
        # driver events interleave with the ops' own events in time
        sim.schedule(i * 3e-6, do, op)
    sim.run()
    return fired, sim.events_processed, sim.now, sim.pending


@given(programs)
@settings(max_examples=120, deadline=None)
def test_all_impls_pop_identical_sequences(prog):
    reference = _execute(Simulator, prog)
    for impl in IMPLS:
        assert _execute(impl, prog) == reference, impl.__name__


@given(programs, st.integers(min_value=1, max_value=30))
@settings(max_examples=60, deadline=None)
def test_step_drain_matches_run(prog, steps):
    """Mixing step() with run() cannot change the fired sequence."""
    def stepped(factory):
        sim = factory()
        fired = []
        for i, op in enumerate(prog):
            sim.schedule(i * 3e-6, fired.append, (op[0], i))
        for _ in range(steps):
            if not sim.step():
                break
        sim.run()
        return fired, sim.events_processed

    reference = stepped(Simulator)
    for impl in IMPLS:
        assert stepped(impl) == reference, impl.__name__


@given(st.lists(st.floats(min_value=0.0, max_value=1e-4, allow_nan=False),
                min_size=1, max_size=10),
       st.integers(min_value=0, max_value=9))
@settings(max_examples=60, deadline=None)
def test_nan_in_batch_is_atomic_everywhere(offsets, nan_at):
    """A NaN anywhere in a batch rejects the whole batch, leaving
    state byte-equivalent to never having submitted it."""
    poisoned = list(offsets)
    poisoned.insert(min(nan_at, len(poisoned)), math.nan)

    def attempt(factory):
        sim = factory()
        sim.schedule(1e-6, lambda: None)
        try:
            sim.schedule_batch([(t, lambda: None, ()) for t in poisoned])
            raise AssertionError("NaN batch must be rejected")
        except SimulationError:
            pass
        # after rejection the sim behaves as if the batch never happened
        fired = []
        sim.schedule_batch([(2e-6, fired.append, (j,)) for j in range(3)])
        sim.run()
        return fired, sim.events_processed, sim.pending

    reference = attempt(Simulator)
    for impl in IMPLS:
        assert attempt(impl) == reference, impl.__name__


@given(programs)
@settings(max_examples=40, deadline=None)
def test_run_before_windows_match(prog):
    """Draining through a sequence of run_before windows (the parallel
    engine's access pattern) pops the same events as one run()."""
    def windows(factory):
        sim = factory()
        fired = []
        for i, op in enumerate(prog):
            sim.schedule(i * 3e-6, fired.append, (op[0], i))
        bound = 0.0
        while sim.next_event_time() != float("inf"):
            bound = max(bound + 4e-6, sim.next_event_time() + 1e-9)
            sim.run_before(bound)
        return fired, sim.events_processed

    reference = windows(Simulator)
    for impl in IMPLS:
        assert windows(impl) == reference, impl.__name__
