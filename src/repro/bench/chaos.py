"""The chaos oracle (``repro chaos``): every app, every fault profile,
bit-identical results.

The paper's central claim is that CkDirect puts need *no per-message
synchronization*; the reliability layer's claim is that this stays true
on an imperfect fabric.  The oracle checks both at once: it runs the
stencil, matmul, and OpenAtom mini-apps in CKD mode under each built-in
fault profile and asserts

* **bit-identity** — the gathered application state (stencil grid,
  matmul product blocks, OpenAtom GSpace points + PairCalculator
  operand buffers) is byte-for-byte the state of a clean run, and
* **reference match** — that state also matches the analytic reference
  (Jacobi sweeps of the assembled initial grid; ``A @ B`` of the
  deterministic input slices; the damped-points recurrence).

Bit-identity is a meaningful bar because source buffers only mutate
after an iteration barrier, and every barrier is gated on every put of
the iteration being *delivered* (directly for the stencil/matmul ghost
and block exchanges; through the global Ortho reduction for OpenAtom).
Duplicate and stale landings are discarded by the reliability layer's
sequence check *before* the payload copy, so no recovery schedule —
retransmit, watchdog repair, or degraded fallback — may legitimately
change a single bit of application state.

The oracle runs on Abe with 16 PEs = 2 nodes: cross-node NIC traffic
exists, so the ``nic-stall`` profile has something to stall (at <= 8
PEs every transfer takes the intra-node shared-memory path and a NIC
fault cannot matter — physically consistent, but it would make that
profile a no-op).

Each (app, profile) pair is an independent sweep point, so ``--jobs N``
fans the matrix out over workers with byte-identical output at any N.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..faults.plan import PROFILES
from ..network.params import MachineParams
from ..sim.rng import substream
from ..sweep import RunSpec, SweepRunner

#: Oracle machine / PE configuration (see module docstring).
CHAOS_MACHINE = "Abe"
CHAOS_PES = 16

#: Sentinel profile name for the fault-free baseline run.  Not a
#: FaultPlan profile: the baseline runs with *no* injector and *no*
#: reliability layer, so the ``none`` profile row doubles as a
#: measurement of the reliability protocol's own overhead.
CLEAN = "clean"

APPS: Tuple[str, ...] = ("stencil", "matmul", "openatom")

#: Small-but-honest app configurations: every communication structure
#: of the full experiments (ghost faces, block broadcasts, operand
#: assembly) at sizes where the whole matrix runs in seconds.
CHAOS_CONFIGS: Dict[str, Dict[str, Any]] = {
    "stencil": dict(domain=(16, 16, 16), vr=2, iterations=3),
    "matmul": dict(N=32, c=2, iterations=3),
    "openatom": dict(nstates=8, nplanes=2, grain=4, points_per_plane=64,
                     iterations=2, rest_rounds=2),
}

#: Recovery-activity counters reported per run (trace counter name ->
#: table column).
COUNTERS: Tuple[Tuple[str, str], ...] = (
    ("ckdirect.retransmits", "retx"),
    ("ckdirect.dup_discards", "dup"),
    ("ckdirect.torn_recoveries", "torn"),
    ("ckdirect.watchdog_fires", "wdog"),
    ("ckdirect.fallback_puts", "fbk"),
    ("ckdirect.degraded_handles", "deg"),
)


def _digest(arrays: Sequence[np.ndarray]) -> str:
    """Order-sensitive content hash of the gathered application state."""
    h = hashlib.sha256()
    for a in arrays:
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Per-app oracles: run, gather, compare against the analytic reference
# ---------------------------------------------------------------------------


def _stencil_initial(domain, grid, seed: int) -> np.ndarray:
    """Assemble the global initial grid the blocks seeded themselves
    with (same per-block substreams, independent of decomposition)."""
    from ..apps.stencil.base import block_initial

    init = np.zeros(domain)
    bx, by, bz = (d // g for d, g in zip(domain, grid))
    for i in range(grid[0]):
        for j in range(grid[1]):
            for k in range(grid[2]):
                init[i * bx:(i + 1) * bx, j * by:(j + 1) * by,
                     k * bz:(k + 1) * bz] = block_initial(
                         (i, j, k), (bx, by, bz), seed)
    return init


def _run_stencil(machine, n_pes, faults, fault_seed):
    from ..apps.stencil.driver import gather_grid, run_stencil
    from ..apps.stencil.reference import jacobi_reference

    r = run_stencil(machine, n_pes, mode="ckd", validate=True,
                    keep_runtime=True, faults=faults, fault_seed=fault_seed,
                    **CHAOS_CONFIGS["stencil"])
    got = gather_grid(r)
    ref = jacobi_reference(_stencil_initial(r.domain, r.grid, seed=20090922),
                           r.iterations)
    # block_update computes exactly jacobi_step's expression per block,
    # so the reference holds bit-for-bit
    return r, [got], bool(np.array_equal(got, ref)), float(
        np.max(np.abs(got - ref))), r.mean_iter_time


def _run_matmul(machine, n_pes, faults, fault_seed):
    from ..apps.matmul.driver import gather_c, reference_c, run_matmul

    r = run_matmul(machine, n_pes, mode="ckd", validate=True,
                   keep_runtime=True, faults=faults, fault_seed=fault_seed,
                   **CHAOS_CONFIGS["matmul"])
    got = gather_c(r)
    ref = reference_c(r)
    # blockwise accumulation reorders the FP sums vs the global GEMM:
    # allclose against the reference, bit-identity across runs
    return r, [got], bool(np.allclose(got, ref)), float(
        np.max(np.abs(got - ref))), r.mean_iter_time


def _damped(points: np.ndarray, k: int) -> np.ndarray:
    """``k`` applications of the GSpace correction update, with the
    exact op order the chares use (multiply then add, in place)."""
    p = np.array(points, copy=True)
    for _ in range(k):
        np.multiply(p, 0.5, out=p)
        np.add(p, 0.5, out=p)
    return p


def _run_openatom(machine, n_pes, faults, fault_seed):
    from ..apps.openatom.config import OPENATOM_OOB
    from ..apps.openatom.driver import run_openatom

    r = run_openatom(machine, n_pes, mode="ckd", validate=True,
                     keep_runtime=True, faults=faults, fault_seed=fault_seed,
                     **CHAOS_CONFIGS["openatom"])
    cfg = r.cfg

    def initial(s: int, p: int) -> np.ndarray:
        return substream(cfg.seed, 2, s, p).random(cfg.points_per_plane) + 0.5

    gs_pts: List[Tuple[tuple, np.ndarray]] = []
    pc_ops: List[Tuple[tuple, np.ndarray, np.ndarray]] = []
    for arr in r.runtime.arrays.values():
        if arr.internal:
            continue
        for idx in sorted(arr.elements):
            elem = arr.elements[idx]
            if getattr(elem, "points", None) is not None:
                gs_pts.append((idx, elem.points))
            elif getattr(elem, "left", None) is not None:
                pc_ops.append((idx, elem.left, elem.right))

    # GSpace points were damped once per completed iteration; the
    # PairCalculator operands hold the points as *sent* in the final
    # iteration — one damping behind.
    ok, err = True, 0.0
    for (s, p), pts in gs_pts:
        exp = _damped(initial(s, p), cfg.iterations)
        ok = ok and np.array_equal(pts, exp)
        err = max(err, float(np.max(np.abs(pts - exp))))
    for (i, j, p), left, right in pc_ops:
        for off in range(cfg.grain):
            for block, op in ((i, left), (j, right)):
                exp = _damped(initial(block * cfg.grain + off, p),
                              cfg.iterations - 1)
                # the PC re-armed its channels after the final multiply,
                # re-stamping the out-of-band sentinel into each
                # operand's trailing word
                exp[-1] = OPENATOM_OOB
                ok = ok and np.array_equal(op[:, off], exp)
                err = max(err, float(np.max(np.abs(op[:, off] - exp))))

    arrays = [pts for _idx, pts in gs_pts]
    arrays += [a for _idx, l_op, r_op in pc_ops for a in (l_op, r_op)]
    return r, arrays, bool(ok), err, r.mean_step_time


_APP_RUNNERS = {
    "stencil": _run_stencil,
    "matmul": _run_matmul,
    "openatom": _run_openatom,
}


def chaos_point(
    machine: MachineParams,
    app: str,
    n_pes: int,
    profile: str,
    fault_seed: int = 0x0FA11,
) -> Dict[str, Any]:
    """Picklable sweep-point adapter: one (app, profile) oracle run.

    ``profile`` is a built-in fault profile name, or :data:`CLEAN` for
    the fault-free / reliability-free baseline the faulted runs are
    compared against.
    """
    if app not in _APP_RUNNERS:
        raise ValueError(f"app must be one of {sorted(_APP_RUNNERS)}, got {app!r}")
    faults = None if profile == CLEAN else profile
    result, arrays, ref_ok, ref_err, mean_s = _APP_RUNNERS[app](
        machine, n_pes, faults, fault_seed
    )
    rt = result.runtime
    out: Dict[str, Any] = {
        "digest": _digest(arrays),
        "ref_ok": ref_ok,
        "ref_err": ref_err,
        "mean_s": mean_s,
        "events": result.events,
        "injected": (rt.fault_injector.total_injected
                     if rt.fault_injector is not None else 0),
    }
    for counter, column in COUNTERS:
        out[column] = rt.trace.counter(counter)
    return out


# ---------------------------------------------------------------------------
# The matrix runner + report
# ---------------------------------------------------------------------------


def run_chaos(
    profiles: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    fault_seed: int = 0x0FA11,
) -> Dict[str, Any]:
    """Run the full chaos matrix; returns ``{"ok", "rows", "report"}``.

    ``ok`` is True only when every run matched its analytic reference
    and every faulted run was bit-identical to its app's clean run.
    """
    profiles = list(profiles if profiles is not None else sorted(PROFILES))
    per_app = [CLEAN] + profiles
    specs = [
        RunSpec.make("chaos", CHAOS_MACHINE, app, CHAOS_PES,
                     profile=prof, fault_seed=fault_seed)
        for app in APPS
        for prof in per_app
    ]
    results = SweepRunner(jobs=jobs, label="chaos").run(specs)

    rows: List[Dict[str, Any]] = []
    ok = True
    n = len(per_app)
    for a, app in enumerate(APPS):
        clean = results[a * n].unwrap()
        for p, prof in enumerate(per_app):
            values = results[a * n + p].unwrap()
            bit_identical = values["digest"] == clean["digest"]
            overhead = (values["mean_s"] - clean["mean_s"]) / clean["mean_s"]
            row = {
                "app": app,
                "profile": prof,
                "bit_identical": bit_identical,
                "ref_ok": values["ref_ok"],
                "ref_err": values["ref_err"],
                "injected": values["injected"],
                "overhead_pct": 100.0 * overhead,
                **{col: values[col] for _c, col in COUNTERS},
            }
            rows.append(row)
            ok = ok and bit_identical and values["ref_ok"]

    return {"ok": ok, "rows": rows, "report": _render(rows, ok)}


# ---------------------------------------------------------------------------
# Process-scope chaos (``repro chaos --proc``)
# ---------------------------------------------------------------------------

#: Expected supervision activity per worker profile: (min restarts,
#: max restarts).  ``slow-worker`` must *not* trip the hang detector.
_PROC_EXPECT: Dict[str, Tuple[int, int]] = {
    "kill-shard": (1, 10),
    "hang-shard": (1, 10),
    "slow-worker": (0, 0),
}

#: Engines each worker profile is exercised under.
_PROC_ENGINES: Tuple[str, ...] = ("conservative", "optimistic")


def _proc_worker_row(profile: str, engine: str, shards: int,
                     clean: Dict[str, Any]) -> Dict[str, Any]:
    """One supervised faulted run vs the clean serial baseline."""
    from ..apps.stencil.driver import gather_grid, run_stencil
    from ..faults.plan import ProcFaultPlan
    from ..network.params import MACHINES

    r = run_stencil(
        MACHINES[CHAOS_MACHINE], CHAOS_PES, mode="ckd", validate=True,
        keep_runtime=True, shards=shards, engine=engine,
        proc_faults=ProcFaultPlan.named(profile),
        **CHAOS_CONFIGS["stencil"],
    )
    sup = r.runtime.supervision or {}
    lo, hi = _PROC_EXPECT[profile]
    restarts = sup.get("restarts", 0)
    return {
        "profile": profile,
        "engine": engine,
        "restarts": restarts,
        "crashes": sup.get("crashes", 0),
        "hangs": sup.get("hangs", 0),
        "degraded": sup.get("degraded", False),
        "recovered": lo <= restarts <= hi and not sup.get("degraded", False),
        "bit_identical": (_digest([gather_grid(r)]) == clean["digest"]
                          and r.events == clean["events"]),
    }


def _corrupt_object_row(fault_seed: int) -> Dict[str, Any]:
    """Self-healing store round-trip: corrupt on disk -> quarantined,
    never served -> recomputed -> identical bytes, healed."""
    import tempfile

    from ..serve.digest import job_digest, result_payload
    from ..serve.store import ResultStore

    spec = RunSpec.make("chaos", CHAOS_MACHINE, "stencil", CHAOS_PES,
                        profile=CLEAN, fault_seed=fault_seed)
    payload = result_payload(
        SweepRunner(jobs=1, label="proc-chaos").run([spec]))
    digest = job_digest([spec])
    with tempfile.TemporaryDirectory() as root:
        store = ResultStore(root)
        store.put(digest, payload)
        path = store._path(digest)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x40  # one flipped bit on disk
        path.write_bytes(bytes(raw))
        never_served = store.get(digest) is None
        quarantined = store.corruptions == 1 and store.quarantined == 1
        # The caller's cache-miss path: recompute and re-put.
        repayload = result_payload(
            SweepRunner(jobs=1, label="proc-chaos").run([spec]))
        store.put(digest, repayload)
        healed = store.healed == 1
        served = store.get(digest)
        bit_identical = served == payload and repayload == payload
    return {
        "profile": "corrupt-object",
        "engine": "store",
        "restarts": 0,
        "crashes": 0,
        "hangs": 0,
        "degraded": False,
        "recovered": never_served and quarantined and healed,
        "bit_identical": bool(bit_identical),
    }


def run_proc_chaos(
    profiles: Optional[Sequence[str]] = None,
    shards: int = 2,
    fault_seed: int = 0x0FA11,
    hang_deadline_s: float = 3.0,
) -> Dict[str, Any]:
    """Run the process-scope chaos matrix; ``{"ok", "rows", "report"}``.

    Unlike :func:`run_chaos` the points run inline, sequentially: a
    sweep worker is daemonic and may not fork shard children of its
    own, and these faults target *real* processes, not the simulated
    fabric.  ``hang_deadline_s`` temporarily lowers
    ``REPRO_SHARD_DEADLINE`` so the hang profile converges in seconds
    (an explicit user setting wins).
    """
    import os

    from ..faults.plan import PROC_PROFILES
    from ..network.params import MACHINES

    profiles = list(profiles if profiles is not None else
                    sorted(PROC_PROFILES))
    for prof in profiles:
        if prof not in PROC_PROFILES:
            raise ValueError(
                f"unknown proc profile {prof!r}; known: "
                f"{sorted(PROC_PROFILES)}"
            )

    clean = chaos_point(
        MACHINES[CHAOS_MACHINE], "stencil", CHAOS_PES, CLEAN, fault_seed,
    )
    rows: List[Dict[str, Any]] = []
    had_deadline = os.environ.get("REPRO_SHARD_DEADLINE")
    try:
        if had_deadline is None:
            os.environ["REPRO_SHARD_DEADLINE"] = str(hang_deadline_s)
        for prof in profiles:
            if prof == "corrupt-object":
                rows.append(_corrupt_object_row(fault_seed))
                continue
            for engine in _PROC_ENGINES:
                rows.append(_proc_worker_row(prof, engine, shards, clean))
    finally:
        if had_deadline is None:
            os.environ.pop("REPRO_SHARD_DEADLINE", None)

    ok = all(r["recovered"] and r["bit_identical"] for r in rows)
    return {"ok": ok, "rows": rows,
            "report": _render_proc(rows, ok, shards)}


def _render_proc(rows: List[Dict[str, Any]], ok: bool, shards: int) -> str:
    title = (f"Process chaos: shard supervision + self-healing store "
             f"({CHAOS_MACHINE}, {CHAOS_PES} PEs, stencil, "
             f"{shards} shards)")
    cols = ["profile", "engine", "restarts", "crashes", "hangs",
            "degraded", "recovered", "bit-id"]
    table: List[List[str]] = [cols]
    for r in rows:
        table.append([
            r["profile"], r["engine"], str(r["restarts"]),
            str(r["crashes"]), str(r["hangs"]),
            "yes" if r["degraded"] else "no",
            "yes" if r["recovered"] else "NO",
            "yes" if r["bit_identical"] else "NO",
        ])
    widths = [max(len(row[i]) for row in table) for i in range(len(cols))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(c.ljust(w) for c, w in zip(table[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    lines.append(
        "proc oracle: PASS — every fault recovered with bit-identical "
        "output" if ok else
        "proc oracle: FAIL — at least one fault was not survived "
        "(see recovered / bit-id columns)"
    )
    return "\n".join(lines)


def _render(rows: List[Dict[str, Any]], ok: bool) -> str:
    title = (f"Chaos oracle: apps x fault profiles "
             f"({CHAOS_MACHINE}, {CHAOS_PES} PEs, ckd mode)")
    cols = (["app", "profile", "faults"] + [c for _n, c in COUNTERS]
            + ["bit-id", "ref", "overhead"])
    table: List[List[str]] = [cols]
    for r in rows:
        table.append(
            [r["app"], r["profile"], str(r["injected"])]
            + [str(r[c]) for _n, c in COUNTERS]
            + ["yes" if r["bit_identical"] else "NO",
               "ok" if r["ref_ok"] else f"MAX ERR {r['ref_err']:.3g}",
               "baseline" if r["profile"] == CLEAN
               else f"{r['overhead_pct']:+.1f}%"]
        )
    widths = [max(len(row[i]) for row in table) for i in range(len(cols))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(c.ljust(w) for c, w in zip(table[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    lines.append(
        "oracle: PASS — all runs bit-identical to clean and matching "
        "the analytic references" if ok else
        "oracle: FAIL — at least one run diverged (see bit-id / ref columns)"
    )
    return "\n".join(lines)
