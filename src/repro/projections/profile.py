"""The ``repro profile`` artifact: where does the time go?

Runs one application under timeline tracing and prints the top
overhead categories — the terminal-friendly cousin of the Perfetto
timeline.  Three sections:

* **per-category PE time** — how the run's busy time splits across
  entry execution, scheduler dispatch, CkDirect activity, and
  RTS-internal work (the paper's overhead taxonomy);
* **reconciliation** — timeline event counts cross-checked against the
  aggregate :class:`~repro.sim.trace.Trace` counters of the *same*
  run: the two instrumentation layers are independent, so agreement is
  a self-check that neither dropped events;
* **critical path** — the causal chain bounding the makespan, split
  into work and wait.

Lives outside the package ``__init__`` because it imports the app
drivers (which import the runtime, which imports the event log).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..network.params import ABE, MachineParams
from ..sim.eventq import eventq_name
from .analysis import (
    category_totals,
    critical_path_summary,
    name_totals,
    utilization_profile,
)
from .events import BUSY_CATEGORIES, CAT_ENTRY, CAT_RTS
from .eventlog import EventLog, tracing
from .export import render_utilization

#: app → (per-app default iterations, supported stacks)
_APPS = {
    "pingpong": (100, ("charm", "ckdirect", "mpi", "mpi-put")),
    "stencil": (4, ("charm", "ckdirect")),
    "openatom": (3, ("charm", "ckdirect")),
}

#: Timeline name-key ↔ aggregate Trace counter pairs that must agree.
_RECONCILE: List[Tuple[str, str, str]] = [
    ("messages sent", "send", "charm.msgs_sent"),
    ("messages executed", "__executed__", "pe.messages_executed"),
    ("poll sweeps", "poll_sweep", "pe.poll_sweeps"),
    ("poll detections", "poll_callback", "pe.poll_detections"),
    ("direct completions", "direct_callback", "pe.direct_completions"),
    ("puts issued", "put", "ckdirect.puts"),
    ("mpi sends", "mpi_send", "mpi.sends"),
    ("mpi recvs", "mpi_recv", "mpi.recvs"),
]


class ProfileError(ValueError):
    """Raised for unsupported app/stack combinations."""


def _run_app(app: str, machine: MachineParams, stack: str, size: int,
             iterations: int, n_pes: Optional[int]) -> str:
    if app == "pingpong":
        from ..apps.pingpong import (
            charm_pingpong,
            ckdirect_pingpong,
            mpi_pingpong,
            mpi_put_pingpong,
        )

        fn = {"charm": charm_pingpong, "ckdirect": ckdirect_pingpong,
              "mpi": mpi_pingpong, "mpi-put": mpi_put_pingpong}[stack]
        r = fn(machine, size, iterations)
        return f"{r.stack} pingpong, {r.nbytes}B, {r.rtt_us:.3f} us RTT"
    mode = "ckd" if stack == "ckdirect" else "msg"
    if app == "stencil":
        from ..apps.stencil.driver import run_stencil

        r = run_stencil(machine, n_pes or 16, iterations=iterations, mode=mode)
        return f"stencil/{mode}, {r.n_pes} PEs, {r.mean_iter_time * 1e3:.3f} ms/iter"
    if app == "openatom":
        from ..apps.openatom import abe_2cpn, run_openatom

        r = run_openatom(abe_2cpn(machine), n_pes or 16, mode=mode,
                         iterations=iterations)
        return (f"openatom/{mode}, {r.n_pes} PEs, "
                f"{r.mean_step_time * 1e3:.3f} ms/step")
    raise ProfileError(f"unknown app {app!r}; expected one of {sorted(_APPS)}")


def engine_summary(log: EventLog, wall_s: float) -> Dict[str, object]:
    """Event-engine throughput over every runtime the log traced.

    Sums ``sim.events_processed`` across the traced runtimes and
    names the event-queue implementation that backed them (see
    :mod:`repro.sim.eventq`), so dashboards can attribute wall-clock
    speedups to the queue rather than to workload changes.
    """
    from ..sim.shm import resolve_transport

    events = 0
    impls: List[str] = []
    transport_stats: Optional[Dict[str, object]] = None
    for _label, owner, _n in log.runs:
        sim = getattr(owner, "sim", None)
        if sim is None:
            continue
        events += int(sim.events_processed)
        name = eventq_name(sim)
        if name not in impls:
            impls.append(name)
        ts = getattr(owner, "transport_stats", None)
        if ts is not None:
            if transport_stats is None:
                transport_stats = dict(ts)
            else:
                for k in ("frames", "bytes", "spills"):
                    transport_stats[k] += ts.get(k, 0)
    return {
        "eventq": impls[0] if len(impls) == 1 else (impls or ["unknown"]),
        "transport": resolve_transport(),
        "transport_stats": transport_stats,
        "events": events,
        "wall_s": round(wall_s, 6),
        "events_per_s": round(events / wall_s, 1) if wall_s > 0 else 0.0,
    }


def _summed_counters(log: EventLog) -> Dict[str, int]:
    """Aggregate Trace counters over every runtime the log traced."""
    totals: Dict[str, int] = {}
    for _label, owner, _n in log.runs:
        trace = getattr(owner, "trace", None)
        if trace is None:
            continue
        for name, value in trace.summary()["counters"].items():
            totals[name] = totals.get(name, 0) + value
    return totals


def reconcile(log: EventLog) -> List[Dict[str, object]]:
    """Cross-check timeline event counts against Trace counters.

    Returns one row per applicable pair: the timeline count, the
    counter value, and whether they agree within 1 %.
    """
    names = name_totals(log)
    cats = category_totals(log)
    counters = _summed_counters(log)
    rows: List[Dict[str, object]] = []
    for label, key, counter in _RECONCILE:
        if key == "__executed__":
            observed = int(cats.get(CAT_ENTRY, {"events": 0})["events"]
                           + cats.get(CAT_RTS, {"events": 0})["events"])
        else:
            observed = int(names.get(key, {"events": 0})["events"])
        expected = counters.get(counter, 0)
        if observed == 0 and expected == 0:
            continue
        limit = max(observed, expected)
        ok = abs(observed - expected) <= 0.01 * limit
        rows.append({"label": label, "timeline": observed,
                     "counter": expected, "counter_name": counter, "ok": ok})
    return rows


def render_profile(log: EventLog, headline: str = "",
                   engine: Optional[Dict[str, object]] = None) -> str:
    """The full terminal profile report for a traced run."""
    cats = category_totals(log)
    busy_total = sum(row["time"] for cat, row in cats.items()
                     if cat in BUSY_CATEGORIES) or 1.0
    lines: List[str] = []
    if headline:
        lines.append(headline)
    lines.append(f"{len(log.events)} timeline events across "
                 f"{len(log.runs)} run(s)")
    if engine is not None:
        lines.append(
            f"engine: eventq={engine['eventq']}, "
            f"transport={engine.get('transport', 'pipe')}, "
            f"{engine['events']} sim events, "
            f"{engine['events_per_s'] / 1e6:.2f} M events/s"
        )
        ts = engine.get("transport_stats")
        if ts is not None:
            lines.append(
                f"transport: {ts['transport']}, {ts['frames']} frames, "
                f"{ts['bytes']} bytes, {ts['spills']} spills"
            )
    lines.append("")
    lines.append(f"{'category':<10} {'events':>8} {'time (us)':>12} {'% busy':>8}")
    order = sorted(cats.items(), key=lambda kv: kv[1]["time"], reverse=True)
    for cat, row in order:
        share = row["time"] / busy_total * 100 if cat in BUSY_CATEGORIES else 0.0
        pct = f"{share:>7.1f}%" if cat in BUSY_CATEGORIES else f"{'—':>8}"
        lines.append(f"{cat:<10} {int(row['events']):>8} "
                     f"{row['time'] * 1e6:>12.2f} {pct}")
    lines.append("")
    lines.append("reconciliation vs Trace counters:")
    recon = reconcile(log)
    if not recon:
        lines.append("  (no reconcilable categories)")
    for row in recon:
        mark = "OK" if row["ok"] else "MISMATCH"
        lines.append(f"  {row['label']:<20} timeline={row['timeline']:<8} "
                     f"{row['counter_name']}={row['counter']:<8} {mark}")
    cp = critical_path_summary(log)
    lines.append("")
    lines.append(
        f"critical path: {cp['events']} events, extent "
        f"{cp['extent'] * 1e6:.2f} us = work {cp['work'] * 1e6:.2f} us "
        f"+ wait {cp['wait'] * 1e6:.2f} us"
    )
    if cp["by_category"]:
        parts = ", ".join(f"{c} {t * 1e6:.2f}" for c, t in
                          sorted(cp["by_category"].items(),
                                 key=lambda kv: kv[1], reverse=True))
        lines.append(f"  chain work by category (us): {parts}")
    lines.append("")
    lines.append(render_utilization(log))
    return "\n".join(lines)


def run_profile(
    app: str = "pingpong",
    machine: Optional[MachineParams] = None,
    stack: str = "ckdirect",
    size: int = 30_000,
    iterations: Optional[int] = None,
    n_pes: Optional[int] = None,
    log: Optional[EventLog] = None,
) -> Dict[str, object]:
    """Run ``app`` under tracing and build the overhead report."""
    if app not in _APPS:
        raise ProfileError(f"unknown app {app!r}; expected one of {sorted(_APPS)}")
    default_iters, stacks = _APPS[app]
    if stack not in stacks:
        raise ProfileError(
            f"app {app!r} supports stacks {stacks}, not {stack!r}"
        )
    machine = machine if machine is not None else ABE
    iterations = iterations if iterations is not None else default_iters
    log = log if log is not None else EventLog()
    t0 = time.perf_counter()
    with tracing(log):
        headline = (f"profile: {app}/{stack} on {machine.name} — "
                    + _run_app(app, machine, stack, size, iterations, n_pes))
    engine = engine_summary(log, time.perf_counter() - t0)
    return {
        "app": app,
        "stack": stack,
        "machine": machine.name,
        "log": log,
        "engine": engine,
        "categories": category_totals(log),
        "names": name_totals(log),
        "reconciliation": reconcile(log),
        "critical_path": critical_path_summary(log),
        "utilization": utilization_profile(log),
        "report": render_profile(log, headline, engine),
    }
