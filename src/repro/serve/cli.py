"""``repro serve`` and ``repro submit`` — the service's command line.

Kept out of :mod:`repro.cli` so the artifact CLI stays importable
without touching asyncio; :func:`repro.cli.main` dispatches here when
the first positional is ``serve`` or ``submit``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional

from ..network.params import MACHINES
from ..sweep.points import POINTS

DEFAULT_PORT = 8642
DEFAULT_STORE = ".repro-store"


def _serve_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the simulation job server: content-addressed "
                    "result cache + bounded SweepRunner worker pool.",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_PORT,
                   help=f"listen port (default {DEFAULT_PORT}; 0 = ephemeral)")
    p.add_argument("--store", default=DEFAULT_STORE, metavar="DIR",
                   help=f"result-store directory (default {DEFAULT_STORE})")
    p.add_argument("--cache-mb", type=float, default=256.0, metavar="MB",
                   help="LRU size cap for the result store (default 256)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="concurrent jobs (default 2)")
    p.add_argument("--queue", type=int, default=32, metavar="N",
                   help="max queued jobs before 429 backpressure (default 32)")
    p.add_argument("--jobs-per-run", type=int, default=None, metavar="N",
                   help="SweepRunner --jobs per job (default: $REPRO_JOBS)")
    p.add_argument("--point-timeout", type=float, default=None, metavar="S",
                   help="per-point timeout seconds "
                        "(default: $REPRO_SWEEP_TIMEOUT, else 600)")
    return p


def serve_main(argv: Optional[List[str]] = None) -> int:
    args = _serve_parser().parse_args(argv)
    if args.port < 0:
        print(f"error: --port must be >= 0, got {args.port}", file=sys.stderr)
        return 2
    for name, val in (("--workers", args.workers), ("--queue", args.queue)):
        if val < 1:
            print(f"error: {name} must be at least 1, got {val}", file=sys.stderr)
            return 2
    if args.cache_mb <= 0:
        print(f"error: --cache-mb must be positive, got {args.cache_mb}",
              file=sys.stderr)
        return 2
    if args.jobs_per_run is not None and args.jobs_per_run < 1:
        print(f"error: --jobs-per-run must be at least 1, got {args.jobs_per_run}",
              file=sys.stderr)
        return 2

    from .app import ServeApp, serve_forever

    app = ServeApp(
        args.store,
        cache_bytes=int(args.cache_mb * 1024 * 1024),
        workers=args.workers,
        max_queue=args.queue,
        jobs_per_run=args.jobs_per_run,
        point_timeout=args.point_timeout,
    )
    try:
        asyncio.run(serve_forever(app, args.host, args.port))
    except KeyboardInterrupt:  # pragma: no cover - signal path races
        pass
    return 0


def _submit_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro submit",
        description="Submit one sweep point to a running `repro serve` "
                    "and (optionally) wait for + print its result.",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_PORT)
    p.add_argument("--kind", choices=sorted(POINTS),
                   help="sweep-point kind (alternative: --spec-json)")
    p.add_argument("--machine", default="Surveyor", choices=sorted(MACHINES))
    p.add_argument("--mode", default="", help="stack / app variant")
    p.add_argument("--pes", type=int, default=0, metavar="N", help="PE count")
    p.add_argument("--param", action="append", default=[], metavar="K=V",
                   help="point parameter (repeatable); values parsed as "
                        "JSON when possible, else kept as strings")
    p.add_argument("--spec-json", metavar="PATH",
                   help="read the spec (or a {'specs': [...]} job) from a "
                        "JSON file, '-' for stdin")
    p.add_argument("--no-wait", action="store_true",
                   help="just submit; print the job id and return")
    p.add_argument("--out", metavar="PATH",
                   help="write the result payload to PATH (default: stdout "
                        "summary only)")
    p.add_argument("--timeout", type=float, default=300.0, metavar="S",
                   help="max seconds to wait for the result (default 300)")
    p.add_argument("--retries", type=int, default=3, metavar="N",
                   help="extra submit attempts through 429 backpressure, "
                        "honoring Retry-After with jittered exponential "
                        "backoff (default 3; 0 = fail fast)")
    return p


def _parse_params(pairs: List[str]) -> dict:
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(f"--param needs K=V, got {pair!r}")
        k, v = pair.split("=", 1)
        try:
            out[k] = json.loads(v)
        except ValueError:
            out[k] = v
    return out


def submit_main(argv: Optional[List[str]] = None) -> int:
    parser = _submit_parser()
    args = parser.parse_args(argv)

    if (args.kind is None) == (args.spec_json is None):
        parser.error("provide exactly one of --kind or --spec-json")

    if args.spec_json is not None:
        raw = sys.stdin.read() if args.spec_json == "-" else None
        if raw is None:
            try:
                with open(args.spec_json) as fh:
                    raw = fh.read()
            except OSError as exc:
                print(f"error: cannot read {args.spec_json}: {exc}", file=sys.stderr)
                return 2
        try:
            doc = json.loads(raw)
        except ValueError as exc:
            print(f"error: invalid JSON in {args.spec_json}: {exc}", file=sys.stderr)
            return 2
        specs = doc["specs"] if isinstance(doc, dict) and "specs" in doc else [doc]
    else:
        try:
            params = _parse_params(args.param)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        specs = [{
            "kind": args.kind, "machine": args.machine,
            "mode": args.mode, "n_pes": args.pes, "params": params,
        }]

    from .client import Backpressure, ServeClient, ServeClientError

    if args.retries < 0:
        print(f"error: --retries must be >= 0, got {args.retries}",
              file=sys.stderr)
        return 2
    client = ServeClient(args.host, args.port, timeout=args.timeout,
                         retries=args.retries)
    try:
        job = client.submit(specs)
    except Backpressure as exc:
        print(f"rejected: queue full after {args.retries + 1} attempts, "
              f"retry after {exc.retry_after:g}s", file=sys.stderr)
        return 3
    except ServeClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot reach server at {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2

    hit = "hit" if job.get("cached") else "miss"
    print(f"job {job['job']} digest={job['digest'][:16]}... "
          f"status={job['status']} cache={hit}")
    if args.no_wait:
        return 0

    try:
        final = client.wait(job["job"], deadline_s=args.timeout)
    except (ServeClientError, TimeoutError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if final["status"] != "done":
        print(f"job {final['job']} failed: {final.get('error', '')}",
              file=sys.stderr)
        return 1
    payload = client.result(job["job"])
    points = final["points"]["total"]
    print(f"job {final['job']} done: {points} point(s), "
          f"{len(payload)} payload bytes")
    if args.out:
        try:
            with open(args.out, "wb") as fh:
                fh.write(payload)
        except OSError as exc:
            print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.out}")
    return 0
