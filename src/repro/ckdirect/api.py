"""The CkDirect interface (paper §2, Figure 1).

Function-per-function mirror of the paper's API:

=====================  =============================================
Paper name             Here
=====================  =============================================
CkDirect_createHandle  :func:`create_handle`
CkDirect_assocLocal    :func:`assoc_local`
CkDirect_put           :func:`put`
CkDirect_ready         :func:`ready`
CkDirect_readyMark     :func:`ready_mark`
CkDirect_readyPollQ    :func:`ready_poll_q`
=====================  =============================================

CamelCase aliases with the original names are exported too.

Platform dispatch follows the paper:

* **Infiniband** — ``create_handle`` stamps the out-of-band value into
  the buffer's trailing double word, registers the memory, and inserts
  the handle into the receiving PE's *polling queue*; ``put`` issues a
  bare RDMA write; the scheduler's poll sweep detects completion by
  the sentinel changing and runs the callback inline.  ``ready`` splits
  into ``ready_mark`` (re-stamp sentinel) + ``ready_poll_q`` (resume
  polling), letting applications confine polling overhead to the phase
  that needs it (§2.1 — crucial for OpenAtom, §5.2).
* **Blue Gene/P** — ``put`` is a DCMF two-sided send whose Info header
  carries the whole receive context (two quad words); the receive-side
  completion callback invokes the user callback directly, so there is
  no polling and the ``ready`` calls have no effect (§2.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..charm.errors import PutMismatchError, PutRaceError
from ..charm.scheduler import DirectItem
from ..projections.events import CAT_CKDIRECT, CAT_FAULT
from ..util.buffers import Buffer
from .handle import (
    ChannelState,
    ChannelStateError,
    CkDirectError,
    CkDirectHandle,
    UserCallback,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..charm.chare import Chare
    from ..charm.runtime import Runtime


def _is_bgp(rt: "Runtime") -> bool:
    return rt.machine.kind == "bgp"


def _charge_if_ctx(rt: "Runtime", seconds: float) -> None:
    """Charge the current PE when called from an entry method; setup
    performed at bootstrap (host) time is off the clock, matching the
    paper's exclusion of one-time channel setup from steady state."""
    pe = rt.current_pe
    if pe is not None and seconds:
        pe.charge(seconds)


# ---------------------------------------------------------------------------
# Channel setup
# ---------------------------------------------------------------------------


def register_handle(chare: "Chare", handle: CkDirectHandle) -> CkDirectHandle:
    """Shared registration steps for a freshly built handle (also used
    by the extension channel types in :mod:`repro.ckdirect.ext`)."""
    rt = chare.rt
    handle.stamp_sentinel()
    _charge_if_ctx(rt, rt.machine.ckdirect.handle_setup)
    if not _is_bgp(rt):
        # Registers the receive memory and starts polling immediately.
        chare._pe.poll_register(handle)
    # Receiver-side registry: cross-shard puts resolve the real handle
    # by hid on the shard that created it (repro.sim.parallel).
    rt._handles[handle.hid] = handle
    rt.trace.count("ckdirect.handles_created")
    return handle


def create_handle(
    chare: "Chare",
    buffer: Buffer,
    oob: Any,
    callback: UserCallback,
    cbdata: Any = None,
    name: str = "",
) -> CkDirectHandle:
    """Receiver side: create the handle for one channel.

    Mirrors ``CkDirect_createHandle(addr, size, oob, cb, cbdata)``.
    ``buffer`` is typically a :meth:`Buffer.view` of exactly the
    location where the data is needed (a matrix row, a halo face) —
    the zero-copy property.  ``oob`` must be a value that will never
    appear as the final element of received data.
    """
    rt = chare.rt
    handle = CkDirectHandle(rt, chare._pe, buffer, oob, callback, cbdata, name)
    return register_handle(chare, handle)


def assoc_local(chare: "Chare", handle: CkDirectHandle, src_buffer: Buffer) -> None:
    """Sender side: associate a local source buffer with the handle.

    Mirrors ``CkDirect_assocLocal``.  The same local buffer may be
    associated with *different* handles (one per receiver) without
    copying — the paper's multi-destination pattern; see also
    :mod:`repro.ckdirect.ext.multicast`.
    """
    rt = chare.rt
    recv = handle.recv_buffer
    if src_buffer.nbytes != recv.nbytes:
        raise PutMismatchError(
            f"{handle.name}: source is {src_buffer.nbytes}B but the "
            f"registered receive buffer is {recv.nbytes}B"
        )
    if not src_buffer.is_virtual and not recv.is_virtual:
        # Validate the element-level contract here, at the earliest
        # point both endpoints are known, so a bad pairing fails as a
        # typed error instead of a numpy copy failure at delivery time.
        if src_buffer.array.dtype != recv.array.dtype:
            raise PutMismatchError(
                f"{handle.name}: source dtype {src_buffer.array.dtype} does "
                f"not match the receive buffer dtype {recv.array.dtype}"
            )
        if src_buffer.array.size != recv.array.size:
            raise PutMismatchError(
                f"{handle.name}: source has {src_buffer.array.size} elements "
                f"but the receive buffer has {recv.array.size}"
            )
    if handle.src_pe is not None:
        raise ChannelStateError(f"{handle.name}: assoc_local called twice")
    handle.src_pe = chare._pe
    handle.src_buffer = src_buffer
    _charge_if_ctx(rt, rt.machine.ckdirect.assoc_overhead)
    rt.trace.count("ckdirect.assocs")


# ---------------------------------------------------------------------------
# Data movement
# ---------------------------------------------------------------------------

_PUTTABLE_IB = (ChannelState.ARMED, ChannelState.MARKED)
_PUTTABLE_BGP = (ChannelState.ARMED, ChannelState.MARKED, ChannelState.CONSUMED)


def put(handle: CkDirectHandle, issue_cost: Optional[float] = None) -> None:
    """Send the associated buffer's contents down the channel.

    Mirrors ``CkDirect_put``.  Must be called in the sending chare's
    context.  Strict-mode checks enforce the paper's contract: at most
    one message in flight, and the receiver must have released the
    buffer (via its iteration-level synchronization) before the next
    put lands.
    """
    rt = handle.rt
    pe = rt.current_pe
    if handle.src_pe is None or handle.src_buffer is None:
        raise CkDirectError(f"{handle.name}: put before assoc_local")
    if pe is None:
        raise CkDirectError(f"{handle.name}: put outside a chare context")
    if pe is not handle.src_pe:
        raise CkDirectError(
            f"{handle.name}: put from PE {pe.rank}, but the channel was "
            f"associated on PE {handle.src_pe.rank}"
        )
    if handle.remote:
        # Sender-side proxy of a channel owned by another shard: the
        # receiver's re-arms are invisible here, so skip the local state
        # machine (the real handle's landing-side checks still apply)
        # and ship a snapshot of the source buffer with the put.
        _remote_put(handle, pe, issue_cost)
        return
    legal = _PUTTABLE_BGP if _is_bgp(rt) else _PUTTABLE_IB
    if handle.state not in legal:
        raise ChannelStateError(
            f"{handle.name}: put while channel is {handle.state.value} — "
            "the application-level synchronization the paper relies on "
            "has been violated (receiver has not re-armed the channel)"
        )
    if handle.state is ChannelState.CONSUMED:  # BG/P implicit re-arm
        handle.stamp_sentinel()
    handle.state = ChannelState.IN_FLIGHT
    nbytes = handle.recv_buffer.nbytes
    pe.charge(rt.machine.ckdirect.put_issue if issue_cost is None else issue_cost)
    tr = rt.tracer
    if tr is not None:
        # An instant, not a span: the issue cost is part of the
        # surrounding entry-method span, which keeps every PE track a
        # flat sequence of non-overlapping spans.
        handle.trace_put_eid = tr.instant(
            rt._trace_run, pe.rank, CAT_CKDIRECT, f"put:{handle.name}",
            pe.cursor, cause=tr.current,
            args={"bytes": nbytes, "dst_pe": handle.recv_pe.rank},
        )
    rt.trace.count("ckdirect.puts")
    rt.trace.count("ckdirect.put_bytes", nbytes)
    src_rank, dst_rank = pe.rank, handle.recv_pe.rank
    if src_rank == dst_rank:
        # Same-PE channel: a local memcpy at shared-memory speed.
        delay = rt.machine.net.shm_alpha + nbytes * rt.machine.net.shm_beta
        rt.sim.at(pe.cursor + delay, _complete, handle)
    elif rt.reliability is not None:
        _reliable_put(handle, pe.cursor)
    else:
        if rt.fabric._engine:
            # Describe the arrival for the engine's canonical rx order.
            # A real handle's endpoints always share a shard (a remote
            # sender holds a proxy instead), so this never crosses.
            rt.fabric._engine_desc = ("lput", handle)
        rt.fabric.direct_put(
            src_rank, dst_rank, nbytes, pe.cursor, lambda: _complete(handle)
        )


def _remote_put(handle: CkDirectHandle, pe, issue_cost: Optional[float]) -> None:
    """Issue a put on a cross-shard proxy handle (engine runs only).

    Charges and counts exactly as :func:`put`; the wire carries the
    handle id plus a snapshot of the source buffer, and the owning
    shard lands it through the real handle (see repro.sim.parallel).
    """
    rt = handle.rt
    nbytes = handle.recv_buffer.nbytes
    pe.charge(rt.machine.ckdirect.put_issue if issue_cost is None else issue_cost)
    tr = rt.tracer
    if tr is not None:
        handle.trace_put_eid = tr.instant(
            rt._trace_run, pe.rank, CAT_CKDIRECT, f"put:{handle.name}",
            pe.cursor, cause=tr.current,
            args={"bytes": nbytes, "dst_pe": handle.recv_pe.rank},
        )
    rt.trace.count("ckdirect.puts")
    rt.trace.count("ckdirect.put_bytes", nbytes)
    snap = handle.src_buffer.snapshot() if handle.src_buffer is not None else None
    rt.fabric._engine_desc = ("put", handle.hid, snap)
    rt.fabric.direct_put(
        pe.rank, handle.recv_pe.rank, nbytes, pe.cursor, _discarded_cb
    )


def _discarded_cb() -> None:  # pragma: no cover - never scheduled
    """Placeholder callback for transfers whose delivery is described
    via the engine descriptor (the fabric discards it)."""
    raise CkDirectError("engine-described transfer callback must not fire")


def _complete(handle: CkDirectHandle) -> None:
    """Fabric delivery callback: land data + notify the receiver."""
    rt = handle.rt
    try:
        handle.deliver()
    except PutRaceError:
        if rt.engine != "optimistic" or not rt.fabric._engine:
            raise
        # Mis-speculation artifact of the Time Warp engine: the put
        # landed into a timeline that diverged from the committed one
        # (the receiver ran ahead of an in-flight arrival, or the
        # sender's timeline is already dead), so the landing-contract
        # state is not the committed state.  Either way a straggler or
        # anti-message at or below this instant is guaranteed — the
        # divergence was *caused* by such an arrival — and the rollback
        # it forces erases this skip.  In the committed timeline the
        # race check still fires normally.
        rt.trace.count("timewarp_misspec_puts")
        return
    tr = rt.tracer
    if tr is not None:
        handle.trace_eid = tr.instant(
            rt._trace_run, handle.recv_pe.rank, CAT_CKDIRECT,
            f"put_complete:{handle.name}", rt.sim.now,
            cause=handle.trace_put_eid,
            args={"bytes": handle.recv_buffer.nbytes},
        )
    if _is_bgp(rt):
        # DCMF receive-completion callback: handler + user callback run
        # directly, around the scheduler queue.
        cost = rt.fabric.recv_handler_cost(
            handle.recv_buffer.nbytes
        ) + rt.machine.ckdirect.callback_overhead
        item = DirectItem(cost, handle.fire)
        item.trace_eid = handle.trace_eid
        handle.recv_pe.push_direct(item)
    else:
        # Infiniband: wake the receiver; its poll sweep will detect the
        # sentinel change (if the handle is in the polling queue).
        handle.recv_pe.notify_arrival()


# ---------------------------------------------------------------------------
# Reliability layer (active when the runtime carries ReliabilityParams)
# ---------------------------------------------------------------------------
#
# The paper's put is fire-and-forget: no ack, no timer, no retry —
# "unsynchronized" is the whole contribution.  When the runtime is
# built with a fault plan, puts instead run this sliding-window-of-one
# protocol, entirely as simulated-time events:
#
#   sender                               receiver
#   ------                               --------
#   put seq=n  ── direct_put ──────────► dedup (seq <= last? discard)
#   arm RTO(attempt)                     deliver / deliver_torn
#     │ timeout                          ack(n) ◄── small charm msg ──
#     ├─ attempt < max: retransmit n
#     └─ attempt = max: degrade handle, send n via charm_transport
#   ack(n): cancel RTO, put resolved
#
# A PollWatchdog (charm/scheduler.py) periodically scans unresolved
# puts: torn landings are repaired locally, lost deliveries have their
# sender timeout pulled forward, and lost *acks* for already-delivered
# puts are re-sent.  None of this code runs — and none of these handle
# fields are touched — when ``rt.reliability`` is None, so the
# disabled-faults put path is unchanged.


def _reliable_put(handle: CkDirectHandle, start: float) -> None:
    """Issue one put under the reliability protocol."""
    rt = handle.rt
    handle.put_seq += 1
    handle.attempt = 0
    handle.put_issue_time = start
    rt._note_inflight(handle)
    if handle.degraded:
        _fallback_send(handle, handle.put_seq, start)
    else:
        _send_attempt(handle, handle.put_seq, start)


def _send_attempt(handle: CkDirectHandle, seq: int, start: float) -> None:
    """One RDMA attempt for put ``seq``; arms the retransmit timeout."""
    rt = handle.rt
    rel = rt.reliability
    handle.attempt += 1
    nbytes = handle.recv_buffer.nbytes
    inj = rt.fault_injector
    # The torn-sentinel fault is CkDirect-specific (the fabric does not
    # know the trailing word is special), so it is drawn here and the
    # delivery routed through the torn-landing path.  BG/P completion
    # is callback-based, not sentinel-inferred, so it cannot tear.
    torn = inj is not None and not _is_bgp(rt) and inj.draw_torn()
    if handle.attempt > 1:
        rt.trace.count("ckdirect.retransmits")
        tr = rt.tracer
        if tr is not None:
            tr.instant(
                rt._trace_run, handle.src_pe.rank, CAT_FAULT,
                f"retransmit:{handle.name}", start,
                args={"seq": seq, "attempt": handle.attempt},
            )
    rt.fabric.direct_put(
        handle.src_pe.rank, handle.recv_pe.rank, nbytes, start,
        lambda: _reliable_deliver(handle, seq, torn),
    )
    handle.rto_event = rt.sim.at(
        start + rel.rto(handle.attempt), _on_timeout, handle, seq
    )


def _on_timeout(handle: CkDirectHandle, seq: int) -> None:
    """Retransmit timeout: try again, or give up and degrade."""
    rt = handle.rt
    handle.rto_event = None
    if handle.acked_seq >= seq or seq != handle.put_seq:
        return  # stale timer from a put already resolved/superseded
    now = rt.sim.now
    if handle.attempt >= rt.reliability.max_attempts:
        # Graceful degradation: this put — and every later one on this
        # handle — takes the two-copy Charm++ message path instead.
        handle.degraded = True
        rt.trace.count("ckdirect.degraded_handles")
        tr = rt.tracer
        if tr is not None:
            tr.instant(
                rt._trace_run, handle.src_pe.rank, CAT_FAULT,
                f"degrade:{handle.name}", now,
                args={"seq": seq, "attempts": handle.attempt},
            )
        _fallback_send(handle, seq, now)
    else:
        _send_attempt(handle, seq, now)


def _fallback_send(handle: CkDirectHandle, seq: int, start: float) -> None:
    """Ship put ``seq`` down the two-copy ``charm_transport`` path.

    The built-in fault profiles leave the ``charm`` scope fault-free
    (there is no retransmission below this layer), so a fallback put
    always delivers; a custom plan that faults ``charm`` deliberately
    gives up that guarantee.
    """
    rt = handle.rt
    rt.trace.count("ckdirect.fallback_puts")
    rt.fabric.charm_transport(
        handle.src_pe.rank, handle.recv_pe.rank, handle.recv_buffer.nbytes,
        start, lambda: _reliable_deliver(handle, seq, False),
    )


def _reliable_deliver(handle: CkDirectHandle, seq: int, torn: bool) -> None:
    """Fabric delivery callback on the reliable path."""
    rt = handle.rt
    if seq <= handle.last_delivered_seq:
        # A duplicate, or a delayed original overtaken by its own
        # retransmit: the payload must NOT land (the buffer may already
        # belong to a later phase), but the sender still needs the ack.
        rt.trace.count("ckdirect.dup_discards")
        _send_ack(handle, seq)
        return
    if torn:
        handle.deliver_torn()
        # No ack, no notify: to both endpoints the put looks lost until
        # a retransmit or the watchdog recovers it.
        return
    handle.deliver()
    handle.last_delivered_seq = seq
    tr = rt.tracer
    if tr is not None:
        handle.trace_eid = tr.instant(
            rt._trace_run, handle.recv_pe.rank, CAT_CKDIRECT,
            f"put_complete:{handle.name}", rt.sim.now,
            cause=handle.trace_put_eid,
            args={"bytes": handle.recv_buffer.nbytes, "seq": seq},
        )
    _send_ack(handle, seq)
    _notify_arrival(handle)


def _notify_arrival(handle: CkDirectHandle) -> None:
    """Wake the receiver after a reliable delivery (mirrors _complete)."""
    rt = handle.rt
    if _is_bgp(rt):
        cost = rt.fabric.recv_handler_cost(
            handle.recv_buffer.nbytes
        ) + rt.machine.ckdirect.callback_overhead
        item = DirectItem(cost, handle.fire)
        item.trace_eid = handle.trace_eid
        handle.recv_pe.push_direct(item)
    else:
        handle.recv_pe.notify_arrival()


def _send_ack(handle: CkDirectHandle, seq: int) -> None:
    """Receiver -> sender completion ack (a small control message)."""
    rt = handle.rt
    rt.trace.count("ckdirect.acks_sent")
    inj = rt.fault_injector
    src, dst = handle.recv_pe.rank, handle.src_pe.rank
    now = rt.sim.now
    if inj is not None:
        with inj.scoped("ack"):
            rt.fabric.charm_transport(
                src, dst, rt.reliability.ack_bytes, now,
                lambda: _on_ack(handle, seq),
            )
    else:
        rt.fabric.charm_transport(
            src, dst, rt.reliability.ack_bytes, now,
            lambda: _on_ack(handle, seq),
        )


def _on_ack(handle: CkDirectHandle, seq: int) -> None:
    """Sender side: put ``seq`` is acknowledged."""
    rt = handle.rt
    if seq <= handle.acked_seq:
        return  # duplicate ack (receiver re-acks every duplicate)
    handle.acked_seq = seq
    rt.trace.count("ckdirect.acks_received")
    if seq >= handle.put_seq:
        # The newest put resolved: disarm its timer.  (An ack for an
        # older put must leave the current put's timer alone.)
        ev = handle.rto_event
        if ev is not None:
            ev.cancel()
            handle.rto_event = None
        rt._note_acked(handle)


def _watchdog_recover(handle: CkDirectHandle, seq: int) -> None:
    """Escalate one stalled put (called by the PollWatchdog).

    Torn landings are repaired locally — the retransmit protocol's
    control header carries the payload's true trailing word, so the
    watchdog can finish the delivery without moving data.  A put with
    no landing at all has its sender's pending timeout pulled forward,
    so recovery does not wait out a long backoff.
    """
    rt = handle.rt
    rt.trace.count("ckdirect.watchdog_fires")
    tr = rt.tracer
    if tr is not None:
        tr.instant(
            rt._trace_run, handle.recv_pe.rank, CAT_FAULT,
            f"watchdog:{handle.name}", rt.sim.now,
            args={"seq": seq, "torn": handle.torn_landed},
        )
    if handle.torn_landed:
        handle.recover_torn()
        handle.last_delivered_seq = seq
        rt.trace.count("ckdirect.torn_recoveries")
        _send_ack(handle, seq)
        _notify_arrival(handle)
        return
    ev = handle.rto_event
    if ev is not None:
        ev.cancel()
        _on_timeout(handle, seq)


# ---------------------------------------------------------------------------
# Re-arming
# ---------------------------------------------------------------------------


def ready_mark(handle: CkDirectHandle) -> None:
    """Re-stamp the out-of-band pattern: the receiver is done with the
    buffer.  Mirrors ``CkDirect_readyMark`` (no effect on BG/P)."""
    rt = handle.rt
    if _is_bgp(rt):
        if handle.state is ChannelState.CONSUMED:
            handle.stamp_sentinel()
            handle.state = ChannelState.ARMED
        return
    if handle.state is not ChannelState.CONSUMED:
        raise ChannelStateError(
            f"{handle.name}: ready_mark while {handle.state.value} — the "
            "buffer has not been consumed (or was already re-armed)"
        )
    handle.stamp_sentinel()
    handle.state = ChannelState.MARKED
    rt.trace.count("ckdirect.ready_marks")


def ready_poll_q(handle: CkDirectHandle) -> None:
    """Resume polling this handle.  Mirrors ``CkDirect_readyPollQ``.

    Idempotent; if data already arrived while the handle was merely
    MARKED, the next sweep detects it immediately (no message is lost
    by deferring this call — §2.1).
    """
    rt = handle.rt
    if _is_bgp(rt):
        return
    if handle.state is ChannelState.CONSUMED:
        raise ChannelStateError(
            f"{handle.name}: ready_poll_q before ready_mark — the sentinel "
            "is still clear, so arrival could never be detected"
        )
    handle.recv_pe.poll_register(handle)
    rt.trace.count("ckdirect.ready_polls")


def ready(handle: CkDirectHandle) -> None:
    """``ready_mark`` + ``ready_poll_q`` in one call (``CkDirect_ready``).

    Note this performs **no synchronization** with the sender — it only
    tells the local RTS to expect new data (paper §2)."""
    ready_mark(handle)
    ready_poll_q(handle)


# ---------------------------------------------------------------------------
# Paper-style aliases
# ---------------------------------------------------------------------------

CkDirect_createHandle = create_handle
CkDirect_assocLocal = assoc_local
CkDirect_put = put
CkDirect_ready = ready
CkDirect_readyMark = ready_mark
CkDirect_readyPollQ = ready_poll_q
