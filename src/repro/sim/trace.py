"""Lightweight tracing and statistics collection.

The runtime and network models emit *trace points* (named counters and
timestamped samples) through a :class:`Trace` object.  Tracing is
always structurally on but cheap: counters are plain dict increments,
and sample recording can be disabled wholesale for large performance
runs.

This module also provides :class:`RunningStats`, a numerically stable
single-pass mean/variance accumulator (Welford), used for per-category
timing summaries without storing every sample.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Optional


class RunningStats:
    """Welford online mean/variance with min/max tracking."""

    __slots__ = ("n", "_mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, x: float) -> None:
        """Fold one sample into the accumulator."""
        self.n += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        """Sample mean (0 when empty)."""
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 with fewer than two samples)."""
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> None:
        """Chan et al. parallel merge of two accumulators."""
        if other.n == 0:
            return
        if self.n == 0:
            self.n = other.n
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            return
        delta = other._mean - self._mean
        n = self.n + other.n
        self._m2 += other._m2 + delta * delta * self.n * other.n / n
        self._mean += delta * other.n / n
        self.n = n
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunningStats(n={self.n}, mean={self.mean:.3g}, stdev={self.stdev:.3g})"


@dataclass
class Sample:
    """A timestamped trace sample."""

    time: float
    value: float


class Trace:
    """Named counters, per-category stats, and optional raw samples.

    Parameters
    ----------
    record_samples:
        When False (the default for large performance runs), ``sample``
        still updates the per-category :class:`RunningStats` but does
        not retain the raw time series.
    now_fn:
        Clock callable used to stamp samples whose caller passes no
        explicit time.  The owning runtime wires its simulator clock in
        here (``now_fn=lambda: self.sim.now``) so retained samples carry
        simulated time rather than a meaningless 0.0.
    """

    def __init__(
        self,
        record_samples: bool = False,
        now_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.record_samples = record_samples
        self.now_fn = now_fn
        self.counters: dict[str, int] = defaultdict(int)
        self.stats: dict[str, RunningStats] = defaultdict(RunningStats)
        self.samples: dict[str, list[Sample]] = defaultdict(list)

    def count(self, name: str, n: int = 1) -> None:
        """Increment a named counter."""
        self.counters[name] += n

    def sample(self, name: str, value: float, time: Optional[float] = None) -> None:
        """Record one value into a named statistic.  Retained samples
        are stamped with ``time``, falling back to the attached clock."""
        self.stats[name].add(value)
        if self.record_samples:
            if time is None:
                time = self.now_fn() if self.now_fn is not None else 0.0
            self.samples[name].append(Sample(time, value))

    def counter(self, name: str) -> int:
        """Current value of a named counter (0 if never counted)."""
        return self.counters.get(name, 0)

    def stat(self, name: str) -> RunningStats:
        """The RunningStats accumulator for a name."""
        return self.stats[name]

    def summary(self) -> dict[str, dict]:
        """A plain-dict snapshot suitable for printing or JSON dumps."""
        out: dict[str, dict] = {"counters": dict(self.counters), "stats": {}}
        for name, st in self.stats.items():
            out["stats"][name] = {
                "n": st.n,
                "mean": st.mean,
                "stdev": st.stdev,
                "min": st.min if st.n else None,
                "max": st.max if st.n else None,
                "total": st.total,
            }
        return out

    def reset(self) -> None:
        """Clear all counters, stats, and samples."""
        self.counters.clear()
        self.stats.clear()
        self.samples.clear()

    # Time Warp checkpoint/restore (see repro.sim.timewarp).  All
    # lookups are by name, so restoring fresh accumulator objects (not
    # the originals) is safe here, unlike the identity-preserving
    # snapshots the charm layer needs.

    def tw_checkpoint(self) -> tuple:
        return (
            dict(self.counters),
            {k: (s.n, s._mean, s._m2, s.min, s.max, s.total)
             for k, s in self.stats.items()},
            {k: list(v) for k, v in self.samples.items()},
        )

    def tw_restore(self, snap: tuple) -> None:
        counters, stats, samples = snap
        self.counters.clear()
        self.counters.update(counters)
        self.stats.clear()
        for k, (n, mean, m2, mn, mx, total) in stats.items():
            s = RunningStats()
            s.n, s._mean, s._m2, s.min, s.max, s.total = n, mean, m2, mn, mx, total
            self.stats[k] = s
        self.samples.clear()
        for k, v in samples.items():
            self.samples[k] = list(v)
