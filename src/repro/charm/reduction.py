"""Reductions and barriers over chare arrays.

Implemented the way the real runtime does it — with actual messages,
so collectives pay realistic costs inside the simulation:

1. every element contributes on its home PE; when the last local
   element of an epoch arrives, the PE-local partial is complete;
2. partials flow *up a binomial tree* over the array's home PEs as
   internal runtime messages (small control payloads through the real
   fabric + scheduler);
3. the root fires the :class:`~repro.charm.callback.CkCallback`
   (a broadcast callback then flows back *down* the same tree).

A reduction epoch is identified by the per-element contribution
sequence number, so arrays can have several reductions in flight and
elements may contribute to epoch *n+1* before stragglers finish *n*.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Set, Tuple

import numpy as np

from .callback import CkCallback
from .errors import ReductionError

if TYPE_CHECKING:  # pragma: no cover
    from .array import ChareArray
    from .pe import PE
    from .runtime import Runtime

#: Control bytes per reduction / broadcast stage message (epoch ids,
#: array id, contribution counts — the fixed part of the wire format).
CONTROL_BYTES = 48

REDUCERS: Dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
    "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
    "land": lambda a, b: bool(a) and bool(b),
    "lor": lambda a, b: bool(a) or bool(b),
}


def value_bytes(value: Any) -> int:
    """Wire bytes a reduction value contributes."""
    if value is None:
        return 0
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    return 8


class _Node:
    """Per-(array, epoch, PE) reduction state."""

    __slots__ = (
        "local_got",
        "value",
        "have_value",
        "children_pending",
        "reducer",
        "callback",
        "closed",
    )

    def __init__(self, children: Set[int]) -> None:
        self.local_got = 0
        self.value: Any = None
        self.have_value = False
        self.children_pending = set(children)
        self.reducer: Optional[str] = None
        self.callback: Optional[CkCallback] = None
        self.closed = False


class ReductionManager:
    """Coordinates all reductions in one runtime."""

    def __init__(self, rt: "Runtime") -> None:
        self.rt = rt
        self._nodes: Dict[Tuple[int, int, int], _Node] = {}

    # ------------------------------------------------------------------
    # Time Warp checkpoint/restore (see repro.sim.timewarp)
    # ------------------------------------------------------------------

    def tw_checkpoint(self) -> dict:
        """Snapshot per-node fields, keeping node objects by identity —
        pending partial-delivery events may reference them."""
        from .chare import _snap_value

        return {
            key: (
                node,
                node.local_got,
                _snap_value(node.value),
                node.have_value,
                set(node.children_pending),
                node.reducer,
                node.callback,
                node.closed,
            )
            for key, node in self._nodes.items()
        }

    def tw_restore(self, snap: dict) -> None:
        from .chare import _restore_value

        self._nodes.clear()
        for key, (node, got, value, have, pending, reducer, cb, closed) in snap.items():
            node.local_got = got
            node.value = _restore_value(value)
            node.have_value = have
            node.children_pending = set(pending)
            node.reducer = reducer
            node.callback = cb
            node.closed = closed
            self._nodes[key] = node

    # ------------------------------------------------------------------

    def _node(self, array: "ChareArray", seq: int, pe_rank: int) -> _Node:
        key = (array.id, seq, pe_rank)
        node = self._nodes.get(key)
        if node is None:
            node = _Node(set(array.tree_children(pe_rank)))
            self._nodes[key] = node
        return node

    def _merge(self, node: _Node, value: Any, reducer: Optional[str]) -> None:
        if reducer is None:
            if value is not None:
                raise ReductionError("barrier contribution must carry no value")
            return
        if reducer not in REDUCERS:
            raise ReductionError(
                f"unknown reducer {reducer!r}; expected one of {sorted(REDUCERS)}"
            )
        if not node.have_value:
            node.value = value
            node.have_value = True
        else:
            node.value = REDUCERS[reducer](node.value, value)

    def _check_consistency(
        self, node: _Node, reducer: Optional[str], callback: Optional[CkCallback]
    ) -> None:
        if node.reducer is not None and reducer is not None and node.reducer != reducer:
            raise ReductionError(
                f"mixed reducers in one epoch: {node.reducer!r} vs {reducer!r}"
            )
        if reducer is not None:
            node.reducer = reducer
        if callback is not None:
            node.callback = callback

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def contribute(
        self,
        array: "ChareArray",
        pe: "PE",
        seq: int,
        value: Any,
        reducer: Optional[str],
        callback: Optional[CkCallback],
    ) -> None:
        """Record one element's contribution to an epoch."""
        node = self._node(array, seq, pe.rank)
        if node.closed:
            raise ReductionError(
                f"late contribution to closed epoch {seq} on PE {pe.rank}"
            )
        self._check_consistency(node, reducer, callback)
        self._merge(node, value, reducer)
        node.local_got += 1
        local = array.local_count(pe.rank)
        if node.local_got > local:
            raise ReductionError(
                f"PE {pe.rank} got {node.local_got} contributions for epoch "
                f"{seq} but hosts only {local} elements"
            )
        self._maybe_complete(array, seq, pe.rank)

    def receive_partial(
        self, array_id: int, seq: int, child_pe: int, value: Any, reducer: Optional[str]
    ) -> None:
        """An up-tree partial arrived at the current PE's agent."""
        rt = self.rt
        pe = rt.current_pe
        assert pe is not None, "partials are delivered in a PE context"
        array = rt.collective(array_id)
        node = self._node(array, seq, pe.rank)
        self._check_consistency(node, reducer, None)
        if child_pe not in node.children_pending:
            raise ReductionError(
                f"unexpected partial from PE {child_pe} for epoch {seq}"
            )
        node.children_pending.discard(child_pe)
        if reducer is not None:
            self._merge(node, value, reducer)
        self._maybe_complete(array, seq, pe.rank)

    # ------------------------------------------------------------------

    def _maybe_complete(self, array: "ChareArray", seq: int, pe_rank: int) -> None:
        node = self._nodes[(array.id, seq, pe_rank)]
        if node.closed:
            return
        if node.local_got < array.local_count(pe_rank) or node.children_pending:
            return
        node.closed = True
        parent = array.tree_parent(pe_rank)
        rt = self.rt
        if parent is None:
            # Root: fire the callback with the fully reduced value.
            if node.callback is None:
                raise ReductionError(
                    f"reduction epoch {seq} on array {array.id} completed "
                    "without any contributor supplying a callback"
                )
            result = node.value if node.reducer is not None else None
            node.callback.invoke(rt, result)
        else:
            rt.send(
                rt.agents,
                (parent,),
                "_reduction_partial",
                (array.id, seq, pe_rank, node.value, node.reducer),
                internal=True,
                nbytes_override=CONTROL_BYTES + value_bytes(node.value),
            )
        del self._nodes[(array.id, seq, pe_rank)]
