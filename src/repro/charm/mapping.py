"""Chare-array element to PE mappings.

The runtime maps virtual processors (chares) onto physical PEs; the
choice affects load balance and communication locality.  The paper's
experiments use straightforward block placement with a virtualization
ratio (chares per PE) of 8 for the stencil runs.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from .errors import MappingError


def linear_index(index: Tuple[int, ...], dims: Tuple[int, ...]) -> int:
    """Row-major linearization of a multidimensional chare index."""
    if len(index) != len(dims):
        raise MappingError(f"index {index} does not match dims {dims}")
    for i, d in zip(index, dims):
        if not (0 <= i < d):
            raise MappingError(f"index {index} out of bounds for dims {dims}")
    return int(np.ravel_multi_index(index, dims))


class Mapping:
    """Base mapping: assigns each element index to a home PE."""

    def pe_for(self, index: Tuple[int, ...], dims: Tuple[int, ...], n_pes: int) -> int:
        """Home PE for an element index under this mapping."""
        raise NotImplementedError


class BlockMap(Mapping):
    """Contiguous blocks of linearized indices per PE (Charm++ default).

    With ``total = k * n_pes`` elements, PE *p* hosts linear indices
    ``[p*k, (p+1)*k)`` — consecutive chares share a PE, which for
    row-major stencil decompositions keeps neighbours local.
    """

    def pe_for(self, index, dims, n_pes):
        """Home PE for an element index under this mapping."""
        total = int(np.prod(dims))
        return linear_index(index, dims) * n_pes // total


class RoundRobinMap(Mapping):
    """Linear index modulo PE count — maximal scatter."""

    def pe_for(self, index, dims, n_pes):
        """Home PE for an element index under this mapping."""
        return linear_index(index, dims) % n_pes


class CustomMap(Mapping):
    """Wrap a user function ``(index, dims, n_pes) -> pe``."""

    def __init__(self, fn: Callable[[Tuple[int, ...], Tuple[int, ...], int], int]) -> None:
        self.fn = fn

    def pe_for(self, index, dims, n_pes):
        """Home PE for an element index under this mapping."""
        pe = int(self.fn(index, dims, n_pes))
        if not (0 <= pe < n_pes):
            raise MappingError(f"custom map produced PE {pe} outside [0, {n_pes})")
        return pe
