"""Command-line interface: ``python -m repro <artifact> [options]``.

Regenerates individual tables/figures/ablations of the paper from the
terminal, without writing a driver script::

    python -m repro list
    python -m repro table1
    python -m repro fig2a --pes 32 64 128 256
    python -m repro fig3 --machine Surveyor --full-scale
    python -m repro pingpong --machine Abe --stack ckdirect --size 30000
    python -m repro ablations
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .bench import (
    run_backward_path_ablation,
    run_fig2a,
    run_fig2b,
    run_fig3,
    run_fig4,
    run_fig5,
    run_mpi_sync_ablation,
    run_polling_ablation,
    run_protocol_ablation,
    run_table1,
    run_table2,
    run_vr_ablation,
)
from .network.params import MACHINES

ARTIFACTS = {
    "table1": "Table 1 — pingpong RTT, Infiniband (five stacks)",
    "table2": "Table 2 — pingpong RTT, Blue Gene/P (four stacks)",
    "fig2a": "Figure 2(a) — stencil improvement, Infiniband",
    "fig2b": "Figure 2(b) — stencil improvement, Blue Gene/P",
    "fig3": "Figure 3 — matmul scaling (pick --machine)",
    "fig4": "Figure 4 — OpenAtom on Abe (full + PC-only)",
    "fig5": "Figure 5 — OpenAtom on Blue Gene/P (full + PC-only)",
    "ablations": "A1 polling, A2 protocols, A3 MPI sync, A4 virtualization, A5 backward path",
    "pingpong": "single pingpong measurement (pick stack/size/machine)",
    "list": "list the available artifacts",
}


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts of the CkDirect paper (ICPP 2009) "
                    "on simulated Infiniband / Blue Gene/P machines.",
    )
    p.add_argument("artifact", choices=sorted(ARTIFACTS), help="what to run")
    p.add_argument("--machine", default="Surveyor", choices=sorted(MACHINES),
                   help="machine preset for fig3 / pingpong")
    p.add_argument("--pes", type=int, nargs="+", default=None,
                   help="PE counts for the figure sweeps")
    p.add_argument("--size", type=int, default=30_000,
                   help="message size in bytes for `pingpong`")
    p.add_argument("--stack", default="ckdirect",
                   choices=["charm", "ckdirect", "mpi", "mpi-put"],
                   help="communication stack for `pingpong`")
    p.add_argument("--iterations", type=int, default=100,
                   help="averaging iterations for pingpong/tables")
    p.add_argument("--full-scale", action="store_true",
                   help="run the paper's full PE ranges (slow)")
    return p


def _run_pingpong(args) -> str:
    from .apps.pingpong import (
        charm_pingpong,
        ckdirect_pingpong,
        mpi_pingpong,
        mpi_put_pingpong,
    )

    machine = MACHINES[args.machine]
    fn = {
        "charm": charm_pingpong,
        "ckdirect": ckdirect_pingpong,
        "mpi": mpi_pingpong,
        "mpi-put": mpi_put_pingpong,
    }[args.stack]
    r = fn(machine, args.size, args.iterations)
    return (
        f"{r.stack} pingpong on {r.machine}: {r.nbytes}B -> "
        f"{r.rtt_us:.3f} us round trip ({r.iterations} iterations)"
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _parser().parse_args(argv)
    if args.full_scale:
        os.environ["REPRO_FULL_SCALE"] = "1"

    if args.artifact == "list":
        width = max(len(k) for k in ARTIFACTS)
        for k in sorted(ARTIFACTS):
            print(f"{k:<{width}}  {ARTIFACTS[k]}")
        return 0

    if args.artifact == "pingpong":
        print(_run_pingpong(args))
        return 0

    if args.artifact == "table1":
        print(run_table1(iterations=args.iterations)["report"])
    elif args.artifact == "table2":
        print(run_table2(iterations=args.iterations)["report"])
    elif args.artifact == "fig2a":
        print(run_fig2a(pes=args.pes)["report"])
    elif args.artifact == "fig2b":
        print(run_fig2b(pes=args.pes)["report"])
    elif args.artifact == "fig3":
        print(run_fig3(MACHINES[args.machine], pes=args.pes)["report"])
    elif args.artifact == "fig4":
        print(run_fig4(pes=args.pes)["report"])
    elif args.artifact == "fig5":
        print(run_fig5(pes=args.pes)["report"])
    elif args.artifact == "ablations":
        for runner in (run_polling_ablation, run_protocol_ablation,
                       run_mpi_sync_ablation, run_vr_ablation,
                       run_backward_path_ablation):
            print(runner()["report"])
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
