"""Unit tests for array broadcasts and internal-message priority."""

import pytest

from repro import ABE, Chare, CkCallback, Runtime
from repro.charm import CustomMap, Payload


class Receiver(Chare):
    def __init__(self):
        self.got = []

    def ping(self, *args):
        self.got.append(args)

    def slow(self):
        self.charge(2e-3)


def test_bcast_reaches_every_element():
    rt = Runtime(ABE, n_pes=4)
    arr = rt.create_array(Receiver, dims=(3, 3))
    arr.proxy.bcast("ping", 7)
    rt.run()
    for e in arr.elements.values():
        assert e.got == [(7,)]


def test_bcast_from_chare_context():
    class Kicker(Chare):
        def kick(self, target_proxy):
            target_proxy.bcast("ping", "x")

    rt = Runtime(ABE, n_pes=4)
    arr = rt.create_array(Receiver, dims=(4,))
    k = rt.create_array(Kicker, dims=(1,))
    k.proxy[0].kick(arr.proxy)
    rt.run()
    for e in arr.elements.values():
        assert e.got == [("x",)]


def test_bcast_payload_packed_once():
    import numpy as np

    rt = Runtime(ABE, n_pes=4)
    arr = rt.create_array(Receiver, dims=(8,))

    class Kicker(Chare):
        def kick(self, target_proxy):
            target_proxy.bcast("ping", np.zeros(100))

    k = rt.create_array(Kicker, dims=(1,))
    k.proxy[0].kick(arr.proxy)
    rt.run()
    # exactly one marshalling copy despite 8 deliveries
    assert rt.trace.counter("charm.pack_copies") == 1


def test_bcast_on_sparse_array():
    rt = Runtime(ABE, n_pes=8)
    arr = rt.create_array(
        Receiver, dims=(3,),
        mapping=CustomMap(lambda idx, dims, n: [2, 4, 6][idx[0]]),
    )
    arr.proxy.bcast("ping")
    rt.run()
    assert all(e.got == [()] for e in arr.elements.values())


def test_internal_messages_preempt_long_entries():
    """A reduction release must not staircase behind queued application
    entries on intermediate tree PEs: with a long entry queued on every
    PE, a barrier across the array still completes in ~tree time, not
    ~tree_depth x entry time."""
    n_pes = 16
    rt = Runtime(ABE, n_pes=n_pes)
    workers = rt.create_array(Receiver, dims=(n_pes,))
    contrib = rt.create_array(ContribOnce, dims=(n_pes,))
    t = []
    # queue long entries everywhere, then run the barrier
    workers.proxy.bcast("slow")
    contrib.proxy.bcast("go", CkCallback.host(lambda v: t.append(rt.now)))
    rt.run()
    # one 2ms entry may block each PE once, but the tree must not pay
    # 2ms per stage: total well under depth(4) * 2ms + slack
    assert t[0] < 3 * 2e-3, f"barrier staircased: {t[0] * 1e3:.2f}ms"


class ContribOnce(Chare):
    def go(self, cb):
        self.contribute(callback=cb)
