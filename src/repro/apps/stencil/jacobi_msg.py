"""Jacobi with default Charm++ messages (the paper's MSG version)."""

from __future__ import annotations

from ...charm import Payload
from .base import JacobiBase
from .decomp import opposite


class JacobiMsg(JacobiBase):
    """Halo exchange via entry-method messages.

    Each iteration every chare sends its (packed) boundary faces as
    messages; the receiving entry method uses the data in place — no
    receiver-side copy is charged, mirroring the paper's restructured
    fair comparison — and computes once all expected faces arrived.
    """

    def setup(self) -> None:
        # Nothing to wire; join the setup barrier.
        """Entry method: wire channels / join the setup barrier."""
        self.contribute(callback=self.monitor.callback())

    def resume(self) -> None:
        """Entry method: run one iteration's send phase."""
        if self.it >= self.iterations:
            return
        for d, nb in self.neighbors:
            buf = self._pack(d)
            payload = (
                Payload(data=buf.array, pack=False)
                if not buf.is_virtual
                else Payload.virtual(buf.nbytes)
            )
            # the face arrives at the neighbour from direction
            # opposite(d) in its own frame
            self.proxy[nb].face(payload, opposite(d))
        self.sent_this_iter = True
        self._maybe_advance()

    def face(self, payload: Payload, direction) -> None:
        """Entry method: receive one halo face."""
        direction = tuple(direction)
        if self.validate and payload.data is not None:
            # Operate on the message in place: write-through into the
            # ghost layer *is* the computation's read location; the
            # simulation performs it for correctness but charges
            # nothing (paper §4.1: receiver copy avoided in both
            # versions by restructuring the compute).
            self.u[self._ghost_slice(direction)] = payload.data.reshape(
                self._face_shape(direction)
            )
        self.got_faces += 1
        self._maybe_advance()
