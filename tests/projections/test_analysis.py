"""Tests for the analysis passes on hand-built logs."""

import pytest

from repro.projections.analysis import (
    binned_profile,
    category_totals,
    critical_path,
    critical_path_summary,
    name_totals,
    spans_by_track,
    utilization_profile,
)
from repro.projections.events import CAT_ENTRY, CAT_IDLE, CAT_MSG, CAT_SCHED
from repro.projections.eventlog import EventLog


def _sample_log() -> EventLog:
    """Two PEs: pe0 does entry[0,2], idle[2,3], entry[3,4]; pe1 one
    entry[1,2] caused by a send from pe0's first entry."""
    log = EventLog()
    log.new_run("test", n_pes=2)
    e0 = log.span(0, 0, CAT_ENTRY, "go", 0.0, 2.0)
    send = log.instant(0, 0, CAT_MSG, "send:recv", 1.0, cause=e0)
    log.span(0, 0, CAT_IDLE, "idle", 2.0, 3.0)
    log.span(0, 0, CAT_ENTRY, "tick", 3.0, 4.0)
    d1 = log.span(0, 1, CAT_SCHED, "dispatch:recv", 1.4, 1.5, cause=send)
    log.span(0, 1, CAT_ENTRY, "recv", 1.5, 2.0, cause=d1)
    return log


def test_spans_by_track_sorted():
    log = _sample_log()
    tracks = spans_by_track(log)
    assert set(tracks) == {(0, 0), (0, 1)}
    t0s = [e.t0 for e in tracks[(0, 0)]]
    assert t0s == sorted(t0s)
    # instants are excluded
    assert all(e.is_span for spans in tracks.values() for e in spans)


def test_utilization_profile():
    prof = utilization_profile(_sample_log())
    pe0 = prof[(0, 0)]
    assert pe0["busy"] == pytest.approx(3.0)
    assert pe0["idle"] == pytest.approx(1.0)
    assert pe0["extent"] == pytest.approx(4.0)
    assert pe0["utilization"] == pytest.approx(0.75)
    pe1 = prof[(0, 1)]
    assert pe1["busy"] == pytest.approx(0.6)
    assert pe1["idle"] == 0.0


def test_category_and_name_totals():
    log = _sample_log()
    cats = category_totals(log)
    assert cats[CAT_ENTRY]["events"] == 3
    assert cats[CAT_ENTRY]["time"] == pytest.approx(3.5)
    assert cats[CAT_MSG]["events"] == 1
    assert cats[CAT_MSG]["time"] == 0.0
    names = name_totals(log)
    # qualified names aggregate under the prefix key
    assert names["send"]["events"] == 1
    assert names["dispatch"]["events"] == 1


def test_binned_profile_conserves_time():
    log = _sample_log()
    edges, hist = binned_profile(log, nbins=8)
    assert len(edges) == 9
    cats = category_totals(log)
    for cat, bins in hist.items():
        assert sum(bins) == pytest.approx(cats[cat]["time"])
    with pytest.raises(ValueError):
        binned_profile(log, nbins=0)


def test_binned_profile_empty_log():
    edges, hist = binned_profile(EventLog(), nbins=4)
    assert hist == {}


def test_critical_path_walks_causes():
    log = _sample_log()
    chain = critical_path(log)
    # latest-finishing event is pe0's tick[3,4]; it has no cause, so
    # the chain is just itself
    assert [e.name for e in chain] == ["tick"]


def test_critical_path_chain_and_summary():
    log = EventLog()
    log.new_run("test", n_pes=2)
    a = log.span(0, 0, CAT_ENTRY, "go", 0.0, 1.0)
    s = log.instant(0, 0, CAT_MSG, "send:work", 0.5, cause=a)
    log.span(0, 1, CAT_ENTRY, "work", 2.0, 5.0, cause=s)
    chain = critical_path(log)
    assert [e.name for e in chain] == ["go", "send:work", "work"]
    cp = critical_path_summary(log)
    assert cp["events"] == 3
    assert cp["extent"] == pytest.approx(5.0)
    assert cp["work"] == pytest.approx(4.0)
    # gaps: go ends 1.0 -> send 0.5 (negative, ignored); send 0.5 -> work 2.0
    assert cp["wait"] == pytest.approx(1.5)
    assert cp["by_category"][CAT_ENTRY] == pytest.approx(4.0)


def test_critical_path_cycle_terminates():
    log = EventLog()
    a = log.next_id()
    b = log.span(0, 0, CAT_ENTRY, "b", 1.0, 2.0, cause=a)
    log.span(0, 0, CAT_ENTRY, "a", 0.0, 1.0, cause=b, eid=a)
    chain = critical_path(log)
    assert len(chain) == 2  # the seen-set breaks the cycle


def test_empty_log_summaries():
    assert critical_path(EventLog()) == []
    cp = critical_path_summary(EventLog())
    assert cp["events"] == 0 and cp["chain"] == []
    assert utilization_profile(EventLog()) == {}
