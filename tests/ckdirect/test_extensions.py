"""Unit tests for the §6 future-work extensions: multicast channels,
strided puts, accumulating channels."""

import numpy as np
import pytest

from repro import ABE, Buffer, Chare, Runtime
from repro import ckdirect as ckd
from repro.charm import CustomMap
from repro.ckdirect.ext import (
    ACCUMULATE_OPS,
    AccumulateHandle,
    MulticastChannel,
    StridedChannel,
    create_accumulate_handle,
    create_strided_channel,
    segment_count,
)

from tests.ckdirect.channel_helpers import CROSS, Endpoint


# ---------------------------------------------------------------------------
# segment_count (pure layout math)
# ---------------------------------------------------------------------------


def test_segment_count_contiguous():
    assert segment_count(np.zeros(10)) == 1
    assert segment_count(np.zeros((4, 5))) == 1
    assert segment_count(np.zeros((2, 3, 4))) == 1


def test_segment_count_column():
    m = np.zeros((6, 4))
    assert segment_count(m[:, 0]) == 6


def test_segment_count_inner_plane():
    c = np.zeros((4, 5, 6))
    assert segment_count(c[:, :, 0]) == 20  # every element isolated
    assert segment_count(c[0, :, :]) == 1  # contiguous plane
    assert segment_count(c[:, 0, :]) == 4  # one run per x


def test_segment_count_squeezes_unit_dims():
    c = np.zeros((4, 1, 6))
    assert segment_count(c[:, 0, :]) == 1


def test_segment_count_empty_and_scalar():
    assert segment_count(np.zeros(())) == 1
    assert segment_count(np.zeros(0)) == 1


# ---------------------------------------------------------------------------
# Multicast
# ---------------------------------------------------------------------------


def test_multicast_fans_out_one_buffer():
    rt = Runtime(ABE, n_pes=4 * ABE.cores_per_node)
    arr = rt.create_array(
        Endpoint, dims=(4,),
        mapping=CustomMap(lambda idx, dims, n: idx[0] * ABE.cores_per_node),
    )
    sender = arr.element(0)

    class Caster(Chare):
        pass

    mcast = MulticastChannel(sender, sender.send_buf)
    for i in (1, 2, 3):
        mcast.attach(arr.element(i).make_handle())
    assert mcast.fanout == 3

    class Putter(Endpoint):
        pass

    # drive put_all from the sender's context
    sender.__class__ = type("Ep2", (Endpoint,), {
        "cast": lambda self: mcast.put_all()
    })
    arr.proxy[0].cast()
    rt.run()
    for i in (1, 2, 3):
        assert np.array_equal(arr.element(i).recv_arr, sender.send_arr)


def test_multicast_requires_receivers():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Endpoint, dims=(1,))
    mcast = MulticastChannel(arr.element(0), arr.element(0).send_buf)

    class _E(Endpoint):
        def cast(self):
            mcast.put_all()

    arr.element(0).__class__ = _E
    arr.proxy[0].cast()
    with pytest.raises(ckd.CkDirectError, match="no receivers"):
        rt.run()


def test_multicast_issue_discount():
    """put_all must cost less sender time than independent puts."""
    from repro.ckdirect.ext.multicast import REPEAT_ISSUE_FACTOR

    assert 0.0 < REPEAT_ISSUE_FACTOR < 1.0


# ---------------------------------------------------------------------------
# Strided
# ---------------------------------------------------------------------------


def test_strided_put_lands_in_column():
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)

    class ColRecv(Endpoint):
        def __init__(self):
            super().__init__()
            self.matrix = np.zeros((8, 3))
            self.chan = None

        def make_strided(self):
            self.chan = create_strided_channel(
                self, Buffer(array=self.matrix[:, 2]), -1.0, self.on_data
            )
            return self.chan

    arr = rt.create_array(ColRecv, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    chan = recv.make_strided()
    assert chan.segments == 8
    ckd.assoc_local(send, chan.handle, send.send_buf)

    class _S(ColRecv):
        def sput(self):
            chan.put()

    send.__class__ = _S
    arr.proxy[1].sput()
    rt.run()
    assert np.array_equal(recv.matrix[:, 2], send.send_arr)
    assert rt.trace.counter("ckdirect.strided_puts") == 1
    assert rt.trace.counter("ckdirect.strided_segments") == 8


def test_strided_costs_more_per_segment():
    """More segments = more descriptor posts = more sender time."""
    from repro.ckdirect.ext.strided import PER_SEGMENT_OVERHEAD

    def completion_time(segments):
        rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
        arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
        recv, send = arr.element(0), arr.element(1)
        handle = recv.make_handle()
        chan = StridedChannel(handle, segments)
        ckd.assoc_local(send, handle, send.send_buf)

        class _S(Endpoint):
            def sput(self):
                chan.put()

        send.__class__ = _S
        arr.proxy[1].sput()
        rt.run()
        return recv.fired[0][0]

    t1 = completion_time(1)
    t9 = completion_time(9)
    assert t9 - t1 == pytest.approx(8 * PER_SEGMENT_OVERHEAD)


def test_strided_virtual_needs_explicit_segments():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Endpoint, dims=(1,))
    with pytest.raises(ckd.CkDirectError, match="explicit segments"):
        create_strided_channel(
            arr.element(0), Buffer(nbytes=64), -1.0, lambda _: None
        )


def test_strided_rejects_bad_segments():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Endpoint, dims=(1,))
    h = arr.element(0).make_handle()
    with pytest.raises(ckd.CkDirectError):
        StridedChannel(h, 0)


# ---------------------------------------------------------------------------
# Accumulate
# ---------------------------------------------------------------------------


def _acc_setup(op="sum", initial=None):
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)

    class AccRecv(Endpoint):
        def __init__(self):
            super().__init__()
            if initial is not None:
                self.recv_arr[:] = initial

        def make_acc(self, op_):
            self.handle = create_accumulate_handle(
                self, self.recv_buf, -1.0, self.on_data, op=op_
            )
            return self.handle

    arr = rt.create_array(AccRecv, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_acc(op)
    ckd.assoc_local(send, handle, send.send_buf)
    return rt, arr, recv, send, handle


def test_accumulate_sum():
    rt, arr, recv, send, handle = _acc_setup("sum", initial=10.0)
    arr.proxy[1].do_put(handle)
    rt.run()
    assert np.array_equal(recv.recv_arr, 10.0 + send.send_arr)


def test_accumulate_preserves_trailing_partial():
    """The displaced trailing element must re-enter the combination
    (the sentinel slot time-shares with data)."""
    rt, arr, recv, send, handle = _acc_setup("sum", initial=5.0)
    arr.proxy[1].do_put(handle)
    rt.run()
    assert recv.recv_arr[-1] == pytest.approx(5.0 + send.send_arr[-1])


def test_accumulate_max():
    rt, arr, recv, send, handle = _acc_setup("max", initial=4.5)
    arr.proxy[1].do_put(handle)
    rt.run()
    expected = np.maximum(np.full(8, 4.5), send.send_arr)
    assert np.array_equal(recv.recv_arr, expected)


def test_accumulate_multiple_rounds():
    rt, arr, recv, send, handle = _acc_setup("sum", initial=0.0)
    for k in range(3):
        if k:
            # re-arm between rounds (while armed, the trailing slot
            # holds the sentinel and the partial is parked aside)
            arr.proxy[0].do_ready(handle)
            rt.run()
        arr.proxy[1].do_put(handle)
        rt.run()
    assert np.array_equal(recv.recv_arr, 3 * send.send_arr)


def test_accumulate_rejects_unknown_op():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Endpoint, dims=(1,))
    with pytest.raises(ckd.CkDirectError, match="unknown accumulate op"):
        create_accumulate_handle(
            arr.element(0), arr.element(0).recv_buf, -1.0, lambda _: None,
            op="xor",
        )


def test_accumulate_ops_registry():
    assert set(ACCUMULATE_OPS) == {"sum", "max", "min"}
