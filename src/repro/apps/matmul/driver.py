"""Driver for the matmul experiments (Figure 3).

Figure 3 plots *execution time per iteration* versus processor count
for the MSG and CKD versions, on Blue Gene/P (up to 4096 PEs) and Abe
(up to 256); CkDirect scales better because the per-processor message
count grows as the cube root of the processor count while its
per-message savings stay constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Type

import numpy as np

from ...charm import Runtime
from ...faults import FaultPlan
from ...network.params import MachineParams
from ...sim.parallel import resolve_shards
from ..stencil.base import IterationMonitor
from .base import MatMulBase
from .decomp3d import MatMulSpec, choose_side, global_a, global_b
from .matmul_ckd import MatMulCkd
from .matmul_msg import MatMulMsg

MODES = {"msg": MatMulMsg, "ckd": MatMulCkd}

#: Paper configuration: 2048 x 2048 input matrices.
PAPER_N = 2048


@dataclass
class MatMulResult:
    """Result record of one matmul run."""
    machine: str
    mode: str
    n_pes: int
    N: int
    c: int
    iterations: int
    iter_times: List[float]
    runtime: Optional[Runtime] = field(default=None, repr=False)
    events: int = 0  # simulator events fired by the run

    @property
    def mean_iter_time(self) -> float:
        """Steady-state iteration time (first iteration excluded)."""
        times = self.iter_times[1:] if len(self.iter_times) > 1 else self.iter_times
        return float(np.mean(times))


def run_matmul(
    machine: MachineParams,
    n_pes: int,
    N: int = PAPER_N,
    c: Optional[int] = None,
    iterations: int = 3,
    mode: str = "msg",
    validate: bool = False,
    seed: int = 20090923,
    keep_runtime: bool = False,
    faults: Optional[str] = None,
    fault_seed: int = 0x0FA11,
    shards: Optional[int] = None,
    engine: Optional[str] = None,
    transport: Optional[str] = None,
) -> MatMulResult:
    """One matmul run on ``n_pes`` PEs with a ``c^3`` chare grid.

    ``faults`` names a built-in fault profile: the run then executes on
    an imperfect fabric with the CkDirect reliability layer armed.

    ``shards`` (or ``REPRO_SHARDS``) selects the sharded parallel
    engine — bit-identical results, partitioned wall-clock work.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {sorted(MODES)}, got {mode!r}")
    cls: Type[MatMulBase] = MODES[mode]
    side = c if c is not None else choose_side(N, n_pes)
    spec = MatMulSpec(N, side)
    plan = FaultPlan.named(faults, fault_seed) if faults is not None else None
    rt = Runtime(machine, n_pes, fault_plan=plan,
                 shards=resolve_shards(shards), engine=engine,
                 transport=transport)
    monitor = IterationMonitor(rt, None, iterations)
    arr = rt.create_array(
        cls,
        dims=(side, side, side),
        ctor_args=(spec, iterations, validate, seed, monitor),
    )
    monitor.proxy = arr.proxy
    arr.proxy.bcast("setup")
    rt.run()
    if monitor.barriers_seen != iterations + 1:
        raise RuntimeError(
            f"matmul deadlocked: saw {monitor.barriers_seen} barriers, "
            f"expected {iterations + 1}"
        )
    return MatMulResult(
        machine=machine.name,
        mode=mode,
        n_pes=n_pes,
        N=N,
        c=side,
        iterations=iterations,
        iter_times=monitor.iter_times,
        runtime=rt if keep_runtime else None,
        events=rt.events_processed,
    )


def matmul_point(
    machine: MachineParams, mode: str, n_pes: int, **kwargs
) -> dict:
    """Picklable sweep-point adapter: one matmul run → plain floats."""
    r = run_matmul(machine, n_pes, mode=mode, **kwargs)
    return {"mean_s": r.mean_iter_time, "events": r.events}


def gather_c(result: MatMulResult) -> np.ndarray:
    """Assemble the global product from a validation run's roots."""
    if result.runtime is None:
        raise ValueError("run with keep_runtime=True to gather C")
    arr = next(a for a in result.runtime.arrays.values() if not a.internal)
    n = result.N // result.c
    out = np.zeros((result.N, result.N))
    for x in range(result.c):
        for y in range(result.c):
            elem = arr.elements[(x, y, 0)]
            if elem.C is None:
                raise ValueError("gather_c requires validate=True")
            out[x * n:(x + 1) * n, y * n:(y + 1) * n] = elem.C
    return out


def reference_c(result: MatMulResult, seed: int = 20090923) -> np.ndarray:
    """The product implied by the deterministic input slices."""
    spec = MatMulSpec(result.N, result.c)
    return global_a(spec, seed) @ global_b(spec, seed)


def matmul_pair(
    machine: MachineParams,
    n_pes: int,
    N: int = PAPER_N,
    iterations: int = 3,
) -> Tuple[MatMulResult, MatMulResult]:
    """MSG and CKD runs at identical configuration (Figure 3 points)."""
    msg = run_matmul(machine, n_pes, N, iterations=iterations, mode="msg")
    ckdr = run_matmul(machine, n_pes, N, iterations=iterations, mode="ckd")
    return msg, ckdr
