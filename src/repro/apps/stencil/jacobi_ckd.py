"""Jacobi with CkDirect channels (the paper's CKD version).

Channel wiring follows Figure 1: each chare creates one handle per
incoming face, registering the *ghost-layer view* as the receive
buffer (data lands exactly where the stencil reads it), and ships the
handle to the owning neighbor in a regular message; the neighbor
associates its contiguous staging buffer.  Per iteration:

1. pack faces into the staging buffers (same cost as MSG) and
   ``CkDirect_put`` each channel,
2. the completion callbacks count arrivals — plain function calls,
   no scheduler involvement,
3. once all faces are in, the callback *enqueues* the compute as a
   regular entry method (one scheduling trip per iteration instead of
   one per face).  Keeping callbacks lightweight is the pattern the
   paper prescribes for OpenAtom (§5.1: "the callback enqueues a
   CHARM++ entry method to perform the multiplication") — a heavy
   inline callback would preempt the queued per-chare sends and
   serialize the iteration;
4. after the compute, call ``CkDirect_ready`` on every handle and join
   the global barrier; the barrier guarantees at most one transaction
   in flight per channel (paper §4.1).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ... import ckdirect as ckd
from .base import STENCIL_OOB, JacobiBase
from .decomp import opposite


class JacobiCkd(JacobiBase):
    """Halo exchange via CkDirect puts."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: handles for the faces *I* receive, keyed by my direction
        self.recv_handles: Dict[Tuple[int, int], ckd.CkDirectHandle] = {}
        #: handles owned by neighbours that I put into, keyed by my
        #: outgoing direction
        self.put_handles: Dict[Tuple[int, int], ckd.CkDirectHandle] = {}
        self._advance_enqueued = False

    def setup(self) -> None:
        """Entry method: wire channels / join the setup barrier."""
        for d, nb in self.neighbors:
            handle = ckd.create_handle(
                self,
                self.ghost_view(d),
                STENCIL_OOB,
                self._on_face,
                cbdata=d,
                name=f"jac{self.thisIndex}:{d}",
            )
            self.recv_handles[d] = handle
            # ship the handle to the neighbour that will write it; in
            # the neighbour's frame the channel points opposite(d)
            self.proxy[nb].take_handle(handle, opposite(d))
        self._maybe_setup_done()  # covers chares with no neighbours

    def take_handle(self, handle: ckd.CkDirectHandle, my_direction) -> None:
        """Entry method: associate my buffer with a shipped handle."""
        my_direction = tuple(my_direction)
        ckd.assoc_local(self, handle, self.send_bufs[my_direction])
        self.put_handles[my_direction] = handle
        self._maybe_setup_done()

    def _maybe_setup_done(self) -> None:
        if (
            not getattr(self, "_setup_contributed", False)
            and len(self.put_handles) == len(self.neighbors)
        ):
            self._setup_contributed = True
            self.contribute(callback=self.monitor.callback())

    # ------------------------------------------------------------------

    def resume(self) -> None:
        """Entry method: run one iteration's send phase."""
        if self.it >= self.iterations:
            return
        # All halo puts of one iteration go out as one delivery batch.
        with self.rt.fabric.batch():
            for d, _nb in self.neighbors:
                self._pack(d)
                ckd.put(self.put_handles[d])
        self.sent_this_iter = True
        self._maybe_advance()

    def _on_face(self, _direction) -> None:
        """CkDirect completion callback: data already sits in the ghost
        layer; just count (a plain function call on the receiver)."""
        self.got_faces += 1
        self._maybe_advance()

    def _maybe_advance(self) -> None:
        # Callbacks stay lightweight: the compute goes through the
        # scheduler once per iteration (paper §5.1 pattern).
        if (
            self._exchange_complete()
            and self.it < self.iterations
            and not self._advance_enqueued
        ):
            self._advance_enqueued = True
            self.proxy[self.thisIndex].do_advance()

    def do_advance(self) -> None:
        """Entry method: run the deferred compute (callback-enqueued)."""
        self._advance_enqueued = False
        if self._exchange_complete() and self.it < self.iterations:
            self._advance()

    def _post_compute(self) -> None:
        # Paper protocol: all chares call CkDirect_ready, then a global
        # barrier ensures no put races the re-arming.
        for handle in self.recv_handles.values():
            ckd.ready(handle)
