"""Driver for the stencil experiments (Figure 2).

Runs the 3D Jacobi benchmark at a given machine/PE-count/mode and
reports per-iteration times; :func:`stencil_improvement` runs the MSG
and CKD versions back to back and returns the percentage improvement —
the quantity Figure 2 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Type

import numpy as np

from ...charm import Runtime
from ...faults import FaultPlan, ProcFaultPlan
from ...network.params import MachineParams
from ...sim.parallel import resolve_shards
from ...util.stats import percent_improvement
from .base import IterationMonitor, JacobiBase
from .decomp import choose_grid
from .jacobi_ckd import JacobiCkd
from .jacobi_msg import JacobiMsg

MODES = {"msg": JacobiMsg, "ckd": JacobiCkd}

#: Paper configuration: 1024 x 1024 x 512 elements, virtualization 8.
PAPER_DOMAIN: Tuple[int, int, int] = (1024, 1024, 512)
PAPER_VR = 8


@dataclass
class StencilResult:
    """Result record of one stencil run."""
    machine: str
    mode: str
    n_pes: int
    vr: int
    domain: Tuple[int, int, int]
    grid: Tuple[int, int, int]
    iterations: int
    iter_times: List[float]
    runtime: Optional[Runtime] = field(default=None, repr=False)
    events: int = 0  # simulator events fired by the run

    @property
    def mean_iter_time(self) -> float:
        """Steady-state iteration time (first iteration excluded: it
        absorbs cold-start queue effects)."""
        times = self.iter_times[1:] if len(self.iter_times) > 1 else self.iter_times
        return float(np.mean(times))


def run_stencil(
    machine: MachineParams,
    n_pes: int,
    domain: Tuple[int, int, int] = PAPER_DOMAIN,
    vr: int = PAPER_VR,
    iterations: int = 4,
    mode: str = "msg",
    validate: bool = False,
    seed: int = 20090922,
    keep_runtime: bool = False,
    faults: Optional[str] = None,
    fault_seed: int = 0x0FA11,
    shards: Optional[int] = None,
    engine: Optional[str] = None,
    proc_faults: Optional["ProcFaultPlan"] = None,
    transport: Optional[str] = None,
) -> StencilResult:
    """One stencil run.  ``vr`` chares per PE, near-cubic blocks.

    ``faults`` names a built-in fault profile (``drop``,
    ``torn-sentinel``, ...): the run then executes on an imperfect
    fabric with the CkDirect reliability layer armed.

    ``shards`` (or ``REPRO_SHARDS``) selects the sharded parallel
    engine — bit-identical results, partitioned wall-clock work.
    ``engine`` (or ``REPRO_ENGINE``) picks its synchronization mode:
    ``conservative`` epoch windows (default) or ``optimistic`` Time
    Warp speculation with rollback.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {sorted(MODES)}, got {mode!r}")
    cls: Type[JacobiBase] = MODES[mode]
    n_chares = n_pes * vr
    grid = choose_grid(domain, n_chares)
    plan = FaultPlan.named(faults, fault_seed) if faults is not None else None
    rt = Runtime(machine, n_pes, fault_plan=plan,
                 shards=resolve_shards(shards), engine=engine,
                 proc_faults=proc_faults, transport=transport)
    monitor_box: list = []

    # The monitor needs the proxy, the array ctor needs the monitor:
    # create the monitor first with a late-bound proxy.
    monitor = IterationMonitor(rt, None, iterations)
    arr = rt.create_array(
        cls,
        dims=grid,
        ctor_args=(domain, grid, iterations, validate, seed, monitor),
    )
    monitor.proxy = arr.proxy
    arr.proxy.bcast("setup")
    rt.run()
    if monitor.barriers_seen != iterations + 1:
        raise RuntimeError(
            f"stencil deadlocked: saw {monitor.barriers_seen} barriers, "
            f"expected {iterations + 1}"
        )
    return StencilResult(
        machine=machine.name,
        mode=mode,
        n_pes=n_pes,
        vr=vr,
        domain=domain,
        grid=grid,
        iterations=iterations,
        iter_times=monitor.iter_times,
        runtime=rt if keep_runtime else None,
        events=rt.events_processed,
    )


def stencil_point(
    machine: MachineParams, mode: str, n_pes: int, **kwargs
) -> dict:
    """Picklable sweep-point adapter: one stencil run → plain floats.

    Used by :mod:`repro.sweep.points`; must stay a module-level
    function so worker processes resolve it by qualified name.
    """
    r = run_stencil(machine, n_pes, mode=mode, **kwargs)
    return {"mean_s": r.mean_iter_time, "events": r.events}


def gather_grid(result: StencilResult) -> np.ndarray:
    """Assemble the global grid from a validation run's blocks."""
    if result.runtime is None:
        raise ValueError("run with keep_runtime=True to gather the grid")
    arr = next(
        a for a in result.runtime.arrays.values() if not a.internal
    )
    out = np.zeros(result.domain)
    bx = result.domain[0] // result.grid[0]
    by = result.domain[1] // result.grid[1]
    bz = result.domain[2] // result.grid[2]
    for idx, elem in arr.elements.items():
        interior = elem.interior()
        if interior is None:
            raise ValueError("gather_grid requires validate=True blocks")
        i, j, k = idx
        out[i * bx:(i + 1) * bx, j * by:(j + 1) * by, k * bz:(k + 1) * bz] = interior
    return out


def stencil_improvement(
    machine: MachineParams,
    n_pes: int,
    domain: Tuple[int, int, int] = PAPER_DOMAIN,
    vr: int = PAPER_VR,
    iterations: int = 4,
) -> Tuple[float, StencilResult, StencilResult]:
    """Percent improvement of CKD over MSG (the Figure 2 metric)."""
    msg = run_stencil(machine, n_pes, domain, vr, iterations, mode="msg")
    ckdr = run_stencil(machine, n_pes, domain, vr, iterations, mode="ckd")
    gain = percent_improvement(msg.mean_iter_time, ckdr.mean_iter_time)
    return gain, msg, ckdr
