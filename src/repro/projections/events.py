"""Typed timeline events (the Projections-style record vocabulary).

A :class:`TraceEvent` is one record on a per-PE timeline: either a
*span* (an interval of PE time — an entry-method execution, a poll
sweep, a scheduler dispatch, an idle gap) or an *instant* (a point in
time — a message send, an enqueue, a put completion landing).

Every event carries

* a log-unique id (``eid``),
* its *track* — the ``(run, pe)`` pair it renders on; a run is one
  :class:`~repro.charm.runtime.Runtime` / ``MPIWorld`` instance, so
  multi-run artifacts (tables, figure sweeps) stay separable,
* a ``cause``: the eid of the event that caused this one, forming the
  message-causality graph the critical-path analysis walks (a send
  causes an enqueue causes a dispatch causes an entry execution; a put
  causes a completion causes a callback).

Event *categories* partition time the way the paper's argument does:
``sched`` is exactly the overhead CkDirect bypasses, ``ckdirect`` is
what it pays instead, ``idle`` is what a timeline view exposes that
aggregate counters cannot.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: Span categories (PE time attribution).
CAT_ENTRY = "entry"  # application entry-method execution
CAT_RTS = "rts"  # runtime-internal entries (reduction/broadcast stages)
CAT_SCHED = "sched"  # scheduler dequeue + dispatch + receive-side costs
CAT_CKDIRECT = "ckdirect"  # put issue, poll sweeps, completion callbacks
CAT_IDLE = "idle"  # PE idle gaps between scheduler iterations
CAT_MPI = "mpi"  # simulated-MPI rank activity

#: Instant categories (point events).
CAT_MSG = "msg"  # message send / enqueue
CAT_NET = "net"  # wire-level transfers and rendezvous control traffic
CAT_FAULT = "fault"  # injected faults and the recovery actions they trigger

#: Categories whose spans count as *busy* PE time (everything but idle).
BUSY_CATEGORIES = frozenset(
    {CAT_ENTRY, CAT_RTS, CAT_SCHED, CAT_CKDIRECT, CAT_MPI}
)

#: Pseudo-PE track ids for events not tied to one core.
HOST_TRACK = -1  # host/mainchare injections
NET_TRACK = -2  # fabric-level events (one track per run)

KIND_SPAN = "span"
KIND_INSTANT = "instant"


class ProjectionsError(RuntimeError):
    """Raised for malformed event records or analysis misuse."""


class TraceEvent:
    """One timeline record (span or instant)."""

    __slots__ = ("eid", "kind", "run", "pe", "category", "name", "t0", "t1",
                 "cause", "args")

    def __init__(
        self,
        eid: int,
        kind: str,
        run: int,
        pe: int,
        category: str,
        name: str,
        t0: float,
        t1: float,
        cause: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        if t1 < t0:
            raise ProjectionsError(
                f"event {name!r} ends before it starts: [{t0!r}, {t1!r}]"
            )
        self.eid = eid
        self.kind = kind
        self.run = run
        self.pe = pe
        self.category = category
        self.name = name
        self.t0 = t0
        self.t1 = t1
        self.cause = cause
        self.args = args

    @property
    def duration(self) -> float:
        """Span length in seconds (0 for instants)."""
        return self.t1 - self.t0

    @property
    def is_span(self) -> bool:
        """True for interval events."""
        return self.kind == KIND_SPAN

    @property
    def track(self) -> tuple:
        """The ``(run, pe)`` timeline this event renders on."""
        return (self.run, self.pe)

    @property
    def name_key(self) -> str:
        """The name's stable prefix (before any ``:`` qualifier) —
        ``"put:chan3"`` and ``"put:chan7"`` both group under ``put``."""
        name = self.name
        i = name.find(":")
        return name if i < 0 else name[:i]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        when = f"@{self.t0:.3g}" if not self.is_span else f"[{self.t0:.3g},{self.t1:.3g}]"
        return (
            f"<TraceEvent #{self.eid} {self.category}/{self.name} "
            f"run{self.run} pe{self.pe} {when}>"
        )
