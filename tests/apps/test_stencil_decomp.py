"""Unit tests for stencil decomposition geometry."""

import pytest

from repro.apps.stencil.decomp import (
    DIRECTIONS,
    BlockSpec,
    choose_grid,
    factor_triples,
    make_blocks,
    opposite,
)


def test_directions_cover_six_faces():
    assert len(DIRECTIONS) == 6
    assert len(set(DIRECTIONS)) == 6


def test_opposite():
    assert opposite((0, 1)) == (0, -1)
    assert opposite((2, -1)) == (2, 1)
    for d in DIRECTIONS:
        assert opposite(opposite(d)) == d


def test_factor_triples_complete():
    triples = set(factor_triples(12))
    assert (1, 1, 12) in triples
    assert (2, 2, 3) in triples
    assert all(a * b * c == 12 for a, b, c in triples)


def test_choose_grid_divides_domain():
    grid = choose_grid((1024, 1024, 512), 2048)
    assert grid[0] * grid[1] * grid[2] == 2048
    assert 1024 % grid[0] == 0
    assert 1024 % grid[1] == 0
    assert 512 % grid[2] == 0


def test_choose_grid_minimizes_surface():
    # a cube domain with a cube count must choose the cubic grid
    assert choose_grid((64, 64, 64), 64) == (4, 4, 4)


def test_choose_grid_respects_aspect():
    # domain twice as long in x: blocks stay near-cubic
    grid = choose_grid((128, 64, 64), 8)
    bx, by, bz = 128 // grid[0], 64 // grid[1], 64 // grid[2]
    assert max(bx, by, bz) <= 2 * min(bx, by, bz)


def test_choose_grid_impossible():
    with pytest.raises(ValueError):
        choose_grid((7, 7, 7), 4)  # 7 not divisible by 2


def test_block_neighbors_interior():
    spec = BlockSpec((1, 1, 1), (3, 3, 3), (8, 8, 8))
    assert len(spec.neighbors()) == 6


def test_block_neighbors_corner():
    spec = BlockSpec((0, 0, 0), (3, 3, 3), (8, 8, 8))
    assert len(spec.neighbors()) == 3
    assert spec.neighbor((0, -1)) is None
    assert spec.neighbor((0, 1)) == (1, 0, 0)


def test_block_single_chare_has_no_neighbors():
    spec = BlockSpec((0, 0, 0), (1, 1, 1), (4, 4, 4))
    assert spec.neighbors() == []


def test_face_sizes():
    spec = BlockSpec((0, 0, 0), (2, 2, 2), (4, 6, 8))
    assert spec.face_elems((0, 1)) == 48  # 6*8
    assert spec.face_elems((1, 1)) == 32  # 4*8
    assert spec.face_elems((2, 1)) == 24  # 4*6
    assert spec.face_bytes((0, 1)) == 48 * 8
    assert spec.interior_elems == 4 * 6 * 8


def test_make_blocks():
    blocks = make_blocks((8, 8, 8), (2, 2, 2))
    assert len(blocks) == 8
    assert all(b.shape == (4, 4, 4) for b in blocks.values())
    with pytest.raises(ValueError):
        make_blocks((9, 8, 8), (2, 2, 2))
