"""Sweep execution statistics — the bench trajectory's data source.

Every :meth:`SweepRunner.run` appends one :class:`SweepRecord` here
(label, jobs, wall-clock, simulator events).  The benchmark suite's
``--bench-json`` hook drains the records at session end into
``BENCH_sweeps.json`` so future PRs can compare wall-clock, events/sec,
and parallel speedup against this baseline.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List


@dataclass
class SweepRecord:
    """Timing record of one executed sweep."""

    label: str     # e.g. "fig3:Surveyor"
    jobs: int      # worker-pool size actually used (1 = serial)
    points: int    # sweep points executed
    failed: int    # points that errored or timed out
    wall_s: float  # parent-side wall-clock for the whole sweep
    events: int    # total simulator events across all points

    @property
    def events_per_s(self) -> float:
        """Aggregate simulated-event throughput of the sweep."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict:
        d = asdict(self)
        d["events_per_s"] = round(self.events_per_s, 1)
        return d


#: Records of every sweep executed by this process, in execution order.
RECORDS: List[SweepRecord] = []


def record(rec: SweepRecord) -> None:
    """Append one sweep's timing record."""
    RECORDS.append(rec)


def drain() -> List[Dict]:
    """Return all records as dicts and clear the register."""
    out = [r.to_dict() for r in RECORDS]
    RECORDS.clear()
    return out
