"""Table 2 — pingpong round-trip times on Blue Gene/P (ANL Surveyor).

Asserts §3's BG/P claims: CkDirect fastest at every size, the gap over
default Charm++ growing from ≈9 µs toward ≈16 µs RTT; MPI between the
two; MPI-Put slowest; and point-wise tolerances against the printed
table.
"""

import pytest

from conftest import save_report
from repro.bench import paper_data, run_table2, shapes


@pytest.fixture(scope="module")
def table2(holder={}):
    if "r" not in holder:
        holder["r"] = run_table2(iterations=100)
    return holder["r"]


def test_table2_benchmark(benchmark, table2):
    result = benchmark.pedantic(lambda: table2, rounds=1, iterations=1)
    save_report("table2_pingpong_bgp", result["report"])
    test_ckdirect_beats_default_everywhere(table2)
    test_ckdirect_beats_mpi_and_put(table2)
    test_gap_band(table2)
    test_put_never_faster_than_two_sided(table2)
    test_ckdirect_near_dcmf_floor(table2)
    for stack, tol in [("Default CHARM++", 0.08), ("CkDirect CHARM++", 0.10),
                       ("MPI", 0.10), ("MPI-Put", 0.18)]:
        test_absolute_tolerance(table2, stack, tol)


def test_ckdirect_beats_default_everywhere(table2):
    shapes.assert_ckdirect_always_wins(
        table2["sizes"],
        table2["measured"]["Default CHARM++"],
        table2["measured"]["CkDirect CHARM++"],
    )


def test_ckdirect_beats_mpi_and_put(table2):
    shapes.assert_ckdirect_beats_mpi(
        table2["sizes"],
        table2["measured"]["CkDirect CHARM++"],
        {
            "MPI": table2["measured"]["MPI"],
            "MPI-Put": table2["measured"]["MPI-Put"],
        },
    )


def test_gap_band(table2):
    """"initially by ≈9 µs. This difference grows with message size to
    ≈16 µs" — allow a generous band around both endpoints."""
    d = table2["measured"]["Default CHARM++"]
    c = table2["measured"]["CkDirect CHARM++"]
    small_gap = d[0] - c[0]
    large_gap = d[-1] - c[-1]
    assert 6.0 <= small_gap <= 12.0, f"small-message gap {small_gap:.1f}us"
    assert 12.0 <= large_gap <= 20.0, f"large-message gap {large_gap:.1f}us"
    assert large_gap > small_gap


def test_put_never_faster_than_two_sided(table2):
    """On BG/P the PSCW synchronization makes MPI-Put uniformly slower
    (Table 2)."""
    for s, t, p in zip(
        table2["sizes"], table2["measured"]["MPI"], table2["measured"]["MPI-Put"]
    ):
        assert p >= t, f"MPI-Put ({p:.2f}) beat two-sided ({t:.2f}) at {s}B"


def test_ckdirect_near_dcmf_floor(table2):
    """"CkDirect is running quite close to the best performance
    available" — one-way small-message latency within a few µs of the
    published DCMF 1.9 µs."""
    one_way = table2["measured"]["CkDirect CHARM++"][0] / 2
    assert one_way <= paper_data.DCMF_ONE_WAY_US + 2.0


@pytest.mark.parametrize(
    "stack,tol",
    [
        ("Default CHARM++", 0.08),
        ("CkDirect CHARM++", 0.10),
        ("MPI", 0.10),
        ("MPI-Put", 0.18),
    ],
)
def test_absolute_tolerance(table2, stack, tol):
    shapes.assert_within_tolerance(
        table2["sizes"],
        table2["measured"][stack],
        paper_data.TABLE2_RTT_US[stack],
        tol,
        f"Table2/{stack}",
    )
