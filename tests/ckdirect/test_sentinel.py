"""Unit tests for the out-of-band sentinel mechanics (§2.1)."""

import numpy as np
import pytest

from repro import ABE, Buffer, Runtime
from repro import ckdirect as ckd
from repro.ckdirect.handle import SentinelError

from tests.ckdirect.channel_helpers import CROSS, Endpoint


def test_create_handle_stamps_sentinel():
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    recv = arr.element(0)
    recv.make_handle(oob=-1.0)
    assert recv.recv_arr[-1] == -1.0


def test_sentinel_cleared_by_delivery(channel):
    rt, arr, recv, send, handle = channel
    assert not handle.sentinel_clear()
    arr.proxy[1].do_put(handle)
    rt.run()
    assert handle.sentinel_clear()
    assert recv.recv_arr[-1] == send.send_arr[-1]


def test_ready_restamps_sentinel():
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle(oob=-1.0)
    ckd.assoc_local(send, handle, send.send_buf)
    arr.proxy[1].do_put(handle)
    rt.run()
    arr.proxy[0].do_ready(handle)
    rt.run()
    assert recv.recv_arr[-1] == -1.0


def test_payload_equal_to_oob_detected_as_contract_violation():
    """"an out-of-band pattern that the user is sure will never appear
    as received data" — if it does, the receiver could never detect the
    message; strict mode raises instead of hanging."""
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle(oob=-1.0)
    send.send_arr[-1] = -1.0  # the forbidden trailing value
    ckd.assoc_local(send, handle, send.send_buf)
    arr.proxy[1].do_put(handle)
    with pytest.raises(SentinelError, match="out-of-band"):
        rt.run()


def test_sentinel_on_strided_view():
    """Sentinel mechanics must work when the receive buffer is a
    non-contiguous view (trailing element of the view, not of the
    underlying array)."""
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)

    class ColRecv(Endpoint):
        def __init__(self):
            super().__init__()
            self.matrix = np.zeros((8, 4))
            self.recv_buf = Buffer(array=self.matrix[:, 1])

    arr = rt.create_array(ColRecv, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle(oob=-1.0)
    assert recv.matrix[7, 1] == -1.0  # stamped through the view
    ckd.assoc_local(send, handle, send.send_buf)
    arr.proxy[1].do_put(handle)
    rt.run()
    assert np.array_equal(recv.matrix[:, 1], send.send_arr)


def test_nan_as_oob_value():
    """NaN is the paper's canonical out-of-band value for doubles."""
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle(oob=np.nan)
    assert np.isnan(recv.recv_arr[-1])
    ckd.assoc_local(send, handle, send.send_buf)
    arr.proxy[1].do_put(handle)
    rt.run()
    # NaN != NaN, so sentinel_clear is true once *any* data landed —
    # including data that happens to be NaN-free
    assert handle.sentinel_clear()
    assert len(recv.fired) == 1
