"""Unit tests for the persistent-channel advisor (§6 extension)."""

import numpy as np
import pytest

from repro import ABE, SURVEYOR, Chare, Runtime
from repro.charm import CustomMap, Payload
from repro.ckdirect.ext import ChannelAdvisor, FlowStats

from tests.ckdirect.channel_helpers import CROSS


class IterativeSender(Chare):
    """Sends the same-size payload to element 1 every round, plus one
    unstable-size flow and one tiny control flow."""

    def __init__(self):
        self.round = 0

    def go(self, rounds):
        self.round += 1
        self.proxy[1].stable(Payload.virtual(8192))
        self.proxy[1].wobbly(Payload.virtual(1000 + self.round * 100))
        self.proxy[1].tiny(Payload.virtual(16))
        if self.round < rounds:
            self.proxy[0].go(rounds)

    def stable(self, p):
        pass

    def wobbly(self, p):
        pass

    def tiny(self, p):
        pass


def _run_observed(machine, rounds=5):
    rt = Runtime(machine, n_pes=2 * machine.cores_per_node)
    arr = rt.create_array(IterativeSender, dims=(2,), mapping=CROSS)
    advisor = ChannelAdvisor(rt).attach()
    arr.proxy[0].go(rounds)
    rt.run()
    return advisor


def test_flow_stats_stability_tracking():
    st = FlowStats()
    for n in (100, 100, 100):
        st.observe(n)
    assert st.stable_run == 3
    st.observe(200)
    assert st.stable_run == 1
    assert st.count == 4
    assert st.total_bytes == 500


def test_stable_flow_becomes_candidate():
    advisor = _run_observed(ABE)
    cands = advisor.candidates()
    methods = {c.method for c in cands}
    assert "stable" in methods


def test_unstable_flow_excluded():
    advisor = _run_observed(ABE)
    assert all(c.method != "wobbly" for c in advisor.candidates())


def test_tiny_flow_excluded():
    advisor = _run_observed(ABE)
    assert all(c.method != "tiny" for c in advisor.candidates())


def test_candidate_economics():
    advisor = _run_observed(ABE, rounds=6)
    cand = next(c for c in advisor.candidates() if c.method == "stable")
    assert cand.nbytes == 8192
    assert cand.observations == 6
    assert cand.saving_per_message > 0
    assert cand.amortization_messages > 0
    assert np.isfinite(cand.amortization_messages)


def test_savings_larger_for_rendezvous_sizes():
    """On Infiniband a channel saves the per-message registration for
    rendezvous-sized flows, so the estimated saving jumps there."""
    rt = Runtime(ABE, n_pes=2)
    advisor = ChannelAdvisor(rt)
    small = advisor._saving_per_message(8_000)
    large = advisor._saving_per_message(100_000)
    assert large > small + ABE.net.reg_base * 0.9


def test_bgp_savings_include_rts_copy():
    rt = Runtime(SURVEYOR, n_pes=2)
    advisor = ChannelAdvisor(rt)
    s1 = advisor._saving_per_message(1_000)
    s2 = advisor._saving_per_message(20_000)
    assert s2 > s1  # the saturating receive copy grows with size


def test_attach_is_idempotent_and_detachable():
    rt = Runtime(ABE, n_pes=2)
    advisor = ChannelAdvisor(rt)
    advisor.attach()
    advisor.attach()
    advisor.detach()
    advisor.detach()
    # runtime still functional
    arr = rt.create_array(IterativeSender, dims=(2,))
    arr.proxy[0].go(1)
    rt.run()
    assert advisor.flows == {} or all(
        isinstance(v, FlowStats) for v in advisor.flows.values()
    )


def test_report_renders():
    advisor = _run_observed(ABE)
    text = advisor.report()
    assert "channel candidates" in text
    assert "stable" in text


def test_observed_app_unchanged():
    """Attaching the advisor must not change application timing."""
    def run(attach):
        rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
        arr = rt.create_array(IterativeSender, dims=(2,), mapping=CROSS)
        if attach:
            ChannelAdvisor(rt).attach()
        arr.proxy[0].go(4)
        rt.run()
        return rt.now

    assert run(False) == run(True)
