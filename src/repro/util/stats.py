"""Small statistics helpers shared by the bench harness and tests."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def percent_improvement(baseline: float, improved: float) -> float:
    """Percentage by which ``improved`` beats ``baseline`` (positive = better)."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (baseline - improved) / baseline


def speedup(baseline: float, improved: float) -> float:
    """baseline/improved ratio (>1 means improved is faster)."""
    if improved <= 0:
        raise ValueError("improved time must be positive")
    return baseline / improved


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def monotone_increasing(values: Sequence[float], slack: float = 0.0) -> bool:
    """True when each value is >= its predecessor minus ``slack``.

    Used by shape assertions where measured trends are expected to rise
    but small wobbles (a few percent) are tolerated.
    """
    vals = list(values)
    return all(b >= a - slack for a, b in zip(vals, vals[1:]))


def within_factor(measured: float, reference: float, factor: float) -> bool:
    """True when measured is within a multiplicative band of reference."""
    if reference <= 0 or measured <= 0:
        raise ValueError("values must be positive")
    ratio = measured / reference
    return 1.0 / factor <= ratio <= factor
