"""Deterministic random-number plumbing.

All stochastic behaviour in the simulation (randomized initial data,
randomized mappings, jitter models in ablation studies) must draw from
generators created here so that a run is reproducible from a single
seed.  Components that need independent streams derive them with
:func:`substream`, which uses ``numpy``'s ``SeedSequence.spawn``
machinery — streams are statistically independent and stable across
runs.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

DEFAULT_SEED = 0x5EED_C0DE


def make_rng(seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Create the root generator for a simulation run."""
    return np.random.default_rng(np.random.SeedSequence(seed))


def substream(seed: int, *path: int) -> np.random.Generator:
    """Derive an independent generator identified by an integer path.

    ``substream(seed, 3, 7)`` always yields the same stream for the
    same arguments and a different stream for any other path, allowing
    e.g. per-chare deterministic initial data regardless of the order
    in which chares are constructed.
    """
    ss = np.random.SeedSequence(seed)
    for key in path:
        children = ss.spawn(int(key) + 1)
        ss = children[int(key)]
    return np.random.default_rng(ss)


def deterministic_permutation(n: int, seed: int) -> np.ndarray:
    """A reproducible permutation of ``range(n)``."""
    return make_rng(seed).permutation(n)


def split_seeds(seed: int, n: int) -> list[int]:
    """Produce ``n`` stable child seeds from ``seed``."""
    ss = np.random.SeedSequence(seed)
    return [int(s.generate_state(1)[0]) for s in ss.spawn(n)]


def assert_all_distinct(seeds: Iterable[int]) -> None:
    """Sanity helper used by tests: child seeds must not collide."""
    seeds = list(seeds)
    if len(set(seeds)) != len(seeds):
        raise ValueError("seed collision in derived streams")
