"""Microbenchmark: per-window shard-transport cost, pipe vs shm.

The sharded engines move one frame per shard per conservative window
(or per GVT round), so the transport's per-window cost is pure
overhead on the critical path — the sharded run does nothing else
while a window frame is in flight.  This benchmark pins the
shared-memory ring transport against the pickle-over-pipe reference
on that exact unit of work:

* **loopback µs/window** — send one window frame and receive it in
  the same process.  This isolates what the transport itself burns
  (framing, copies, syscalls) from scheduler handoff: on the 1-CPU
  CI container a cross-process ping-pong is dominated by ~60µs of
  involuntary context switching *whichever* transport carries it.
  The pipe pays two kernel copies plus a syscall pair per frame; the
  shm ring pays one user-space copy in and zero out (the receiver
  unpickles straight out of the ring).  The acceptance bar — shm at
  ≤0.85× pipe, i.e. ≥15% less per-window transport work — is
  asserted on the loopback totals.
* **cross-process streaming MB/s** — bulk frames through a forked
  drainer, the regime where ring capacity lets the writer run ahead.
  Reported for trend tracking, not gated: on a single core both
  transports are throttled by the same scheduler handoffs.

Each window payload is a list of per-record byte strings with
**distinct** contents — identical records would be memoized into one
object by pickle and shrink the frame by 50×.  Loopback windows stay
under 60 KB because a pipe loopback larger than the 64 KiB pipe
buffer deadlocks (nobody drains while the sender blocks).

Methodology matches ``test_engine_micro``: ``ROUNDS`` timed runs per
transport, scored by the **median** to shed scheduler tail noise.
"""

from __future__ import annotations

import multiprocessing as mp
import statistics
import time

import numpy as np
from conftest import record_stage, save_report
from repro.sim.shm import channel_pair

ROUNDS = 5
WINDOWS = 200          # frames per timed loopback run
STREAM_FRAMES = 48     # frames per streaming run
STREAM_BYTES = 1 << 18  # 256 KiB per streaming frame

#: label -> (records per window, bytes per record); totals stay well
#: under the 64 KiB pipe buffer (see module docstring).
_WINDOWS = {
    "1KB": (16, 64),
    "8KB": (32, 256),
    "48KB": (48, 1024),
}

CTX = mp.get_context("fork")


def _make_window(n_records: int, record_bytes: int, seed: int):
    """One window payload: distinct-content records (no pickle memo)."""
    rng = np.random.default_rng(seed)
    return [(i, rng.bytes(record_bytes)) for i in range(n_records)]


def _loopback_us_per_window(transport: str, window) -> float:
    """Median per-window send+recv cost with both ends in-process."""
    samples = []
    for _ in range(ROUNDS):
        parent, child = channel_pair(CTX, transport, "ubench")
        try:
            parent.send(window)  # warm the path (first-touch, pickles)
            child.recv()
            t0 = time.perf_counter()
            for _ in range(WINDOWS):
                parent.send(window)
                child.recv()
            samples.append((time.perf_counter() - t0) / WINDOWS * 1e6)
        finally:
            child.close()
            parent.unlink()
    return statistics.median(samples)


def _drain(conn, n_frames: int) -> None:
    for _ in range(n_frames):
        conn.recv()
    conn.send("drained")
    conn.close()


def _stream_mb_per_s(transport: str) -> float:
    """Median cross-process bulk throughput (fork a drainer child)."""
    frames = [_make_window(1, STREAM_BYTES, seed)[0][1]
              for seed in range(STREAM_FRAMES)]
    samples = []
    for _ in range(ROUNDS):
        parent, child = channel_pair(CTX, transport, "ustream")
        proc = CTX.Process(target=_drain, args=(child, STREAM_FRAMES))
        proc.start()
        child.close()
        try:
            t0 = time.perf_counter()
            for frame in frames:
                parent.send(frame)
            assert parent.recv() == "drained"
            wall = time.perf_counter() - t0
            samples.append(STREAM_FRAMES * STREAM_BYTES / wall / 2**20)
        finally:
            proc.join()
            parent.unlink()
    return statistics.median(samples)


def test_transport_micro():
    loop = {}
    for label, (n, nbytes) in _WINDOWS.items():
        window = _make_window(n, nbytes, seed=len(label))
        loop[label] = {t: _loopback_us_per_window(t, window)
                       for t in ("pipe", "shm")}
    stream = {t: _stream_mb_per_s(t) for t in ("pipe", "shm")}

    pipe_total = sum(v["pipe"] for v in loop.values())
    shm_total = sum(v["shm"] for v in loop.values())
    ratio = shm_total / pipe_total

    lines = ["transport microbench: per-window cost, pipe vs shm",
             f"(loopback, median of {ROUNDS} x {WINDOWS} windows)", "",
             f"{'window':<8} {'pipe us':>10} {'shm us':>10} {'shm/pipe':>10}"]
    for label, v in loop.items():
        lines.append(f"{label:<8} {v['pipe']:>10.2f} {v['shm']:>10.2f} "
                     f"{v['shm'] / v['pipe']:>10.2f}")
    lines.append(f"{'total':<8} {pipe_total:>10.2f} {shm_total:>10.2f} "
                 f"{ratio:>10.2f}")
    lines.append("")
    lines.append(f"streaming (cross-process, {STREAM_BYTES >> 10} KiB "
                 f"frames): pipe {stream['pipe']:.0f} MB/s, "
                 f"shm {stream['shm']:.0f} MB/s")
    save_report("transport_micro", "\n".join(lines))
    record_stage("transport_micro", {
        "loopback_us_per_window": loop,
        "loopback_shm_over_pipe": round(ratio, 4),
        "stream_mb_per_s": {k: round(v, 1) for k, v in stream.items()},
    })

    # the issue's acceptance bar: >= 15% less per-window transport work
    assert ratio <= 0.85, (
        f"shm must cost <= 0.85x pipe per window, measured {ratio:.3f}"
    )
