"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper, prints
it (visible with ``pytest -s``), saves it under
``benchmarks/results/``, and asserts the paper's shape claims.

Suite-wide options:

``--jobs N``
    Fan each artifact's sweep points over N worker processes
    (exported as ``REPRO_JOBS``, which the runners resolve).  Reports
    and assertions are byte-identical at any N — the determinism
    regression test pins this — so it is purely a wall-clock knob.

``--eventq IMPL``
    Back every simulator with the given event-queue implementation
    (exported as ``REPRO_EVENTQ``; see :mod:`repro.sim.eventq`).
    Results are byte-identical for every choice — like ``--jobs`` it
    is purely a wall-clock knob — and the chosen implementation is
    recorded in the trajectory entry so per-queue timings can be
    compared across sessions.

``--bench-json [PATH]``
    Append this session's timing trajectory to ``PATH`` (default
    ``benchmarks/results/BENCH_sweeps.json``): wall-clock per
    benchmark module, per-sweep wall/events/events-per-second records,
    named stages recorded by individual benchmarks (``record_stage``),
    and the parallel speedup against the file's most recent serial
    entry.  Successive sessions accumulate, so the file tracks how
    the simulator's throughput moves across PRs.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from collections import defaultdict

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_JSON_DEFAULT = RESULTS_DIR / "BENCH_sweeps.json"

#: module basename -> accumulated test wall-clock seconds.
_module_wall = defaultdict(float)
_session_t0 = 0.0

#: stage name -> payload recorded by individual benchmarks this session.
_stages = {}


def save_report(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def record_stage(name: str, data) -> None:
    """Attach a named measurement to this session's trajectory entry.

    Benchmarks call this with JSON-ready payloads (e.g. the engine
    microbench's per-implementation µs/event table); the data lands
    under ``stages`` in the ``--bench-json`` entry so per-PR trends
    stay queryable without parsing report text.
    """
    _stages[name] = data


def pytest_addoption(parser):
    group = parser.getgroup("repro sweeps")
    group.addoption(
        "--jobs", type=int, default=None, metavar="N",
        help="run sweep points over N worker processes (sets REPRO_JOBS; "
             "results are identical at any N)",
    )
    group.addoption(
        "--eventq", default=None, metavar="IMPL",
        help="event-queue implementation backing every simulator "
             "(sets REPRO_EVENTQ; results are identical for every "
             "choice)",
    )
    group.addoption(
        "--bench-json", nargs="?", const=str(BENCH_JSON_DEFAULT),
        default=None, metavar="PATH",
        help="append this session's sweep timings to PATH "
             f"(default {BENCH_JSON_DEFAULT})",
    )


def pytest_configure(config):
    global _session_t0
    _session_t0 = time.perf_counter()
    jobs = config.getoption("--jobs")
    if jobs is not None:
        if jobs < 1:
            raise pytest.UsageError(f"--jobs must be at least 1, got {jobs}")
        os.environ["REPRO_JOBS"] = str(jobs)
    eventq = config.getoption("--eventq")
    if eventq is not None:
        from repro.sim.eventq import resolve_eventq

        try:
            os.environ["REPRO_EVENTQ"] = resolve_eventq(eventq)
        except Exception as exc:
            raise pytest.UsageError(str(exc))


def pytest_runtest_logreport(report):
    # All phases: module-scoped artifact fixtures run during "setup".
    module = report.nodeid.split("::", 1)[0]
    _module_wall[pathlib.PurePosixPath(module).name] += report.duration


def _load_entries(path: pathlib.Path):
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    return data if isinstance(data, list) else []


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json")
    if not path:
        return
    from repro.sim.eventq import eventq_name, make_simulator
    from repro.sweep import resolve_jobs, stats

    path = pathlib.Path(path)
    entries = _load_entries(path)
    sweeps = stats.drain()
    entry = {
        "jobs": resolve_jobs(session.config.getoption("--jobs")),
        # the implementation every simulator in this session resolved
        # to (flag > REPRO_EVENTQ > auto)
        "eventq": eventq_name(make_simulator()),
        "exit_status": int(exitstatus),
        "total_wall_s": round(time.perf_counter() - _session_t0, 3),
        "modules": {k: round(v, 3) for k, v in sorted(_module_wall.items())},
        "sweeps": sweeps,
        "sweep_wall_s": round(sum(s["wall_s"] for s in sweeps), 3),
        "sweep_events": sum(s["events"] for s in sweeps),
    }
    if _stages:
        entry["stages"] = dict(_stages)
    if entry["jobs"] > 1:
        serial = [e for e in entries if e.get("jobs") == 1]
        if serial:
            base = serial[-1].get("sweep_wall_s") or 0.0
            if base and entry["sweep_wall_s"]:
                entry["speedup_vs_serial"] = round(
                    base / entry["sweep_wall_s"], 2
                )
    entries.append(entry)
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(entries, indent=2) + "\n")
    print(f"\nwrote sweep trajectory entry (jobs={entry['jobs']}, "
          f"{len(sweeps)} sweeps) to {path}")
