"""Concrete MSG and CKD variants of the GSpace / PairCalculator chares.

The MSG pair follows the paper's description of the default
implementation exactly: the GS "copies the points into a message and
sends them to the PC, which copies the points into a contiguous data
buffer and increments a counter" (§5.1) — two copies plus a scheduler
trip per (state, plane, PC).

The CKD pair registers the points' destinations inside the PC operand
buffers as CkDirect channels at setup; per iteration each GS issues
bare puts and the PC's callback "counts the number of states that have
sent their points", enqueueing the multiply entry method when complete
— no copies, no per-message scheduling (§5.1).
"""

from __future__ import annotations

import numpy as np

from ...charm import Payload
from ... import ckdirect as ckd
from .config import OPENATOM_OOB, OpenAtomConfig
from .gspace import GSpaceBase
from .paircalc import PairCalcBase

# ---------------------------------------------------------------------------
# Message-based
# ---------------------------------------------------------------------------


class GSpaceMsg(GSpaceBase):
    """GSpace chare, message-based forward path."""
    def setup(self) -> None:
        """Entry method: wire channels / join the setup barrier."""
        self.contribute(callback=self.monitor.callback())

    def _send_points(self) -> None:
        cfg = self.cfg
        payload = (
            Payload(data=self.points, pack=True)
            if self.points is not None
            else Payload(nbytes=cfg.points_bytes, pack=True)
        )
        pc = self.pc_proxy
        for j in range(cfg.nblocks):  # I am a left-side state
            pc[(self.block, j, self.plane)].points_msg(
                payload, "left", self.offset
            )
        for i in range(cfg.nblocks):  # I am a right-side state
            pc[(i, self.block, self.plane)].points_msg(
                payload, "right", self.offset
            )


class PairCalcMsg(PairCalcBase):
    """PairCalculator chare, message-based inputs."""
    def setup(self) -> None:
        """Entry method: wire channels / join the setup barrier."""
        pass  # nothing to wire

    def points_msg(self, payload: Payload, side: str, offset: int) -> None:
        """Entry method: receive one state's points (copied into the operand)."""
        dest = self.slot(side, offset)
        if self.cfg.validate and payload.data is not None:
            dest.array[...] = payload.data
        # "copies the points into a contiguous data buffer" — §5.1
        self.charge_pack(dest.nbytes)
        self._input_landed()


# ---------------------------------------------------------------------------
# CkDirect-based
# ---------------------------------------------------------------------------


class GSpaceCkd(GSpaceBase):
    """GSpace chare, CkDirect forward path."""
    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.put_handles = []
        self._expected_assocs = 2 * self.cfg.nblocks

    def setup(self) -> None:
        """Entry method: wire channels / join the setup barrier."""
        pass  # PCs create the handles and ship them here

    def take_handle(self, handle) -> None:
        """Entry method: associate my buffer with a shipped handle."""
        ckd.assoc_local(self, handle, self.send_buffer())
        self.put_handles.append(handle)
        if len(self.put_handles) == self._expected_assocs:
            self.contribute(callback=self.monitor.callback())

    def _send_points(self) -> None:
        for h in self.put_handles:
            ckd.put(h)


class PairCalcCkd(PairCalcBase):
    """PairCalculator chare, CkDirect inputs."""
    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.recv_handles = []

    def setup(self) -> None:
        """Entry method: wire channels / join the setup barrier."""
        cfg = self.cfg
        gs = self.gs_proxy
        for side, block in (("left", self.left_block), ("right", self.right_block)):
            for off in range(cfg.grain):
                state = block * cfg.grain + off
                h = ckd.create_handle(
                    self,
                    self.slot(side, off),
                    OPENATOM_OOB,
                    self._on_points,
                    name=f"pc{self.thisIndex}:{side}{off}",
                )
                self.recv_handles.append(h)
                gs[(state, self.plane)].take_handle(h)

    def _on_points(self, _cbdata) -> None:
        """Completion callback: a plain function call that only counts
        (the multiply is enqueued when the count completes — §5.1)."""
        self._input_landed()

    def _pre_backward(self) -> None:
        if self.cfg.polling == "naive":
            # Re-arm and resume polling immediately: the handles then
            # sit in the polling queue through every unrelated phase,
            # taxing each scheduler iteration (§5.2).
            for h in self.recv_handles:
                ckd.ready(h)
        else:
            # Phased: mark now (buffer is free), poll only when the
            # PairCalculator phase is imminent.
            for h in self.recv_handles:
                ckd.ready_mark(h)

    def arm(self) -> None:
        """Phase notification preceding the PairCalculator phase:
        resume polling (``CkDirect_readyPollQ``).  Idempotent for
        handles that are already polled (iteration 1) and immediately
        detectable for puts that raced the notification — exactly the
        no-message-lost property §2.1 promises."""
        if self.cfg.polling == "phased":
            for h in self.recv_handles:
                # a channel whose data already arrived *and* was
                # consumed this phase (possible in the first iteration,
                # where creation left it armed and polled) re-arms in
                # _pre_backward instead
                if h.state is not ckd.ChannelState.CONSUMED:
                    ckd.ready_poll_q(h)


# ---------------------------------------------------------------------------
# Extension: CkDirect in the backward path too (§5.2's anticipation)
# ---------------------------------------------------------------------------


class GSpaceCkdFull(GSpaceCkd):
    """GSpace for the "ckd-full" variant: the orthonormalization
    *returns* also arrive through CkDirect channels — the paper's
    anticipated next step ("further improvements ... when the CkDirect
    optimization is integrated into other phases of the computation").

    Each GS registers one return channel per left-side PC; the put
    completion callback counts and, when all returns landed, enqueues
    the correction as an entry method (the same lightweight-callback
    discipline as the forward path)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.return_handles = []
        self._corr_enqueued = False

    def setup(self) -> None:
        """Entry method: wire channels / join the setup barrier."""
        from ...util.buffers import Buffer
        from .config import OPENATOM_OOB

        cfg = self.cfg
        pc = self.pc_proxy
        for j in range(cfg.nblocks):
            recv = (
                Buffer(array=np.zeros_like(self.points))
                if self.points is not None
                else Buffer(nbytes=cfg.points_bytes)
            )
            h = ckd.create_handle(
                self,
                recv,
                OPENATOM_OOB,
                self._on_return,
                name=f"gs{self.thisIndex}:ret{j}",
            )
            self.return_handles.append(h)
            pc[(self.block, j, self.plane)].take_return_handle(h, self.offset)

    def _on_return(self, _cbdata) -> None:
        self.got_returns += 1
        if (
            self.got_returns == self._expected_returns()
            and not self._corr_enqueued
        ):
            self._corr_enqueued = True
            self.proxy[self.thisIndex].apply_correction()

    def apply_correction(self) -> None:
        """Entry method: fold the returned corrections into my points."""
        self._corr_enqueued = False
        self.charge_pack(self.cfg.points_bytes)
        if self.points is not None:
            np.multiply(self.points, 0.5, out=self.points)
            np.add(self.points, 0.5, out=self.points)
        self.got_returns = 0
        for h in self.return_handles:
            ckd.ready(h)
        self._rest_phase()


class PairCalcCkdFull(PairCalcCkd):
    """PairCalculator for "ckd-full": backward results go out as puts
    from a persistent per-state staging buffer instead of messages."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.return_puts = {}  # left offset -> handle
        if self.cfg.validate:
            self._return_stage = np.zeros(
                (self.cfg.grain, self.cfg.points_per_plane)
            ) + 1.0  # corrected points stand-in, inside (0, 2)
        else:
            self._return_stage = None

    def take_return_handle(self, handle, offset) -> None:
        """Entry method: bind my return staging row to a GS channel."""
        from ...util.buffers import Buffer

        src = (
            Buffer(array=self._return_stage[offset])
            if self._return_stage is not None
            else Buffer(nbytes=self.cfg.points_bytes)
        )
        ckd.assoc_local(self, handle, src)
        self.return_puts[offset] = handle

    def backward(self, _ortho_payload) -> None:
        """Entry method: run the backward transform and return results."""
        cfg = self.cfg
        flops = 2 * cfg.points_per_plane * cfg.grain * cfg.grain
        self.charge(
            flops * cfg.pc_work_scale / self.rt.machine.compute.dgemm_flops_per_sec
        )
        for h in self.return_puts.values():
            ckd.put(h)
