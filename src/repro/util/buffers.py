"""Communication buffers.

Every buffer handed to the communication layers (Charm++ messages,
CkDirect channels, simulated MPI) is wrapped in a :class:`Buffer`.
Two backings exist:

* **real** — wraps a ``numpy`` array (possibly a *view* into a larger
  array, e.g. a matrix row or a halo face).  Data movement is actually
  performed, so application results can be validated bit-for-bit
  against sequential references.  This is the whole point of CkDirect:
  the receiver registers a view of exactly the memory where the data
  is needed, and a put lands there with no further copy.
* **virtual** — carries only a byte count.  Used for paper-scale
  performance runs where materializing 10^8-element grids would be
  wasteful; the simulation's *timing* is unaffected because every cost
  model charges from ``nbytes``.

Following the HPC-Python guidance this module never copies when a view
suffices: :meth:`Buffer.view` re-wraps a slice without duplicating
data, and :meth:`Buffer.copy_from` is the single explicit copy point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class BufferError_(ValueError):
    """Raised for buffer misuse (size/dtype mismatch, virtual access)."""


class Buffer:
    """A byte region participating in simulated communication."""

    __slots__ = ("array", "_nbytes", "name")

    def __init__(
        self,
        array: Optional[np.ndarray] = None,
        nbytes: Optional[int] = None,
        name: str = "",
    ) -> None:
        if (array is None) == (nbytes is None):
            raise BufferError_("provide exactly one of array= or nbytes=")
        if array is not None:
            if not isinstance(array, np.ndarray):
                raise BufferError_(f"array must be numpy.ndarray, got {type(array)}")
            self.array = array
            self._nbytes = int(array.nbytes)
        else:
            if nbytes is None or nbytes <= 0:
                raise BufferError_(f"nbytes must be positive, got {nbytes!r}")
            self.array = None
            self._nbytes = int(nbytes)
        self.name = name

    # ------------------------------------------------------------------

    @classmethod
    def real(cls, array: np.ndarray, name: str = "") -> "Buffer":
        """Wrap a numpy array (possibly a view)."""
        return cls(array=array, name=name)

    @classmethod
    def virtual(cls, nbytes: int, name: str = "") -> "Buffer":
        """Create a size-only buffer (timing runs)."""
        return cls(nbytes=nbytes, name=name)

    @property
    def nbytes(self) -> int:
        """Size in bytes."""
        return self._nbytes

    @property
    def is_virtual(self) -> bool:
        """True when no real data backs this payload."""
        return self.array is None

    # ------------------------------------------------------------------
    # Element access (used for the out-of-band sentinel)
    # ------------------------------------------------------------------

    def _last_index(self) -> tuple:
        assert self.array is not None
        return np.unravel_index(self.array.size - 1, self.array.shape)

    def get_last(self):
        """Value of the final element (the paper's trailing double word)."""
        if self.array is None:
            raise BufferError_("virtual buffers have no elements")
        return self.array[self._last_index()]

    def set_last(self, value) -> None:
        """Overwrite the final element; works on non-contiguous views."""
        if self.array is None:
            raise BufferError_("virtual buffers have no elements")
        self.array[self._last_index()] = value

    # ------------------------------------------------------------------
    # Data movement
    # ------------------------------------------------------------------

    def copy_from(self, src: "Buffer") -> None:
        """Copy ``src``'s contents into this buffer (the one real copy).

        Virtual endpoints only validate sizes.  Real endpoints require
        matching dtype and element counts; shapes may differ (a put of
        a flat staging buffer into a 2-D view is legal as long as the
        element counts agree), in which case the *source* is reshaped —
        sources are contiguous send buffers, so this reshape is free.
        """
        if src.nbytes != self.nbytes:
            raise BufferError_(
                f"size mismatch: src={src.nbytes}B dst={self.nbytes}B"
            )
        if self.array is None or src.array is None:
            return  # virtual on either side: timing-only transfer
        if src.array.dtype != self.array.dtype:
            raise BufferError_(
                f"dtype mismatch: src={src.array.dtype} dst={self.array.dtype}"
            )
        if src.array.shape == self.array.shape:
            np.copyto(self.array, src.array)
        else:
            np.copyto(self.array, np.ascontiguousarray(src.array).reshape(self.array.shape))

    def snapshot(self) -> Optional[np.ndarray]:
        """An owning copy of the current contents (None when virtual).

        Used by message marshalling: packing a Charm++ message *is* a
        copy, and we perform it for real so that in-flight messages are
        insulated from later writes to the source buffer.
        """
        if self.array is None:
            return None
        return np.array(self.array, copy=True)

    def view(self, key) -> "Buffer":
        """Wrap a sub-region without copying (real buffers only)."""
        if self.array is None:
            raise BufferError_("cannot take a view of a virtual buffer")
        sub = self.array[key]
        return Buffer(array=sub, name=f"{self.name}[view]")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "virtual" if self.is_virtual else f"real{getattr(self.array, 'shape', '')}"
        return f"<Buffer {self.name!r} {kind} {self._nbytes}B>"
