"""Benchmark: sharded-engine speedup on the 1024-PE full-scale stencil.

The parallel engine partitions one large run's simulated PEs over N
shard processes (``repro.sim.parallel``).  This benchmark runs the
paper's full-scale stencil point (1024 PEs, 1024x1024x512 domain,
virtualization 8) at 1/2/4/8 shards and asserts

* **identity** — iteration times and event counts are bit-identical at
  every shard count (the engine's core guarantee, here checked at the
  scale the engine exists for), and
* **speedup** — the per-shard CPU-time critical path
  (``max(shard_cpu_times)``, the wall-clock lower bound on a host with
  enough cores) improves by at least 2.5x at 4 shards.

CPU critical path is the primary metric because the CI container may
expose a single core: the forked shards then time-share it and elapsed
wall-clock physically cannot improve.  On a host with >= 4 cores the
elapsed-time speedup is asserted as well.

The measured trajectory is appended to ``results/BENCH_sweeps.json``
(kind ``parallel_engine``), so successive PRs track how the shard
scaling moves.
"""

from __future__ import annotations

import json
import os
import time

from conftest import BENCH_JSON_DEFAULT, save_report
from repro.apps.stencil.driver import run_stencil
from repro.network.params import ABE

PES = 1024
ITERATIONS = 2
SHARDS = (1, 2, 4, 8)
TARGET_SPEEDUP = 2.5


def _measure(shards: int, engine: str = None) -> dict:
    t0 = time.perf_counter()
    r = run_stencil(ABE, PES, iterations=ITERATIONS, mode="ckd",
                    shards=shards, engine=engine, keep_runtime=True)
    wall = time.perf_counter() - t0
    return {
        "shards": shards,
        "wall_s": round(wall, 3),
        "crit_cpu_s": round(max(r.runtime.shard_cpu_times), 3),
        "events": r.events,
        "iter_times": r.iter_times,
        "mean_iter_ms": round(r.mean_iter_time * 1e3, 6),
        "rounds": r.runtime.parallel_rounds,
        "timewarp": r.runtime.timewarp_stats,
    }


def _append_trajectory(rows: list) -> None:
    path = BENCH_JSON_DEFAULT
    entries = []
    if path.exists():
        try:
            data = json.loads(path.read_text())
            entries = data if isinstance(data, list) else []
        except (OSError, ValueError):
            entries = []
    entries.append({
        "kind": "parallel_engine",
        "point": f"stencil ckd {PES} PEs full-scale, {ITERATIONS} iters",
        "cpu_count": os.cpu_count(),
        "trajectory": [
            {k: row[k] for k in
             ("shards", "wall_s", "crit_cpu_s", "events")}
            for row in rows
        ],
        "speedup_cpu_at_4": round(
            rows[0]["crit_cpu_s"] / next(
                r["crit_cpu_s"] for r in rows if r["shards"] == 4), 2
        ),
    })
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(entries, indent=2) + "\n")


def test_shard_speedup_full_scale_stencil():
    rows = [_measure(s) for s in SHARDS]
    base = rows[0]

    lines = [
        f"Parallel engine: stencil ckd, {PES} PEs full-scale "
        f"({ITERATIONS} iterations, host cores: {os.cpu_count()})",
        "=" * 66,
        f"{'shards':>6}  {'wall s':>8}  {'crit cpu s':>10}  "
        f"{'cpu speedup':>11}  {'events':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row['shards']:>6}  {row['wall_s']:>8.3f}  "
            f"{row['crit_cpu_s']:>10.3f}  "
            f"{base['crit_cpu_s'] / row['crit_cpu_s']:>11.2f}  "
            f"{row['events']:>9}"
        )
    save_report("parallel_engine", "\n".join(lines))
    _append_trajectory(rows)

    # Identity at scale: every shard count reproduces the same run.
    for row in rows[1:]:
        assert row["iter_times"] == base["iter_times"], (
            f"shards={row['shards']} diverged from the 1-shard baseline"
        )
        assert row["events"] == base["events"]

    four = next(r for r in rows if r["shards"] == 4)
    cpu_speedup = base["crit_cpu_s"] / four["crit_cpu_s"]
    assert cpu_speedup >= TARGET_SPEEDUP, (
        f"CPU critical-path speedup at 4 shards is {cpu_speedup:.2f}x, "
        f"target {TARGET_SPEEDUP}x "
        f"({base['crit_cpu_s']:.2f}s -> {four['crit_cpu_s']:.2f}s)"
    )

    cores = os.cpu_count() or 1
    if cores >= 4:
        wall_speedup = base["wall_s"] / four["wall_s"]
        assert wall_speedup >= TARGET_SPEEDUP, (
            f"elapsed speedup at 4 shards is {wall_speedup:.2f}x on a "
            f"{cores}-core host, target {TARGET_SPEEDUP}x"
        )


def test_optimistic_vs_conservative_full_scale_stencil():
    """Time Warp vs epoch windows at 4 shards on the full-scale point.

    The optimistic engine's win is *synchronization elimination*: the
    adaptive horizon merges quiet conservative windows into wide
    speculative ones, cutting coordinator barriers about threefold
    while staying bit-identical with zero-to-few rollbacks (ABE's
    InfiniBand delta is small, so conservative windows are narrow and
    plentiful — the low-lookahead regime Time Warp targets).  Each
    barrier costs a pipe round-trip per shard, so on a host with
    enough cores for the shards the round reduction is a wall-clock
    win; on a single-core CI container the shards time-share the core
    and wall-clock physically tracks summed CPU instead, so — exactly
    like the shard-speedup test above — the wall assertion is gated on
    the core count and the core-independent mechanism (round ratio,
    CPU parity, identity) is asserted always.
    """
    cons = _measure(4)
    opt = _measure(4, engine="optimistic")

    stats = opt["timewarp"]
    cores = os.cpu_count() or 1
    lines = [
        f"Time Warp engine: stencil ckd, {PES} PEs full-scale "
        f"({ITERATIONS} iterations, 4 shards, host cores: {cores})",
        "=" * 66,
        f"{'engine':>12}  {'wall s':>8}  {'crit cpu s':>10}  "
        f"{'rounds':>7}  {'events':>9}",
        f"{'conservative':>12}  {cons['wall_s']:>8.3f}  "
        f"{cons['crit_cpu_s']:>10.3f}  {cons['rounds']:>7}  "
        f"{cons['events']:>9}",
        f"{'optimistic':>12}  {opt['wall_s']:>8.3f}  "
        f"{opt['crit_cpu_s']:>10.3f}  {opt['rounds']:>7}  "
        f"{opt['events']:>9}",
        f"rollbacks={stats['rollbacks']} antis={stats['antis']} "
        f"checkpoints={stats['checkpoints']} "
        f"events_rolled_back={stats['events_rolled_back']}",
    ]
    save_report("timewarp_engine", "\n".join(lines))

    path = BENCH_JSON_DEFAULT
    entries = []
    if path.exists():
        try:
            data = json.loads(path.read_text())
            entries = data if isinstance(data, list) else []
        except (OSError, ValueError):
            entries = []
    entries.append({
        "kind": "timewarp_engine",
        "point": f"stencil ckd {PES} PEs full-scale, {ITERATIONS} iters, "
                 "4 shards",
        "cpu_count": cores,
        "conservative": {k: cons[k] for k in
                         ("wall_s", "crit_cpu_s", "rounds", "events")},
        "optimistic": {k: opt[k] for k in
                       ("wall_s", "crit_cpu_s", "rounds", "events")},
        "round_ratio": round(cons["rounds"] / opt["rounds"], 2),
        "timewarp_stats": stats,
    })
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(entries, indent=2) + "\n")

    # Bit-identity across engine modes.
    assert opt["iter_times"] == cons["iter_times"]
    assert opt["events"] == cons["events"]
    # The mechanism: at least a 2x barrier reduction at CPU parity.
    assert opt["rounds"] * 2 <= cons["rounds"], (
        f"optimistic ran {opt['rounds']} GVT rounds vs "
        f"{cons['rounds']} conservative windows — expected >= 2x fewer"
    )
    assert opt["crit_cpu_s"] <= cons["crit_cpu_s"] * 1.35, (
        f"optimistic critical-path CPU {opt['crit_cpu_s']:.2f}s exceeds "
        f"conservative {cons['crit_cpu_s']:.2f}s by more than 35%"
    )
    if cores >= 4:
        assert opt["wall_s"] < cons["wall_s"], (
            f"optimistic wall {opt['wall_s']:.2f}s did not beat "
            f"conservative {cons['wall_s']:.2f}s on a {cores}-core host"
        )
