"""Unit tests for the PE scheduler loop and queue accounting."""

import pytest

from repro import ABE, SURVEYOR, Chare, Runtime
from repro.charm import Payload
from repro.charm.scheduler import SchedulerQueue
from repro.charm.message import Message


def _msg(i=0):
    return Message(1, (0,), "m", (), 0, None, 0.0)


def test_scheduler_queue_fifo():
    q = SchedulerQueue()
    msgs = [_msg(i) for i in range(3)]
    for m in msgs:
        q.push(m)
    assert [q.pop() for _ in range(3)] == msgs


def test_scheduler_queue_stats():
    q = SchedulerQueue()
    for i in range(4):
        q.push(_msg(i))
    assert q.max_occupancy == 4
    q.pop()
    q.pop()
    assert q.dequeues == 2
    # occupancy recorded at pop time (before removing): 4 then 3
    assert q.occupancy_sum == 7
    assert q.mean_occupancy == pytest.approx(3.5)


class Worker(Chare):
    def __init__(self):
        self.times = []

    def tick(self):
        self.times.append(self.now)

    def busy(self, dt):
        self.charge(dt)
        self.times.append(self.now)


def test_one_message_at_a_time():
    """Two queued entries on one PE serialize; their observed times
    differ by at least the scheduling overhead."""
    rt = Runtime(ABE, n_pes=1)
    arr = rt.create_array(Worker, dims=(1,))
    arr.proxy[0].tick()
    arr.proxy[0].tick()
    rt.run()
    t1, t2 = arr.element(0).times
    charm = ABE.charm
    assert t2 - t1 >= charm.sched_overhead


def test_queue_occupancy_surcharge():
    """Messages dequeued from a deeper queue cost more (the paper's
    queue-occupancy effect) — total time for N messages grows faster
    than N x single-message cost."""

    def total_time(n):
        rt = Runtime(ABE, n_pes=1)
        arr = rt.create_array(Worker, dims=(1,))
        for _ in range(n):
            arr.proxy[0].tick()
        rt.run()
        return rt.now

    t10 = total_time(10)
    t1 = total_time(1)
    assert t10 > 10 * t1


def test_busy_until_prevents_overlap():
    rt = Runtime(ABE, n_pes=1)
    arr = rt.create_array(Worker, dims=(1,))
    arr.proxy[0].busy(1e-3)
    arr.proxy[0].busy(1e-3)
    rt.run()
    t1, t2 = arr.element(0).times
    assert t2 - t1 >= 1e-3


def test_rts_copy_charged_on_bgp_only():
    """The BG/P two-sided path charges the saturating receive copy;
    Infiniband does not."""

    def delivery_time(machine):
        from repro.charm import CustomMap

        rt = Runtime(machine, n_pes=2 * machine.cores_per_node)
        arr = rt.create_array(
            Worker, dims=(2,),
            mapping=CustomMap(lambda idx, dims, n: 0 if idx[0] == 0 else n - 1),
        )

        class Sender(Chare):
            def go(self):
                arr.proxy[1].tick_payload(Payload.virtual(20_000))

        class W2(Worker):
            pass

        return rt

    # direct comparison via PE cost formula: construct messages and
    # inspect the trace instead (simpler): BGP default path must charge
    # more per delivered byte than IB at sizes below the saturation cap
    from repro.apps.pingpong import charm_pingpong

    bgp_small = charm_pingpong(SURVEYOR, 100, 20).rtt
    bgp_mid = charm_pingpong(SURVEYOR, 20_000, 20).rtt
    wire = 19_900 * SURVEYOR.net.beta * 2
    # the extra beyond wire time includes the rts copy (~2x1.3e-4 us/B)
    extra = (bgp_mid - bgp_small) - wire
    assert extra > 19_900 * SURVEYOR.charm.rts_copy_per_byte  # both directions


def test_direct_queue_bypasses_scheduler_costs():
    """BG/P CkDirect completions cost handler+callback, not a full
    scheduler dispatch: with identical wire, ckd < charm messages."""
    from repro.apps.pingpong import charm_pingpong, ckdirect_pingpong

    msg = charm_pingpong(SURVEYOR, 1000, 20).rtt
    ckd = ckdirect_pingpong(SURVEYOR, 1000, 20).rtt
    assert ckd < msg
