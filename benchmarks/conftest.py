"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper, prints
it (visible with ``pytest -s``), saves it under
``benchmarks/results/``, and asserts the paper's shape claims.

Suite-wide options:

``--jobs N``
    Fan each artifact's sweep points over N worker processes
    (exported as ``REPRO_JOBS``, which the runners resolve).  Reports
    and assertions are byte-identical at any N — the determinism
    regression test pins this — so it is purely a wall-clock knob.

``--bench-json [PATH]``
    Append this session's timing trajectory to ``PATH`` (default
    ``benchmarks/results/BENCH_sweeps.json``): wall-clock per
    benchmark module, per-sweep wall/events/events-per-second records,
    and the parallel speedup against the file's most recent serial
    entry.  Successive sessions accumulate, so the file tracks how
    the simulator's throughput moves across PRs.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from collections import defaultdict

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_JSON_DEFAULT = RESULTS_DIR / "BENCH_sweeps.json"

#: module basename -> accumulated test wall-clock seconds.
_module_wall = defaultdict(float)
_session_t0 = 0.0


def save_report(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def pytest_addoption(parser):
    group = parser.getgroup("repro sweeps")
    group.addoption(
        "--jobs", type=int, default=None, metavar="N",
        help="run sweep points over N worker processes (sets REPRO_JOBS; "
             "results are identical at any N)",
    )
    group.addoption(
        "--bench-json", nargs="?", const=str(BENCH_JSON_DEFAULT),
        default=None, metavar="PATH",
        help="append this session's sweep timings to PATH "
             f"(default {BENCH_JSON_DEFAULT})",
    )


def pytest_configure(config):
    global _session_t0
    _session_t0 = time.perf_counter()
    jobs = config.getoption("--jobs")
    if jobs is not None:
        if jobs < 1:
            raise pytest.UsageError(f"--jobs must be at least 1, got {jobs}")
        os.environ["REPRO_JOBS"] = str(jobs)


def pytest_runtest_logreport(report):
    # All phases: module-scoped artifact fixtures run during "setup".
    module = report.nodeid.split("::", 1)[0]
    _module_wall[pathlib.PurePosixPath(module).name] += report.duration


def _load_entries(path: pathlib.Path):
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    return data if isinstance(data, list) else []


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json")
    if not path:
        return
    from repro.sweep import resolve_jobs, stats

    path = pathlib.Path(path)
    entries = _load_entries(path)
    sweeps = stats.drain()
    entry = {
        "jobs": resolve_jobs(session.config.getoption("--jobs")),
        "exit_status": int(exitstatus),
        "total_wall_s": round(time.perf_counter() - _session_t0, 3),
        "modules": {k: round(v, 3) for k, v in sorted(_module_wall.items())},
        "sweeps": sweeps,
        "sweep_wall_s": round(sum(s["wall_s"] for s in sweeps), 3),
        "sweep_events": sum(s["events"] for s in sweeps),
    }
    if entry["jobs"] > 1:
        serial = [e for e in entries if e.get("jobs") == 1]
        if serial:
            base = serial[-1].get("sweep_wall_s") or 0.0
            if base and entry["sweep_wall_s"]:
                entry["speedup_vs_serial"] = round(
                    base / entry["sweep_wall_s"], 2
                )
    entries.append(entry)
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(entries, indent=2) + "\n")
    print(f"\nwrote sweep trajectory entry (jobs={entry['jobs']}, "
          f"{len(sweeps)} sweeps) to {path}")
