"""Sharded conservative-lookahead parallel DES engine.

One large run is partitioned across N worker processes ("shards"), each
owning a contiguous block of *nodes* (see
:func:`repro.network.topology.shard_nodes`) and running its own
simulator over the full replicated runtime.  The engine is
event-queue-agnostic: it drives each shard only through the
``next_event_time()`` / ``run_before(bound)`` / ``schedule_batch``
surface, which every :mod:`repro.sim.eventq` implementation (heap,
calendar, compiled) honors with the same ``(time, priority, seq)``
pop order — so ``--eventq`` composes freely with ``--shards`` and the
bit-identity guarantee below is unchanged.  Worker processes inherit
``REPRO_EVENTQ`` through fork, so all shards run the same queue.
Shards advance in lock-step **epoch windows**:

1. At a barrier every shard reports its next local event time and the
   cross-shard transfer records it buffered during the last window.
2. The coordinator (shard 0) computes ``M``, the global minimum over
   those times and the head-arrival times of the exchanged records,
   and broadcasts the window bound ``W = M + delta`` where ``delta``
   is the fabric's minimum cross-shard end-to-end latency
   (:meth:`~repro.network.base.Fabric.min_remote_latency`).
3. Every shard admits the records routed to it and runs all events
   strictly below ``W``.

The window is *conservative*: every event fired inside a window has
time ``t >= M``, and any cross-shard record it creates has head
arrival ``>= t + delta >= W`` — so no shard ever receives a record in
its simulated past, and no rollback is ever needed.

Determinism: arrivals are admitted per destination node in canonical
``(head_arrival, dst, src, k)`` order — ``k`` a per-source-PE counter
that is independent of the shard count — so ``--shards N`` produces
**bit-identical** results to ``--shards 1`` (which runs in-process but
with the same canonical admission order; the legacy no-shards path is
untouched).  Trace event/message *ids* are process-local and therefore
not part of that guarantee; all report content is.

Cross-shard payloads travel in wire form: charm messages are re-built
on the destination shard, CkDirect handles crossing in a message
become sender-side *proxies* (``handle.remote``) whose puts carry the
handle id plus a snapshot of the source buffer back to the owning
shard's real handle.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..network.topology import shard_nodes
from ..util.buffers import Buffer
from .shm import channel_pair, merge_channel_stats

if TYPE_CHECKING:  # pragma: no cover
    from ..charm.runtime import Runtime


class ParallelEngineError(RuntimeError):
    """A sharded run violated an engine invariant (or a shard died)."""


# ---------------------------------------------------------------------------
# Shard-count resolution
# ---------------------------------------------------------------------------


def resolve_shards(shards: Optional[int] = None) -> Optional[int]:
    """Shard count: explicit argument, else ``REPRO_SHARDS``, else None.

    ``None`` selects the untouched legacy serial engine; any integer
    ``>= 1`` (including 1) selects engine semantics, the baseline the
    bit-identity guarantee is stated against.

    Precedence is *flag over environment over default* (matching
    :func:`repro.sweep.runner.resolve_jobs`): an explicit ``shards``
    argument (the ``--shards`` flag) wins; ``REPRO_SHARDS`` applies
    only when no argument is given.  Values below 1 or non-integer
    env strings raise :class:`ParallelEngineError` rather than being
    silently clamped.
    """
    if shards is not None:
        shards = int(shards)
        if shards < 1:
            raise ParallelEngineError(f"shards must be at least 1, got {shards}")
        return shards
    env = os.environ.get("REPRO_SHARDS", "").strip()
    if env:
        try:
            val = int(env)
        except ValueError:
            raise ParallelEngineError(
                f"REPRO_SHARDS must be a positive integer, got {env!r}"
            ) from None
        if val < 1:
            raise ParallelEngineError(
                f"REPRO_SHARDS must be at least 1, got {val}"
            )
        return val
    return None


# ---------------------------------------------------------------------------
# Wire codec for cross-shard records
# ---------------------------------------------------------------------------


class _HRef:
    """Wire form of a CkDirect handle crossing shards (in a message).

    Carries exactly what the sending side needs to build a proxy; the
    receiver-side callback and buffer stay with the real handle on the
    shard that created it.
    """

    __slots__ = ("hid", "recv_rank", "nbytes", "oob", "name")

    def __init__(self, hid, recv_rank, nbytes, oob, name) -> None:
        self.hid = hid
        self.recv_rank = recv_rank
        self.nbytes = nbytes
        self.oob = oob
        self.name = name


class _CRef:
    """Wire form of a CkCallback crossing shards (send/bcast/ignore)."""

    __slots__ = ("kind", "array_id", "index", "method")

    def __init__(self, kind, array_id, index, method) -> None:
        self.kind = kind
        self.array_id = array_id
        self.index = index
        self.method = method


def _encode_args(args: tuple) -> tuple:
    """Encode one message's argument tuple for the wire.

    Only top-level arguments are translated (matching the runtime's
    ``wrap_args`` convention); handles/callbacks nested inside user
    containers are not supported across shards.
    """
    from ..charm.callback import CkCallback
    from ..ckdirect.handle import CkDirectHandle

    out = []
    for a in args:
        if isinstance(a, CkDirectHandle):
            out.append(_HRef(a.hid, a.recv_pe.rank, a.recv_buffer.nbytes,
                             a.oob, a.name))
        elif isinstance(a, CkCallback):
            if a.kind == "host":
                raise ParallelEngineError(
                    "a host-function callback cannot cross shards"
                )
            out.append(_CRef(a.kind, a.array.id if a.array is not None else None,
                             a.index, a.method))
        else:
            out.append(a)
    return tuple(out)


def _decode_args(rt: "Runtime", args: tuple) -> tuple:
    from ..charm.callback import CkCallback
    from ..ckdirect.handle import CkDirectHandle

    out = []
    for a in args:
        if isinstance(a, _HRef):
            h = CkDirectHandle(
                rt, rt.pes[a.recv_rank], Buffer.virtual(a.nbytes),
                a.oob, CkCallback.ignore(), None, a.name,
            )
            h.hid = a.hid  # the owning shard's id, carried back by puts
            h.remote = True
            out.append(h)
        elif isinstance(a, _CRef):
            if a.kind == "ignore":
                out.append(CkCallback.ignore())
            else:
                out.append(CkCallback(
                    a.kind, array=rt.collective(a.array_id),
                    index=a.index, method=a.method,
                ))
        else:
            out.append(a)
    return tuple(out)


def encode_record(rec: tuple) -> tuple:
    """Turn one outbox record into its picklable wire form."""
    ha, dst, src, k, stream, occ, wire, payload = rec
    if not isinstance(payload, tuple):
        raise ParallelEngineError(
            "a bare-callback transfer crossed shards; engine-mode "
            "services must describe cross-shard arrivals"
        )
    kind = payload[0]
    if kind == "msg":
        m = payload[1]
        payload = ("emsg", m.array_id, m.index, m.method,
                   _encode_args(m.args), m.nbytes, m.src_pe, m.send_time,
                   m.is_internal)
    elif kind == "lput":
        raise ParallelEngineError(
            "a local-handle CkDirect put crossed shards; remote senders "
            "must hold a proxy handle"
        )
    elif kind != "put":
        raise ParallelEngineError(f"unknown descriptor kind {kind!r}")
    return (ha, dst, src, k, stream, occ, wire, payload)


def deliver_remote(rt: "Runtime", dst_rank: int, desc: tuple) -> None:
    """Land one wire-form arrival on its destination PE."""
    kind = desc[0]
    if kind == "emsg":
        from ..charm.message import Message

        (_, array_id, index, method, enc_args, nbytes, src_pe,
         send_time, is_internal) = desc
        msg = Message(array_id, index, method, _decode_args(rt, enc_args),
                      nbytes, src_pe, send_time, is_internal)
        rt.pes[dst_rank].enqueue(msg)
    elif kind == "put":
        from ..ckdirect.api import _complete

        _, hid, snap = desc
        handle = rt._handles.get(hid)
        if handle is None:
            if rt.engine == "optimistic":
                # Mis-speculation artifact: a rollback restored the
                # handle registry below this put's creation point, so
                # the record belongs to a dead timeline.  A committed
                # put's handle registration strictly precedes its
                # arrival (positive latency along the causal chain),
                # and the anti-message that cancels this record always
                # forces a rollback below the current clock — so the
                # skip itself is guaranteed to be rolled back too.
                rt.trace.count("timewarp_misspec_puts")
                return
            raise ParallelEngineError(
                f"cross-shard put for unknown handle #{hid} on "
                f"shard {rt.shard_id}"
            )
        if snap is not None:
            handle.src_buffer = Buffer(array=snap)
        _complete(handle)
    else:
        raise ParallelEngineError(f"unknown arrival descriptor {kind!r}")


# ---------------------------------------------------------------------------
# Shard bring-up and reconciliation payloads
# ---------------------------------------------------------------------------


def _owned_ranks(rt: "Runtime", block: range) -> range:
    cpn = rt.fabric.topology.cores_per_node
    return range(block.start * cpn, min(block.stop * cpn, rt.n_pes))


def _enter_shard(
    rt: "Runtime", shard_id: int, block: range,
    clear_stats: Optional[bool] = None,
) -> dict:
    """Specialize this process to one shard; returns the baselines the
    final reconciliation payload is measured against."""
    rt.shard_id = shard_id
    rt.fabric._owned_nodes = frozenset(block)
    rt._flush_host_sends(owned_ranks=set(_owned_ranks(rt, block)))
    base = {
        "events": rt.sim.events_processed,
        "counters": dict(rt.trace.counters),
        "cpu": time.process_time(),
        "log_len": len(rt.tracer.events) if rt.tracer is not None else 0,
    }
    if clear_stats is None:
        clear_stats = shard_id != 0
    if clear_stats:
        # Children report their whole post-fork stats/samples; anything
        # inherited from before the fork belongs to the parent's copy.
        # Under supervision *every* shard (including 0) is a child of a
        # pristine coordinator, so every shard clears.
        rt.trace.stats.clear()
        rt.trace.samples.clear()
    return base


_PLAIN_SCALARS = (bool, int, float, complex, str, bytes, type(None))


def _is_plain_data(value: Any, depth: int = 0) -> bool:
    """True for values that are pure data (safe to ship between
    processes and overwrite on the receiving twin): scalars, numpy
    arrays, and containers thereof — not runtime wiring like proxies,
    chare arrays, or the Runtime itself."""
    import numpy as np

    if depth > 8:
        return False
    if isinstance(value, _PLAIN_SCALARS) or isinstance(value, np.generic):
        return True
    if isinstance(value, np.ndarray):
        return True
    if isinstance(value, (list, tuple, set, frozenset)):
        return all(_is_plain_data(v, depth + 1) for v in value)
    if isinstance(value, dict):
        return all(
            isinstance(k, _PLAIN_SCALARS) and _is_plain_data(v, depth + 1)
            for k, v in value.items()
        )
    return False


def _host_payload(rt: "Runtime") -> list:
    """Plain-data attributes of the registered host-state objects.

    Under supervision shard 0 runs in a child, so host callbacks
    (iteration monitors and the like) mutate the *child's* copies; the
    data attributes ship home in the final payload while
    object-reference attributes (runtime wiring such as ``rt`` or the
    array proxy) keep the parent's originals."""
    return [
        {k: v for k, v in obj.__dict__.items() if _is_plain_data(v)}
        for obj in rt._tw_host_state
    ]


def _final_payload(
    rt: "Runtime", block: range, base: dict, include_host: bool = False,
) -> dict:
    """What a worker shard ships home after its last window."""
    counters = {
        name: val - base["counters"].get(name, 0)
        for name, val in rt.trace.counters.items()
        if val != base["counters"].get(name, 0)
    }
    pes = {
        r: (rt.pes[r].busy_until, rt.pes[r].busy_time)
        for r in _owned_ranks(rt, block)
    }
    states: Dict[tuple, dict] = {}
    owned = set(_owned_ranks(rt, block))
    for aid, arr in rt.arrays.items():
        for idx, elem in arr.elements.items():
            if elem._pe.rank in owned:
                s = elem.shard_state()
                if s is not None:
                    states[(aid, idx)] = s
    events = []
    if rt.tracer is not None:
        events = [
            (e.eid, e.kind, e.run, e.pe, e.category, e.name, e.t0, e.t1,
             e.cause, e.args)
            for e in rt.tracer.events[base["log_len"]:]
        ]
    payload = {
        "now": rt.sim.now,
        "events_processed": rt.sim.events_processed - base["events"],
        "counters": counters,
        "stats": dict(rt.trace.stats),
        "samples": {k: list(v) for k, v in rt.trace.samples.items()},
        "pes": pes,
        "states": states,
        "trace_events": events,
        "cpu": time.process_time() - base["cpu"],
    }
    if include_host:
        payload["host"] = _host_payload(rt)
    return payload


def _merge_final(rt: "Runtime", payload: dict) -> None:
    """Fold one worker shard's reconciliation payload into the parent."""
    rt.sim._now = max(rt.sim._now, payload["now"])
    rt._extra_events += payload["events_processed"]
    for name, delta in payload["counters"].items():
        rt.trace.counters[name] += delta
    for name, st in payload["stats"].items():
        rt.trace.stats[name].merge(st)
    for name, samples in payload["samples"].items():
        rt.trace.samples[name].extend(samples)
    for rank, (busy_until, busy_time) in payload["pes"].items():
        rt.pes[rank].busy_until = busy_until
        rt.pes[rank].busy_time = busy_time
    for (aid, idx), state in payload["states"].items():
        rt.arrays[aid].elements[idx].shard_load(state)
    for obj, attrs in zip(rt._tw_host_state, payload.get("host", ())):
        obj.__dict__.update(attrs)
    log = rt.tracer
    if log is not None and payload["trace_events"]:
        from ..projections.events import TraceEvent

        # Post-fork eids collide across shards; remap into the parent's
        # namespace.  A cause allocated *before* the fork already exists
        # in the parent's log under its original id.
        eid_map = {rec[0]: log.next_id() for rec in payload["trace_events"]}
        for (eid, kind, run, pe, category, name, t0, t1, cause,
             args) in payload["trace_events"]:
            log.events.append(TraceEvent(
                eid_map[eid], kind, run, pe, category, name, t0, t1,
                eid_map.get(cause, cause) if cause is not None else None,
                args,
            ))


# ---------------------------------------------------------------------------
# The epoch loop
# ---------------------------------------------------------------------------


def _make_shard_of_rank(topo, blocks: List[range]):
    """PE rank -> shard id, from the node blocks' PE-rank uppers."""
    bounds = [b.stop * topo.cores_per_node for b in blocks]

    def shard_of_rank(rank: int) -> int:
        for s, hi in enumerate(bounds):
            if rank < hi:
                return s
        raise ParallelEngineError(f"PE {rank} outside every shard")

    return shard_of_rank


def _route_window(
    nexts: List[float], outboxes: List[List[tuple]], n: int, shard_of_rank,
) -> Tuple[float, List[List[tuple]]]:
    """The conservative coordinator's deterministic round computation:
    the global floor ``M`` and the per-shard inboxes for one barrier's
    states.  Shared by the legacy (in-process shard 0) and supervised
    (all-children) coordinator loops so the two can never drift."""
    inboxes: List[List[tuple]] = [[] for _ in range(n)]
    floor = min(nexts)
    for out in outboxes:
        for rec in out:
            if rec[0] < floor:
                floor = rec[0]
            inboxes[shard_of_rank(rec[1])].append(rec)
    return floor, inboxes


def _proc_injector(rt: "Runtime", shard_id: int, incarnation: int):
    """The worker's ProcFaultInjector, or None without a proc plan."""
    plan = getattr(rt, "proc_faults", None)
    if plan is None or not plan.rules:
        return None
    from ..faults.injector import ProcFaultInjector

    return ProcFaultInjector(plan, shard_id, incarnation)


def _shard_worker(
    rt: "Runtime", shard_id: int, block: range, conn,
    incarnation: int = 0, supervised: bool = False,
) -> None:
    """Worker-shard entry point (runs in a forked child)."""
    try:
        base = _enter_shard(rt, shard_id, block,
                            clear_stats=supervised or shard_id != 0)
        pf = _proc_injector(rt, shard_id, incarnation)
        sim, fab = rt.sim, rt.fabric
        round_no = 0
        while True:
            round_no += 1
            if pf is not None:
                pf.at_barrier(round_no)
            outbox = [encode_record(r) for r in fab.take_outbox()]
            conn.send(("state", sim.next_event_time(), outbox))
            msg = conn.recv()
            if msg[0] == "done":
                break
            _, bound, inbox = msg
            for rec in inbox:
                fab.admit_remote(rec)
            sim.run_before(bound)
        conn.send(("final", _final_payload(
            rt, block, base, include_host=supervised and shard_id == 0)))
        conn.close()
    except BaseException:
        try:
            conn.send(("error", shard_id, traceback.format_exc()))
            conn.close()
        except Exception:  # pragma: no cover - pipe already gone
            pass
        os._exit(1)
    os._exit(0)


def _recv(conn, shard_id: int):
    try:
        msg = conn.recv()
    except EOFError:
        raise ParallelEngineError(
            f"shard {shard_id} died without reporting"
        )
    if msg[0] == "error":
        raise ParallelEngineError(
            f"shard {msg[1]} failed:\n{msg[2]}"
        )
    return msg


def _run_serial_inline(rt: "Runtime") -> float:
    """One in-process shard: identical engine semantics, no fork.

    Also the supervised runs' degradation target — the coordinator's
    runtime is untouched (host sends still buffered, no events run),
    so falling back here reproduces the serial run exactly.
    """
    rt._flush_host_sends()
    c0 = time.process_time()
    rt.sim.run()
    # One-entry critical path, measured exactly like the forked
    # shards measure theirs (run phase only) — the speedup
    # benchmark compares max(shard_cpu_times) across shard counts.
    rt.shard_cpu_times = [time.process_time() - c0]
    return rt.sim.now


def _fork_plan(rt: "Runtime") -> Tuple[int, Optional[Any]]:
    """(effective shard count, fork context) for a sharded run.

    Falls back to a single in-process shard (identical semantics, no
    fork) when the topology has fewer nodes than shards were requested,
    when events were scheduled directly on the simulator before the
    run (their shard affinity is unknowable), when the platform has no
    ``fork`` start method, or when the calling process is itself a
    daemonic worker (e.g. a sweep-pool process, which may not fork
    children of its own).
    """
    n = min(rt.shards or 1, rt.fabric.topology.n_nodes)
    if n > 1 and rt.sim.pending_active:
        n = 1
    ctx = None
    if n > 1:
        import multiprocessing as mp

        if mp.current_process().daemon:
            n = 1
        else:
            try:
                ctx = mp.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platform
                n = 1
    return n, ctx


def _reap_shard(conn, proc, graceful_timeout: float = 30.0) -> Optional[int]:
    """Tear one shard down without leaking a zombie, its pipe fds, or
    its shared-memory segments.

    Ladder: close our channel end, join; if still alive ``terminate()``
    and re-join *bounded*; a worker wedged with SIGTERM ignored gets
    ``kill()`` (SIGKILL, uncatchable) and a final reap.  Once the
    process is dead the channel's persistent resources are unlinked
    (``--transport shm``: both ring segments plus any spill segments
    the worker abandoned — no ``/dev/shm`` entry survives even a
    SIGKILL).  Returns the exit code (None only if the child survived
    SIGKILL, which the kernel does not allow for an unblocked
    process).
    """
    if conn is not None:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
    proc.join(timeout=graceful_timeout)
    if proc.is_alive():  # hung shard: escalate, bounded
        proc.terminate()
        proc.join(timeout=5.0)
    if proc.is_alive():  # SIGTERM ignored/blocked: SIGKILL
        proc.kill()
        proc.join(timeout=10.0)
    code = proc.exitcode
    if code is not None:
        proc.close()  # release the Process object's fds now, not at gc
    if conn is not None:
        unlink = getattr(conn, "unlink", None)
        if unlink is not None:
            unlink()
    return code


def run_sharded(rt: "Runtime") -> float:
    """Run ``rt`` to completion under the sharded engine.

    Serial fallbacks are listed on :func:`_fork_plan`.  With
    supervision on (the default; ``REPRO_SUPERVISE=0`` disables) the
    run goes through :func:`repro.resilience.supervisor.
    supervise_conservative`, which forks *all* shards and restarts
    crashed or hung workers deterministically.
    """
    sim, fab = rt.sim, rt.fabric
    topo = fab.topology
    n, ctx = _fork_plan(rt)
    if n == 1:
        return _run_serial_inline(rt)

    blocks = shard_nodes(topo, n)
    delta = fab.min_remote_latency()
    if not delta > 0.0:
        raise ParallelEngineError(
            f"fabric lookahead must be positive, got {delta!r}"
        )

    from ..resilience.supervisor import resolve_supervise, supervise_conservative

    if resolve_supervise():
        return supervise_conservative(rt, ctx, blocks, delta)

    conns: List[Any] = []
    procs = []
    for s in range(1, n):
        # Pair construction is interleaved with the forks: each child
        # end is closed before the next pair exists, so no worker
        # inherits a sibling's lifeline child end — otherwise the
        # coordinator's EOF signal for a crashed shard would not fire
        # until every later-started sibling also exited.
        parent_end, child_end = channel_pair(ctx, rt.transport, f"s{s}")
        p = ctx.Process(
            target=_shard_worker,
            args=(rt, s, blocks[s], child_end),
            daemon=True, name=f"shard{s}",
        )
        p.start()
        child_end.close()
        conns.append(parent_end)
        procs.append(p)

    try:
        base = _enter_shard(rt, 0, blocks[0])
        shard_of_rank = _make_shard_of_rank(topo, blocks)

        rounds = 0
        while True:
            rounds += 1
            nexts = [sim.next_event_time()]
            outboxes = [[encode_record(r) for r in fab.take_outbox()]]
            for s, conn in enumerate(conns, start=1):
                msg = _recv(conn, s)
                nexts.append(msg[1])
                outboxes.append(msg[2])
            floor, inboxes = _route_window(nexts, outboxes, n, shard_of_rank)
            if floor == float("inf"):
                for conn in conns:
                    conn.send(("done",))
                break
            bound = floor + delta
            for s, conn in enumerate(conns, start=1):
                conn.send(("window", bound, inboxes[s]))
            for rec in inboxes[0]:
                fab.admit_remote(rec)
            sim.run_before(bound)

        cpu = [time.process_time() - base["cpu"]]
        for s, conn in enumerate(conns, start=1):
            msg = _recv(conn, s)
            if msg[0] != "final":
                raise ParallelEngineError(
                    f"shard {s} sent {msg[0]!r} instead of its final report"
                )
            _merge_final(rt, msg[1])
            cpu.append(msg[1]["cpu"])
        rt.shard_cpu_times = cpu
        rt.parallel_rounds = rounds
        rt.transport_stats = merge_channel_stats(rt.transport, conns)
    finally:
        for conn, p in zip(conns, procs):
            _reap_shard(conn, p)
    return sim.now
