"""Array sections: collectives over a subset of a chare array.

A section is a named subset of an array's elements with its own
spanning tree over the PEs that host members.  Sections support the
same collective operations as whole arrays — broadcast
(:meth:`ArraySection.bcast`, a *section multicast*) and reductions
(``chare.contribute(..., section=...)``) — which is how production
Charm++ codes like OpenAtom address "all PairCalculators in one plane"
without touching the rest of the array.

Construction: ``section = array.section(indices)``.  Sections are
registered with the runtime and share the reduction machinery with
whole arrays (both expose the same collective interface: ``id``,
``home_pes``, ``local_elements``, ``local_count``, ``tree_parent``,
``tree_children``, ``base_array``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from .errors import CharmError

if TYPE_CHECKING:  # pragma: no cover
    from .array import ChareArray


def binomial_parent(pos: int) -> int | None:
    """Parent position in a binomial tree (lowest set bit cleared)."""
    if pos == 0:
        return None
    return pos & (pos - 1)


def binomial_children(pos: int, n: int) -> List[int]:
    """Child positions: ``pos | bit`` for each bit below ``pos``'s
    lowest set bit (all bits, for the root)."""
    children = []
    bit = 1
    while bit < n:
        if pos & bit:
            break
        child = pos | bit
        if child < n:
            children.append(child)
        bit <<= 1
    return children


class ArraySection:
    """A collective view over a subset of one chare array."""

    def __init__(
        self,
        section_id: int,
        array: "ChareArray",
        indices: Sequence,
    ) -> None:
        normalized = []
        seen = set()
        for idx in indices:
            norm = array.normalize_index(idx)
            if norm not in seen:
                seen.add(norm)
                normalized.append(norm)
        if not normalized:
            raise CharmError("a section needs at least one member")
        self.id = section_id
        self.array = array
        self.indices: Tuple[Tuple[int, ...], ...] = tuple(normalized)
        self.index_set = frozenset(normalized)

        self.local_elements: Dict[int, List[Tuple[int, ...]]] = {}
        for idx in self.indices:
            pe = array.pe_of(idx)
            self.local_elements.setdefault(pe, []).append(idx)
        self.home_pes: List[int] = sorted(self.local_elements)
        self._home_pos = {pe: i for i, pe in enumerate(self.home_pes)}

    # ------------------------------------------------------------------
    # The collective interface (shared with ChareArray)
    # ------------------------------------------------------------------

    @property
    def base_array(self) -> "ChareArray":
        """The array collective deliveries target."""
        return self.array

    @property
    def size(self) -> int:
        """Number of elements/members."""
        return len(self.indices)

    def contains(self, index) -> bool:
        """True when the index is a member of this section."""
        return self.array.normalize_index(index) in self.index_set

    def local_count(self, pe_rank: int) -> int:
        """Number of members hosted on a PE."""
        return len(self.local_elements.get(pe_rank, ()))

    def tree_parent(self, pe_rank: int) -> int | None:
        """Parent PE in the collective's binomial tree (None at root)."""
        parent_pos = binomial_parent(self._home_pos[pe_rank])
        return None if parent_pos is None else self.home_pes[parent_pos]

    def tree_children(self, pe_rank: int) -> List[int]:
        """Child PEs in the collective's binomial tree."""
        return [
            self.home_pes[c]
            for c in binomial_children(self._home_pos[pe_rank], len(self.home_pes))
        ]

    # ------------------------------------------------------------------
    # Collective operations
    # ------------------------------------------------------------------

    def bcast(self, method: str, *args) -> None:
        """Section multicast: invoke ``method`` on every member."""
        self.array.rt.bcast(self, method, args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ArraySection #{self.id} of array{self.array.id} "
            f"({len(self.indices)} members on {len(self.home_pes)} PEs)>"
        )
