"""Design-choice ablations (DESIGN.md A1–A3).

A1 — §5.2 polling discipline: naive ``CkDirect_ready`` keeps every
     channel polled through unrelated phases; the
     ``ReadyMark``/``ReadyPollQ`` split confines the tax.
A2 — §3 protocol structure: the packet/rendezvous crossover that
     explains Table 1's Default-Charm++ column.
A3 — §2.3 MPI synchronization schemes: every MPI one-sided completion
     mechanism drags synchronization CkDirect does not need.
"""

import pytest

from conftest import save_report
from repro.bench import (
    run_mpi_sync_ablation,
    run_polling_ablation,
    run_protocol_ablation,
)


@pytest.fixture(scope="module")
def polling(holder={}):
    if "r" not in holder:
        holder["r"] = run_polling_ablation()
    return holder["r"]


def test_a1_polling_benchmark(benchmark, polling):
    result = benchmark.pedantic(lambda: polling, rounds=1, iterations=1)
    save_report("ablation_a1_polling", result["report"])
    test_a1_naive_polling_hurts(polling)
    test_a1_phased_beats_messages(polling)
    test_a1_naive_erodes_most_of_the_gain(polling)


def test_a1_naive_polling_hurts(polling):
    """Naive polling must cost measurably more than phased polling."""
    assert polling["naive_ms"] > polling["phased_ms"] * 1.01, (
        f"naive ({polling['naive_ms']:.2f}ms) not worse than phased "
        f"({polling['phased_ms']:.2f}ms)"
    )


def test_a1_phased_beats_messages(polling):
    """With the ReadyMark/ReadyPollQ optimization in place, CkDirect
    beats plain messages (the paper's resolution of its §5.2 story)."""
    assert polling["phased_ms"] < polling["msg_ms"]


def test_a1_naive_erodes_most_of_the_gain(polling):
    """The §5.2 pathology: naive polling gives back a large share of
    what CkDirect won."""
    gain_phased = polling["msg_ms"] - polling["phased_ms"]
    gain_naive = polling["msg_ms"] - polling["naive_ms"]
    assert gain_naive < 0.75 * gain_phased, (
        f"naive kept too much of the gain: {gain_naive:.2f} vs "
        f"{gain_phased:.2f} ms"
    )


@pytest.fixture(scope="module")
def protocols(holder={}):
    if "r" not in holder:
        holder["r"] = run_protocol_ablation()
    return holder["r"]


def test_a2_protocol_benchmark(benchmark, protocols):
    result = benchmark.pedantic(lambda: protocols, rounds=1, iterations=1)
    save_report("ablation_a2_protocols", result["report"])
    test_a2_rendezvous_wins_large(protocols)
    test_a2_crossover_in_band(protocols)


def test_a2_rendezvous_wins_large(protocols):
    """Rendezvous must beat packetization decisively at large sizes."""
    sizes = protocols["sizes"]
    pk = protocols["rtt_us"]["packet"]
    rv = protocols["rtt_us"]["rendezvous"]
    big = sizes.index(200_000)
    small = sizes.index(10_000)
    assert rv[big] < pk[big] * 0.85
    assert pk[small] < rv[small], "packetization should win small sizes"


def test_a2_crossover_in_band(protocols):
    """The packet/rendezvous crossover falls between 20 KB and 100 KB —
    bracketing Charm++'s 20 KB switch point (Table 1 discussion)."""
    sizes = protocols["sizes"]
    diffs = [
        protocols["rtt_us"]["packet"][i] - protocols["rtt_us"]["rendezvous"][i]
        for i in range(len(sizes))
    ]
    # negative (packet wins) at 10K, positive (rendezvous wins) at 70K+
    assert diffs[sizes.index(10_000)] < 0
    assert diffs[sizes.index(70_000)] > 0


@pytest.fixture(scope="module")
def mpi_sync(holder={}):
    if "r" not in holder:
        holder["r"] = run_mpi_sync_ablation()
    return holder["r"]


def test_a3_mpi_sync_benchmark(benchmark, mpi_sync):
    result = benchmark.pedantic(lambda: mpi_sync, rounds=1, iterations=1)
    save_report("ablation_a3_mpi_sync", result["report"])
    test_a3_every_scheme_costs_more_than_ckdirect(mpi_sync)
    test_a3_lock_unlock_most_expensive_p2p(mpi_sync)


def test_a3_every_scheme_costs_more_than_ckdirect(mpi_sync):
    """§2.3: fence is collective overkill, PSCW synchronizes the
    sender, lock-unlock adds lock traffic — all above a bare CkDirect
    put+detect."""
    epoch = mpi_sync["epoch_us"]
    ckd = epoch["ckdirect (one-way)"]
    for scheme in ("fence", "pscw", "lock-unlock"):
        assert epoch[scheme] > ckd, (
            f"{scheme} ({epoch[scheme]:.2f}us) not above CkDirect ({ckd:.2f}us)"
        )


def test_a3_lock_unlock_most_expensive_p2p(mpi_sync):
    epoch = mpi_sync["epoch_us"]
    assert epoch["lock-unlock"] > epoch["pscw"]


@pytest.fixture(scope="module")
def vr(holder={}):
    from repro.bench import run_vr_ablation

    if "r" not in holder:
        holder["r"] = run_vr_ablation()
    return holder["r"]


def test_a4_vr_benchmark(benchmark, vr):
    result = benchmark.pedantic(lambda: vr, rounds=1, iterations=1)
    save_report("ablation_a4_virtualization", result["report"])
    test_a4_virtualization_helps_execution(vr)
    test_a4_gains_grow_with_granularity(vr)
    test_a4_ckd_tolerates_fine_grains_better(vr)


def test_a4_virtualization_helps_execution(vr):
    """VR > 1 beats VR = 1 for both versions (overlap), §4.1."""
    base_msg, base_ckd = vr["msg_ms"][0], vr["ckd_ms"][0]
    assert min(vr["msg_ms"][1:4]) < base_msg
    assert min(vr["ckd_ms"][1:4]) < base_ckd


def test_a4_gains_grow_with_granularity(vr):
    """"greater percentage gains at finer granularities"."""
    from repro.bench import shapes

    shapes.assert_gains_grow_with_pes(vr["ratios"], vr["gains"], slack_pct=1.0)


def test_a4_ckd_tolerates_fine_grains_better(vr):
    """At the finest granularity the message version has degraded more
    from its own optimum than the CkDirect version has."""
    msg_penalty = vr["msg_ms"][-1] / min(vr["msg_ms"])
    ckd_penalty = vr["ckd_ms"][-1] / min(vr["ckd_ms"])
    assert ckd_penalty < msg_penalty


@pytest.fixture(scope="module")
def backward(holder={}):
    from repro.bench import run_backward_path_ablation

    if "r" not in holder:
        holder["r"] = run_backward_path_ablation()
    return holder["r"]


def test_a5_backward_benchmark(benchmark, backward):
    result = benchmark.pedantic(lambda: backward, rounds=1, iterations=1)
    save_report("ablation_a5_backward_path", result["report"])
    test_a5_full_beats_forward_only(backward)


def test_a5_full_beats_forward_only(backward):
    """Extending CkDirect into the backward path improves further —
    the paper's §5.2 anticipation."""
    rows = backward["step_ms"]
    assert rows["ckd (paper)"] < rows["msg"]
    assert rows["ckd-full (both paths)"] < rows["ckd (paper)"]
