#!/usr/bin/env python
"""3D-decomposition matrix multiplication (paper §4.2, Figure 3).

Validates a small parallel product against numpy, then compares the
message-based and CkDirect versions at paper scale (2048x2048) on the
simulated Blue Gene/P — where CkDirect's copy elision on the reduction
roots and scheduler bypass on the slice exchange pay off increasingly
with processor count.

Run:  python examples/matmul_3d.py
"""

import os

import numpy as np

from repro import ABE, SURVEYOR
from repro.apps.matmul import gather_c, matmul_pair, reference_c, run_matmul


def validate() -> None:
    print("validating a 64x64 product over a 4x4x4 chare grid ...")
    for mode in ("msg", "ckd"):
        r = run_matmul(ABE, n_pes=8, N=64, c=4, iterations=2, mode=mode,
                       validate=True, keep_runtime=True)
        err = np.abs(gather_c(r) - reference_c(r)).max()
        print(f"  {mode}: max |error| vs numpy = {err:.2e}")
        assert err < 1e-9


def performance() -> None:
    pes = [int(p) for p in os.environ.get("MATMUL_PES", "64 256").split()]
    print("\n2048x2048 matmul, simulated Blue Gene/P:")
    print(f"{'PEs':>6} {'c':>4} {'msg iter (ms)':>14} {'ckd iter (ms)':>14} {'gain %':>8}")
    for p in pes:
        msg, ckd = matmul_pair(SURVEYOR, p, iterations=2)
        gain = (1 - ckd.mean_iter_time / msg.mean_iter_time) * 100
        print(f"{p:>6} {msg.c:>4} {msg.mean_iter_time * 1e3:>14.2f} "
              f"{ckd.mean_iter_time * 1e3:>14.2f} {gain:>8.2f}")
    print("\npaper (Figure 3): CkDirect wins on both machines; the gap "
          "grows toward 4096 PEs (run with MATMUL_PES='1024 4096' and "
          "some patience to see the large-scale blow-up)")


if __name__ == "__main__":
    validate()
    performance()
