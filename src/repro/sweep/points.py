"""The sweep-point registry: spec kind → runnable function.

Every entry maps a :attr:`RunSpec.kind` to a module-level function
``(spec) -> dict`` that runs one simulation point and returns plain
picklable values.  Worker processes resolve the function from this
registry *after* import, so points run identically in-process (serial
path) and in a forked/spawned worker (parallel path) — the property
the jobs-count determinism guarantee rests on.

The app-specific adapters live next to their drivers
(:func:`repro.apps.pingpong.pingpong_point`,
:func:`repro.apps.stencil.driver.stencil_point`,
:func:`repro.apps.matmul.driver.matmul_point`,
:func:`repro.apps.openatom.driver.openatom_point`); this module only
translates specs into their keyword form.

By convention a point's returned dict may carry an ``"events"`` key
(simulator events fired); the runner pops it into
:attr:`RunResult.events` for the bench trajectory's events/sec
accounting.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from .spec import RunSpec, SweepError

PointFn = Callable[[RunSpec], Dict[str, Any]]

POINTS: Dict[str, PointFn] = {}


def register_point(kind: str, fn: PointFn = None):
    """Register ``fn`` to run specs of ``kind`` (usable as decorator)."""
    def _install(f: PointFn) -> PointFn:
        POINTS[kind] = f
        return f
    return _install(fn) if fn is not None else _install


def point_function(kind: str) -> PointFn:
    """Look up the registered function for a spec kind."""
    try:
        return POINTS[kind]
    except KeyError:
        raise SweepError(
            f"no sweep point registered for kind {kind!r} "
            f"(known: {sorted(POINTS)})"
        ) from None


def _app_kwargs(spec: RunSpec) -> Dict[str, Any]:
    """Spec params minus the machine-override key the drivers don't take."""
    kw = spec.kwargs
    kw.pop("cores_per_node", None)
    return kw


@register_point("pingpong")
def _pingpong(spec: RunSpec) -> Dict[str, Any]:
    from ..apps.pingpong import pingpong_point

    kw = _app_kwargs(spec)
    return pingpong_point(spec.resolve_machine(), stack=spec.mode, **kw)


@register_point("stencil")
def _stencil(spec: RunSpec) -> Dict[str, Any]:
    from ..apps.stencil.driver import stencil_point

    return stencil_point(
        spec.resolve_machine(), mode=spec.mode, n_pes=spec.n_pes, **_app_kwargs(spec)
    )


@register_point("matmul")
def _matmul(spec: RunSpec) -> Dict[str, Any]:
    from ..apps.matmul.driver import matmul_point

    return matmul_point(
        spec.resolve_machine(), mode=spec.mode, n_pes=spec.n_pes, **_app_kwargs(spec)
    )


@register_point("openatom")
def _openatom(spec: RunSpec) -> Dict[str, Any]:
    from ..apps.openatom.driver import openatom_point

    return openatom_point(
        spec.resolve_machine(), mode=spec.mode, n_pes=spec.n_pes, **_app_kwargs(spec)
    )


@register_point("chaos")
def _chaos(spec: RunSpec) -> Dict[str, Any]:
    # chaos specs carry the app name in the mode slot
    from ..bench.chaos import chaos_point

    return chaos_point(
        spec.resolve_machine(), app=spec.mode, n_pes=spec.n_pes, **_app_kwargs(spec)
    )
