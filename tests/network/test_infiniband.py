"""Unit tests for the Infiniband fabric model."""

import pytest

from repro.network import ABE, InfinibandFabric, make_fabric
from repro.network.base import FabricError
from repro.sim import Simulator
from repro.util.units import us


def _fab(n_pes=16):
    sim = Simulator()
    return sim, make_fabric(sim, ABE, n_pes)


def test_protocol_thresholds():
    _, fab = _fab()
    p = ABE.net
    assert fab.protocol_for(p.eager_max) == "eager"
    assert fab.protocol_for(p.eager_max + 1) == "packet"
    assert fab.protocol_for(p.rdma_threshold) == "packet"
    assert fab.protocol_for(p.rdma_threshold + 1) == "rendezvous"


def test_force_protocol():
    _, fab = _fab()
    fab.force_protocol("eager")
    assert fab.protocol_for(10**6) == "eager"
    fab.force_protocol(None)
    assert fab.protocol_for(10**6) == "rendezvous"
    with pytest.raises(FabricError):
        fab.force_protocol("carrier-pigeon")


def test_charm_transport_adds_header():
    sim, fab = _fab()
    got = []
    fab.charm_transport(0, 8, 0, 0.0, lambda: got.append(sim.now))
    sim.run()
    p, charm = ABE.net, ABE.charm
    expected = p.proto_overhead + p.alpha + charm.header_bytes * p.beta
    assert got[0] == pytest.approx(expected)


def test_packet_protocol_charges_per_packet():
    sim, fab = _fab()
    got = []
    nbytes = 10_000  # 3 packets with the header
    fab.charm_transport(0, 8, nbytes, 0.0, lambda: got.append(sim.now))
    sim.run()
    p, charm = ABE.net, ABE.charm
    total = nbytes + charm.header_bytes
    npkts = -(-total // p.packet_size)
    expected = (
        p.proto_overhead + p.alpha + total * p.beta + npkts * p.packet_overhead
    )
    assert got[0] == pytest.approx(expected)


def test_rendezvous_registration_charged_at_receiver_not_wire():
    """The rendezvous transfer's wire time excludes registration; the
    receive-handler cost carries it instead (it is CPU work)."""
    sim, fab = _fab()
    got = []
    nbytes = 100_000
    fab.charm_transport(0, 8, nbytes, 0.0, lambda: got.append(sim.now))
    sim.run()
    p, charm = ABE.net, ABE.charm
    total = nbytes + charm.header_bytes
    wire_only = p.proto_overhead + p.rendezvous_rtt + p.alpha + total * p.beta
    assert got[0] == pytest.approx(wire_only)
    reg = fab.recv_handler_cost(total)
    assert reg == pytest.approx(p.reg_base + total * p.reg_per_byte)


def test_recv_handler_cost_zero_below_threshold():
    _, fab = _fab()
    assert fab.recv_handler_cost(1000) == 0.0
    assert fab.recv_handler_cost(ABE.net.rdma_threshold) == 0.0


def test_direct_put_cheaper_than_any_charm_path():
    for nbytes in (100, 10_000, 100_000):
        sim, fab = _fab()
        times = {}
        fab.direct_put(0, 8, nbytes, 0.0, lambda: times.setdefault("put", sim.now))
        sim.run()
        sim2, fab2 = _fab()
        fab2.charm_transport(0, 8, nbytes, 0.0,
                             lambda: times.setdefault("msg", sim2.now))
        sim2.run()
        # message wire time alone (receiver costs excluded) already
        # exceeds the put's end-to-end
        assert times["put"] < times["msg"], nbytes


def test_direct_put_dma_ramp():
    """Small puts pay the DMA ramp; the marginal per-byte cost above
    the ramp cap equals the wire beta."""
    sim, fab = _fab()
    times = []
    for nbytes in (1000, 2000, 50_000, 51_000):
        s = Simulator()
        f = make_fabric(s, ABE, 16)
        got = []
        f.direct_put(0, 8, nbytes, 0.0, lambda: got.append(s.now))
        s.run()
        times.append(got[0])
    p = ABE.net
    small_slope = (times[1] - times[0]) / 1000
    large_slope = (times[3] - times[2]) / 1000
    assert small_slope == pytest.approx(p.beta + p.rdma_ramp_per_byte)
    assert large_slope == pytest.approx(p.beta)


def test_wrong_params_type_rejected():
    import dataclasses

    from repro.network.params import BGPParams

    sim = Simulator()
    broken = dataclasses.replace(ABE, net=BGPParams())
    from repro.network.topology import FatTree

    with pytest.raises(FabricError, match="IBParams"):
        InfinibandFabric(sim, FatTree(2, 8), broken)
