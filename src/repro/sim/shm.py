"""One-sided shared-memory shard transport (``--transport shm``).

The sharded engines (:mod:`repro.sim.parallel`, :mod:`repro.sim.
timewarp`) exchange one message per shard per barrier: the worker's
``state`` (next event time + the epoch window's cross-shard records)
and the coordinator's ``window`` answer.  The reference transport
ships those over :class:`multiprocessing.connection.Connection` pipes
— a pickle, a copy into the kernel, a wakeup, and a copy back out per
message.  This module applies the paper's own mechanism to that IPC
path: **unsynchronized one-sided puts into persistent buffers with
sentinel-based completion detection**.

Layout.  Each coordinator<->worker link is a pair of single-producer/
single-consumer byte rings, one per direction, each in its own
:class:`multiprocessing.shared_memory.SharedMemory` segment::

    offset  0   u64  head   (reserved; writer progress, informational)
    offset  8   u64  tail   (reader-owned: total bytes consumed)
    offset 16   data[capacity]

Frames are contiguous (never split across the wrap) and 8-aligned::

    u32  len      payload byte count; bit 31 flags a spill frame
    u32  seq      per-ring frame counter (torn-frame detection)
    u8   payload[len]
    u8   sentinel 0xC5, written LAST — the commit
    ...  padding to the next 8-byte boundary

Ownership rules (the CkDirect discipline):

* The writer owns every byte from the commit word forward; the reader
  never reads the writer's progress.  Completion is detected the
  paper's way: the reader finds a non-zero length word at its tail,
  then polls the frame's trailing **sentinel** byte.  Write order is
  payload, seq, len, sentinel — each a single aligned store — so on a
  total-store-order host (x86-64, the supported platform) a visible
  length word implies a visible payload, and the sentinel is the
  final unambiguous commit.
* The commit word the reader will poll next is **zeroed ahead** by
  the writer: committing a frame at ``p`` with extent ``t`` first
  zeroes the 4-byte word at ``p + t``.  The reader only ever polls a
  position after consuming the frame before it, so the word it polls
  is always either still zero (no frame yet) or a committed length —
  stale bytes from previous laps are never interpreted.  The reader
  consumes without writing anything but its own ``tail``, which the
  writer reads only when its cached free-space estimate runs out
  (lazy, like the paper's receiver-side polling).
* If the contiguous space to the end of the ring is too small for a
  frame, the writer stores the 4-byte ``WRAP`` marker there — after
  fully committing the frame at offset 0 — and the reader skips.
* A frame larger than **half** the ring **spills**: the payload moves
  through a one-shot shared-memory segment whose name travels in a
  small spill frame; the reader attaches, copies, and unlinks it.
  (Half, not whole: a wrapping write must reserve the dead bytes to
  the edge *plus* the frame at offset 0, up to twice the frame's
  extent — a bigger in-ring frame could find the ring drained and
  still never fit, spinning forever against a live peer.)

Corruption: a length word whose implied extent oversteps the ring
edge, or a frame whose ``seq`` is not the reader's expected next
counter, is *torn* — :class:`TornFrameError`, never silent garbage.
Both checks are O(1) per frame; the hot path deliberately carries no
per-byte checksum (the ring is cache-coherent local memory, not a
network), which is what lets it undercut the pipe's two kernel
copies.  The reader unpickles **in place** through a memoryview of
the ring — the receive side copies nothing.

Liveness: rings cannot signal peer death, so each channel carries a
data-free *lifeline* pipe.  EOF on the lifeline while the ring is
drained is exactly a Connection's EOF — ``recv`` raises
:class:`EOFError`, ``send`` into a dead reader raises
:class:`BrokenPipeError` — so supervision's crash detection works
unchanged, and a worker killed mid-window is noticed at pipe speed,
not at the hang deadline.

Hygiene: every segment this process creates is recorded in a registry
and unlinked by ``atexit`` even on exception paths;
:meth:`ShmChannel.unlink` additionally sweeps ``/dev/shm`` for the
channel's name prefix, reclaiming spill segments a SIGKILL'd worker
left behind, and unregisters swept names from the
``multiprocessing.resource_tracker`` so no spurious leak warnings
fire at interpreter shutdown.  Supervised restarts build a **fresh**
channel per incarnation (a crashed writer may have left a half-built
frame) and unlink the dead incarnation's segments on reap.

The reference pipe transport also goes through this module
(:class:`PipeChannel`): the whole window is serialized once with
``pickle.HIGHEST_PROTOCOL`` and shipped with a single
``send_bytes`` — one frame per window — so the pipe-vs-shm
comparison in ``benchmarks/test_transport_micro.py`` measures the
transport, not the serializer.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import struct
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "TRANSPORT_CHOICES",
    "TransportError",
    "TornFrameError",
    "resolve_transport",
    "resolve_ring_bytes",
    "channel_pair",
    "PipeChannel",
    "ShmChannel",
    "active_segments",
    "segment_prefix",
]


class TransportError(RuntimeError):
    """A transport knob or wire invariant was violated."""


class TornFrameError(TransportError):
    """A committed frame failed structural validation: its length
    word oversteps the ring edge, or its sequence number is not the
    reader's expected next frame."""


# ---------------------------------------------------------------------------
# Knob resolution (flag > env > default, as resolve_shards/engine)
# ---------------------------------------------------------------------------

TRANSPORT_CHOICES = ("pipe", "shm")

_DEFAULT_RING = 1 << 20  # 1 MiB per direction
_MIN_RING = 4096


def resolve_transport(transport: Optional[str] = None) -> str:
    """Shard transport: explicit argument, else ``REPRO_TRANSPORT``,
    else ``pipe`` (the reference).

    Precedence is *flag over environment over default*, matching
    :func:`repro.sim.parallel.resolve_shards`; unknown names raise a
    one-line :class:`TransportError`, never silently fall back.
    """
    if transport is not None:
        val = str(transport).strip().lower()
        if val not in TRANSPORT_CHOICES:
            raise TransportError(
                f"transport must be one of {', '.join(TRANSPORT_CHOICES)}, "
                f"got {transport!r}"
            )
        return val
    env = os.environ.get("REPRO_TRANSPORT", "").strip().lower()
    if env:
        if env not in TRANSPORT_CHOICES:
            raise TransportError(
                f"REPRO_TRANSPORT must be one of "
                f"{', '.join(TRANSPORT_CHOICES)}, got {env!r}"
            )
        return env
    return "pipe"


def resolve_ring_bytes() -> int:
    """``REPRO_SHM_RING``: per-direction ring capacity in bytes."""
    env = os.environ.get("REPRO_SHM_RING", "").strip()
    if not env:
        return _DEFAULT_RING
    try:
        val = int(env)
    except ValueError:
        raise TransportError(
            f"REPRO_SHM_RING must be an integer byte count, got {env!r}"
        ) from None
    if val < _MIN_RING:
        raise TransportError(
            f"REPRO_SHM_RING must be at least {_MIN_RING}, got {val}"
        )
    return (val + 7) & ~7


# ---------------------------------------------------------------------------
# Segment registry & hygiene
# ---------------------------------------------------------------------------

_NS = "reproshm"
_counter = itertools.count()
#: names created by THIS process and not yet unlinked.  Children exit
#: via ``os._exit`` (no atexit), so the hook only ever fires in the
#: process that owns the registry entries it sees.
_live: set = set()
_atexit_installed = False


def segment_prefix() -> str:
    """The name prefix of every segment this module ever creates."""
    return _NS + "_"


def _next_name(tag: str) -> str:
    return f"{_NS}_{os.getpid():x}_{next(_counter):x}_{tag}"


def active_segments() -> List[str]:
    """Names created by this process that are not yet unlinked
    (introspection for the leak tests)."""
    return sorted(_live)


def _rt_unregister(name: str) -> None:
    """Best-effort resource_tracker unregister.  POSIX registration
    always carries a leading slash (CPython's ``_make_filename`` /
    attach both prepend it); unregistering any other spelling makes
    the tracker daemon print a spurious KeyError traceback."""
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover
        return
    try:
        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:
        pass


def _unlink_name(name: str) -> None:
    """Unlink one segment by name, quietly tolerating its absence."""
    _live.discard(name)
    path = "/dev/shm/" + name
    try:
        os.unlink(path)
    except FileNotFoundError:
        pass
    except OSError:
        # No /dev/shm (non-Linux): fall back to an attach-and-unlink.
        try:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(name=name)
            seg.close()
            seg.unlink()
        except Exception:
            pass
    _rt_unregister(name)


def _sweep_prefix(prefix: str) -> None:
    """Unlink every /dev/shm entry under ``prefix`` — spill segments a
    killed worker created and never handed over."""
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return
    for name in entries:
        if name.startswith(prefix):
            _unlink_name(name)


def _atexit_sweep() -> None:
    for name in list(_live):
        _unlink_name(name)


def _create_segment(name: str, size: int):
    from multiprocessing import shared_memory

    global _atexit_installed
    seg = shared_memory.SharedMemory(name=name, create=True, size=size)
    _live.add(name)
    if not _atexit_installed:
        atexit.register(_atexit_sweep)
        _atexit_installed = True
    return seg


# ---------------------------------------------------------------------------
# The SPSC sentinel ring
# ---------------------------------------------------------------------------

_HDR = 16                    # u64 head (reserved) | u64 tail
_HEAD_OFF = 0
_TAIL_OFF = 8
_FRAME_HDR = 8               # u32 len | u32 seq
_SENTINEL = 0xC5
_WRAP = 0xFFFFFFFF
_SPILL_FLAG = 0x8000_0000
_LEN_MASK = 0x7FFF_FFFF
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


def _align8(n: int) -> int:
    return (n + 7) & ~7


class _Ring:
    """One direction of a channel: an SPSC byte ring over one shared
    segment.  The object is built before the fork and inherited by
    both processes; each process drives exactly one role, so the
    writer-local (``_head``, ``_free``, ``_wseq``) and reader-local
    (``_tail``, ``_rseq``) caches never alias across roles.
    """

    __slots__ = ("seg", "buf", "capacity", "name",
                 "_head", "_free", "_wseq", "_tail", "_rseq", "_pending")

    def __init__(self, seg, capacity: int) -> None:
        self.seg = seg
        self.buf = seg.buf
        self.capacity = capacity
        self.name = seg.name
        self._head = 0     # writer: bytes produced
        self._free = capacity  # writer: known-free bytes (cached)
        self._wseq = 0     # writer: frames produced
        self._tail = 0     # reader: bytes consumed
        self._rseq = 0     # reader: frames consumed
        self._pending = 0  # reader: extent of the frame being read

    # -- writer side ----------------------------------------------------

    def max_payload(self) -> int:
        """Largest payload that can travel in-ring (larger spills)."""
        # A wrapping write needs ``rem + total + 8`` bytes (dead bytes
        # to the edge, the frame at offset 0, the zero-ahead word) and
        # ``rem`` can be as large as ``total - 8``, so only frames with
        # ``2 * total <= capacity`` are guaranteed writable on a fully
        # drained ring from EVERY head offset.  Anything bigger must
        # spill or a send could spin forever against a live peer.
        return (self.capacity - 8) // 2 - 16

    def _refresh_free(self) -> int:
        buf = self.buf
        # The u64 tail is written by the other process; an 8-aligned
        # store is a single instruction on every supported host, but
        # read twice and require agreement so even a torn read can
        # never over-report free space.
        while True:
            (a,) = _U64.unpack_from(buf, _TAIL_OFF)
            (b,) = _U64.unpack_from(buf, _TAIL_OFF)
            if a == b:
                break
        self._free = self.capacity - (self._head - a)
        return self._free

    def try_write(self, payload, flags: int = 0) -> bool:
        """Write one frame; False if the ring lacks space right now."""
        size = len(payload)
        if size == 0:
            # A 0 length word is the reader's "no frame yet" marker: an
            # empty frame would be committed yet permanently invisible,
            # and the frame behind it would then fail the seq check.
            raise TransportError("zero-length frames cannot be framed")
        total = (_FRAME_HDR + size + 8) & ~7  # frame + sentinel, 8-aligned
        cap = self.capacity
        pos = self._head - (self._head // cap) * cap
        rem = cap - pos
        wrap = rem < total
        # +8 reserves the zero-ahead word past the new frame.
        need = (rem + total if wrap else total) + 8
        if self._free < need and self._refresh_free() < need:
            return False
        buf = self.buf
        marker = None
        if wrap:
            # Not enough contiguous room: the frame goes at offset 0
            # and is fully committed there *before* the WRAP marker at
            # ``pos`` publishes the jump.
            marker = _HDR + pos
            self._head += rem
            self._free -= rem
            pos = 0
        base = _HDR + pos
        end = base + _FRAME_HDR + size
        buf[base + _FRAME_HDR:end] = payload
        # Zero the word the reader will poll after this frame, so a
        # stale length from a previous lap can never fake a commit.
        zpos = pos + total
        if zpos >= cap:
            zpos = 0
        _U32.pack_into(buf, _HDR + zpos, 0)
        # Commit order: payload, seq, len, sentinel — aligned single
        # stores; the sentinel lands dead last.
        _U32.pack_into(buf, base + 4, self._wseq & 0xFFFFFFFF)
        _U32.pack_into(buf, base, size | flags)
        buf[end] = _SENTINEL
        if marker is not None:
            _U32.pack_into(buf, marker, _WRAP)
        self._head += total
        self._free -= total
        self._wseq += 1
        return True

    # -- reader side ----------------------------------------------------

    def try_read(self):
        """One committed frame as ``(payload_view, is_spill)`` or None.

        ``payload_view`` is a memoryview INTO the ring: the caller
        must finish with it (e.g. unpickle) and then call
        :meth:`consume` to release the frame's extent — nothing is
        copied on the receive side.  Raises :class:`TornFrameError`
        for a length word whose extent oversteps the ring edge or a
        frame arriving out of sequence.
        """
        buf = self.buf
        cap = self.capacity
        tail = self._tail
        pos = tail - (tail // cap) * cap
        base = _HDR + pos
        (word,) = _U32.unpack_from(buf, base)
        if word == 0:
            return None  # writer has not produced here yet
        if word == _WRAP:
            rem = cap - pos
            tail = self._tail = tail + rem
            _U64.pack_into(buf, _TAIL_OFF, tail)
            pos = 0
            base = _HDR
            (word,) = _U32.unpack_from(buf, base)
            if word == 0:
                return None
        size = word & _LEN_MASK
        total = (_FRAME_HDR + size + 8) & ~7
        if total > cap - pos:
            raise TornFrameError(
                f"frame extent {total}B exceeds the {cap - pos}B to "
                f"the ring edge — corrupted length word"
            )
        end = base + _FRAME_HDR + size
        if buf[end] != _SENTINEL:
            return None  # sentinel not yet landed: frame in flight
        (seq,) = _U32.unpack_from(buf, base + 4)
        if seq != self._rseq & 0xFFFFFFFF:
            raise TornFrameError(
                f"torn frame: seq {seq} where {self._rseq & 0xFFFFFFFF} "
                f"was expected"
            )
        self._pending = total
        return buf[base + _FRAME_HDR:end], bool(word & _SPILL_FLAG)

    def consume(self) -> None:
        """Release the frame returned by the last :meth:`try_read`
        (its memoryview must no longer be referenced)."""
        self._tail += self._pending
        self._rseq += 1
        _U64.pack_into(self.buf, _TAIL_OFF, self._tail)

    def _peek(self) -> bool:
        """Non-consuming readiness probe: True once the frame at the
        tail (looking past a WRAP marker) has its sentinel committed.
        A corrupted length word also reads True so the error surfaces
        through :meth:`try_read`."""
        buf = self.buf
        cap = self.capacity
        tail = self._tail
        pos = tail - (tail // cap) * cap
        (word,) = _U32.unpack_from(buf, _HDR + pos)
        if word == _WRAP:
            pos = 0
            (word,) = _U32.unpack_from(buf, _HDR)
        if word == 0 or word == _WRAP:
            return False
        size = word & _LEN_MASK
        total = (_FRAME_HDR + size + 8) & ~7
        if total > cap - pos:
            return True
        return buf[_HDR + pos + _FRAME_HDR + size] == _SENTINEL


# ---------------------------------------------------------------------------
# Channels
# ---------------------------------------------------------------------------

#: poll-loop backoff: a short pure-spin window, then sched_yield
#: (free on an idle multi-core host, an immediate CPU handoff to the
#: peer on an oversubscribed one — spinning longer would hold the
#: core for a whole scheduler timeslice), then a sleep ladder for
#: genuinely idle waits (a peer computing a multi-ms window).
_SPIN = 64
_YIELD = 4000
_NAP_SHORT = 5e-5
_NAP_LONG = 5e-4
_NAP_LADDER = 20000
_POLL_SLICE = 0.05


class _ChannelStats:
    __slots__ = ("frames", "bytes", "spills")

    def __init__(self) -> None:
        self.frames = 0
        self.bytes = 0
        self.spills = 0

    def as_dict(self) -> Dict[str, int]:
        return {"frames": self.frames, "bytes": self.bytes,
                "spills": self.spills}


class PipeChannel:
    """The reference transport: one protocol-5 pickle frame per
    window over a duplex pipe (a single ``send_bytes`` per message
    instead of the Connection's default per-object protocol-4 path).
    """

    __slots__ = ("conn", "stats")

    def __init__(self, conn) -> None:
        self.conn = conn
        self.stats = _ChannelStats()

    def send(self, obj) -> None:
        data = pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)
        self.stats.frames += 1
        self.stats.bytes += len(data)
        self.conn.send_bytes(data)

    def recv(self):
        data = self.conn.recv_bytes()
        self.stats.frames += 1
        self.stats.bytes += len(data)
        return pickle.loads(data)

    def poll(self, timeout: float = 0.0) -> bool:
        return self.conn.poll(timeout)

    def close(self) -> None:
        self.conn.close()

    def unlink(self) -> None:  # interface parity; nothing persistent
        pass


class ShmChannel:
    """One end of a shared-memory link: reads ``rx``, writes ``tx``.

    Both ends are built in the coordinator before the fork; the worker
    inherits its end's mappings through fork and never attaches by
    name (spill segments are the one exception).  ``close`` releases
    only this process's lifeline end; ``unlink`` (creator side, after
    the peer is dead) releases the mappings, unlinks both ring
    segments, and sweeps the channel prefix for stray spills.
    """

    __slots__ = ("rx", "tx", "lifeline", "prefix", "stats",
                 "_spill_n", "_closed")

    def __init__(self, rx: _Ring, tx: _Ring, lifeline, prefix: str) -> None:
        self.rx = rx
        self.tx = tx
        self.lifeline = lifeline
        self.prefix = prefix
        self.stats = _ChannelStats()
        self._spill_n = 0
        self._closed = False

    # -- sending --------------------------------------------------------

    def send(self, obj) -> None:
        data = pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)
        self.stats.frames += 1
        self.stats.bytes += len(data)
        tx = self.tx
        if len(data) > tx.max_payload():
            data = self._spill(data)
            flags = _SPILL_FLAG
            self.stats.spills += 1
        else:
            flags = 0
        spins = 0
        while not tx.try_write(data, flags):
            spins += 1
            if spins & 31 == 0 and self._peer_gone():
                raise BrokenPipeError(
                    "shm transport: peer died with the ring full"
                )
            self._nap(spins)

    def _spill(self, data: bytes) -> bytes:
        """Move an oversized payload through a one-shot segment; the
        ring carries only ``name:nbytes``."""
        self._spill_n += 1
        # Spill names extend the *channel* prefix (plus the spilling
        # process's pid — either end may spill), so the creator-side
        # unlink() sweep reclaims them even after a SIGKILL.
        name = f"{self.prefix}p{os.getpid():x}sp{self._spill_n:x}"
        seg = _create_segment(name, len(data))
        try:
            seg.buf[:len(data)] = data
        finally:
            seg.close()  # the name (and the data) persists until unlink
        return f"{name}:{len(data)}".encode("ascii")

    @staticmethod
    def _read_spill(ref: bytes) -> bytes:
        from multiprocessing import shared_memory

        name, _, nbytes = ref.decode("ascii").partition(":")
        seg = shared_memory.SharedMemory(name=name)
        try:
            data = bytes(seg.buf[:int(nbytes)])
        finally:
            seg.close()
            try:
                seg.unlink()  # reader owns the unlink (and untracking)
            except FileNotFoundError:  # pragma: no cover
                pass
            _live.discard(name)
        return data

    # -- receiving ------------------------------------------------------

    def recv(self):
        frame = self._wait_frame()
        if frame is None:
            raise EOFError
        view, spilled = frame
        try:
            if spilled:
                payload = self._read_spill(bytes(view))
                nbytes = len(payload)
                obj = pickle.loads(payload)
            else:
                # Unpickle straight out of the ring: the receive side
                # copies nothing (loads materializes fresh objects, so
                # nothing outlives the view).
                nbytes = len(view)
                obj = pickle.loads(view)
        finally:
            view.release()
            self.rx.consume()
        self.stats.frames += 1
        self.stats.bytes += nbytes
        return obj

    def poll(self, timeout: float = 0.0) -> bool:
        """True when a frame is committed *or* the peer is gone (the
        Connection convention: EOF counts as readable).

        Unlike the data-path waits, a poll can be a supervisor's
        multi-second deadline watch on a busy or hung shard, so past
        the spin/yield phase the sleep primitive is the *lifeline's*
        ``select`` — the wait blocks in the kernel instead of burning
        a core, and peer death ends it immediately.  The slice starts
        at the short-nap pitch and lengthens once the wait is clearly
        idle; a frame landing mid-slice is noticed at most
        ``_POLL_SLICE`` late, noise next to a wait that long.
        """
        t_end = None if timeout is None else time.monotonic() + timeout
        spins = 0
        while True:
            if self.rx._peek() or self._peer_gone():
                return True
            if t_end is not None and time.monotonic() >= t_end:
                return False
            spins += 1
            if spins < _SPIN:
                continue
            if spins < _YIELD:
                os.sched_yield()
                continue
            slice_ = _NAP_SHORT if spins < _NAP_LADDER else _POLL_SLICE
            if t_end is not None:
                slice_ = min(slice_, max(0.0, t_end - time.monotonic()))
            try:
                if self.lifeline.poll(slice_):
                    return True  # lifeline readable == EOF == peer gone
            except (OSError, ValueError):
                return True

    def _wait_frame(self, timeout=None) -> Optional[Tuple[bytes, bool]]:
        rx = self.rx
        spins = 0
        while True:
            frame = rx.try_read()
            if frame is not None:
                return frame
            if spins & 31 == 0 and self._peer_gone():
                # Drain race: the peer may have committed its final
                # frame and closed in the same window.
                frame = rx.try_read()
                return frame  # None => EOF
            spins += 1
            self._nap(spins)

    # -- liveness & teardown --------------------------------------------

    def _peer_gone(self) -> bool:
        """EOF on the data-free lifeline pipe means the peer closed or
        died; nothing is ever written to it, so readable == EOF."""
        if self._closed:
            return True
        try:
            return self.lifeline.poll(0)
        except (OSError, ValueError):
            return True

    @staticmethod
    def _nap(spins: int) -> None:
        if spins < _SPIN:
            return
        if spins < _YIELD:
            os.sched_yield()
        elif spins < _NAP_LADDER:
            time.sleep(_NAP_SHORT)
        else:
            time.sleep(_NAP_LONG)

    def close(self) -> None:
        """Release this process's lifeline end (mappings die with the
        process; the creator's :meth:`unlink` reclaims the names)."""
        self._closed = True
        try:
            self.lifeline.close()
        except OSError:  # pragma: no cover
            pass

    def unlink(self) -> None:
        """Creator-side reclamation once the peer is dead: drop the
        mappings, unlink both ring segments, and sweep the prefix for
        spill segments a killed peer abandoned."""
        self.close()
        for ring in (self.rx, self.tx):
            try:
                ring.seg.close()
            except Exception:  # pragma: no cover
                pass
            _unlink_name(ring.name)
        _sweep_prefix(self.prefix)


# ---------------------------------------------------------------------------
# Pair construction
# ---------------------------------------------------------------------------


def channel_pair(ctx, transport: str, tag: str = "ch"):
    """Build one coordinator<->worker link: ``(parent_end, child_end)``.

    ``transport`` is a resolved name (``pipe`` or ``shm``).  Both ends
    are fork-inherited; after ``Process.start()`` the parent calls
    ``child_end.close()`` exactly as it would close a pipe's child
    Connection.  The parent end of an shm pair owns the segments:
    call ``parent_end.unlink()`` once the worker is reaped.
    """
    if transport == "pipe":
        parent, child = ctx.Pipe(duplex=True)
        return PipeChannel(parent), PipeChannel(child)
    if transport != "shm":
        raise TransportError(f"unknown transport {transport!r}")
    capacity = resolve_ring_bytes()
    prefix = _next_name(tag)
    seg_down = _create_segment(prefix + "d", _HDR + capacity)  # parent->child
    seg_up = _create_segment(prefix + "u", _HDR + capacity)    # child->parent
    down = _Ring(seg_down, capacity)
    up = _Ring(seg_up, capacity)
    life_parent, life_child = ctx.Pipe(duplex=True)
    parent = ShmChannel(rx=up, tx=down, lifeline=life_parent, prefix=prefix)
    child = ShmChannel(rx=down, tx=up, lifeline=life_child, prefix=prefix)
    return parent, child


def merge_channel_stats(
    transport: str, channels: Iterable[Any],
) -> Dict[str, Any]:
    """Fold the parent-end counters of one run into a report dict
    (surfaced as ``Runtime.transport_stats`` and via ``repro
    profile`` / the serve ``/metrics`` engine block)."""
    out: Dict[str, Any] = {"transport": transport, "frames": 0,
                           "bytes": 0, "spills": 0}
    for ch in channels:
        stats = getattr(ch, "stats", None)
        if stats is None:
            continue
        out["frames"] += stats.frames
        out["bytes"] += stats.bytes
        out["spills"] += stats.spills
    return out
