"""Serve throughput: cold-miss vs warm-hit requests/sec.

Runs a real server (thread + asyncio loop + sockets) and pushes the
same batch of pingpong points through it twice.  The first pass pays
for simulation (cold misses), the second is pure cache (warm hits) —
the ratio is the headline number of the serving story: a warm replica
answers arbitrarily-repeated traffic at cache speed while each
distinct point is computed exactly once.

Both passes are recorded as sweep records (labels ``serve:cold-miss``
/ ``serve:warm-hit`` with points = HTTP requests), so ``--bench-json``
lands them in BENCH_sweeps.json next to the engine trajectory.
"""

import time

import pytest

from repro.serve import ServeApp, ServeClient, ServerThread
from repro.sweep.stats import SweepRecord, record

from conftest import save_report

N_POINTS = 12
SIZES = [500 * (i + 1) for i in range(N_POINTS)]


def _specs():
    return [
        {"kind": "pingpong", "machine": "Surveyor", "mode": "ckdirect",
         "n_pes": 0, "params": {"size": s, "iterations": 5}}
        for s in SIZES
    ]


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    app = ServeApp(tmp_path_factory.mktemp("serve-store"),
                   workers=2, max_queue=64)
    srv = ServerThread(app).start()
    yield srv
    srv.stop()


def test_serve_cold_vs_warm_throughput(server):
    client = ServeClient(server.host, server.port)

    t0 = time.perf_counter()
    cold_jobs = [client.submit(s) for s in _specs()]
    for j in cold_jobs:
        client.wait(j["job"], deadline_s=120)
    cold_s = time.perf_counter() - t0
    assert not any(j["cached"] for j in cold_jobs)

    t0 = time.perf_counter()
    warm_jobs = [client.submit(s) for s in _specs()]
    warm_s = time.perf_counter() - t0
    assert all(j["cached"] and j["status"] == "done" for j in warm_jobs)

    # Cache correctness at full batch size: payloads byte-identical.
    for jc, jw in zip(cold_jobs, warm_jobs):
        assert client.result(jc["job"]) == client.result(jw["job"])

    m = client.metrics()
    assert m["cache"]["hits"] == N_POINTS
    assert m["cache"]["misses"] == N_POINTS
    assert m["jobs"]["completed"] == N_POINTS      # each point computed once

    cold_rps = N_POINTS / cold_s
    warm_rps = N_POINTS / warm_s
    # The whole point of the cache: warm must beat cold, comfortably.
    assert warm_rps > 2.0 * cold_rps, (
        f"warm-hit {warm_rps:.0f} req/s not faster than "
        f"cold-miss {cold_rps:.0f} req/s"
    )

    record(SweepRecord(label="serve:cold-miss", jobs=2, points=N_POINTS,
                       failed=0, wall_s=cold_s, events=0))
    record(SweepRecord(label="serve:warm-hit", jobs=2, points=N_POINTS,
                       failed=0, wall_s=warm_s, events=0))

    save_report("serve_throughput", "\n".join([
        "serve throughput (pingpong x %d, 2 workers)" % N_POINTS,
        f"  cold-miss: {cold_rps:8.1f} req/s  ({cold_s * 1000:.1f} ms total)",
        f"  warm-hit:  {warm_rps:8.1f} req/s  ({warm_s * 1000:.1f} ms total)",
        f"  speedup:   {warm_rps / cold_rps:8.1f}x",
    ]))
