"""CkDirect extensions — the paper's §6 future-work features:
multicast channels, strided puts, and accumulating (reduction)
channels."""

from .accumulate import ACCUMULATE_OPS, AccumulateHandle, create_accumulate_handle
from .autotune import ChannelAdvisor, ChannelCandidate, FlowStats
from .multicast import REPEAT_ISSUE_FACTOR, MulticastChannel
from .strided import (
    PER_SEGMENT_OVERHEAD,
    StridedChannel,
    create_strided_channel,
    segment_count,
)

__all__ = [
    "ChannelAdvisor",
    "ChannelCandidate",
    "FlowStats",
    "MulticastChannel",
    "REPEAT_ISSUE_FACTOR",
    "StridedChannel",
    "create_strided_channel",
    "segment_count",
    "PER_SEGMENT_OVERHEAD",
    "AccumulateHandle",
    "create_accumulate_handle",
    "ACCUMULATE_OPS",
]
