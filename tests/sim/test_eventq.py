"""Unit tests for the pluggable event-queue layer.

Every implementation — heap reference, pure-Python calendar, the
compiled core when built, and the auto selector — must honor the
complete :class:`~repro.sim.engine.Simulator` contract: pop order,
rejection semantics, ``run``/``run_before``/``step``/
``next_event_time`` behavior, cancellation accounting, and settable
``_now`` (the parallel engine's final-merge path writes it).

The mass-cancel regression here mirrors the heap engine's ``_compact``
fix: compaction triggered *from inside a running callback* must mutate
the rung storage in place, because the run loop holds local aliases
across callback execution.
"""

import math

import pytest

import repro.sim.eventq as eventq_mod
from repro.sim.engine import SimulationError, Simulator
from repro.sim.eventq import (
    EVENTQ_CHOICES,
    AutoSimulator,
    CalendarSimulator,
    CompiledSimulator,
    compiled_available,
    eventq_name,
    make_simulator,
    resolve_eventq,
)

IMPLS = [Simulator, CalendarSimulator, AutoSimulator]
if compiled_available():
    IMPLS.append(CompiledSimulator)


@pytest.fixture(params=IMPLS, ids=lambda c: c.__name__)
def sim(request):
    return request.param()


# ---------------------------------------------------------------------------
# Core contract, per implementation
# ---------------------------------------------------------------------------


def test_pop_order_time_priority_seq(sim):
    fired = []
    sim.schedule(2e-6, fired.append, "late")
    sim.schedule(1e-6, fired.append, "tie-seq-a")
    sim.schedule(1e-6, fired.append, "tie-seq-b")
    sim.schedule(1e-6, fired.append, "tie-prio", priority=-1)
    sim.run()
    assert fired == ["tie-prio", "tie-seq-a", "tie-seq-b", "late"]
    assert sim.events_processed == 4
    assert sim.now == 2e-6


def test_schedule_rejects_negative_and_nan(sim):
    with pytest.raises(SimulationError, match="negative delay"):
        sim.schedule(-1e-9, lambda: None)
    with pytest.raises(SimulationError, match="negative delay"):
        sim.schedule(math.nan, lambda: None)
    assert sim.pending == 0


def test_at_rejects_past_and_nan(sim):
    sim.schedule(1e-6, lambda: None)
    sim.run()
    with pytest.raises(SimulationError, match="past"):
        sim.at(0.5e-6, lambda: None)
    with pytest.raises(SimulationError, match="past"):
        sim.at(math.nan, lambda: None)


def test_schedule_batch_is_atomic_on_rejection(sim):
    sim.schedule(1e-6, lambda: None)
    before = sim.pending
    with pytest.raises(SimulationError, match="past"):
        sim.schedule_batch([
            (2e-6, lambda: None, ()),
            (math.nan, lambda: None, ()),
        ])
    assert sim.pending == before  # nothing from the failed batch landed
    fired = []
    sim.schedule_batch([(3e-6, fired.append, ("b0",)),
                       (2e-6, fired.append, ("b1",))])
    sim.run()
    assert fired == ["b1", "b0"]


def test_batch_tiebreak_is_submission_order(sim):
    fired = []
    sim.schedule_batch([(1e-6, fired.append, (i,)) for i in range(8)])
    sim.run()
    assert fired == list(range(8))


def test_run_until_fires_boundary_and_advances_clock(sim):
    fired = []
    sim.at(1.0, fired.append, "a")
    sim.at(2.0, fired.append, "b")
    sim.run(until=2.0)   # events at exactly `until` fire
    assert fired == ["a", "b"]
    assert sim.now == 2.0
    sim.run(until=5.0)   # drained: clock still advances
    assert sim.now == 5.0


def test_run_max_events_stops_without_clock_jump(sim):
    fired = []
    for i in range(5):
        sim.at(float(i + 1), fired.append, i)
    sim.run(until=100.0, max_events=2)
    assert fired == [0, 1]
    assert sim.now == 2.0  # stopped by budget, not advanced to `until`
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_run_before_is_strict(sim):
    fired = []
    sim.at(1.0, fired.append, "a")
    sim.at(2.0, fired.append, "b")
    sim.run_before(2.0)
    assert fired == ["a"]       # strictly below the bound
    assert sim.now == 1.0       # no clock jump to the bound
    sim.run_before(2.0 + 1e-12)
    assert fired == ["a", "b"]


def test_next_event_time_skips_cancelled(sim):
    ev = sim.schedule(1e-6, lambda: None)
    sim.schedule(2e-6, lambda: None)
    ev.cancel()
    assert sim.next_event_time() == 2e-6
    sim2 = type(sim)()
    assert sim2.next_event_time() == float("inf")


def test_step_fires_exactly_one(sim):
    fired = []
    sim.schedule(1e-6, fired.append, "a")
    sim.schedule(2e-6, fired.append, "b")
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.step() is True
    assert sim.step() is False
    assert fired == ["a", "b"]


def test_cancel_accounting(sim):
    evs = [sim.schedule(1e-6 * (i + 1), lambda: None) for i in range(4)]
    assert sim.pending == 4 and sim.pending_active == 4
    evs[1].cancel()
    evs[1].cancel()  # idempotent
    assert sim.pending == 4 and sim.pending_active == 3
    sim.run()
    assert sim.pending == 0 and sim.pending_active == 0
    assert sim.events_processed == 3
    evs[0].cancel()  # cancelling after the fire is a no-op
    assert sim.pending_active == 0


def test_now_is_settable(sim):
    # parallel._merge_final writes sim._now after a sharded run
    sim._now = 42.0
    assert sim.now == 42.0
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.now == 43.0


def test_schedule_during_callback_same_time_lower_priority(sim):
    """An event scheduled *from a callback* at the current time with a
    lower priority than later-queued work must still fire in key
    order (exercises the calendar's mid-rung insort path)."""
    fired = []

    def first():
        fired.append("first")
        sim.schedule(0.0, fired.append, "inserted", priority=-5)

    sim.schedule(1e-6, first)
    sim.schedule(1e-6, fired.append, "second", priority=1)
    sim.run()
    assert fired == ["first", "inserted", "second"]


# ---------------------------------------------------------------------------
# Mass-cancel during run(): the PR-3 _compact regression, per impl
# ---------------------------------------------------------------------------


def test_in_callback_mass_cancel_does_not_strand_storage(sim):
    """A callback cancelling most of the pending set triggers lazy
    compaction mid-run.  Compaction must mutate the live storage in
    place: every surviving event still fires, in order, and the
    accounting drains to zero."""
    fired = []
    doomed = []
    survivors = []
    for i in range(600):
        ev = sim.schedule(1e-6 + i * 1e-9, fired.append, i)
        (survivors if i % 10 == 0 else doomed).append((i, ev))

    def massacre():
        for _i, ev in doomed:
            ev.cancel()

    sim.schedule(5e-7, lambda: massacre())
    sim.run()
    assert fired == [i for i, _ev in survivors]
    assert sim.pending == 0 and sim.pending_active == 0
    assert sim.events_processed == len(survivors) + 1  # + the massacre


def test_mass_cancel_interleaved_with_future_rung(sim):
    """Cancel storms spanning both rungs (near events being drained,
    far events still unsorted) must not lose or duplicate fires."""
    fired = []
    near = [sim.schedule(1e-6 + i * 1e-9, fired.append, ("near", i))
            for i in range(200)]
    far = [sim.schedule(1e-3 + i * 1e-9, fired.append, ("far", i))
           for i in range(200)]

    def storm():
        for ev in near[1::2]:
            ev.cancel()
        for ev in far[::2]:
            ev.cancel()

    sim.schedule(5e-7, storm)
    sim.run()
    expected = ([("near", i) for i in range(0, 200, 2)]
                + [("far", i) for i in range(1, 200, 2)])
    assert fired == expected
    assert sim.pending == 0 and sim.pending_active == 0


def test_long_rung_trims_consumed_prefix():
    """Draining a rung larger than the trim threshold keeps firing
    correctly (the calendar drops the consumed prefix mid-rung)."""
    sim = CalendarSimulator()
    n = eventq_mod._TRIM_POS + 512
    fired = []
    sim.schedule_batch([(1e-6 + i * 1e-9, fired.append, (i,))
                        for i in range(n)])
    sim.run()
    assert fired == list(range(n))
    assert sim.pending == 0


# ---------------------------------------------------------------------------
# Selection: resolve_eventq / make_simulator / auto commitment
# ---------------------------------------------------------------------------


def test_resolve_default_is_auto(monkeypatch):
    monkeypatch.delenv("REPRO_EVENTQ", raising=False)
    assert resolve_eventq() == "auto"


def test_resolve_env_and_flag_precedence(monkeypatch):
    monkeypatch.setenv("REPRO_EVENTQ", "calendar")
    assert resolve_eventq() == "calendar"
    assert resolve_eventq("heap") == "heap"  # explicit arg wins


def test_resolve_rejects_unknown(monkeypatch):
    with pytest.raises(SimulationError, match="unknown event queue"):
        resolve_eventq("splay")
    monkeypatch.setenv("REPRO_EVENTQ", "nope")
    with pytest.raises(SimulationError, match="unknown event queue"):
        resolve_eventq()


def test_make_simulator_types(monkeypatch):
    monkeypatch.delenv("REPRO_EVENTQ", raising=False)
    assert type(make_simulator("heap")) is Simulator
    assert type(make_simulator("calendar")) is CalendarSimulator
    auto = make_simulator("auto")
    if compiled_available():
        assert type(auto) is CompiledSimulator
        assert type(make_simulator("compiled")) is CompiledSimulator
    else:
        assert type(auto) is AutoSimulator


def test_compiled_request_without_build_raises(monkeypatch):
    monkeypatch.setattr(eventq_mod, "_ceventq", None)
    with pytest.raises(SimulationError, match="not.*built"):
        make_simulator("compiled")
    # auto degrades silently instead
    assert type(make_simulator("auto")) is AutoSimulator


def test_eventq_names():
    assert Simulator().eventq_name == "heap"
    assert CalendarSimulator().eventq_name == "calendar"
    assert eventq_name(object()) == "object"
    if compiled_available():
        assert CompiledSimulator().eventq_name == "calendar-c"
    assert set(EVENTQ_CHOICES) == {"auto", "heap", "calendar", "compiled"}


def test_auto_commits_to_heap_for_small_workloads():
    sim = AutoSimulator()
    for i in range(10):
        sim.schedule(1e-6 * (i + 1), lambda: None)
    sim.run()
    assert type(sim) is Simulator
    assert sim.eventq_name == "heap"
    assert sim.events_processed == 10


def test_auto_commits_to_calendar_for_large_workloads():
    sim = AutoSimulator()
    n = eventq_mod._AUTO_PENDING
    fired = []
    for i in range(n):
        sim.schedule(1e-6 + i * 1e-9, fired.append, i)
    sim.run()
    assert type(sim) is CalendarSimulator
    assert sim.eventq_name == "calendar"
    assert fired == list(range(n))
    # the committed instance keeps working as a calendar simulator
    sim.schedule(1e-6, fired.append, "post")
    sim.run()
    assert fired[-1] == "post"


def test_auto_commit_preserves_pop_order_and_cancels():
    ref, auto = Simulator(), AutoSimulator()
    for s in (ref, auto):
        evs = [s.schedule(1e-6 + (i % 7) * 1e-7, lambda: None, priority=i % 3)
               for i in range(eventq_mod._AUTO_PENDING + 50)]
        for ev in evs[::5]:
            ev.cancel()
    order_ref, order_auto = [], []
    while ref.step():
        order_ref.append(ref.now)
    while auto.step():
        order_auto.append(auto.now)
    assert order_auto == order_ref
    assert auto.events_processed == ref.events_processed
