"""GSpace chares: one electronic state's plane of g-space points.

Per timestep a ``GS(s, p)`` chare:

1. transforms/updates its points (FFT-ish compute; disabled in the
   paper's "PC-only" runs),
2. sends its points to every PairCalculator block that needs state
   ``s`` at plane ``p`` — one row-side and one column-side set of
   ``nblocks`` destinations.  This is *the* communication the paper
   optimizes with CkDirect (§5.1),
3. waits for the orthonormalization-corrected points to return from
   those same PCs (regular messages in both versions, as in the
   paper), applies the correction,
4. runs the rest of the timestep (density/real-space/nonlocal phases,
   modelled as compute plus rings of small messages among states) —
   the "many unrelated phases" during which naive polling taxes every
   scheduler iteration (§5.2),
5. joins the timestep barrier.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...charm import Chare, Payload
from ...sim.rng import substream
from ...util.buffers import Buffer
from .config import OPENATOM_OOB, POINT_BYTES, OpenAtomConfig


class GSpaceBase(Chare):
    """Shared GSpace behaviour (send mechanics differ per version)."""

    def __init__(self, cfg: OpenAtomConfig, monitor) -> None:
        self.cfg = cfg
        self.monitor = monitor
        self.it = 0
        s, p = self.thisIndex
        self.state = s
        self.plane = p
        self.block = s // cfg.grain
        self.offset = s % cfg.grain  # my slot inside the PC operand
        self.got_returns = 0
        self.sent_this_iter = False
        self.rest_left = 0
        self._rest_got = 0
        if cfg.validate:
            rng = substream(cfg.seed, 2, s, p)
            # stay inside (0, 2): OOB = -1 can never appear
            self.points = rng.random(cfg.points_per_plane) + 0.5
        else:
            self.points = None

    # ------------------------------------------------------------------

    @property
    def pc_proxy(self):
        """Proxy to the PairCalculator array."""
        return self.rt.arrays[self._pc_array_id].proxy

    def _expected_returns(self) -> int:
        """Corrected points come back from the row of PCs holding my
        state on the left side (one per right-hand block)."""
        return self.cfg.nblocks

    def send_buffer(self) -> Buffer:
        """The registered source buffer for my points."""
        if self.points is not None:
            return Buffer(array=self.points)
        return Buffer(nbytes=self.cfg.points_bytes)

    def shard_state(self):
        """Point state the driver digests (sharded-engine merge)."""
        return None if self.points is None else {"points": self.points}

    # ------------------------------------------------------------------
    # Phase 1+2: transform and send points (version hook: _send_points)
    # ------------------------------------------------------------------

    def resume(self) -> None:
        """Entry method: run one iteration's send phase."""
        if self.it >= self.cfg.iterations:
            return
        if not self.cfg.pc_only:
            # g-space transform work for this plane
            self.charge(
                self.cfg.points_per_plane * self.rt.machine.compute.fft_per_point
            )
        self._send_points()
        self.sent_this_iter = True

    def _send_points(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Phase 3: corrected points return (messages in both versions)
    # ------------------------------------------------------------------

    def corrected(self, payload: Payload) -> None:
        """Entry method: one orthonormalization return arrived."""
        self.got_returns += 1
        if self.got_returns == self._expected_returns():
            # fold the corrections into my points (axpy-like sweep)
            self.charge_pack(self.cfg.points_bytes)
            if self.points is not None:
                # deterministic "update": damp towards 1 (stays in (0,2))
                np.multiply(self.points, 0.5, out=self.points)
                np.add(self.points, 0.5, out=self.points)
            self.got_returns = 0
            self._rest_phase()

    # ------------------------------------------------------------------
    # Phase 4: the rest of the timestep
    # ------------------------------------------------------------------

    def _rest_phase(self) -> None:
        if self.cfg.pc_only or self.cfg.rest_rounds == 0:
            self._finish_step()
            return
        self.rest_left = self.cfg.rest_rounds
        self._rest_round()

    def _rest_round(self) -> None:
        # a ring exchange among the states of my plane + local work:
        # stands in for the density / real-space / nonlocal phases
        self.charge(self.cfg.rest_work)
        nxt = ((self.state + 1) % self.cfg.nstates, self.plane)
        self.proxy[nxt].rest_msg()

    def rest_msg(self) -> None:
        """Entry method: one ring message of the non-PC phases."""
        self._rest_got += 1
        self.rest_left -= 1
        if self.rest_left > 0:
            self._rest_round()
        else:
            self._finish_step()

    def _finish_step(self) -> None:
        self.it += 1
        self.sent_this_iter = False
        self._post_step()
        self.contribute(callback=self.monitor.callback())

    def _post_step(self) -> None:
        """Version hook."""
