"""The paper's reported numbers, transcribed for side-by-side reports.

Tables 1 and 2 are reproduced verbatim from the paper (round-trip
microseconds).  The figures are plots without printed values, so for
them we record the *shape claims* the text makes (see
:mod:`repro.bench.shapes`) rather than invented numbers.
"""

from __future__ import annotations

#: Message sizes used by the pingpong tables, in user-data bytes
#: (the table headers are in units of 10^3 B).
PINGPONG_SIZES = [100, 1_000, 5_000, 10_000, 20_000, 30_000, 40_000, 70_000, 100_000, 500_000]

#: Table 1 — round-trip time (us) on Infiniband (NCSA Abe).
TABLE1_RTT_US = {
    "Default CHARM++": [22.924, 25.110, 47.340, 66.176, 96.215, 160.470,
                        191.343, 271.803, 353.305, 1399.145],
    "CkDirect CHARM++": [12.383, 16.108, 29.330, 43.136, 68.927, 93.422,
                         120.954, 195.248, 275.322, 1294.358],
    "MPICH-VMI": [12.367, 19.669, 37.318, 60.892, 102.684, 127.591,
                  201.148, 322.687, 332.690, 1396.942],
    "MVAPICH": [12.302, 19.436, 37.311, 56.249, 88.659, 119.452,
                144.973, 236.545, 315.692, 1386.051],
    "MVAPICH-Put": [16.801, 22.821, 51.750, 64.202, 94.250, 120.218,
                    146.028, 232.021, 308.942, 1369.516],
}

#: Table 2 — round-trip time (us) on Blue Gene/P (ANL Surveyor).
TABLE2_RTT_US = {
    "Default CHARM++": [14.467, 20.822, 44.822, 72.976, 128.166, 186.771,
                        240.306, 400.226, 560.634, 2693.601],
    "CkDirect CHARM++": [5.133, 11.379, 33.112, 60.675, 115.103, 169.552,
                         223.599, 383.732, 543.491, 2677.072],
    "MPI": [7.606, 13.936, 39.903, 66.661, 120.548, 173.041,
            226.739, 386.712, 546.740, 2680.459],
    "MPI-Put": [14.049, 17.836, 39.963, 67.972, 122.693, 178.571,
                232.629, 392.388, 552.708, 2685.972],
}

#: Claims the evaluation text makes about the figures (the quantities
#: our shape assertions enforce).
FIGURE_CLAIMS = {
    "fig2a": "Stencil on Infiniband: % improvement grows with PE count; "
             "~12% at 256 PEs (virtualization ratio 8, 1024x1024x512).",
    "fig2b": "Stencil on BG/P: improvements grow from 64 through 4096 PEs; "
             "smaller than Infiniband at equal P (no one-sided primitive).",
    "fig3": "Matmul (2048^2): CkDirect outperforms messages on both "
            "machines; the absolute gap grows with P; ~40% at 4K on BG/P.",
    "fig4": "OpenAtom on Abe (2 cores/node): ~4% full-application "
            "improvement, up to ~14% for PairCalculator-only runs.",
    "fig5": "OpenAtom on BG/P: CkDirect slightly faster at all PE counts; "
            "PC-only benefit most substantial at the largest run.",
    "sec5.2": "Naive polling (CkDirect_ready everywhere) degrades the "
              "CkDirect OpenAtom version; ReadyMark+ReadyPollQ restores it.",
}

#: DCMF one-way latency the paper quotes for context (us).
DCMF_ONE_WAY_US = 1.9
