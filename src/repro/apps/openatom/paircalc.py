"""PairCalculator and Ortho chares (paper §5.1).

``PC(i, j, p)`` forms the overlap contributions of state-block pair
``(i, j)`` at plane ``p``:

1. it receives the points of ``grain`` left-side states (block ``i``)
   and ``grain`` right-side states (block ``j``) into **contiguous
   operand buffers** — the paper's requirement for efficient DGEMM.
   The MSG version copies each arriving state's points into its slot;
   the CKD version registered the slots as CkDirect receive buffers at
   setup, so the data lands assembled;
2. once all ``2 × grain`` inputs are present, the completion path
   **enqueues** the multiply as an entry method (the callback itself
   is a plain function call — the paper's exact design), the DGEMM
   runs, and the overlap contribution joins a reduction to ``Ortho``;
3. Ortho computes the inverse square root of the overlap (matrix
   work), then broadcasts back; each PC applies the backward transform
   and returns corrected points to its left-side GS chares as regular
   messages (both versions);
4. the PC re-arms its channels per the configured polling discipline:
   ``naive`` calls ``CkDirect_ready`` immediately (the handle then
   sits in the polling queue through every unrelated phase — the §5.2
   pathology), ``phased`` calls ``CkDirect_readyMark`` now and defers
   ``CkDirect_readyPollQ`` until the phase notification (``arm``) that
   precedes the next PairCalculator phase.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ...charm import Chare, CkCallback, Payload
from ...util.buffers import Buffer
from .config import OPENATOM_OOB, POINT_BYTES, OpenAtomConfig


class PairCalcBase(Chare):
    """Shared PairCalculator behaviour."""

    def __init__(self, cfg: OpenAtomConfig, monitor) -> None:
        self.cfg = cfg
        self.monitor = monitor
        i, j, p = self.thisIndex
        self.left_block = i
        self.right_block = j
        self.plane = p
        self.got_inputs = 0
        self._mult_enqueued = False
        if cfg.validate:
            # operand buffers: points x grain, one column per state
            self.left = np.zeros((cfg.points_per_plane, cfg.grain))
            self.right = np.zeros((cfg.points_per_plane, cfg.grain))
        else:
            self.left = self.right = None

    # ------------------------------------------------------------------

    @property
    def gs_proxy(self):
        """Proxy to the GSpace array."""
        return self.rt.arrays[self._gs_array_id].proxy

    def expected_inputs(self) -> int:
        """Inputs needed before the multiply (2 x grain)."""
        return 2 * self.cfg.grain

    def slot(self, side: str, offset: int) -> Buffer:
        """The contiguous-operand slot for one state's points."""
        if self.cfg.validate:
            op = self.left if side == "left" else self.right
            return Buffer(array=op[:, offset])
        return Buffer(nbytes=self.cfg.points_bytes)

    def shard_state(self):
        """Operand state the driver digests (sharded-engine merge)."""
        if self.left is None:
            return None
        return {"left": self.left, "right": self.right}

    # ------------------------------------------------------------------
    # Multiply + reduce (common to both versions)
    # ------------------------------------------------------------------

    def _input_landed(self) -> None:
        self.got_inputs += 1
        if self.got_inputs == self.expected_inputs() and not self._mult_enqueued:
            # "The callback enqueues a CHARM++ entry method to perform
            # the multiplication" — §5.1.
            self._mult_enqueued = True
            self.proxy[self.thisIndex].multiply()

    def multiply(self) -> None:
        """Entry method: the overlap DGEMM (enqueued by the callback)."""
        self._mult_enqueued = False
        cfg = self.cfg
        flops = 2 * cfg.points_per_plane * cfg.grain * cfg.grain
        self.charge(
            flops * cfg.pc_work_scale / self.rt.machine.compute.dgemm_flops_per_sec
        )
        if cfg.validate:
            overlap = self.left.T @ self.right  # grain x grain
        else:
            overlap = None
        self.got_inputs = 0
        self._pre_backward()
        # overlap contributions reduce over all PCs to Ortho
        value = overlap if overlap is not None else float(self.plane)
        self.contribute(value, "sum", CkCallback.send(
            self.rt.arrays[self._ortho_array_id], (0,), "overlap_done"
        ))

    def _pre_backward(self) -> None:
        """Version hook: re-arm input channels (mark now; poll later
        for 'phased', immediately for 'naive')."""

    def backward(self, _ortho_payload) -> None:
        """Ortho result arrived (broadcast): run the backward transform
        and return corrected points to my left-side GS chares."""
        cfg = self.cfg
        flops = 2 * cfg.points_per_plane * cfg.grain * cfg.grain
        self.charge(
            flops * cfg.pc_work_scale / self.rt.machine.compute.dgemm_flops_per_sec
        )
        payload = Payload.virtual(cfg.points_bytes)
        base = self.left_block * cfg.grain
        for off in range(cfg.grain):
            state = base + off
            self.gs_proxy[(state, self.plane)].corrected(payload)

    def arm(self) -> None:
        """Phase notification: the PairCalculator phase is next."""


class Ortho(Chare):
    """Orthonormalization: receives the reduced overlap, computes the
    correction (inverse square root — matrix work), broadcasts back."""

    def __init__(self, cfg: OpenAtomConfig, pc_array_id: int) -> None:
        self.cfg = cfg
        self.pc_array_id = pc_array_id

    def overlap_done(self, _value) -> None:
        """Entry method: reduced overlap arrived; compute and broadcast back."""
        cfg = self.cfg
        # inverse-sqrt of an (nstates x nstates) overlap: ~ n^3 work
        flops = 4 * cfg.nstates ** 3
        self.charge(flops / self.rt.machine.compute.dgemm_flops_per_sec)
        self.rt.arrays[self.pc_array_id].proxy.bcast(
            "backward", Payload.virtual(cfg.nstates * 8)
        )
