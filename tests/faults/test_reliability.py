"""Protocol tests for the CkDirect reliability layer.

Each test builds a two-chare cross-node channel on Abe and drives it
under a *certain* fault (probability 1.0), so the recovery path taken
is deterministic and each counter can be pinned exactly.
"""

import numpy as np
import pytest

from repro import ABE, Runtime
from repro import ckdirect as ckd
from repro.faults import FaultPlan, FaultRule, ReliabilityParams

from tests.ckdirect.channel_helpers import CROSS, Endpoint

#: A watchdog that scans fast and escalates quickly, with retransmit
#: timeouts parked far away so the watchdog path is the only recovery.
WATCHDOG_ONLY = ReliabilityParams(
    rto_initial=10.0, max_attempts=1,
    watchdog_period=100e-6, watchdog_timeout=300e-6,
)

#: Fast retransmits, watchdog parked far away: the RTO path is the
#: only recovery.
RTO_ONLY = ReliabilityParams(
    rto_initial=50e-6, rto_backoff=2.0, max_attempts=3,
    watchdog_period=1.0, watchdog_timeout=1.0,
)


def _plan(scope, seed=3, **rule):
    return FaultPlan(profile="test", seed=seed,
                     rules=((scope, FaultRule(**rule)),))


def _wired(plan, params):
    """Element 0 (PE 0) receives from element 1 (PE 15, the other node)."""
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node,
                 fault_plan=plan, reliability=params)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle()
    ckd.assoc_local(send, handle, send.send_buf)
    return rt, arr, recv, send, handle


def test_clean_put_pays_one_ack_and_no_retries():
    rt, arr, recv, send, handle = _wired(FaultPlan.named("none"),
                                         ReliabilityParams())
    arr.proxy[1].do_put(handle)
    rt.run()
    assert np.array_equal(recv.recv_arr, send.send_arr)
    assert len(recv.fired) == 1
    assert handle.acked_seq == handle.put_seq == 1
    assert not rt._reliable_inflight
    t = rt.trace
    assert t.counter("ckdirect.acks_sent") == 1
    assert t.counter("ckdirect.acks_received") == 1
    assert t.counter("ckdirect.retransmits") == 0
    assert t.counter("ckdirect.watchdog_fires") == 0


def test_reliability_without_a_fault_plan_still_acks():
    """``reliability=`` alone arms the protocol on a perfect fabric."""
    rt, arr, recv, send, handle = _wired(None, ReliabilityParams())
    assert rt.fault_injector is None
    arr.proxy[1].do_put(handle)
    rt.run()
    assert np.array_equal(recv.recv_arr, send.send_arr)
    assert rt.trace.counter("ckdirect.acks_received") == 1


def test_torn_sentinel_is_invisible_then_recovered_by_watchdog():
    """The §2.1 sharp edge: payload lands, sentinel word does not, so
    the poll sweep can never see it.  The watchdog repairs the landing
    locally — exactly once per put."""
    rt, arr, recv, send, handle = _wired(_plan("put", torn=1.0),
                                         WATCHDOG_ONLY)
    for it in range(1, 3):
        send.send_arr[:] = float(it)
        arr.proxy[1].do_put(handle)
        rt.run()
        assert np.all(recv.recv_arr == float(it))
        assert len(recv.fired) == it
        t = rt.trace
        assert t.counter("ckdirect.torn_recoveries") == it
        assert t.counter("ckdirect.watchdog_fires") == it
        assert t.counter("ckdirect.retransmits") == 0
        assert not handle.torn_landed
        arr.proxy[0].do_ready(handle)
        rt.run()


def test_watchdog_fires_exactly_once_per_stalled_put():
    """A fully lost put escalates through the watchdog a single time
    (the ``watchdog_fired_seq`` filter), degrades the handle, and the
    fallback still delivers the data."""
    rt, arr, recv, send, handle = _wired(_plan("put", drop=1.0),
                                         WATCHDOG_ONLY)
    arr.proxy[1].do_put(handle)
    rt.run()
    assert np.array_equal(recv.recv_arr, send.send_arr)
    assert len(recv.fired) == 1
    assert handle.degraded
    t = rt.trace
    assert t.counter("ckdirect.watchdog_fires") == 1
    assert rt.watchdog.fires == 1
    assert t.counter("ckdirect.degraded_handles") == 1
    assert t.counter("ckdirect.fallback_puts") == 1

    # Later puts skip straight to the fallback path: no new stall, no
    # further watchdog escalation.
    arr.proxy[0].do_ready(handle)
    rt.run()
    send.send_arr[:] = 9.0
    arr.proxy[1].do_put(handle)
    rt.run()
    assert np.all(recv.recv_arr == 9.0)
    assert rt.watchdog.fires == 1
    assert t.counter("ckdirect.fallback_puts") == 2


def test_retry_gives_up_after_max_attempts_then_falls_back():
    """Every RDMA attempt is dropped: the sender retries through the
    exponential backoff, gives up after ``max_attempts``, and degrades
    to the two-copy charm path — which delivers."""
    rt, arr, recv, send, handle = _wired(_plan("put", drop=1.0), RTO_ONLY)
    arr.proxy[1].do_put(handle)
    rt.run()
    assert np.array_equal(recv.recv_arr, send.send_arr)
    assert len(recv.fired) == 1
    assert handle.degraded
    t = rt.trace
    # 3 attempts = the original + 2 retransmits, then the fallback.
    assert t.counter("ckdirect.retransmits") == RTO_ONLY.max_attempts - 1
    assert t.counter("ckdirect.degraded_handles") == 1
    assert t.counter("ckdirect.fallback_puts") == 1
    assert t.counter("ckdirect.watchdog_fires") == 0


def test_duplicate_delivery_is_discarded_and_reacked():
    """A duplicated delivery must not land its payload twice (the
    buffer may already belong to a later phase); the receiver discards
    it and only re-acks."""
    rt, arr, recv, send, handle = _wired(_plan("put", dup=1.0),
                                         ReliabilityParams())
    arr.proxy[1].do_put(handle)
    rt.run()
    assert np.array_equal(recv.recv_arr, send.send_arr)
    assert len(recv.fired) == 1
    assert handle.puts_completed == 1
    t = rt.trace
    assert t.counter("ckdirect.dup_discards") == 1
    assert t.counter("ckdirect.acks_sent") == 2
    assert t.counter("ckdirect.acks_received") == 1  # dup ack filtered
