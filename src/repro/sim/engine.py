"""The discrete-event simulation engine.

The :class:`Simulator` owns simulated time.  Every other component of
this package — network models, processing elements, the Charm++-like
runtime, the simulated MPI — advances time exclusively by scheduling
events here.

Design notes
------------
* Time is a ``float`` in **seconds**.  The helpers in
  :mod:`repro.util.units` (``us``, ``ms``, ``KB`` …) keep call sites
  readable.
* The event heap breaks ties deterministically (see
  :mod:`repro.sim.event`), so a run is a pure function of its inputs
  and seed.
* The engine is deliberately minimal: no processes/coroutines, just
  callbacks.  The message-driven programming model of Charm++ maps
  naturally onto callbacks, so a process abstraction would only add
  overhead and non-determinism risk.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from .event import Event


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine."""


class Simulator:
    """A deterministic discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1e-6, fired.append, "a")
    >>> _ = sim.schedule(0.5e-6, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1e-06
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._running: bool = False
        self._events_processed: int = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired since construction (cancelled excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still on the heap (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``fn(*args, **kwargs)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay fires after all
        events already scheduled for the current instant at equal
        priority (FIFO among ties).
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.at(self._now + delay, fn, *args, priority=priority, **kwargs)

    def at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``fn`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: t={time!r} < now={self._now!r}"
            )
        ev = Event(time, priority, self._seq, fn, args, kwargs)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Fire the single next event.  Returns False if the heap is empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            self._events_processed += 1
            ev.fire()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the heap drains, ``until`` is reached, or ``max_events``.

        ``until`` is an absolute simulated time; events scheduled at
        exactly ``until`` still fire.  When the heap drains before
        ``until``, the clock is advanced to ``until``.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    return
                nxt = self._heap[0]
                if nxt.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and nxt.time > until:
                    self._now = until
                    return
                heapq.heappop(self._heap)
                self._now = nxt.time
                self._events_processed += 1
                nxt.fire()
                fired += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def drain(self, max_events: int = 50_000_000) -> None:
        """Run to completion, guarding against runaway event loops."""
        self.run(max_events=max_events)
        if self._heap and any(not e.cancelled for e in self._heap):
            raise SimulationError(
                f"simulation did not converge within {max_events} events"
            )
