"""Unit tests for the Blue Gene/P (DCMF) fabric model."""

import pytest

from repro.network import BGPFabric, SURVEYOR, make_fabric
from repro.network.base import FabricError
from repro.sim import Simulator


def _fab(n_pes=64):
    sim = Simulator()
    return sim, make_fabric(sim, SURVEYOR, n_pes)


def _cross_node_pair(fab):
    topo = fab.topology
    for pe in range(topo.n_pes):
        if not topo.same_node(0, pe):
            return 0, pe
    raise AssertionError("no cross-node pair")


def test_short_message_threshold():
    _, fab = _fab()
    assert fab.is_short(0)
    assert fab.is_short(223)
    assert not fab.is_short(224)


def test_short_path_cheaper_alpha():
    sim, fab = _fab()
    src, dst = _cross_node_pair(fab)
    times = {}
    for label, nbytes in (("short", 100), ("normal", 300)):
        s = Simulator()
        f = make_fabric(s, SURVEYOR, 64)
        got = []
        f.dcmf_send(src, dst, nbytes, 0.0, lambda: got.append(s.now))
        s.run()
        times[label] = got[0]
    p = SURVEYOR.net
    delta = times["normal"] - times["short"]
    assert delta == pytest.approx((p.alpha - p.alpha_short) + 200 * p.beta)


def test_recv_handler_cost_by_size():
    _, fab = _fab()
    p = SURVEYOR.net
    assert fab.recv_handler_cost(100) == p.handler_short
    assert fab.recv_handler_cost(10_000) == p.handler_normal


def test_ckdirect_put_carries_info_quadwords():
    """The put's wire bytes include the two-quad-word Info header."""
    src_dst = None
    times = {}
    for label, fn in (
        ("put", lambda f, s, d, cb: f.direct_put(s, d, 1000, 0.0, cb)),
        ("raw", lambda f, s, d, cb: f.dcmf_send(s, d, 1000, 0.0, cb)),
    ):
        s = Simulator()
        f = make_fabric(s, SURVEYOR, 64)
        src, dst = _cross_node_pair(f)
        got = []
        fn(f, src, dst, lambda: got.append(s.now))
        s.run()
        times[label] = got[0]
    p = SURVEYOR.net
    extra = times["put"] - times["raw"]
    assert extra == pytest.approx(
        p.info_qwords_ckdirect * p.quad_word * p.beta
    )


def test_hop_latency_increases_with_distance():
    sim, fab = _fab(256)
    topo = fab.topology
    near = far = None
    for pe in range(topo.n_pes):
        h = topo.hops(0, pe)
        if h == 1 and near is None:
            near = pe
        if h >= 3 and far is None:
            far = pe
    assert near is not None and far is not None

    def delivery(dst):
        s = Simulator()
        f = make_fabric(s, SURVEYOR, 256)
        got = []
        f.dcmf_send(0, dst, 100, 0.0, lambda: got.append(s.now))
        s.run()
        return got[0]

    p = SURVEYOR.net
    d = delivery(far) - delivery(near)
    assert d == pytest.approx((topo.hops(0, far) - 1) * p.hop_latency)


def test_no_protocol_crossover_on_bgp():
    """Per-byte cost is one rate at all sizes (no rendezvous installed
    on Surveyor, §3)."""
    def t(nbytes):
        s = Simulator()
        f = make_fabric(s, SURVEYOR, 64)
        src, dst = _cross_node_pair(f)
        got = []
        f.dcmf_send(src, dst, nbytes, 0.0, lambda: got.append(s.now))
        s.run()
        return got[0]

    p = SURVEYOR.net
    slope1 = (t(20_000) - t(10_000)) / 10_000
    slope2 = (t(400_000) - t(200_000)) / 200_000
    assert slope1 == pytest.approx(p.beta)
    assert slope2 == pytest.approx(p.beta)


def test_wrong_params_type_rejected():
    import dataclasses

    from repro.network.params import IBParams
    from repro.network.topology import Torus3D

    broken = dataclasses.replace(SURVEYOR, net=IBParams())
    with pytest.raises(FabricError, match="BGPParams"):
        BGPFabric(Simulator(), Torus3D((2, 2, 2)), broken)
