"""SchedulerQueue occupancy statistics and DirectItem cost charging.

The queue's occupancy counters are the paper's quantitative handle on
scheduling overhead (finer grain → deeper queues → more overhead), and
DirectItem is the BG/P path that bypasses the queue entirely — so both
must account exactly.
"""

import pytest

from repro.charm import Runtime
from repro.charm.message import Message
from repro.charm.scheduler import DirectItem, SchedulerQueue
from repro.network.params import SURVEYOR


def _msg(i: int) -> Message:
    return Message(array_id=0, index=(0,), method=f"m{i}", args=(), nbytes=8,
                   src_pe=0, send_time=0.0)


class TestSchedulerQueueStats:
    def test_empty_queue_stats(self):
        q = SchedulerQueue()
        assert len(q) == 0
        assert not q
        assert q.mean_occupancy == 0.0
        assert q.max_occupancy == 0
        assert q.enqueued == 0
        assert q.dequeues == 0

    def test_fifo_order(self):
        q = SchedulerQueue()
        msgs = [_msg(i) for i in range(4)]
        for m in msgs:
            q.push(m)
        assert [q.pop() for _ in range(4)] == msgs

    def test_max_occupancy_tracks_high_water_mark(self):
        q = SchedulerQueue()
        q.push(_msg(0))
        q.push(_msg(1))
        q.push(_msg(2))
        q.pop()
        q.pop()
        q.push(_msg(3))
        assert q.max_occupancy == 3  # the earlier peak, not current depth
        assert len(q) == 2

    def test_mean_occupancy_is_depth_seen_at_dequeue(self):
        q = SchedulerQueue()
        for i in range(3):
            q.push(_msg(i))
        # depths observed at the three pops: 3, 2, 1
        for _ in range(3):
            q.pop()
        assert q.mean_occupancy == pytest.approx(2.0)
        assert q.occupancy_sum == 6
        assert q.dequeues == 3

    def test_interleaved_push_pop_occupancy(self):
        q = SchedulerQueue()
        q.push(_msg(0))
        q.pop()           # depth 1
        q.push(_msg(1))
        q.push(_msg(2))
        q.pop()           # depth 2
        q.pop()           # depth 1
        assert q.enqueued == 3
        assert q.mean_occupancy == pytest.approx((1 + 2 + 1) / 3)
        assert q.max_occupancy == 2

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            SchedulerQueue().pop()


class TestDirectItemCharging:
    def test_cost_charged_before_callback_runs(self):
        rt = Runtime(SURVEYOR, n_pes=1)
        pe = rt.pes[0]
        seen = []
        cost = 3e-6
        # The callback runs *after* the handler cost is on the cursor.
        pe.push_direct(DirectItem(cost, lambda: seen.append(pe._cursor)))
        rt.sim.run()
        assert seen == [pytest.approx(cost)]
        assert pe.busy_time == pytest.approx(cost)

    def test_costs_accumulate_across_items(self):
        rt = Runtime(SURVEYOR, n_pes=1)
        pe = rt.pes[0]
        times = []
        for c in (1e-6, 2e-6, 4e-6):
            pe.push_direct(DirectItem(c, lambda: times.append(pe._cursor)))
        rt.sim.run()
        assert times == [pytest.approx(1e-6), pytest.approx(3e-6),
                         pytest.approx(7e-6)]
        assert pe.busy_time == pytest.approx(7e-6)
        assert rt.trace.counters.get("pe.direct_completions") == 3

    def test_direct_items_bypass_scheduler_queue(self):
        rt = Runtime(SURVEYOR, n_pes=1)
        pe = rt.pes[0]
        pe.push_direct(DirectItem(1e-6, lambda: None))
        rt.sim.run()
        # No message ever touched the FIFO: its stats stay untouched.
        assert pe.queue.enqueued == 0
        assert pe.queue.dequeues == 0
        assert pe.queue.max_occupancy == 0
