"""Shared utilities: units, buffers, statistics."""

from .buffers import Buffer, BufferError_
from .stats import (
    geometric_mean,
    monotone_increasing,
    percent_improvement,
    speedup,
    within_factor,
)
from .units import (
    GB_per_s,
    KB,
    KiB,
    MB,
    MB_per_s,
    MiB,
    fmt_bytes,
    fmt_us,
    ms,
    ns,
    to_ms,
    to_us,
    us,
)

__all__ = [
    "Buffer",
    "BufferError_",
    "percent_improvement",
    "speedup",
    "geometric_mean",
    "monotone_increasing",
    "within_factor",
    "ns",
    "us",
    "ms",
    "to_us",
    "to_ms",
    "KB",
    "MB",
    "KiB",
    "MiB",
    "GB_per_s",
    "MB_per_s",
    "fmt_bytes",
    "fmt_us",
]
