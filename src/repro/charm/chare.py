"""The Chare base class.

A chare is a message-driven object: any public method acts as an
*entry method* invokable through the array proxy.  The runtime binds
``rt``, ``thisIndex``, array, and home PE before the user constructor
runs, so constructors can already use them.

Inside an entry method the chare may:

* ``self.charge(seconds)`` — consume simulated compute time,
* ``self.charge_pack(nbytes)`` — consume one application-level memcpy
  (the cost CkDirect's in-place delivery elides),
* send to peers via ``self.proxy[...]`` / ``self.proxy.bcast``,
* ``self.contribute(...)`` — join a reduction / barrier over its array.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any, Optional, Tuple

import numpy as np

from ..util.buffers import Buffer
from .callback import CkCallback
from .errors import ContextError

if TYPE_CHECKING:  # pragma: no cover
    from .array import ArrayProxy, ChareArray
    from .pe import PE
    from .runtime import Runtime


#: Immutable built-ins that snapshot as bare references.
_SNAP_ATOMS = frozenset(
    {int, float, bool, str, bytes, complex, frozenset, type(None)}
)

#: type -> snapshot tag, filled lazily by _snap_kind.  One dict lookup
#: replaces the isinstance chain for every value after the first of its
#: type — this function runs ~70 times per chare per Time Warp
#: checkpoint, so the fast path carries the capture cost.
_SNAP_KINDS: dict = {}


def _snap_kind(t: type) -> str:
    """Classify a type once (isinstance semantics, cached by type)."""
    if t in _SNAP_ATOMS:
        kind = "ref"
    elif issubclass(t, np.ndarray):
        kind = "nd"
    elif issubclass(t, Buffer):
        kind = "buf"
    elif issubclass(t, np.random.Generator):
        kind = "rng"
    elif issubclass(t, list):
        kind = "list"
    elif issubclass(t, dict):
        kind = "dict"
    elif issubclass(t, set):
        kind = "set"
    elif issubclass(t, tuple):
        kind = "tuple"
    else:
        kind = "ref"
    _SNAP_KINDS[t] = kind
    return kind


def _snap_value(v: Any) -> tuple:
    """Identity-preserving value snapshot: ``(tag, obj_ref, content)``.

    The original object is kept by reference and its *content* copied,
    so a restore writes the old bytes back **into the same object** —
    pending event closures captured the object, not its value, and must
    observe the rolled-back state.  Unrecognized types snapshot as bare
    references: runtime-owned objects (handles, PEs, chares, events)
    are checkpointed by their owning layer.
    """
    atoms = _SNAP_ATOMS
    t = type(v)
    kind = _SNAP_KINDS.get(t)
    if kind is None:
        kind = _snap_kind(t)
    if kind == "ref":
        return ("ref", v, None)
    # Atom elements skip the recursive call entirely — containers are
    # mostly scalars, so the inline test carries the capture cost.
    if kind == "list":
        return ("list", v, [
            ("ref", x, None) if type(x) in atoms else _snap_value(x)
            for x in v
        ])
    if kind == "dict":
        return ("dict", v, [
            (k, ("ref", x, None) if type(x) in atoms else _snap_value(x))
            for k, x in v.items()
        ])
    if kind == "tuple":
        # A tuple of atoms is immutable all the way down — no copy.
        for x in v:
            if type(x) not in atoms:
                break
        else:
            return ("ref", v, None)
        return ("tuple", v, [
            ("ref", x, None) if type(x) in atoms else _snap_value(x)
            for x in v
        ])
    if kind == "set":
        return ("set", v, set(v))
    if kind == "nd":
        return ("nd", v, v.copy())
    if kind == "buf":
        return ("buf", v, None if v.is_virtual else v.array.copy())
    return ("rng", v, copy.deepcopy(v.bit_generator.state))


def _restore_value(snap: tuple) -> Any:
    tag, obj, content = snap
    if tag == "nd":
        np.copyto(obj, content)
    elif tag == "buf":
        if content is not None:
            obj.array[...] = content
    elif tag == "rng":
        obj.bit_generator.state = copy.deepcopy(content)
    elif tag == "list":
        obj[:] = [_restore_value(s) for s in content]
    elif tag == "dict":
        obj.clear()
        for k, s in content:
            obj[k] = _restore_value(s)
    elif tag == "set":
        obj.clear()
        obj.update(content)
    elif tag == "tuple":
        for s in content:
            _restore_value(s)
    return obj


class Chare:
    """Base class for message-driven objects."""

    # Bound by the runtime in _bind(); declared for introspection.
    rt: "Runtime"
    thisIndex: Tuple[int, ...]

    #: Attribute names excluded from Time Warp snapshots — the classic
    #: "reduced state saving" optimization.  A subclass may list
    #: attributes here when either (a) the attribute is never rebound
    #: and its referenced content never mutates after construction
    #: (geometry, wiring tables, runtime refs), or (b) every reader is
    #: preceded by a full overwrite in the same timeline (packed
    #: staging buffers).  Checkpoints skip them and restore leaves
    #: them untouched; a wrong entry silently breaks rollback
    #: bit-identity, so only provably safe names belong here.
    tw_static: frozenset = frozenset()

    def _bind(
        self, rt: "Runtime", array: "ChareArray", index: Tuple[int, ...], pe: "PE"
    ) -> None:
        self.rt = rt
        self._array = array
        self._pe = pe
        self.thisIndex = index
        #: per-collective contribution epoch counters (the whole array
        #: and each section this element belongs to count separately)
        self._reduction_seqs: dict = {}

    # ------------------------------------------------------------------

    @property
    def proxy(self) -> "ArrayProxy":
        """Proxy to this chare's array (``self.proxy[idx].method(...)``)."""
        return self._array.proxy

    @property
    def my_pe(self) -> int:
        """Home PE rank of this chare."""
        return self._pe.rank

    @property
    def index1d(self) -> int:
        """This element's index when the array is one-dimensional."""
        if len(self.thisIndex) != 1:
            raise ContextError(f"array is {len(self.thisIndex)}-D; use thisIndex")
        return self.thisIndex[0]

    @property
    def now(self) -> float:
        """This chare's local simulated time (its PE's cursor)."""
        return self._pe.cursor

    # ------------------------------------------------------------------
    # Time accounting
    # ------------------------------------------------------------------

    def charge(self, seconds: float) -> None:
        """Consume compute time on this chare's PE."""
        self._require_context()
        self._pe.charge(seconds)

    def charge_pack(self, nbytes: int) -> None:
        """Consume one application-level memcpy of ``nbytes``."""
        self._require_context()
        charm = self.rt.machine.charm
        if nbytes:
            self._pe.charge(charm.copy_base + nbytes * charm.copy_per_byte)

    def _require_context(self) -> None:
        cur = self.rt.current_pe
        if cur is None or cur is not self._pe:
            raise ContextError(
                f"{type(self).__name__}{self.thisIndex} used outside its PE context"
            )

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------

    def contribute(
        self,
        value: Any = None,
        reducer: Optional[str] = None,
        callback: Optional[CkCallback] = None,
        section=None,
    ) -> None:
        """Join the next reduction epoch of this array (or of one of
        its sections, when ``section=`` is given).

        With ``value=None, reducer=None`` this is a pure barrier; the
        callback fires when every member has contributed.  Every
        member must pass the same reducer and an equivalent callback
        within one epoch.
        """
        self._require_context()
        target = self._array if section is None else section
        if section is not None:
            if section.base_array is not self._array:
                raise ContextError(
                    f"{type(self).__name__}{self.thisIndex}: section "
                    "belongs to a different array"
                )
            if not section.contains(self.thisIndex):
                raise ContextError(
                    f"{type(self).__name__}{self.thisIndex} is not a "
                    "member of the section it contributed to"
                )
        seq = self._reduction_seqs.get(target.id, 0)
        self._reduction_seqs[target.id] = seq + 1
        self.rt.reductions.contribute(
            target, self._pe, seq, value, reducer, callback
        )

    # ------------------------------------------------------------------
    # Sharded-engine state reconciliation (see repro.sim.parallel)
    # ------------------------------------------------------------------

    def shard_state(self) -> Optional[dict]:
        """Validation state a worker shard ships home after a sharded
        run (picklable attribute dict), or None when the element holds
        none — the default.  Override in chares whose drivers read
        element state after ``rt.run()``."""
        return None

    def shard_load(self, state: dict) -> None:
        """Install a :meth:`shard_state` payload on the parent's copy."""
        for name, value in state.items():
            setattr(self, name, value)

    # ------------------------------------------------------------------
    # Time Warp checkpoint/restore (see repro.sim.timewarp)
    # ------------------------------------------------------------------

    def tw_checkpoint(self) -> list:
        """Snapshot every non-static instance attribute (insertion
        order)."""
        atoms = _SNAP_ATOMS
        static = self.tw_static
        if static:
            return [
                (name, ("ref", v, None) if type(v) in atoms
                 else _snap_value(v))
                for name, v in self.__dict__.items() if name not in static
            ]
        return [
            (name, ("ref", v, None) if type(v) in atoms else _snap_value(v))
            for name, v in self.__dict__.items()
        ]

    def tw_restore(self, snap: list) -> None:
        """Write checkpointed contents back into the original objects
        and drop attributes the speculative future added."""
        names = set()
        for name, s in snap:
            names.add(name)
            self.__dict__[name] = _restore_value(s)
        static = self.tw_static
        for name in [
            n for n in self.__dict__ if n not in names and n not in static
        ]:
            del self.__dict__[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        idx = getattr(self, "thisIndex", "?")
        return f"<{type(self).__name__}{idx}>"
