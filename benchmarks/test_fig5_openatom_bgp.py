"""Figure 5 — OpenAtom step times on Blue Gene/P.

§5.2 claims: "The CkDirect version is slightly faster for all
processor counts" — the BG/P implementation only removes the already
low Charm++ overheads, and the application's overlap hides most of the
latency win.  Gains are therefore asserted to be slight-but-real, and
clearly smaller than the Abe gains.
"""

import numpy as np
import pytest

from conftest import save_report
from repro.bench import run_fig4, run_fig5, shapes


@pytest.fixture(scope="module")
def fig5(holder={}):
    if "r" not in holder:
        holder["r"] = run_fig5()
    return holder["r"]


def test_fig5_benchmark(benchmark, fig5):
    result = benchmark.pedantic(lambda: fig5, rounds=1, iterations=1)
    save_report("fig5_openatom_bgp", result["report"])
    test_ckdirect_slightly_faster_full(fig5)
    test_gains_are_slight(fig5)


def test_ckdirect_slightly_faster_full(fig5):
    """Slightly faster at every PE count (structural noise floor 2%)."""
    shapes.assert_all_nonnegative(
        fig5["full"]["pes"], fig5["full"]["gains"], slack_pct=2.0,
        label="fig5/full",
    )
    mean = float(np.mean(fig5["full"]["gains"]))
    assert mean > 0.0, f"mean BG/P full-app gain not positive: {mean:.2f}%"


def test_gains_are_slight(fig5):
    """BG/P gains stay modest — the point §5.2 makes about this
    implementation being two-sided underneath."""
    assert max(fig5["full"]["gains"]) < 15.0


def test_bgp_gains_below_abe(fig5):
    abe = run_fig4()
    abe_mean = float(np.mean(abe["full"]["gains"]))
    bgp_mean = float(np.mean(fig5["full"]["gains"]))
    assert bgp_mean < abe_mean, (
        f"BG/P mean gain ({bgp_mean:.2f}%) not below Abe ({abe_mean:.2f}%)"
    )
