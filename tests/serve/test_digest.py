"""Digest invariants: the contract the result cache rests on.

The load-bearing claim is *digest equality ⇔ byte-identical results*:

* same spec (any param order, any jobs/shards knobs) → same digest →
  the cache may serve either run's bytes for the other, proven here by
  actually recomputing and comparing payload bytes;
* different spec → different digest (no false sharing);
* engine-schema bump → different digest (no stale hits across engine
  changes).
"""

import numpy as np
import pytest

import repro.sweep.spec as spec_mod
from repro.serve.digest import job_digest, result_payload
from repro.sweep import RunSpec, SweepError, SweepRunner, canonical_json, execute_spec

SPEC = dict(kind="pingpong", machine="Surveyor", mode="ckdirect")


class TestCanonicalJson:
    def test_dict_order_irrelevant(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_tuple_equals_list(self):
        assert canonical_json((1, 2, 3)) == canonical_json([1, 2, 3])

    def test_numpy_scalars_collapse(self):
        assert canonical_json(np.int64(7)) == canonical_json(7)
        assert canonical_json(np.float64(2.5)) == canonical_json(2.5)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json(float("nan"))

    def test_object_rejected(self):
        with pytest.raises(SweepError, match="cannot be"):
            canonical_json(object())

    def test_non_string_keys_rejected(self):
        with pytest.raises(SweepError, match="string keys"):
            canonical_json({1: "x"})


class TestSpecDigest:
    def test_param_order_irrelevant(self):
        a = RunSpec.make(**SPEC, size=1000, iterations=5)
        b = RunSpec.make(**SPEC, iterations=5, size=1000)
        assert a.digest() == b.digest()

    def test_from_dict_roundtrip_same_digest(self):
        a = RunSpec.make(**SPEC, size=1000, iterations=5)
        b = RunSpec.from_dict(a.to_dict())
        assert a == b and a.digest() == b.digest()

    def test_different_specs_different_digest(self):
        a = RunSpec.make(**SPEC, size=1000)
        assert a.digest() != RunSpec.make(**SPEC, size=2000).digest()
        assert a.digest() != RunSpec.make("pingpong", "Abe", "ckdirect", size=1000).digest()
        assert a.digest() != RunSpec.make("pingpong", "Surveyor", "charm", size=1000).digest()

    def test_jobs_and_shards_env_irrelevant(self, monkeypatch):
        a = RunSpec.make(**SPEC, size=1000)
        before = a.digest()
        monkeypatch.setenv("REPRO_JOBS", "4")
        monkeypatch.setenv("REPRO_SHARDS", "2")
        assert a.digest() == before

    def test_schema_bump_invalidates(self, monkeypatch):
        a = RunSpec.make(**SPEC, size=1000)
        before = a.digest()
        monkeypatch.setattr(spec_mod, "ENGINE_SCHEMA", spec_mod.ENGINE_SCHEMA + 1)
        assert a.digest() != before

    def test_digest_is_sha256_hex(self):
        d = RunSpec.make(**SPEC, size=1000).digest()
        assert len(d) == 64 and int(d, 16) >= 0


class TestJobDigest:
    def test_spec_order_matters(self):
        a = RunSpec.make(**SPEC, size=1000)
        b = RunSpec.make(**SPEC, size=2000)
        assert job_digest([a, b]) != job_digest([b, a])

    def test_empty_job_rejected(self):
        with pytest.raises(SweepError):
            job_digest([])

    def test_single_vs_pair_distinct(self):
        a = RunSpec.make(**SPEC, size=1000)
        assert job_digest([a]) != job_digest([a, a])


class TestDigestMeansIdenticalBytes:
    """Equality of digests ⇔ byte-identical recomputed payloads."""

    def test_recompute_is_byte_identical(self):
        spec = RunSpec.make(**SPEC, size=1000, iterations=5)
        p1 = result_payload([execute_spec(spec)])
        p2 = result_payload([execute_spec(spec)])
        assert spec.digest() == spec.digest()
        assert p1 == p2

    def test_identical_at_any_jobs_count(self):
        specs = [RunSpec.make(**SPEC, size=s, iterations=5) for s in (1000, 2000, 4000)]
        serial = result_payload(SweepRunner(jobs=1).run(specs))
        parallel = result_payload(SweepRunner(jobs=3).run(specs))
        assert serial == parallel
        assert job_digest(specs) == job_digest(list(specs))

    def test_unequal_digest_means_unequal_bytes(self):
        s1 = RunSpec.make(**SPEC, size=1000, iterations=5)
        s2 = RunSpec.make(**SPEC, size=2000, iterations=5)
        assert s1.digest() != s2.digest()
        assert result_payload([execute_spec(s1)]) != result_payload([execute_spec(s2)])

    def test_failed_results_refuse_to_serialize(self):
        bad = execute_spec(RunSpec.make("no-such-kind", "Surveyor", "x"))
        assert not bad.ok
        with pytest.raises(SweepError, match="refusing"):
            result_payload([bad])

    def test_payload_strips_wall_time(self):
        # Two runs of the same spec differ in wall_time but not payload.
        spec = RunSpec.make(**SPEC, size=1000, iterations=5)
        r1, r2 = execute_spec(spec), execute_spec(spec)
        assert r1.wall_time != r2.wall_time or r1.wall_time >= 0
        assert result_payload([r1]) == result_payload([r2])
        assert b"wall" not in result_payload([r1])
