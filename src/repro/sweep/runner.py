"""The parallel sweep runner.

:class:`SweepRunner` executes a list of :class:`~repro.sweep.spec.RunSpec`
points either in-process (``jobs=1``, the *warm* path — ambient
tracing, debuggers, and profilers all see the runs directly) or fanned
out over a pool of worker processes (``jobs>1``).

Guarantees, in order of importance:

* **Determinism** — results come back ordered by the *input spec
  list*, never by completion order, and every point is a deterministic
  pure function of its spec; a sweep run with ``--jobs 4`` therefore
  renders byte-identical reports to a serial run (regression-tested).
* **Crash isolation** — each point runs in its own worker process; a
  worker that dies (segfault, ``os._exit``, OOM-kill) or exceeds the
  per-point timeout fails *that point only*, recorded as a failed
  :class:`RunResult`, and the sweep continues.
* **Tracing** — when a Projections tracer is ambient
  (``--trace-out``), parallel workers record into their own private
  :class:`EventLog` and ship the events back with the result; the
  parent merges them (run ids and event ids remapped) in spec order,
  so a traced parallel sweep produces one coherent timeline.

Worker-pool size resolution: explicit ``jobs=`` argument, else the
``REPRO_JOBS`` environment variable, else 1 (serial).  The start
method prefers ``fork`` (cheap, inherits registered point functions)
and can be pinned with ``REPRO_MP_START``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List, Optional, Sequence

from ..projections.eventlog import (
    EventLog,
    current_tracer,
    install_tracer,
    uninstall_tracer,
)
from ..projections.events import TraceEvent
from ..sim.parallel import resolve_shards
from .points import point_function
from .spec import RunResult, RunSpec, SweepError
from .stats import SweepRecord, record

#: Default per-point timeout (seconds); REPRO_SWEEP_TIMEOUT overrides.
DEFAULT_TIMEOUT = 600.0

#: Poll interval for the worker supervision loop (seconds).
_POLL_S = 0.05


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_JOBS``, else 1.

    Precedence is *flag over environment over default*: an explicit
    ``jobs`` argument (the ``--jobs`` flag) always wins; ``REPRO_JOBS``
    applies only when no argument is given; absent both, sweeps run
    serially.  Invalid values — anything that is not an integer >= 1 —
    raise :class:`SweepError` with a one-line message rather than
    being silently clamped or ignored.
    """
    if jobs is not None:
        jobs = int(jobs)
        if jobs < 1:
            raise SweepError(f"jobs must be at least 1, got {jobs}")
        return jobs
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            val = int(env)
        except ValueError:
            raise SweepError(
                f"REPRO_JOBS must be a positive integer, got {env!r}"
            ) from None
        if val < 1:
            raise SweepError(f"REPRO_JOBS must be at least 1, got {val}")
        return val
    return 1


def _resolve_timeout(timeout: Optional[float]) -> float:
    if timeout is not None:
        return float(timeout)
    env = os.environ.get("REPRO_SWEEP_TIMEOUT", "").strip()
    if env:
        try:
            return float(env)
        except ValueError:
            pass
    return DEFAULT_TIMEOUT


def _mp_context():
    """The multiprocessing context for sweep workers.

    ``fork`` is preferred: workers start in milliseconds and inherit
    every registered point function (including ones registered by the
    calling application/test).  ``REPRO_MP_START`` pins a method
    explicitly (e.g. ``spawn`` for debugging fork-unsafe state).
    """
    method = os.environ.get("REPRO_MP_START", "").strip()
    if not method:
        method = "fork" if "fork" in mp.get_all_start_methods() else None
    return mp.get_context(method)


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one point in the current process (shared serial/worker path)."""
    t0 = time.perf_counter()
    try:
        values = dict(point_function(spec.kind)(spec))
    except BaseException:
        return RunResult(
            spec, ok=False, error=traceback.format_exc(),
            wall_time=time.perf_counter() - t0,
        )
    events = int(values.pop("events", 0))
    return RunResult(
        spec, ok=True, values=values, events=events,
        wall_time=time.perf_counter() - t0,
    )


def _serialize_log(log: EventLog) -> tuple:
    """Flatten an EventLog into picklable payloads (owner refs dropped)."""
    events = [
        (e.eid, e.kind, e.run, e.pe, e.category, e.name, e.t0, e.t1,
         e.cause, e.args)
        for e in log.events
    ]
    runs = [(label, n_pes) for (label, _owner, n_pes) in log.runs]
    return events, runs


def _worker_main(spec: RunSpec, trace: bool, conn) -> None:
    """Worker entry: run the point, optionally tracing, ship the result."""
    try:
        log = None
        if trace:
            log = EventLog()
            install_tracer(log)
        try:
            res = execute_spec(spec)
        finally:
            if trace:
                uninstall_tracer()
        if log is not None:
            res.trace_events, res.trace_runs = _serialize_log(log)
        conn.send(res)
    except BaseException:  # pragma: no cover - last-resort reporting
        try:
            conn.send(RunResult(spec, ok=False, error=traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def _merge_trace(log: EventLog, res: RunResult) -> None:
    """Fold one worker's trace payload into the parent's EventLog.

    Run ids and event ids are remapped into the parent's namespaces;
    relative event order (and therefore causal links) is preserved.
    """
    run_map = {
        i: log.new_run(label, owner=None, n_pes=n_pes)
        for i, (label, n_pes) in enumerate(res.trace_runs)
    }
    # Two passes: span-wrapping allocates ids before recording, so a
    # `cause` may reference an eid recorded later in the list.
    eid_map: Dict[int, int] = {}
    for rec in res.trace_events:
        eid_map[rec[0]] = log.next_id()
    for (eid, kind, run, pe, category, name, t0, t1, cause, args) in res.trace_events:
        log.events.append(
            TraceEvent(
                eid_map[eid], kind, run_map.get(run, run), pe, category,
                name, t0, t1,
                eid_map.get(cause) if cause is not None else None, args,
            )
        )


class SweepRunner:
    """Fan a list of sweep points over a worker pool; merge by spec."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        timeout: Optional[float] = None,
        label: str = "sweep",
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        shards = resolve_shards()
        if shards is not None and shards > 1 and self.jobs > 1:
            # Each point may fork `shards` engine workers of its own:
            # scale the pool so jobs x shards stays within the
            # requested process budget.
            self.jobs = max(1, self.jobs // shards)
        self.timeout = _resolve_timeout(timeout)
        self.label = label

    def run(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[Callable[[RunResult], None]] = None,
    ) -> List[RunResult]:
        """Execute every spec; results ordered exactly like ``specs``.

        ``progress``, when given, is invoked once per point as it
        finishes — in *completion* order on the parallel path (the
        returned list stays in spec order regardless).  The serve
        layer uses this for per-job progress streaming; callbacks run
        on the supervising thread and must not raise.
        """
        specs = list(specs)
        t0 = time.perf_counter()
        if self.jobs <= 1 or len(specs) <= 1:
            results = []
            for s in specs:
                r = execute_spec(s)
                results.append(r)
                if progress is not None:
                    progress(r)
            jobs_used = 1
        else:
            results = self._run_parallel(specs, progress)
            jobs_used = self.jobs
        wall = time.perf_counter() - t0
        record(SweepRecord(
            label=self.label,
            jobs=jobs_used,
            points=len(results),
            failed=sum(1 for r in results if not r.ok),
            wall_s=wall,
            events=sum(r.events for r in results),
        ))
        return results

    def run_values(self, specs: Sequence[RunSpec]) -> Dict[tuple, Dict]:
        """Run and return ``{spec.key: values}``, raising on any failure."""
        return {r.spec.key: r.unwrap() for r in self.run(specs)}

    # ------------------------------------------------------------------
    # Parallel path
    # ------------------------------------------------------------------

    def _run_parallel(
        self,
        specs: List[RunSpec],
        progress: Optional[Callable[[RunResult], None]] = None,
    ) -> List[RunResult]:
        ctx = _mp_context()
        tracer = current_tracer()
        trace = tracer is not None
        results: List[Optional[RunResult]] = [None] * len(specs)
        todo = deque(enumerate(specs))
        active: Dict[object, tuple] = {}  # conn -> (idx, proc, deadline)

        def _finish(idx: int, res: RunResult) -> None:
            results[idx] = res
            if progress is not None:
                progress(res)

        try:
            while todo or active:
                while todo and len(active) < self.jobs:
                    idx, spec = todo.popleft()
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=_worker_main, args=(spec, trace, child_conn),
                        daemon=True,
                        name=f"sweep:{spec.label()}",
                    )
                    proc.start()
                    child_conn.close()
                    active[parent_conn] = (
                        idx, proc, time.monotonic() + self.timeout
                    )

                ready = mp_connection.wait(list(active), timeout=_POLL_S)
                for conn in ready:
                    idx, proc, _deadline = active.pop(conn)
                    try:
                        res = conn.recv()
                    except (EOFError, OSError):
                        # EOF means the child exited; reap it first or
                        # exitcode may still read None (unwaited zombie).
                        proc.join()
                        res = RunResult(
                            specs[idx], ok=False,
                            error=f"worker for {specs[idx].label()} died "
                                  f"without a result "
                                  f"(exitcode={proc.exitcode})",
                        )
                    conn.close()
                    proc.join()
                    _finish(idx, res)

                now = time.monotonic()
                for conn, (idx, proc, deadline) in list(active.items()):
                    if now >= deadline:
                        proc.terminate()
                        proc.join()
                        conn.close()
                        del active[conn]
                        _finish(idx, RunResult(
                            specs[idx], ok=False,
                            error=f"sweep point {specs[idx].label()} timed "
                                  f"out after {self.timeout:g}s",
                        ))
        finally:
            # Supervisor interrupted: reap whatever is still running.
            for conn, (idx, proc, _d) in active.items():
                proc.terminate()
                proc.join()
                conn.close()

        out: List[RunResult] = []
        for idx, res in enumerate(results):
            if res is None:  # pragma: no cover - supervisor interrupted
                res = RunResult(specs[idx], ok=False, error="sweep aborted")
            out.append(res)

        # Merge worker trace payloads in *spec order* so the parent's
        # timeline is independent of completion order.
        if trace:
            for res in out:
                if res.trace_events or res.trace_runs:
                    _merge_trace(tracer, res)
                    res.trace_events, res.trace_runs = [], []
        return out


def run_sweep(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    label: str = "sweep",
) -> Dict[tuple, Dict]:
    """One-call convenience: run specs, return ``{spec.key: values}``."""
    return SweepRunner(jobs=jobs, timeout=timeout, label=label).run_values(specs)
