"""Unit tests for statistics helpers."""

import pytest

from repro.util.stats import (
    geometric_mean,
    monotone_increasing,
    percent_improvement,
    speedup,
    within_factor,
)


def test_percent_improvement():
    assert percent_improvement(100.0, 88.0) == pytest.approx(12.0)
    assert percent_improvement(10.0, 12.0) == pytest.approx(-20.0)
    with pytest.raises(ValueError):
        percent_improvement(0.0, 1.0)


def test_speedup():
    assert speedup(10.0, 5.0) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        speedup(1.0, 0.0)


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([3.0]) == pytest.approx(3.0)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, -1.0])


def test_monotone_increasing():
    assert monotone_increasing([1, 2, 3])
    assert not monotone_increasing([1, 3, 2])
    assert monotone_increasing([1, 3, 2.5], slack=0.6)
    assert monotone_increasing([])
    assert monotone_increasing([5])


def test_within_factor():
    assert within_factor(10.0, 10.0, 1.5)
    assert within_factor(14.0, 10.0, 1.5)
    assert within_factor(7.0, 10.0, 1.5)
    assert not within_factor(16.0, 10.0, 1.5)
    assert not within_factor(6.0, 10.0, 1.5)
    with pytest.raises(ValueError):
        within_factor(-1.0, 1.0, 2.0)
