"""End-to-end over real sockets: the acceptance criteria of the PR.

Submitting the same spec twice returns byte-identical payloads with
the second served from cache (hit counter up, no recompute); a burst
against a full queue gets 429 + Retry-After while every accepted job
completes; shutdown drains cleanly.
"""

import json
import time

import pytest

from repro.serve import (
    Backpressure,
    ServeApp,
    ServeClient,
    ServeClientError,
    ServerThread,
)
from repro.sweep import register_point


@register_point("h-echo")
def _echo(spec):
    return {"x": dict(spec.params)["x"], "events": 5}


@register_point("h-sleep")
def _sleep(spec):
    time.sleep(dict(spec.params).get("delay", 0.05))
    return {"x": dict(spec.params)["x"], "events": 1}


def wire_spec(kind, x, **kw):
    return {"kind": kind, "machine": "Abe", "mode": "m",
            "n_pes": 0, "params": {"x": x, **kw}}


@pytest.fixture()
def server(tmp_path):
    app = ServeApp(tmp_path / "store", workers=2, max_queue=16)
    srv = ServerThread(app).start()
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    return ServeClient(server.host, server.port)


class TestEndToEnd:
    def test_miss_then_hit_byte_identical(self, client):
        spec = wire_spec("h-echo", 1)
        j1 = client.submit(spec)
        assert j1["status"] in ("queued", "running") and not j1["cached"]
        assert client.wait(j1["job"])["status"] == "done"
        p1 = client.result(j1["job"])

        j2 = client.submit(spec)
        assert j2["cached"] and j2["status"] == "done"
        p2 = client.result(j2["job"])
        assert p1 == p2                                  # byte-identical

        m = client.metrics()
        assert m["cache"]["hits"] == 1
        assert m["cache"]["misses"] == 1
        assert m["jobs"]["completed"] == 1               # no recompute
        assert "hit" in m["latency"]["h-echo"]
        assert "miss" in m["latency"]["h-echo"]

    def test_result_payload_parses(self, client):
        j = client.submit(wire_spec("h-echo", 2))
        client.wait(j["job"])
        doc = json.loads(client.result(j["job"]))
        [res] = doc["results"]
        assert res["ok"] and res["values"] == {"x": 2} and res["events"] == 5
        assert res["spec"]["kind"] == "h-echo"

    def test_multi_spec_job(self, client):
        j = client.submit([wire_spec("h-echo", i) for i in range(3)])
        final = client.wait(j["job"])
        assert final["points"] == {"done": 3, "total": 3}
        doc = json.loads(client.result(j["job"]))
        assert [r["values"]["x"] for r in doc["results"]] == [0, 1, 2]

    def test_stream_reaches_terminal(self, client):
        j = client.submit([wire_spec("h-sleep", i, delay=0.05) for i in range(3)])
        lines = list(client.stream(j["job"]))
        assert lines[-1]["status"] == "done"
        assert lines[-1]["points"]["done"] == 3

    def test_status_unknown_job_404(self, client):
        with pytest.raises(ServeClientError) as exc:
            client.status("j999999")
        assert exc.value.status == 404

    def test_result_before_done_is_202(self, server, client):
        j = client.submit(wire_spec("h-sleep", 77, delay=0.4))
        with pytest.raises(ServeClientError) as exc:
            client.result(j["job"])
        assert exc.value.status == 202
        client.wait(j["job"])
        assert client.result(j["job"])


class TestValidation:
    def test_unknown_kind_400(self, client):
        with pytest.raises(ServeClientError) as exc:
            client.submit({"kind": "nope", "machine": "Abe",
                           "mode": "", "n_pes": 0, "params": {}})
        assert exc.value.status == 400
        assert "unknown kind" in exc.value.body["error"]

    def test_unknown_machine_400(self, client):
        with pytest.raises(ServeClientError) as exc:
            client.submit({"kind": "h-echo", "machine": "NoSuchMachine",
                           "mode": "", "n_pes": 0, "params": {}})
        assert exc.value.status == 400

    def test_malformed_spec_400(self, client):
        for bad in ({}, {"kind": ""}, {"kind": "h-echo"},
                    {"kind": "h-echo", "machine": "Abe", "bogus": 1}):
            with pytest.raises(ServeClientError) as exc:
                client.submit(bad)
            assert exc.value.status == 400
        assert client.metrics()["jobs"]["bad_requests"] == 4

    def test_garbage_body_400(self, server):
        import http.client

        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        conn.request("POST", "/v1/jobs", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        assert resp.status == 400
        conn.close()

    def test_unroutable_404(self, server):
        import http.client

        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        conn.request("GET", "/nope")
        assert conn.getresponse().status == 404
        conn.close()


class TestBackpressureBurst:
    def test_burst_gets_429_and_accepted_jobs_complete(self, tmp_path):
        app = ServeApp(tmp_path / "store", workers=1, max_queue=4)
        srv = ServerThread(app).start()
        try:
            client = ServeClient(srv.host, srv.port)
            accepted, rejected = [], 0
            retry_after_seen = None
            for i in range(50):
                try:
                    accepted.append(
                        client.submit(wire_spec("h-sleep", i, delay=0.05))
                    )
                except Backpressure as exc:
                    rejected += 1
                    retry_after_seen = exc.retry_after
            assert rejected >= 1                       # queue really bounded
            assert accepted                            # but not starved
            assert len(accepted) + rejected == 50
            assert retry_after_seen >= 1.0             # Retry-After header parsed
            for j in accepted:
                assert client.wait(j["job"], deadline_s=60)["status"] == "done"
            m = client.metrics()
            assert m["jobs"]["rejected"] == rejected
            assert m["queue"]["depth"] == 0            # fully drained
        finally:
            srv.stop()

    def test_shutdown_drains_accepted_jobs(self, tmp_path):
        app = ServeApp(tmp_path / "store", workers=1, max_queue=8)
        srv = ServerThread(app).start()
        client = ServeClient(srv.host, srv.port)
        jobs = [client.submit(wire_spec("h-sleep", 100 + i, delay=0.05))
                for i in range(5)]
        srv.stop()                                     # graceful drain
        # Every accepted job's payload landed in the store.
        from repro.serve.store import ResultStore

        reopened = ResultStore(tmp_path / "store")
        assert len(reopened) == len(jobs)
