#!/usr/bin/env python
"""Build a custom simulated machine and study a what-if question.

The paper's conclusion predicts CkDirect pays off most when "the
architecture has a higher communication to computation ratio", and §5.2
attributes Abe's larger gains to "the pairing of Abe's faster
processors with a higher latency interconnect".  This example tests
that prediction directly: it derives a family of machines from the Abe
preset by scaling processor speed (faster compute = higher
communication/computation ratio, with the interconnect fixed) and
shows the stencil improvement growing with it.

It also shows the extension API: an accumulating CkDirect channel
(paper §6 "reductions") folding partial sums into a receiver buffer.

Run:  python examples/custom_machine.py
"""

import dataclasses

import numpy as np

from repro import ABE, Buffer, Chare, Runtime
from repro import ckdirect as ckd
from repro.apps.stencil import stencil_improvement
from repro.charm import CustomMap
from repro.ckdirect.ext import create_accumulate_handle
from repro.network.params import IBParams


def scaled_machine(cpu_speedup: float):
    """An Abe-like machine with ``cpu_speedup``x faster processors
    (per-element stencil work shrinks; the interconnect is unchanged,
    so the communication-to-computation ratio rises)."""
    comp = ABE.compute
    return dataclasses.replace(
        ABE,
        name=f"Abe-cpu-x{cpu_speedup:g}",
        compute=dataclasses.replace(
            comp,
            stencil_update=comp.stencil_update / cpu_speedup,
            dgemm_flops_per_sec=comp.dgemm_flops_per_sec * cpu_speedup,
        ),
    )


def whatif_sweep() -> None:
    print("stencil improvement at 64 PEs vs processor speed:")
    print(f"{'cpu speedup':>12} {'msg iter (ms)':>14} {'gain %':>8}")
    for scale in (0.5, 1.0, 2.0, 4.0):
        m = scaled_machine(scale)
        gain, msg, _ = stencil_improvement(m, 64, iterations=3)
        print(f"{scale:>12g} {msg.mean_iter_time * 1e3:>14.2f} {gain:>8.2f}")
    print("(the paper's conclusion: benefit rises with the "
          "communication-to-computation ratio)\n")


class PartialSummer(Chare):
    """A worker folds one partial sum per iteration into the root's
    accumulator over an accumulating CkDirect channel — §6's
    'reductions' extension.  The root never copies or adds anything
    itself; each put lands pre-combined."""

    ROUNDS = 3

    def __init__(self):
        if self.thisIndex == (0,):
            self.acc = np.zeros(8)
            self.handle = None
            self.rounds = 0
        else:
            self.partial = np.zeros(8)
            self.round = 0

    def wire(self):
        self.handle = create_accumulate_handle(
            self, Buffer(array=self.acc), oob=-1.0,
            callback=self.on_partial, op="sum", name="acc",
        )
        self.proxy[1].take_handle(self.handle)

    def take_handle(self, handle):
        ckd.assoc_local(self, handle, Buffer(array=self.partial))
        self.put_handle = handle
        self.next_partial()

    def next_partial(self):
        self.round += 1
        self.partial[:] = float(self.round)
        ckd.put(self.put_handle)

    def on_partial(self, _):
        self.rounds += 1
        if self.rounds < self.ROUNDS:
            ckd.ready(self.handle)
            self.proxy[1].next_partial()
        else:
            print(f"accumulated without receiver involvement: {self.acc}")
            assert np.all(self.acc == 1.0 + 2.0 + 3.0)


def accumulate_demo() -> None:
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
    arr = rt.create_array(
        PartialSummer, dims=(2,),
        mapping=CustomMap(lambda idx, dims, n: 0 if idx[0] == 0 else n - 1),
    )
    arr.proxy[0].wire()
    rt.run()


if __name__ == "__main__":
    whatif_sweep()
    accumulate_demo()
