"""Matmul with default Charm++ messages (the paper's MSG version).

Arriving input slices must be **copied into the correct locations** of
the locally assembled ``A``/``B`` blocks so the DGEMM can run on
contiguous operands — the receiver-side copy the paper calls out as
exactly what CkDirect eliminates (§4.2, and §2: "a row in the middle
of a matrix").  Sends are marshalled (``pack=True``): every message
creation copies the slice into a fresh envelope, the other cost the
paper names ("avoiding message creation as well as scheduling
overheads", §4.1) — CkDirect puts straight from the registered buffer.
"""

from __future__ import annotations

from ...charm import Payload
from .base import MatMulBase


class MatMulMsg(MatMulBase):
    """Message-based matmul chare (placement copies charged)."""
    def setup(self) -> None:
        """Entry method: wire channels / join the setup barrier."""
        self.contribute(callback=self.monitor.callback())

    def resume(self) -> None:
        """Entry method: run one iteration's send phase."""
        if self.it >= self.iterations:
            return
        self._seed_own_slices()
        spec = self.spec
        x, y, z = self.thisIndex
        a_payload = (
            Payload(data=self.my_a, pack=True)
            if self.validate
            else Payload(nbytes=spec.a_slice_bytes, pack=True)
        )
        b_payload = (
            Payload(data=self.my_b, pack=True)
            if self.validate
            else Payload(nbytes=spec.b_slice_bytes, pack=True)
        )
        for peer in spec.a_peers(self.thisIndex):
            self.proxy[peer].a_slice(a_payload, y)
        for peer in spec.b_peers(self.thisIndex):
            self.proxy[peer].b_slice(b_payload, x)
        self.sent_this_iter = True
        self._maybe_dgemm()

    # ------------------------------------------------------------------
    # Receives: copy into place (the cost CkDirect removes)
    # ------------------------------------------------------------------

    def a_slice(self, payload: Payload, from_y: int) -> None:
        """Entry method: receive a peer's A slice (copied into place)."""
        dest = self.a_dest(from_y)
        if self.validate and payload.data is not None:
            dest.array[...] = payload.data
        self.charge_pack(dest.nbytes)
        self.got_slices += 1
        self._maybe_dgemm()

    def b_slice(self, payload: Payload, from_x: int) -> None:
        """Entry method: receive a peer's B slice (copied into place)."""
        dest = self.b_dest(from_x)
        if self.validate and payload.data is not None:
            dest.array[...] = payload.data
        self.charge_pack(dest.nbytes)
        self.got_slices += 1
        self._maybe_dgemm()

    def c_partial(self, payload: Payload, from_z: int) -> None:
        # The root stages each arriving partial into its collector slot
        # before accumulating (holding c-1 live message buffers through
        # the sum is not an option at scale) — placement copies the
        # paper calls out as exactly what CkDirect's in-place delivery
        # removes (§4.2).
        """Entry method: receive a partial C block at the root."""
        dest = self.c_slot(from_z)
        if self.validate and payload.data is not None:
            dest.array[...] = payload.data
        self.charge_pack(dest.nbytes)
        self.got_cparts += 1
        self._maybe_finish_root()

    # ------------------------------------------------------------------

    def _after_dgemm(self) -> None:
        if self.is_root:
            self._maybe_finish_root()
            return
        x, y, z = self.thisIndex
        payload = (
            Payload(data=self.Cpart, pack=True)
            if self.validate
            else Payload(nbytes=self.spec.c_block_bytes, pack=True)
        )
        self.proxy[self.spec.c_root(self.thisIndex)].c_partial(payload, z)
        self._close_iteration()
