"""Figure 2(a) — stencil improvement on Infiniband (NCSA T3).

1024×1024×512 Jacobi, virtualization ratio 8, strong scaling.  §4.1
claims: gains grow with processor count, ≈12 % at 256 PEs.
"""

import pytest

from conftest import save_report
from repro.bench import run_fig2a, shapes


@pytest.fixture(scope="module")
def fig2a(holder={}):
    if "r" not in holder:
        holder["r"] = run_fig2a()
    return holder["r"]


def test_fig2a_benchmark(benchmark, fig2a):
    result = benchmark.pedantic(lambda: fig2a, rounds=1, iterations=1)
    save_report("fig2a_stencil_ib", result["report"])
    test_gains_grow_with_pes(fig2a)
    test_gain_at_256_near_paper(fig2a)
    test_ckdirect_never_loses(fig2a)


def test_gains_grow_with_pes(fig2a):
    shapes.assert_gains_grow_with_pes(fig2a["pes"], fig2a["gains"])


def test_gain_at_256_near_paper(fig2a):
    """Paper: '≈12% savings in execution time ... on 256 processors'."""
    idx = fig2a["pes"].index(256)
    shapes.assert_gain_in_band(256, fig2a["gains"][idx], 8.0, 18.0, "fig2a")


def test_ckdirect_never_loses(fig2a):
    shapes.assert_all_nonnegative(fig2a["pes"], fig2a["gains"], label="fig2a")
