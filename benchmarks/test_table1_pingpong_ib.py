"""Table 1 — pingpong round-trip times on Infiniband (NCSA Abe).

Regenerates all five stacks (default Charm++, CkDirect, MPICH-VMI,
MVAPICH two-sided, MVAPICH ``MPI_Put``) across the paper's ten message
sizes and asserts every structural claim §3 makes, plus point-wise
tolerances against the printed table.
"""

import pytest

from conftest import save_report
from repro.bench import paper_data, run_table1, shapes


@pytest.fixture(scope="module")
def table1(benchmark_holder={}):
    if "r" not in benchmark_holder:
        benchmark_holder["r"] = run_table1(iterations=100)
    return benchmark_holder["r"]


def test_table1_benchmark(benchmark, table1):
    result = benchmark.pedantic(
        lambda: table1, rounds=1, iterations=1
    )
    save_report("table1_pingpong_ib", result["report"])
    # shape checks also run here so `--benchmark-only` exercises them
    test_ckdirect_beats_default_everywhere(table1)
    test_gap_grows_through_packet_band(table1)
    test_ckdirect_beats_both_mpis(table1)
    test_mpi_put_crossover(table1)
    for stack, tol in [("Default CHARM++", 0.12), ("CkDirect CHARM++", 0.08),
                       ("MVAPICH", 0.18), ("MVAPICH-Put", 0.27),
                       ("MPICH-VMI", 0.25)]:
        test_absolute_tolerance(table1, stack, tol)


def test_ckdirect_beats_default_everywhere(table1):
    shapes.assert_ckdirect_always_wins(
        table1["sizes"],
        table1["measured"]["Default CHARM++"],
        table1["measured"]["CkDirect CHARM++"],
    )


def test_gap_grows_through_packet_band(table1):
    shapes.assert_gap_grows_through_packet_band(
        table1["sizes"],
        table1["measured"]["Default CHARM++"],
        table1["measured"]["CkDirect CHARM++"],
    )


def test_ckdirect_beats_both_mpis(table1):
    shapes.assert_ckdirect_beats_mpi(
        table1["sizes"],
        table1["measured"]["CkDirect CHARM++"],
        {
            "MVAPICH": table1["measured"]["MVAPICH"],
            "MVAPICH-Put": table1["measured"]["MVAPICH-Put"],
            "MPICH-VMI": table1["measured"]["MPICH-VMI"],
        },
    )


def test_mpi_put_crossover(table1):
    """MPI_Put overtakes two-sided only above ~70 KB (§3)."""
    shapes.assert_put_crossover(
        table1["sizes"],
        table1["measured"]["MVAPICH"],
        table1["measured"]["MVAPICH-Put"],
    )


@pytest.mark.parametrize(
    "stack,tol",
    [
        ("Default CHARM++", 0.12),
        ("CkDirect CHARM++", 0.08),
        ("MVAPICH", 0.18),
        ("MVAPICH-Put", 0.27),  # the paper's own 5 KB point is anomalous
        ("MPICH-VMI", 0.25),  # three-regime stack; mid band is noisy
    ],
)
def test_absolute_tolerance(table1, stack, tol):
    shapes.assert_within_tolerance(
        table1["sizes"],
        table1["measured"][stack],
        paper_data.TABLE1_RTT_US[stack],
        tol,
        f"Table1/{stack}",
    )
