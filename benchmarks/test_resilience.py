"""Benchmark: supervision + checksum cost on the clean path, and the
measured price of recovering a SIGKILL'd shard.

Two claims from the resilience layer are pinned here, both on the
paper's full-scale stencil point (1024 PEs, 4 shards):

* **The clean path is free** — heartbeats piggyback on the barrier
  messages the engines already exchange, and result verification is
  one sha256 per job, so a fault-free supervised run with a verifying
  :class:`ResultStore` costs < 3% extra.  What "extra" means depends
  on the host, exactly as in the parallel-engine benchmark: the
  supervised topology adds a pure-coordinator process (legacy runs
  shard 0 inside the coordinator), so on a box with a core to spare
  the coordinator's routing overlaps shard compute and *wall-clock*
  carries the claim; a single-core CI container time-shares that
  extra hop and wall physically reflects shard 0's pipe
  serialization instead.  The always-on assertions are therefore the
  core-count-independent costs — per-worker CPU (the piggybacked
  heartbeat, measured on the forked shards 1..N-1, which do
  bit-identical work in both modes) and the checksum's share of the
  clean path — while the end-to-end wall bar is asserted when the
  host has cores for all shards plus the coordinator.  Wall numbers
  are reported and recorded unconditionally so the trajectory shows
  the single-core premium too.
* **Recovery works at scale and its cost is bounded** — SIGKILL-ing
  one shard worker mid-run (both engines) restarts + replays that
  shard and finishes with output identical to the serial baseline;
  the wall-clock premium over a clean run is reported (the replayed
  shard re-executes its whole window stream, so the premium is
  roughly one shard's share of the run).

Both tables land in ``benchmarks/results/`` and the numbers are
appended to ``BENCH_sweeps.json`` (kind ``resilience``).
"""

from __future__ import annotations

import gc
import hashlib
import json
import os
import time

from conftest import BENCH_JSON_DEFAULT, record_stage, save_report
from repro.apps.stencil.driver import run_stencil
from repro.faults import ProcFaultPlan
from repro.network.params import ABE
from repro.serve.store import ResultStore

PES = 1024
ITERATIONS = 2
SHARDS = 4
ROUNDS = 4  # best-of, interleaved; even so both arms lead equally often
OVERHEAD_BAR = 3.0  # percent


def _run(shards=SHARDS, engine=None, proc_faults=None):
    return run_stencil(ABE, PES, iterations=ITERATIONS, mode="ckd",
                       shards=shards, engine=engine,
                       proc_faults=proc_faults, keep_runtime=True)


def _fingerprint(r) -> str:
    """Digest of the run's observable output at full scale (the grids
    are virtual at 1024 PEs, so identity is iteration times + events —
    the same oracle the parallel-engine benchmark pins)."""
    doc = {"iter_times": r.iter_times, "events": r.events}
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True).encode()).hexdigest()


def _append_entry(payload: dict) -> None:
    entries = []
    if BENCH_JSON_DEFAULT.exists():
        try:
            data = json.loads(BENCH_JSON_DEFAULT.read_text())
            entries = data if isinstance(data, list) else []
        except (OSError, ValueError):
            entries = []
    entries.append(payload)
    BENCH_JSON_DEFAULT.parent.mkdir(exist_ok=True)
    BENCH_JSON_DEFAULT.write_text(json.dumps(entries, indent=2) + "\n")


# ---------------------------------------------------------------------------
# Clean-path overhead: supervision on + verified store vs both off
# ---------------------------------------------------------------------------


def _clean_path(tmp_path, resilient: bool, tag: str) -> dict:
    """One full clean path: supervised (or not) sharded run, result
    payload stored and read back through a (verifying or not) store."""
    env_before = os.environ.get("REPRO_SUPERVISE")
    os.environ["REPRO_SUPERVISE"] = "1" if resilient else "0"
    try:
        t0 = time.perf_counter()
        r = _run()
        payload = json.dumps(
            {"iter_times": r.iter_times, "events": r.events}).encode()
        digest = hashlib.sha256(payload).hexdigest()
        s0 = time.perf_counter()
        store = ResultStore(tmp_path / tag, verify=resilient)
        store.put(digest, payload)
        assert store.get(digest) == payload
        t1 = time.perf_counter()
    finally:
        if env_before is None:
            os.environ.pop("REPRO_SUPERVISE", None)
        else:
            os.environ["REPRO_SUPERVISE"] = env_before
    if resilient:
        assert r.runtime.supervision is not None
        assert r.runtime.supervision["restarts"] == 0
    else:
        assert r.runtime.supervision is None
    return {
        "wall_s": t1 - t0,
        "store_s": t1 - s0,
        # shards 1..N-1 are forked children doing bit-identical work
        # in both modes (legacy folds coordinator routing into its
        # shard-0 entry, so that slot is not comparable)
        "worker_cpus": list(r.runtime.shard_cpu_times[1:]),
    }


def _best(rows: list, key: str) -> float:
    return min(row[key] for row in rows)


def _best_worker_cpu(rows: list) -> float:
    """Sum of each worker's best CPU time across rounds: a time-shared
    host inflates ``process_time`` with cache-refill noise after
    context switches, and per-shard minima shed it independently."""
    per_shard = zip(*(row["worker_cpus"] for row in rows))
    return sum(min(times) for times in per_shard)


def test_clean_path_overhead_under_three_percent(tmp_path):
    off_rows, on_rows = [], []
    for i in range(ROUNDS):
        # Interleaved AND order-alternated: the parent heap grows over
        # the session (forked children pay for it in COW faults), so a
        # fixed arm order would bias whichever arm always ran second.
        arms = [(False, off_rows), (True, on_rows)]
        for resilient, rows in arms if i % 2 == 0 else reversed(arms):
            gc.collect()
            rows.append(_clean_path(tmp_path, resilient,
                                    f"{'on' if resilient else 'off'}{i}"))

    wall_off, wall_on = _best(off_rows, "wall_s"), _best(on_rows, "wall_s")
    cpu_off = _best_worker_cpu(off_rows)
    cpu_on = _best_worker_cpu(on_rows)
    wall_pct = (wall_on - wall_off) / wall_off * 100.0
    cpu_pct = (cpu_on - cpu_off) / cpu_off * 100.0
    # the checksum's share of the clean path: verified store round
    # trip as a fraction of the whole job
    store_pct = _best(on_rows, "store_s") / wall_off * 100.0
    cores = len(os.sched_getaffinity(0))

    report = "\n".join([
        f"Resilience clean-path overhead: stencil ckd {PES} PEs, "
        f"{SHARDS} shards (best of {ROUNDS}, host cores: {cores})",
        "=" * 66,
        f"{'':>28}  {'wall s':>8}  {'worker cpu s':>12}",
        f"{'supervision off, unverified':>28}  {wall_off:>8.3f}  "
        f"{cpu_off:>12.3f}",
        f"{'supervision on, verified':>28}  {wall_on:>8.3f}  "
        f"{cpu_on:>12.3f}",
        f"{'overhead':>28}  {wall_pct:>+7.2f}%  {cpu_pct:>+11.2f}%",
        f"checksum store round-trip: {store_pct:.4f}% of the clean path",
    ])
    save_report("resilience_overhead", report)
    stage = {
        "wall_off_s": round(wall_off, 3),
        "wall_on_s": round(wall_on, 3),
        "wall_overhead_pct": round(wall_pct, 2),
        "worker_cpu_off_s": round(cpu_off, 3),
        "worker_cpu_on_s": round(cpu_on, 3),
        "worker_cpu_overhead_pct": round(cpu_pct, 2),
        "store_share_pct": round(store_pct, 4),
        "cpu_count": cores,
    }
    record_stage("resilience_overhead", stage)
    _append_entry({
        "kind": "resilience",
        "point": f"stencil ckd {PES} PEs full-scale, {ITERATIONS} iters, "
                 f"{SHARDS} shards",
        "clean_path": stage,
    })

    # Core-count-independent costs: the piggybacked heartbeat on the
    # workers, and the checksum's share of the job.
    assert cpu_pct < OVERHEAD_BAR, (
        f"per-worker supervision overhead regressed: {cpu_pct:+.2f}% "
        f"({cpu_off:.3f}s -> {cpu_on:.3f}s)"
    )
    assert store_pct < OVERHEAD_BAR, (
        f"checksum store round-trip is {store_pct:.2f}% of the clean path"
    )
    # End-to-end wall needs a core for every shard plus the
    # coordinator; below that the extra process time-shares and wall
    # measures shard 0's pipe serialization, not the heartbeat.
    if cores >= SHARDS + 1:
        assert wall_pct < OVERHEAD_BAR, (
            f"supervised clean path regressed: {wall_pct:+.2f}% "
            f"({wall_off:.3f}s -> {wall_on:.3f}s) on a {cores}-core host"
        )


# ---------------------------------------------------------------------------
# Recovery cost: kill-shard vs clean at 4 shards, both engines
# ---------------------------------------------------------------------------


def test_recovery_cost_kill_shard_full_scale():
    serial = _run(shards=1)
    reference = _fingerprint(serial)

    rows = []
    for engine in (None, "optimistic"):
        label = engine or "conservative"
        t0 = time.perf_counter()
        clean = _run(engine=engine)
        clean_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        killed = _run(engine=engine,
                      proc_faults=ProcFaultPlan.named("kill-shard"))
        killed_wall = time.perf_counter() - t0

        sup = killed.runtime.supervision
        assert sup["restarts"] == 1 and sup["crashes"] == 1, (
            f"{label}: expected exactly one supervised restart, got {sup}"
        )
        assert not sup["degraded"]
        # The acceptance bar: recovery is invisible in the output.
        assert _fingerprint(clean) == reference, f"{label} clean diverged"
        assert _fingerprint(killed) == reference, (
            f"{label}: recovered run is not identical to the serial baseline"
        )
        rows.append({
            "engine": label,
            "clean_wall_s": round(clean_wall, 3),
            "killed_wall_s": round(killed_wall, 3),
            "recovery_premium_pct": round(
                (killed_wall - clean_wall) / clean_wall * 100.0, 1),
            "restarts": sup["restarts"],
        })

    lines = [
        f"Recovery cost: SIGKILL one of {SHARDS} shards, stencil ckd "
        f"{PES} PEs full-scale (host cores: {os.cpu_count()})",
        "=" * 66,
        f"{'engine':>12}  {'clean s':>8}  {'killed s':>9}  "
        f"{'premium':>8}  {'restarts':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['engine']:>12}  {row['clean_wall_s']:>8.3f}  "
            f"{row['killed_wall_s']:>9.3f}  "
            f"{row['recovery_premium_pct']:>+7.1f}%  {row['restarts']:>8}"
        )
    lines.append("output identical to the 1-shard serial baseline "
                 "in every cell")
    save_report("resilience_recovery", "\n".join(lines))
    record_stage("resilience_recovery", rows)
    _append_entry({
        "kind": "resilience_recovery",
        "point": f"stencil ckd {PES} PEs full-scale, {ITERATIONS} iters, "
                 f"{SHARDS} shards, kill-shard",
        "cpu_count": os.cpu_count(),
        "rows": rows,
    })
