"""RunSpec / RunResult / machine_overrides contracts."""

import dataclasses
import pickle

import pytest

from repro.apps.openatom import abe_2cpn
from repro.network.params import ABE, MACHINES, SURVEYOR
from repro.sweep import RunResult, RunSpec, SweepError, machine_overrides


class TestRunSpec:
    def test_make_normalizes_param_order(self):
        a = RunSpec.make("pingpong", "Abe", "charm", size=1000, iterations=5)
        b = RunSpec.make("pingpong", "Abe", "charm", iterations=5, size=1000)
        assert a == b
        assert a.key == b.key
        assert hash(a) == hash(b)

    def test_kwargs_round_trip(self):
        s = RunSpec.make("stencil", "T3", "ckd", 64, iterations=3, vr=8)
        assert s.kwargs == {"iterations": 3, "vr": 8}

    def test_specs_order_deterministically(self):
        specs = [
            RunSpec.make("pingpong", "Abe", "mpi", size=4000),
            RunSpec.make("pingpong", "Abe", "charm", size=1000),
            RunSpec.make("matmul", "Surveyor", "ckd", 64),
        ]
        assert sorted(specs) == sorted(reversed(specs))

    def test_pickle_round_trip(self):
        s = RunSpec.make("openatom", "Abe", "ckd", 16,
                         pc_only=True, cores_per_node=2)
        assert pickle.loads(pickle.dumps(s)) == s

    def test_label_is_compact(self):
        s = RunSpec.make("stencil", "T3", "msg", 128, iterations=4)
        assert s.label() == "stencil/T3/msg/p128"

    def test_resolve_machine_preset(self):
        s = RunSpec.make("pingpong", "Abe", "charm", size=100)
        assert s.resolve_machine() is MACHINES["Abe"]

    def test_resolve_machine_with_cores_override(self):
        s = RunSpec.make("openatom", "Abe", "ckd", 16, cores_per_node=2)
        m = s.resolve_machine()
        assert m.cores_per_node == 2
        assert dataclasses.replace(m, cores_per_node=ABE.cores_per_node) == ABE

    def test_resolve_unknown_machine_raises(self):
        with pytest.raises(SweepError, match="unknown machine"):
            RunSpec.make("pingpong", "NoSuchMachine", "charm").resolve_machine()


class TestMachineOverrides:
    def test_preset_needs_no_overrides(self):
        assert machine_overrides(SURVEYOR) == {}

    def test_cores_per_node_variant(self):
        abe2 = abe_2cpn(ABE)
        ov = machine_overrides(abe2)
        assert ov == {"cores_per_node": 2}
        # and the override reconstructs the same machine in a worker
        s = RunSpec.make("openatom", abe2.name, "ckd", 16, **ov)
        assert s.resolve_machine() == abe2

    def test_unregistered_machine_rejected(self):
        rogue = dataclasses.replace(ABE, name="NotAPreset")
        with pytest.raises(SweepError, match="not a registered preset"):
            machine_overrides(rogue)

    def test_deep_variant_rejected(self):
        tweaked = dataclasses.replace(ABE, default_mpi="MPICH-VMI")
        with pytest.raises(SweepError, match="beyond"):
            machine_overrides(tweaked)


class TestRunResult:
    def test_unwrap_success(self):
        spec = RunSpec.make("pingpong", "Abe", "charm", size=100)
        r = RunResult(spec, ok=True, values={"rtt_us": 1.5})
        assert r.unwrap() == {"rtt_us": 1.5}

    def test_unwrap_failure_carries_worker_traceback(self):
        spec = RunSpec.make("pingpong", "Abe", "charm", size=100)
        r = RunResult(spec, ok=False, error="Traceback ...\nValueError: boom")
        with pytest.raises(SweepError, match="boom"):
            r.unwrap()

    def test_pickle_round_trip(self):
        spec = RunSpec.make("stencil", "T3", "ckd", 8, iterations=2)
        r = RunResult(spec, ok=True, values={"mean_s": 0.25}, events=100,
                      trace_events=[(0, "span", 0, 1, "entry", "e", 0.0, 1.0,
                                     None, None)],
                      trace_runs=[("run0", 8)])
        r2 = pickle.loads(pickle.dumps(r))
        assert r2.spec == spec and r2.values == r.values
        assert r2.trace_events == r.trace_events


class TestDigest:
    """Spec-level digest properties (cache semantics in tests/serve/)."""

    def test_stable_across_param_order(self):
        a = RunSpec.make("stencil", "Abe", "ckd", 16, iterations=2, n=64)
        b = RunSpec.make("stencil", "Abe", "ckd", 16, n=64, iterations=2)
        assert a.digest() == b.digest()

    def test_repeatable_within_process(self):
        spec = RunSpec.make("stencil", "Abe", "ckd", 16, n=64)
        assert spec.digest() == spec.digest()

    def test_known_value_pins_encoding(self):
        # Pinned so accidental canonical-encoding changes (which would
        # silently orphan every cached result) fail loudly here.
        spec = RunSpec.make("pingpong", "Surveyor", "ckdirect",
                            iterations=5, size=1000)
        import hashlib
        from repro.sweep.spec import ENGINE_SCHEMA, canonical_json
        expected = hashlib.sha256(canonical_json({
            "schema": ENGINE_SCHEMA,
            "spec": {"kind": "pingpong", "machine": "Surveyor",
                     "mode": "ckdirect", "n_pes": 0,
                     "params": {"iterations": 5, "size": 1000}},
        }).encode()).hexdigest()
        assert spec.digest() == expected

    def test_from_dict_rejects_bad_shapes(self):
        with pytest.raises(SweepError):
            RunSpec.from_dict([])
        with pytest.raises(SweepError):
            RunSpec.from_dict({"machine": "Abe"})
        with pytest.raises(SweepError):
            RunSpec.from_dict({"kind": "x", "machine": "Abe", "n_pes": -1})
        with pytest.raises(SweepError):
            RunSpec.from_dict({"kind": "x", "machine": "Abe", "params": 3})
        with pytest.raises(SweepError):
            RunSpec.from_dict({"kind": "x", "machine": "Abe", "extra": 1})
