"""End-to-end chaos-oracle tests: bit-identity and determinism.

These run real application points (the chaos configs at 16 PEs on
Abe), so they are the slowest tests in this directory — but they are
the ones that pin the headline claim: a run on a faulty fabric with
the reliability layer armed produces *bit-identical* results.
"""

from repro import ABE
from repro.bench.chaos import CLEAN, chaos_point


def test_chaos_point_is_deterministic():
    """Same (app, profile, seed) -> identical digest and counters.
    This is the property that makes ``repro chaos`` reproducible at
    any ``--jobs N``."""
    a = chaos_point(ABE, app="matmul", n_pes=16, profile="drop")
    b = chaos_point(ABE, app="matmul", n_pes=16, profile="drop")
    assert a == b
    assert a["injected"] > 0  # the profile actually did something


def test_drop_profile_preserves_matmul_bits():
    clean = chaos_point(ABE, app="matmul", n_pes=16, profile=CLEAN)
    drop = chaos_point(ABE, app="matmul", n_pes=16, profile="drop")
    assert clean["ref_ok"] and drop["ref_ok"]
    assert drop["digest"] == clean["digest"]
    assert drop["retx"] > 0  # losses really were recovered


def test_fallback_preserves_stencil_results():
    """nic-stall pushes puts through watchdog -> degrade -> charm-path
    fallback; the application's answer must still be bit-identical to
    the clean run."""
    clean = chaos_point(ABE, app="stencil", n_pes=16, profile=CLEAN)
    stall = chaos_point(ABE, app="stencil", n_pes=16, profile="nic-stall")
    assert clean["ref_ok"] and stall["ref_ok"]
    assert stall["digest"] == clean["digest"]
    # The full escalation chain actually exercised:
    assert stall["wdog"] > 0
    assert stall["deg"] > 0
    assert stall["fbk"] > 0
