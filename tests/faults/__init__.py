"""Tests for fault injection and the CkDirect reliability layer."""
