"""Simulated MPI: the baseline communication stacks of the paper's
evaluation (two-sided point-to-point with tag matching and
eager/rendezvous protocols; one-sided windows with fence, PSCW, and
lock-unlock synchronization)."""

from .datatypes import (
    MPI_BYTE,
    MPI_CHAR,
    MPI_DOUBLE,
    MPI_DOUBLE_COMPLEX,
    MPI_FLOAT,
    MPI_INT,
    MPI_LONG,
    Datatype,
    count_bytes,
    from_numpy,
)
from .flavors import MPIError, regime_for, resolve_flavor, uses_rendezvous
from .p2p import ANY_SOURCE, ANY_TAG, Arrival, Matcher, RecvPost
from .rma import RMAError, Win
from .sim_mpi import CTRL_BYTES, MPIWorld, Rank

__all__ = [
    "MPIWorld",
    "Rank",
    "Win",
    "Matcher",
    "RecvPost",
    "Arrival",
    "ANY_SOURCE",
    "ANY_TAG",
    "CTRL_BYTES",
    "MPIError",
    "RMAError",
    "resolve_flavor",
    "regime_for",
    "uses_rendezvous",
    "Datatype",
    "from_numpy",
    "count_bytes",
    "MPI_BYTE",
    "MPI_CHAR",
    "MPI_INT",
    "MPI_FLOAT",
    "MPI_LONG",
    "MPI_DOUBLE",
    "MPI_DOUBLE_COMPLEX",
]
