"""The runtime: machine instantiation, sends, broadcasts, execution.

A :class:`Runtime` owns a :class:`~repro.sim.Simulator`, one fabric, a
set of :class:`~repro.charm.pe.PE`\\ s, and the chare arrays created on
them.  Host code (the "mainchare" role) builds arrays, injects initial
messages, then calls :meth:`run`; the simulation completes when no
events remain — message-driven programs terminate by falling silent.

Typical driver::

    rt = Runtime(ABE, n_pes=64)
    arr = rt.create_array(MyChare, dims=(8, 8), ctor_args=(...,))
    arr.proxy.bcast("start")
    rt.run()
    print(rt.now, rt.trace.summary())
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.plan import FaultPlan, ProcFaultPlan, ReliabilityParams
    from .section import ArraySection

from ..network import Fabric, MachineParams, make_fabric
from ..projections.events import CAT_MSG, HOST_TRACK
from ..projections.eventlog import EventLog, current_tracer
from ..sim import Simulator, Trace, make_simulator
from .array import ChareArray
from .callback import CkCallback
from .chare import Chare
from .errors import CharmError, ContextError, EntryMethodError
from .mapping import CustomMap, Mapping
from .message import Message, Payload, payload_bytes, unwrap_args, wrap_args
from .pe import PE
from .reduction import CONTROL_BYTES, ReductionManager


class _PEAgent(Chare):
    """Internal per-PE runtime agent carrying collectives traffic."""

    def _reduction_partial(self, array_id, seq, child_pe, value, reducer):
        self.rt.reductions.receive_partial(array_id, seq, child_pe, value, reducer)

    def _bcast_stage(self, collective_id, method, args):
        rt = self.rt
        collective = rt.collective(collective_id)
        me = self.my_pe
        nbytes = CONTROL_BYTES + payload_bytes(args)
        for child in collective.tree_children(me):
            rt.send(
                rt.agents,
                (child,),
                "_bcast_stage",
                (collective_id, method, args),
                internal=True,
                nbytes_override=nbytes,
            )
        target = collective.base_array
        for idx in collective.local_elements.get(me, ()):
            rt.send(target, idx, method, args)


class Runtime:
    """A simulated Charm++-style runtime instance.

    ``fault_plan`` installs a :class:`~repro.faults.FaultInjector` on
    the fabric and arms the CkDirect reliability layer (sequence
    numbers, ack/retransmit timers, the poll watchdog, charm-path
    fallback).  ``reliability`` overrides the layer's default knobs; it
    may also be passed alone to run the protocol on a perfect fabric.
    Without either, none of that machinery exists — the fabric methods
    are unwrapped and the put path is the paper's fire-and-forget one.
    """

    def __init__(
        self,
        machine: MachineParams,
        n_pes: int,
        record_samples: bool = False,
        tracer: Optional[EventLog] = None,
        fault_plan: Optional["FaultPlan"] = None,
        reliability: Optional["ReliabilityParams"] = None,
        shards: Optional[int] = None,
        engine: Optional[str] = None,
        proc_faults: Optional["ProcFaultPlan"] = None,
        transport: Optional[str] = None,
    ) -> None:
        if n_pes <= 0:
            raise CharmError(f"n_pes must be positive, got {n_pes}")
        if shards is not None and shards < 1:
            raise CharmError(f"shards must be >= 1, got {shards}")
        from ..sim.shm import resolve_transport
        from ..sim.timewarp import resolve_engine

        #: parallel-engine mode: "conservative" (epoch windows) or
        #: "optimistic" (Time Warp).  Resolved flag > REPRO_ENGINE >
        #: default; only consulted when the sharded engine is armed —
        #: fault/reliability runs fall back to the legacy serial path
        #: regardless of the mode (same rule as the conservative
        #: engine's fallback).
        self.engine = resolve_engine(engine)
        #: shard IPC transport: "pipe" (Connection reference path) or
        #: "shm" (one-sided sentinel rings, see repro.sim.shm).
        #: Resolved flag > REPRO_TRANSPORT > default; results are
        #: bit-identical either way — the knob only moves bytes.
        self.transport = resolve_transport(transport)
        self.machine = machine
        # Honors REPRO_EVENTQ / --eventq; every implementation pops
        # the same (time, priority, seq) order, so results are
        # bit-identical regardless of which queue backs the run.
        self.sim = make_simulator()
        self.trace = Trace(record_samples=record_samples,
                           now_fn=lambda: self.sim.now)
        #: timeline tracer (None = tracing off, the near-zero-cost
        #: default); falls back to the ambient tracer installed by the
        #: CLI's --trace-out / profile paths.
        self.tracer = tracer if tracer is not None else current_tracer()
        self._trace_run = (
            self.tracer.new_run(f"charm:{machine.name}", owner=self, n_pes=n_pes)
            if self.tracer is not None else 0
        )
        self.fabric: Fabric = make_fabric(self.sim, machine, n_pes, self.trace)
        if self.tracer is not None:
            self.fabric.tracer = self.tracer
            self.fabric.trace_run = self._trace_run
        self.fault_injector = None
        self.reliability = None
        self.watchdog = None
        #: reliable puts issued but not yet acknowledged, by handle id.
        self._reliable_inflight: Dict[int, Any] = {}
        if fault_plan is not None or reliability is not None:
            from ..faults import FaultInjector, ReliabilityParams
            from .scheduler import PollWatchdog

            self.reliability = reliability if reliability is not None \
                else ReliabilityParams()
            self.watchdog = PollWatchdog(self, self.reliability)
            if fault_plan is not None:
                self.fault_injector = FaultInjector(
                    fault_plan, self.sim, self.trace
                )
                self.fault_injector.attach(self.fabric)
        # --- parallel engine (see repro.sim.parallel) ------------------
        #: requested shard count; None = untouched legacy serial path.
        self.shards = shards
        #: CkDirect handles created by this process, by hid (the
        #: receiver-side registry cross-shard puts resolve against).
        self._handles: Dict[int, Any] = {}
        #: host sends buffered until the shard layout is known.
        self._pending_host_sends: List[tuple] = []
        self._defer_host_sends = False
        #: events fired by *other* shards, folded in after a sharded run.
        self._extra_events = 0
        #: shard id of this process (0 = coordinator / serial).
        self.shard_id = 0
        #: per-shard CPU seconds of the last sharded run (bench metric).
        self.shard_cpu_times: Optional[List[float]] = None
        #: next CkDirect handle id.  Per-runtime (not module-global) so
        #: the Time Warp engine can checkpoint it: a rolled-back replay
        #: then re-creates handles under their original ids, keeping
        #: regenerated cross-shard sends byte-identical.
        self._next_hid = 1
        #: Host-side objects mutated by host callbacks (iteration
        #: monitors and the like), registered via register_host_state().
        #: The Time Warp engine snapshots/restores their __dict__ along
        #: with chare state so speculatively executed host callbacks
        #: roll back cleanly; other engines ignore the registry.
        self._tw_host_state: List[Any] = []
        #: Under the optimistic engine: every CkDirectHandle this
        #: process ever constructed, by object id (the constructor
        #: registers itself).  Checkpoint capture snapshots this
        #: registry directly instead of re-discovering handles by
        #: walking every chare attribute — the walk costs ~1 s per
        #: capture at 1024-PE scale and rediscovers the same handles
        #: every time.  None under other engines (no registration, no
        #: strong-ref growth).
        self._tw_handles: Optional[Dict[int, Any]] = (
            {} if self.engine == "optimistic" else None
        )
        #: rollback/GVT counters of the last optimistic run (dict), or
        #: None when the last run used another engine.
        self.timewarp_stats: Optional[Dict[str, int]] = None
        #: synchronization rounds of the last sharded run (conservative
        #: epoch windows or optimistic GVT rounds), or None when the
        #: last run was serial.  The round count is the engine-mode
        #: comparison metric: each round is one coordinator barrier.
        self.parallel_rounds: Optional[int] = None
        #: process-scope chaos plan (``repro chaos --proc``): rules that
        #: SIGKILL/wedge/slow shard *workers* at epoch barriers.  Read
        #: by the workers themselves; None = no process faults.
        self.proc_faults = proc_faults
        #: supervision report of the last sharded run (restarts,
        #: crash/hang counts, degraded flag — see
        #: :meth:`repro.resilience.ShardSupervisor.report`), or None
        #: when the run was serial or supervision was off.
        self.supervision: Optional[Dict[str, Any]] = None
        #: coordinator-side transport counters of the last sharded run
        #: (transport name, frames, bytes, spills), or None when the
        #: run was serial.
        self.transport_stats: Optional[Dict[str, Any]] = None
        if shards is not None and self.fault_injector is None \
                and self.reliability is None:
            # Engine semantics: requested explicitly and no fault/
            # reliability machinery (whose watchdog and injector read
            # cross-PE state synchronously) is present.  With faults the
            # run silently keeps the legacy serial engine, so faulted
            # runs stay byte-identical at any --shards count.
            self.fabric.enable_engine(self._engine_deliver)
            self._defer_host_sends = True
        self.n_pes = n_pes
        self.pes: List[PE] = [PE(self, r) for r in range(n_pes)]
        self.arrays: Dict[int, ChareArray] = {}
        self.sections: Dict[int, "ArraySection"] = {}
        self._next_array_id = 1
        self.reductions = ReductionManager(self)
        self._pe_stack: List[PE] = []
        #: the internal agent array: one element per PE, identity-mapped.
        self.agents = self.create_array(
            _PEAgent, dims=(n_pes,), mapping=CustomMap(lambda idx, dims, n: idx[0]),
            internal=True,
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def create_array(
        self,
        cls: Type[Chare],
        dims: Tuple[int, ...],
        ctor_args: tuple = (),
        ctor_kwargs: Optional[dict] = None,
        mapping: Optional[Mapping] = None,
        internal: bool = False,
    ) -> ChareArray:
        """Create a chare array; elements are constructed immediately."""
        aid = self._next_array_id
        self._next_array_id += 1
        arr = ChareArray(
            self, aid, cls, tuple(dims), ctor_args, ctor_kwargs, mapping, internal
        )
        self.arrays[aid] = arr
        return arr

    def create_section(self, array: ChareArray, indices) -> "ArraySection":
        """Register a section (sub-array collective) over ``indices``."""
        from .section import ArraySection

        sid = self._next_array_id
        self._next_array_id += 1
        section = ArraySection(sid, array, indices)
        self.sections[sid] = section
        return section

    def collective(self, collective_id: int):
        """Resolve an array or section by collective id."""
        got = self.arrays.get(collective_id) or self.sections.get(collective_id)
        if got is None:
            raise CharmError(f"unknown collective id {collective_id}")
        return got

    # ------------------------------------------------------------------
    # Execution context
    # ------------------------------------------------------------------

    @property
    def current_pe(self) -> Optional[PE]:
        """The PE whose context is executing, or None in host code."""
        return self._pe_stack[-1] if self._pe_stack else None

    def _enter_pe(self, pe: PE) -> None:
        self._pe_stack.append(pe)

    def _exit_pe(self) -> None:
        self._pe_stack.pop()

    def host_call(self, fn, *args: Any) -> None:
        """Run ``fn`` outside any PE at the current simulated instant.

        The call fires as its own simulator event, which always runs at
        top level — by then no PE context is active.
        """
        pe = self.current_pe
        at = pe.cursor if pe is not None else self.sim.now
        self.sim.at(at, fn, *args)

    def register_host_state(self, obj: Any) -> None:
        """Declare a host-side object whose state host callbacks mutate.

        Host callbacks (e.g. iteration monitors reacting to barriers)
        run eagerly even under the optimistic engine, because they may
        drive further progress (broadcasting the next iteration).  Any
        object they mutate must be registered here so the Time Warp
        checkpoints cover it; side effects outside registered objects
        and the runtime cannot be rolled back.  Registration is cheap
        and a no-op under the serial and conservative engines.
        """
        if not any(o is obj for o in self._tw_host_state):
            self._tw_host_state.append(obj)

    def _alloc_hid(self) -> int:
        """Allocate the next CkDirect handle id."""
        hid = self._next_hid
        self._next_hid += 1
        return hid

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def send(
        self,
        array: ChareArray,
        index,
        method: str,
        args: tuple = (),
        internal: bool = False,
        nbytes_override: Optional[int] = None,
    ) -> None:
        """Send an entry-method invocation to one array element.

        From a PE context this charges the sender's software overhead
        (and marshalling copies for packed payloads) and the transfer
        begins at the sender's local cursor.  From host code it is an
        injection at the current simulated time, free of charge — the
        bootstrap path.
        """
        idx = array.normalize_index(index)
        args = wrap_args(args)
        nbytes = nbytes_override if nbytes_override is not None else payload_bytes(args)
        dst_rank = array.pe_of(idx)
        src = self.current_pe
        charm = self.machine.charm

        if src is not None:
            for a in args:
                if isinstance(a, Payload) and a.pack and a.nbytes:
                    src.charge(charm.copy_base + a.nbytes * charm.copy_per_byte)
                    self.trace.count("charm.pack_copies")
            src.charge(charm.send_overhead)
            args = tuple(a.marshalled() if isinstance(a, Payload) else a for a in args)
            start = src.cursor
            src_rank: Optional[int] = src.rank
        else:
            start = self.sim.now
            src_rank = None

        msg = Message(array.id, idx, method, args, nbytes, src_rank, start, internal)
        self.trace.count("charm.msgs_sent")
        self.trace.count("charm.msg_bytes", nbytes)
        tr = self.tracer
        if tr is not None:
            msg.trace_eid = tr.instant(
                self._trace_run,
                src_rank if src_rank is not None else HOST_TRACK,
                CAT_MSG, f"send:{method}", start, cause=tr.current,
                args={"msg": msg.id, "bytes": nbytes, "dst_pe": dst_rank},
            )
        dst_pe = self.pes[dst_rank]
        if src_rank is None or src_rank == dst_rank:
            if src_rank is None and self._defer_host_sends:
                # Sharded run not started yet: the shard layout decides
                # which process owns dst, so buffer the injection.
                self._pending_host_sends.append((start, dst_rank, msg))
            else:
                owned = self.fabric._owned_nodes
                if (src_rank is None and owned is not None
                        and self.fabric.topology.node_of(dst_rank) not in owned):
                    # A mid-run host injection is instantaneous, which
                    # only works when the target shares this shard —
                    # reduction/broadcast roots must live on shard 0.
                    raise CharmError(
                        f"host send to PE {dst_rank} owned by another "
                        "shard; root chares of host-driven collectives "
                        "must map to shard 0"
                    )
                # Host injection or PE-local delivery: straight to queue.
                self.sim.at(start, dst_pe.enqueue, msg)
        else:
            if self.fabric._engine:
                # Describe the in-flight message so the engine can ship
                # it across shards (the callback closure cannot travel).
                self.fabric._engine_desc = ("msg", msg)
            self.fabric.charm_transport(
                src_rank, dst_rank, nbytes, start, lambda: dst_pe.enqueue(msg)
            )

    def bcast(self, array, method: str, args: tuple = ()) -> None:
        """Invoke ``method`` on every member of an array *or section*
        via its home-PE tree."""
        args = wrap_args(args)
        # Marshal once; down-tree stages must not re-charge packing.
        if self.current_pe is not None:
            charm = self.machine.charm
            for a in args:
                if isinstance(a, Payload) and a.pack and a.nbytes:
                    self.current_pe.charge(
                        charm.copy_base + a.nbytes * charm.copy_per_byte
                    )
                    self.trace.count("charm.pack_copies")
        args = tuple(a.marshalled() if isinstance(a, Payload) else a for a in args)
        root = array.home_pes[0]
        self.send(
            self.agents,
            (root,),
            "_bcast_stage",
            (array.id, method, args),
            internal=True,
            nbytes_override=CONTROL_BYTES + payload_bytes(args),
        )

    def _flush_host_sends(self, owned_ranks=None) -> None:
        """Inject deferred host sends (those targeting owned PEs)."""
        pending, self._pending_host_sends = self._pending_host_sends, []
        self._defer_host_sends = False
        for start, dst_rank, msg in pending:
            if owned_ranks is None or dst_rank in owned_ranks:
                self.sim.at(start, self.pes[dst_rank].enqueue, msg)

    def _engine_deliver(self, dst_rank: int, desc: tuple) -> None:
        """Engine rx completion: hand a described arrival to dst.

        ``desc`` kinds: ``("msg", Message)`` for a local (same-process)
        charm message, ``("lput", handle)`` for a local CkDirect put,
        and encoded cross-shard forms handled by repro.sim.parallel.
        """
        kind = desc[0]
        if kind == "msg":
            self.pes[dst_rank].enqueue(desc[1])
        elif kind == "lput":
            from ..ckdirect import api as _ckd
            _ckd._complete(desc[1])
        else:
            from ..sim.parallel import deliver_remote
            deliver_remote(self, dst_rank, desc)

    # ------------------------------------------------------------------
    # Delivery (called by PEs)
    # ------------------------------------------------------------------

    def _deliver(self, pe: PE, msg: Message) -> None:
        array = self.arrays.get(msg.array_id)
        if array is None:
            raise EntryMethodError(f"message for unknown array {msg.array_id}")
        elem = array.elements.get(msg.index)
        if elem is None:
            raise EntryMethodError(
                f"message for missing element {msg.index} of array {msg.array_id}"
            )
        entry = getattr(elem, msg.method, None)
        if entry is None or not callable(entry):
            raise EntryMethodError(
                f"{type(elem).__name__} has no entry method {msg.method!r}"
            )
        self._enter_pe(pe)
        try:
            entry(*unwrap_args(msg.args))
        finally:
            self._exit_pe()

    # ------------------------------------------------------------------
    # Reliability bookkeeping (no-ops unless built with a fault plan)
    # ------------------------------------------------------------------

    def _note_inflight(self, handle) -> None:
        """A reliable put was issued; keep the watchdog watching it."""
        self._reliable_inflight[handle.hid] = handle
        if self.watchdog is not None:
            self.watchdog.arm()

    def _note_acked(self, handle) -> None:
        """The handle's newest put was acknowledged; stop watching."""
        self._reliable_inflight.pop(handle.hid, None)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.sim.now

    @property
    def events_processed(self) -> int:
        """Events fired across all shards of this run (== the serial
        count; in a sharded run remote shards report their tallies)."""
        return self.sim.events_processed + self._extra_events

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the simulation; returns the final simulated time.

        With ``shards`` set (and no fault machinery forcing the legacy
        engine) a full run is dispatched to the sharded parallel engine;
        bounded runs (``until``/``max_events``) stay in-process.
        """
        if self.fabric._engine and until is None and max_events is None:
            if self.engine == "optimistic":
                from ..sim.timewarp import run_timewarp
                return run_timewarp(self)
            from ..sim.parallel import run_sharded
            return run_sharded(self)
        if self._pending_host_sends or self._defer_host_sends:
            self._flush_host_sends()
        self.sim.run(until=until, max_events=max_events)
        return self.sim.now

    @property
    def makespan(self) -> float:
        """End of all activity: the last event or the furthest busy
        frontier (compute charges extend past the final event)."""
        frontier = max((pe.busy_until for pe in self.pes), default=0.0)
        return max(self.sim.now, frontier)

    def utilization(self) -> float:
        """Mean fraction of the makespan PEs spent busy."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return sum(pe.busy_time for pe in self.pes) / (self.n_pes * span)
