"""Unit tests for Payload and Message plumbing."""

import numpy as np
import pytest

from repro.charm import CharmError, Payload
from repro.charm.message import (
    Message,
    payload_bytes,
    unwrap_args,
    wrap_args,
)


def test_payload_needs_backing():
    with pytest.raises(CharmError):
        Payload()


def test_payload_nbytes_consistency_check():
    with pytest.raises(CharmError):
        Payload(data=np.zeros(4), nbytes=999)
    p = Payload(data=np.zeros(4), nbytes=32)
    assert p.nbytes == 32


def test_virtual_payload():
    p = Payload.virtual(512)
    assert p.is_virtual
    assert p.nbytes == 512
    assert not p.pack  # virtual helper is pre-packed by convention


def test_marshalled_snapshots_packed_data():
    arr = np.arange(4.0)
    p = Payload(data=arr, pack=True)
    m = p.marshalled()
    arr[0] = 99.0
    assert m.data[0] == 0.0
    assert not m.pack  # already marshalled


def test_marshalled_noop_for_unpacked():
    arr = np.arange(4.0)
    p = Payload(data=arr, pack=False)
    assert p.marshalled() is p


def test_wrap_unwrap_roundtrip():
    arr = np.arange(3.0)
    explicit = Payload(data=np.ones(2), pack=False)
    args = wrap_args((arr, explicit, 5, "x"))
    assert isinstance(args[0], Payload) and args[0].auto
    assert args[1] is explicit
    out = unwrap_args(tuple(a.marshalled() if isinstance(a, Payload) else a
                            for a in args))
    assert isinstance(out[0], np.ndarray)
    assert np.array_equal(out[0], arr)
    assert out[1] is explicit
    assert out[2:] == (5, "x")


def test_payload_bytes_sums_payloads_only():
    args = (Payload.virtual(100), Payload.virtual(28), 7, "meta")
    assert payload_bytes(args) == 128


def test_message_ids_unique():
    a = Message(1, (0,), "m", (), 0, None, 0.0)
    b = Message(1, (0,), "m", (), 0, None, 0.0)
    assert a.id != b.id


def test_message_fields():
    m = Message(3, (1, 2), "go", ("a",), 64, 5, 1.5e-6, is_internal=True)
    assert m.array_id == 3
    assert m.index == (1, 2)
    assert m.method == "go"
    assert m.nbytes == 64
    assert m.src_pe == 5
    assert m.is_internal
