"""Unit tests for the fabric base: latency math, NIC occupancy,
intra-node shortcut, validation."""

import pytest

from repro.network import ABE, SURVEYOR, make_fabric
from repro.network.base import FabricError
from repro.sim import Simulator
from repro.util.units import us


def _fabric(machine=ABE, n_pes=16):
    sim = Simulator()
    return sim, make_fabric(sim, machine, n_pes)


def test_uncontended_delivery_time():
    sim, fab = _fabric()
    got = []
    p = ABE.net
    # cross-node transfer: PEs 0 and 8 are on different Abe nodes
    fab.transfer(0, 8, 1000, start=0.0, pre=us(1.0), alpha=p.alpha,
                 beta=p.beta, cb=lambda: got.append(sim.now))
    sim.run()
    expected = us(1.0) + p.alpha + 1000 * p.beta
    assert got[0] == pytest.approx(expected)


def test_lat_extra_adds_to_delivery():
    sim, fab = _fabric()
    got = []
    p = ABE.net
    fab.transfer(0, 8, 1000, 0.0, 0.0, p.alpha, p.beta,
                 cb=lambda: got.append(sim.now), lat_extra=us(5.0))
    sim.run()
    assert got[0] == pytest.approx(p.alpha + 1000 * p.beta + us(5.0))


def test_tx_occupancy_serializes_same_node_senders():
    sim, fab = _fabric(n_pes=32)
    got = []
    p = ABE.net
    nbytes = 100_000
    # two transfers from the same node (PEs 0,1) to different nodes
    fab.transfer(0, 8, nbytes, 0.0, 0.0, p.alpha, p.beta,
                 cb=lambda: got.append(("a", sim.now)))
    fab.transfer(1, 24, nbytes, 0.0, 0.0, p.alpha, p.beta,
                 cb=lambda: got.append(("b", sim.now)))
    sim.run()
    times = dict(got)
    occ = nbytes * p.beta * p.occupancy_factor
    # second transfer waits for the first's injection occupancy
    assert times["b"] - times["a"] == pytest.approx(occ)


def test_rx_occupancy_serializes_incast():
    sim, fab = _fabric(n_pes=32)
    got = []
    p = ABE.net
    nbytes = 100_000
    # two different source nodes target the same destination node
    fab.transfer(8, 0, nbytes, 0.0, 0.0, p.alpha, p.beta,
                 cb=lambda: got.append(sim.now))
    fab.transfer(16, 0, nbytes, 0.0, 0.0, p.alpha, p.beta,
                 cb=lambda: got.append(sim.now))
    sim.run()
    occ = nbytes * p.beta * p.occupancy_factor
    assert got[1] - got[0] == pytest.approx(occ)


def test_same_node_uses_shared_memory_path():
    sim, fab = _fabric()
    got = []
    fab.transfer(0, 1, 10_000, 0.0, 0.0, ABE.net.alpha, ABE.net.beta,
                 cb=lambda: got.append(sim.now))
    sim.run()
    expected = ABE.net.shm_alpha + 10_000 * ABE.net.shm_beta
    assert got[0] == pytest.approx(expected)
    assert fab.trace.counter("net.shm_transfers") == 1
    assert fab.trace.counter("net.transfers") == 0


def test_self_send_rejected():
    sim, fab = _fabric()
    with pytest.raises(FabricError):
        fab.transfer(3, 3, 100, 0.0, 0.0, 0.0, 0.0, lambda: None)


def test_start_in_past_rejected():
    sim, fab = _fabric()
    fab.transfer(0, 8, 10, 0.0, 0.0, us(1), 0.0, lambda: None)
    sim.run()
    with pytest.raises(FabricError):
        fab.transfer(0, 8, 10, sim.now - us(1), 0.0, us(1), 0.0, lambda: None)


def test_negative_bytes_rejected():
    sim, fab = _fabric()
    with pytest.raises(FabricError):
        fab.transfer(0, 8, -1, 0.0, 0.0, 0.0, 0.0, lambda: None)


def test_bgp_hop_latency_counts():
    sim = Simulator()
    fab = make_fabric(sim, SURVEYOR, 64)
    topo = fab.topology
    p = SURVEYOR.net
    # pick two PEs several hops apart
    far = None
    for pe in range(topo.n_pes):
        if topo.hops(0, pe) >= 2:
            far = pe
            break
    assert far is not None
    got = []
    fab.transfer(0, far, 100, 0.0, 0.0, p.alpha, p.beta,
                 cb=lambda: got.append(sim.now))
    sim.run()
    hops = topo.hops(0, far)
    expected = p.alpha + hops * p.hop_latency + 100 * p.beta
    assert got[0] == pytest.approx(expected)


def test_packets_helper():
    from repro.network.base import Fabric

    assert Fabric.packets(0, 4096) == 1
    assert Fabric.packets(1, 4096) == 1
    assert Fabric.packets(4096, 4096) == 1
    assert Fabric.packets(4097, 4096) == 2
