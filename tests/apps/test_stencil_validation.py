"""Integration tests: both stencil versions match the sequential
reference bit-for-bit, on both machines, across decompositions."""

import numpy as np
import pytest

from repro import ABE, SURVEYOR
from repro.apps.stencil import (
    block_initial,
    gather_grid,
    jacobi_reference,
    jacobi_step,
    run_stencil,
)


def _reference_initial(domain, grid, seed=20090922):
    init = np.zeros(domain)
    gx, gy, gz = grid
    bx, by, bz = domain[0] // gx, domain[1] // gy, domain[2] // gz
    for i in range(gx):
        for j in range(gy):
            for k in range(gz):
                init[i * bx:(i + 1) * bx, j * by:(j + 1) * by, k * bz:(k + 1) * bz] = \
                    block_initial((i, j, k), (bx, by, bz), seed)
    return init


def test_jacobi_step_interior_math():
    g = np.zeros((3, 3, 3))
    g[1, 1, 1] = 7.0
    out = jacobi_step(g)
    assert out[1, 1, 1] == pytest.approx(1.0)  # 7/7
    assert out[0, 1, 1] == pytest.approx(1.0)  # one neighbour = 7
    assert out[0, 0, 0] == pytest.approx(0.0)


def test_jacobi_step_preserves_range():
    rng = np.random.default_rng(0)
    g = rng.random((6, 6, 6))
    out = jacobi_step(g)
    assert out.min() >= 0.0
    assert out.max() <= 1.0


@pytest.mark.parametrize("machine", [ABE, SURVEYOR], ids=["ib", "bgp"])
@pytest.mark.parametrize("mode", ["msg", "ckd"])
def test_parallel_matches_reference(machine, mode):
    dom = (8, 8, 8)
    res = run_stencil(machine, n_pes=4, domain=dom, vr=2, iterations=3,
                      mode=mode, validate=True, keep_runtime=True)
    got = gather_grid(res)
    ref = jacobi_reference(_reference_initial(dom, res.grid), 3)
    assert np.array_equal(got, ref)


@pytest.mark.parametrize("mode", ["msg", "ckd"])
def test_asymmetric_decomposition(mode):
    dom = (16, 8, 4)
    res = run_stencil(ABE, n_pes=2, domain=dom, vr=4, iterations=2,
                      mode=mode, validate=True, keep_runtime=True)
    got = gather_grid(res)
    ref = jacobi_reference(_reference_initial(dom, res.grid), 2)
    assert np.allclose(got, ref, rtol=0, atol=0)


@pytest.mark.parametrize("mode", ["msg", "ckd"])
def test_single_pe_many_chares(mode):
    res = run_stencil(ABE, n_pes=1, domain=(8, 8, 8), vr=8, iterations=2,
                      mode=mode, validate=True, keep_runtime=True)
    got = gather_grid(res)
    ref = jacobi_reference(_reference_initial((8, 8, 8), res.grid), 2)
    assert np.array_equal(got, ref)


def test_zero_iterations_leaves_initial_data():
    res = run_stencil(ABE, n_pes=2, domain=(4, 4, 4), vr=1, iterations=0,
                      mode="msg", validate=True, keep_runtime=True)
    got = gather_grid(res)
    assert np.array_equal(got, _reference_initial((4, 4, 4), res.grid))


def test_iter_times_positive_and_reported():
    res = run_stencil(ABE, n_pes=4, domain=(8, 8, 8), vr=2, iterations=3,
                      mode="msg")
    assert len(res.iter_times) == 3
    assert all(t > 0 for t in res.iter_times)
    assert res.mean_iter_time > 0


def test_both_versions_same_result_different_times():
    dom = (8, 8, 8)
    msg = run_stencil(ABE, 4, dom, 2, 3, "msg", validate=True, keep_runtime=True)
    ckd = run_stencil(ABE, 4, dom, 2, 3, "ckd", validate=True, keep_runtime=True)
    assert np.array_equal(gather_grid(msg), gather_grid(ckd))
    assert msg.mean_iter_time != ckd.mean_iter_time


def test_gather_requires_validation_run():
    res = run_stencil(ABE, 2, (4, 4, 4), 1, 1, "msg", keep_runtime=True)
    with pytest.raises(ValueError, match="validate"):
        gather_grid(res)
    res2 = run_stencil(ABE, 2, (4, 4, 4), 1, 1, "msg")
    with pytest.raises(ValueError, match="keep_runtime"):
        gather_grid(res2)


def test_invalid_mode_rejected():
    with pytest.raises(ValueError, match="mode"):
        run_stencil(ABE, 2, (4, 4, 4), 1, 1, mode="bogus")
