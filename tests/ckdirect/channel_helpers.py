"""Shared helpers: a two-chare channel harness on both machines."""

import numpy as np

from repro import ABE, SURVEYOR, Buffer, Chare, Runtime
from repro.charm import CustomMap
from repro import ckdirect as ckd

CROSS = CustomMap(lambda idx, dims, n: 0 if idx[0] == 0 else n - 1)


class Endpoint(Chare):
    """Minimal receiver/sender pair used across the CkDirect tests."""

    def __init__(self, n_elems=8):
        self.recv_arr = np.zeros(n_elems)
        self.send_arr = np.arange(1.0, n_elems + 1)
        self.recv_buf = Buffer(array=self.recv_arr)
        self.send_buf = Buffer(array=self.send_arr)
        self.fired = []
        self.handle = None

    def make_handle(self, oob=-1.0, cbdata=None):
        self.handle = ckd.create_handle(
            self, self.recv_buf, oob, self.on_data, cbdata=cbdata
        )
        return self.handle

    def on_data(self, cbdata):
        self.fired.append((self.now, cbdata))

    # entry methods used by tests
    def do_put(self, handle):
        ckd.put(handle)

    def do_assoc(self, handle):
        ckd.assoc_local(self, handle, self.send_buf)

    def do_ready(self, handle):
        ckd.ready(handle)

    def do_ready_mark(self, handle):
        ckd.ready_mark(handle)

    def do_ready_pollq(self, handle):
        ckd.ready_poll_q(handle)


