"""Fast harness tests at miniature scales: every runner produces a
well-formed result structure and report (the full-scale sweeps live in
benchmarks/)."""

import pytest

from repro.bench import (
    full_scale,
    run_fig2a,
    run_fig2b,
    run_fig3,
    run_table1,
    run_table2,
)
from repro.network.params import SURVEYOR


def test_full_scale_env(monkeypatch):
    monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
    assert not full_scale()
    monkeypatch.setenv("REPRO_FULL_SCALE", "1")
    assert full_scale()
    monkeypatch.setenv("REPRO_FULL_SCALE", "0")
    assert not full_scale()


def test_table1_custom_sizes_no_paper_column():
    r = run_table1(sizes=[100, 5000], iterations=10)
    assert r["paper"] is None
    assert len(r["measured"]) == 5
    assert all(len(v) == 2 for v in r["measured"].values())
    assert "(paper)" not in r["report"]


def test_table2_custom_sizes():
    r = run_table2(sizes=[100], iterations=10)
    assert set(r["measured"]) == {
        "Default CHARM++", "CkDirect CHARM++", "MPI", "MPI-Put"
    }


def test_fig2a_small_pes():
    r = run_fig2a(pes=[4, 8], iterations=2)
    assert r["pes"] == [4, 8]
    assert len(r["gains"]) == 2
    assert all(m > 0 for m in r["msg_ms"])
    assert "Figure 2(a)" in r["report"]


def test_fig2b_small_pes():
    r = run_fig2b(pes=[8], iterations=2)
    assert len(r["gains"]) == 1


def test_fig3_small():
    r = run_fig3(SURVEYOR, pes=[8], iterations=1)
    assert r["pes"] == [8]
    assert r["msg_ms"][0] > r["ckd_ms"][0] * 0.5  # sane magnitudes
