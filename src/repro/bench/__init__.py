"""The table/figure regeneration harness.

One runner per artifact of the paper's evaluation:

* :func:`run_table1` / :func:`run_table2` — pingpong microbenchmark,
* :func:`run_fig2a` / :func:`run_fig2b` — stencil improvement,
* :func:`run_fig3` — matmul scaling (call per machine),
* :func:`run_fig4` / :func:`run_fig5` — OpenAtom step times,
* :func:`run_polling_ablation` / :func:`run_protocol_ablation` /
  :func:`run_mpi_sync_ablation` — the DESIGN.md ablations.

:mod:`repro.bench.shapes` holds the assertions; `repro.bench.paper_data`
the paper's printed numbers and textual claims.
"""

from . import paper_data, shapes
from .chaos import run_chaos
from .export import export_series_csv, export_table_csv
from .harness import (
    full_scale,
    run_backward_path_ablation,
    run_fig2a,
    run_fig2b,
    run_fig3,
    run_fig4,
    run_fig5,
    run_mpi_sync_ablation,
    run_polling_ablation,
    run_protocol_ablation,
    run_table1,
    run_table2,
    run_vr_ablation,
)
from .report import (
    max_abs_relative_error,
    relative_error,
    render_series,
    render_table,
)
from .shapes import ShapeError

__all__ = [
    "run_chaos",
    "run_table1",
    "run_table2",
    "run_fig2a",
    "run_fig2b",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_polling_ablation",
    "run_protocol_ablation",
    "run_mpi_sync_ablation",
    "run_vr_ablation",
    "run_backward_path_ablation",
    "full_scale",
    "export_table_csv",
    "export_series_csv",
    "paper_data",
    "shapes",
    "ShapeError",
    "render_table",
    "render_series",
    "relative_error",
    "max_abs_relative_error",
]
