"""Simulation-as-a-service: async job server + content-addressed cache.

PRs 2–4 made every run a deterministic pure function of its
:class:`~repro.sweep.spec.RunSpec` — identical spec ⇒ identical result
bytes at any ``--jobs``/``--shards``.  This package converts that
invariant into horizontal scalability: a long-running asyncio HTTP
server (``repro serve``) canonicalizes each request into a digest,
serves repeats from a persistent content-addressed store, and queues
misses onto a bounded worker pool backed by the existing
:class:`~repro.sweep.runner.SweepRunner`.  Each distinct point is
computed exactly once, fleet-wide.

Layered as:

* :mod:`~repro.serve.digest`  — job digests + the canonical result payload,
* :mod:`~repro.serve.store`   — disk-backed LRU store, atomic writes, manifest,
* :mod:`~repro.serve.metrics` — hit/miss/eviction counters, queue gauges,
  per-kind latency histograms,
* :mod:`~repro.serve.jobs`    — the async job queue: submit → poll/stream →
  fetch, coalescing, backpressure, graceful drain,
* :mod:`~repro.serve.app`     — the asyncio HTTP/1.1 server and routes,
* :mod:`~repro.serve.client`  — a blocking client (``repro submit``),
* :mod:`~repro.serve.cli`     — the ``repro serve`` / ``repro submit``
  argument parsers and entry points.
"""

from .app import ServeApp, ServerThread
from .client import Backpressure, ServeClient, ServeClientError
from .digest import job_digest, result_payload
from .jobs import Job, JobManager, JobState, QueueFullError, ServerClosing
from .metrics import ServeMetrics
from .store import ResultStore

__all__ = [
    "Backpressure",
    "Job",
    "JobManager",
    "JobState",
    "QueueFullError",
    "ResultStore",
    "ServeApp",
    "ServeClient",
    "ServeClientError",
    "ServeMetrics",
    "ServerClosing",
    "ServerThread",
    "job_digest",
    "result_payload",
]
