"""Unit tests for topologies: fat-tree, 3D torus, graph-backed."""

import networkx as nx
import pytest

from repro.network.topology import (
    FatTree,
    GraphTopology,
    Topology,
    TopologyError,
    Torus3D,
    pes_on_node,
)


def test_fat_tree_counts():
    t = FatTree(n_nodes=4, cores_per_node=8)
    assert t.n_pes == 32
    assert t.node_of(0) == 0
    assert t.node_of(7) == 0
    assert t.node_of(8) == 1
    assert t.node_of(31) == 3


def test_fat_tree_hops():
    t = FatTree(4, 8)
    assert t.hops(0, 7) == 0  # same node
    assert t.hops(0, 8) == 1  # remote
    assert t.same_node(0, 7)
    assert not t.same_node(7, 8)


def test_pe_out_of_range():
    t = FatTree(2, 4)
    with pytest.raises(TopologyError):
        t.node_of(8)
    with pytest.raises(TopologyError):
        t.node_of(-1)


def test_invalid_construction():
    with pytest.raises(TopologyError):
        FatTree(0, 4)
    with pytest.raises(TopologyError):
        Torus3D((2, 0, 2))


def test_torus_coords_roundtrip():
    t = Torus3D((4, 3, 2), cores_per_node=1)
    seen = set()
    for node in range(t.n_nodes):
        c = t.coords(node)
        assert 0 <= c[0] < 4 and 0 <= c[1] < 3 and 0 <= c[2] < 2
        seen.add(c)
    assert len(seen) == 24


def test_torus_hops_basic():
    t = Torus3D((4, 4, 4), cores_per_node=1)
    assert t.hops(0, 0) == 0
    assert t.hops(0, 1) == 1  # +x neighbour
    assert t.hops(0, 3) == 1  # wraparound in x (distance min(3, 1))
    assert t.hops(0, 2) == 2


def test_torus_hops_symmetric():
    t = Torus3D((4, 3, 5), cores_per_node=2)
    for a, b in [(0, 17), (3, 29), (10, 41)]:
        assert t.hops(a, b) == t.hops(b, a)


def test_torus_hops_match_graph_shortest_paths():
    """Closed-form torus distance must equal BFS on the explicit graph."""
    dims = (4, 3, 3)
    closed = Torus3D(dims, cores_per_node=1)
    graph = GraphTopology.torus(dims, cores_per_node=1)
    for a in range(0, closed.n_nodes, 5):
        for b in range(closed.n_nodes):
            assert closed.hops(a, b) == graph.hops(a, b), (a, b)


def test_torus_for_pes_capacity():
    for n in (7, 64, 100, 500):
        t = Torus3D.for_pes(n, cores_per_node=4)
        assert t.n_pes >= n


def test_torus_same_node_within_cores():
    t = Torus3D((2, 2, 2), cores_per_node=4)
    assert t.same_node(0, 3)
    assert not t.same_node(3, 4)
    assert t.hops(0, 3) == 0


def test_graph_topology_requires_connected():
    g = nx.Graph()
    g.add_edges_from([(0, 1), (2, 3)])
    with pytest.raises(TopologyError):
        GraphTopology(g)


def test_graph_topology_rejects_empty():
    with pytest.raises(TopologyError):
        GraphTopology(nx.Graph())


def test_graph_topology_hops_on_path():
    g = nx.path_graph(5)
    t = GraphTopology(g, cores_per_node=2)
    assert t.hops(0, 9) == 4  # node 0 -> node 4
    assert t.hops(0, 1) == 0  # same node


def test_pes_on_node():
    t = FatTree(3, 4)
    assert list(pes_on_node(t, 1)) == [4, 5, 6, 7]


def test_base_topology_abstract():
    t = Topology(2, 2)
    with pytest.raises(NotImplementedError):
        t.hops(0, 2)
