"""Chare arrays and proxies.

A :class:`ChareArray` is an N-dimensional collection of chares spread
over the machine by a :class:`~repro.charm.mapping.Mapping`.  Elements
are addressed through the array's :class:`ArrayProxy`:

``arr.proxy[(i, j)].method(a, b)`` sends a message invoking
``method(a, b)`` on element ``(i, j)``; ``arr.proxy.bcast("go")``
invokes ``go()`` on every element via a spanning tree over the home
PEs.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Dict, List, Tuple, Type

import numpy as np

from .chare import Chare
from .errors import CharmError, MappingError
from .mapping import BlockMap, Mapping, linear_index

if TYPE_CHECKING:  # pragma: no cover
    from .pe import PE
    from .runtime import Runtime
    from .section import ArraySection


def normalize(index) -> Tuple[int, ...]:
    """Accept ints, numpy ints, lists, tuples; always store tuples."""
    if isinstance(index, (int, np.integer)):
        return (int(index),)
    return tuple(int(i) for i in index)


class ElementProxy:
    """Callable handle on one array element."""

    __slots__ = ("_array", "_index")

    def __init__(self, array: "ChareArray", index: Tuple[int, ...]) -> None:
        self._array = array
        self._index = index

    @property
    def index(self) -> Tuple[int, ...]:
        """This proxy's element index."""
        return self._index

    def __getattr__(self, method: str):
        if method.startswith("_"):
            raise AttributeError(method)
        array, index = self._array, self._index

        def _send(*args: Any) -> None:
            array.rt.send(array, index, method, args)

        _send.__name__ = f"send_{method}"
        return _send

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ElementProxy array{self._array.id}{self._index}>"


class ArrayProxy:
    """Handle on a whole chare array."""

    __slots__ = ("_array",)

    def __init__(self, array: "ChareArray") -> None:
        self._array = array

    def __getitem__(self, index) -> ElementProxy:
        return ElementProxy(self._array, self._array.normalize_index(index))

    def bcast(self, method: str, *args: Any) -> None:
        """Invoke an entry method on every member."""
        self._array.rt.bcast(self._array, method, args)

    @property
    def array(self) -> "ChareArray":
        """The underlying chare array."""
        return self._array


class ChareArray:
    """An N-dimensional array of chares."""

    def __init__(
        self,
        rt: "Runtime",
        array_id: int,
        cls: Type[Chare],
        dims: Tuple[int, ...],
        ctor_args: tuple = (),
        ctor_kwargs: dict | None = None,
        mapping: Mapping | None = None,
        internal: bool = False,
    ) -> None:
        if not dims or any(d <= 0 for d in dims):
            raise CharmError(f"invalid array dims {dims!r}")
        if not (isinstance(cls, type) and issubclass(cls, Chare)):
            raise CharmError(f"{cls!r} is not a Chare subclass")
        self.rt = rt
        self.id = array_id
        self.cls = cls
        self.dims = tuple(int(d) for d in dims)
        self.mapping = mapping if mapping is not None else BlockMap()
        self.internal = internal
        self.proxy = ArrayProxy(self)

        self.elements: Dict[Tuple[int, ...], Chare] = {}
        self.local_elements: Dict[int, List[Tuple[int, ...]]] = {}
        n_pes = rt.n_pes
        kwargs = ctor_kwargs or {}
        for index in itertools.product(*(range(d) for d in self.dims)):
            pe_rank = self.mapping.pe_for(index, self.dims, n_pes)
            if not (0 <= pe_rank < n_pes):
                raise MappingError(f"map sent {index} to PE {pe_rank}")
            pe = rt.pes[pe_rank]
            elem = cls.__new__(cls)
            elem._bind(rt, self, index, pe)
            elem.__init__(*ctor_args, **kwargs)
            self.elements[index] = elem
            self.local_elements.setdefault(pe_rank, []).append(index)
        #: sorted PE ranks hosting at least one element — the node set
        #: for this array's reduction / broadcast spanning tree.
        self.home_pes: List[int] = sorted(self.local_elements)
        self._home_pos = {pe: i for i, pe in enumerate(self.home_pes)}

    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of elements/members."""
        return int(np.prod(self.dims))

    def normalize_index(self, index) -> Tuple[int, ...]:
        """Canonical tuple form of an element index (bounds-checked)."""
        idx = normalize(index)
        linear_index(idx, self.dims)  # bounds check
        return idx

    def element(self, index) -> Chare:
        """The chare object at an index (host-side introspection)."""
        return self.elements[self.normalize_index(index)]

    def pe_of(self, index) -> int:
        """Home PE rank of an element index."""
        return self.mapping.pe_for(self.normalize_index(index), self.dims, self.rt.n_pes)

    def local_count(self, pe_rank: int) -> int:
        """Number of members hosted on a PE."""
        return len(self.local_elements.get(pe_rank, ()))

    # Spanning-tree structure (binomial over home-PE positions) ----------

    def tree_parent(self, pe_rank: int) -> int | None:
        """Parent PE in the binomial tree, or None at the root."""
        from .section import binomial_parent

        parent_pos = binomial_parent(self._home_pos[pe_rank])
        return None if parent_pos is None else self.home_pes[parent_pos]

    def tree_children(self, pe_rank: int) -> List[int]:
        """Child PEs in the binomial tree (positions whose parent —
        lowest set bit cleared — is this node's position)."""
        from .section import binomial_children

        return [
            self.home_pes[c]
            for c in binomial_children(
                self._home_pos[pe_rank], len(self.home_pes)
            )
        ]

    @property
    def base_array(self) -> "ChareArray":
        """The array collective deliveries target (self; sections
        return their parent array)."""
        return self

    def section(self, indices) -> "ArraySection":
        """Create a registered section over ``indices`` of this array."""
        return self.rt.create_section(self, indices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ChareArray #{self.id} {self.cls.__name__}{self.dims}>"
