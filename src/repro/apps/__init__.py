"""The paper's evaluation applications: pingpong (§3), 3D Jacobi
stencil (§4.1), 3D matrix multiplication (§4.2), and the OpenAtom
PairCalculator mini-app (§5) — each in a default-Charm++-messages
version and a CkDirect version."""

from . import matmul, openatom, pingpong, stencil

__all__ = ["pingpong", "stencil", "matmul", "openatom"]
