"""Figure 3 — 2048×2048 matrix multiplication, BG/P and Abe.

§4.2 claims: CkDirect outperforms the message version on both
machines; the improvement grows toward large PE counts on BG/P
(the paper reports close to 40 % at 4096 — run ``REPRO_FULL_SCALE=1``
for that point; our conservative model reproduces the ordering and the
large-scale blow-up at a reduced magnitude, see EXPERIMENTS.md).
"""

import pytest

from conftest import save_report
from repro.bench import full_scale, run_fig3, shapes
from repro.network.params import ABE, SURVEYOR


@pytest.fixture(scope="module")
def fig3_bgp(holder={}):
    if "r" not in holder:
        holder["r"] = run_fig3(SURVEYOR)
    return holder["r"]


@pytest.fixture(scope="module")
def fig3_abe(holder={}):
    if "r" not in holder:
        holder["r"] = run_fig3(ABE)
    return holder["r"]


def test_fig3_bgp_benchmark(benchmark, fig3_bgp):
    result = benchmark.pedantic(lambda: fig3_bgp, rounds=1, iterations=1)
    save_report("fig3_matmul_bgp", result["report"])
    test_ckdirect_wins_everywhere_bgp(fig3_bgp)
    test_times_strong_scale_bgp(fig3_bgp)


def test_fig3_abe_benchmark(benchmark, fig3_abe):
    result = benchmark.pedantic(lambda: fig3_abe, rounds=1, iterations=1)
    save_report("fig3_matmul_abe", result["report"])
    test_ckdirect_wins_everywhere_abe(fig3_abe)


def test_ckdirect_wins_everywhere_bgp(fig3_bgp):
    shapes.assert_all_nonnegative(
        fig3_bgp["pes"], fig3_bgp["gains"], slack_pct=0.5, label="fig3/bgp"
    )


def test_ckdirect_wins_everywhere_abe(fig3_abe):
    shapes.assert_all_nonnegative(
        fig3_abe["pes"], fig3_abe["gains"], slack_pct=0.5, label="fig3/abe"
    )


def test_times_strong_scale_bgp(fig3_bgp):
    """Iteration time falls with PE count for both versions."""
    for key in ("msg_ms", "ckd_ms"):
        times = fig3_bgp[key]
        assert all(b < a for a, b in zip(times, times[1:])), (
            f"{key} not strong-scaling: {times}"
        )


def test_largest_bgp_gain_substantial(fig3_bgp):
    """The gap blows up at the largest BG/P run (paper: ~40% at 4096;
    our model: >=15% at the largest simulated point)."""
    if not full_scale():
        pytest.skip("full-scale 4096-PE point requires REPRO_FULL_SCALE=1")
    idx = fig3_bgp["pes"].index(4096)
    assert fig3_bgp["gains"][idx] >= 15.0, (
        f"gain at 4096 PEs only {fig3_bgp['gains'][idx]:.1f}%"
    )
