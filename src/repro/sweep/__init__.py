"""Parallel sweep execution for the benchmark artifacts.

The paper's tables and figures are *sweeps*: sets of independent
simulation points (one per machine/stack/size/PE-count combination)
merged into one report.  This package runs those points through a
:class:`SweepRunner` that can fan them out over a ``multiprocessing``
worker pool (``--jobs N`` / ``REPRO_JOBS``) while keeping the output
byte-identical to a serial run.

Layered as:

* :mod:`~repro.sweep.spec`   — picklable :class:`RunSpec` / :class:`RunResult`,
* :mod:`~repro.sweep.points` — the kind → point-function registry,
* :mod:`~repro.sweep.runner` — the pool, crash isolation, trace merge,
* :mod:`~repro.sweep.stats`  — per-sweep timing records for the bench
  trajectory (``BENCH_sweeps.json``).
"""

from . import stats
from .points import POINTS, point_function, register_point
from .runner import DEFAULT_TIMEOUT, SweepRunner, execute_spec, resolve_jobs, run_sweep
from .spec import (
    ENGINE_SCHEMA,
    RunResult,
    RunSpec,
    SweepError,
    canonical_bytes,
    canonical_json,
    machine_overrides,
)
from .stats import SweepRecord

__all__ = [
    "DEFAULT_TIMEOUT",
    "ENGINE_SCHEMA",
    "POINTS",
    "canonical_bytes",
    "canonical_json",
    "RunResult",
    "RunSpec",
    "SweepError",
    "SweepRecord",
    "SweepRunner",
    "execute_spec",
    "machine_overrides",
    "point_function",
    "register_point",
    "resolve_jobs",
    "run_sweep",
    "stats",
]
