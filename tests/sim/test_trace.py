"""Unit tests for tracing and running statistics."""

import math

import numpy as np
import pytest

from repro.sim.trace import RunningStats, Trace


def test_running_stats_basic():
    st = RunningStats()
    for x in [1.0, 2.0, 3.0, 4.0]:
        st.add(x)
    assert st.n == 4
    assert st.mean == pytest.approx(2.5)
    assert st.min == 1.0
    assert st.max == 4.0
    assert st.total == pytest.approx(10.0)
    assert st.variance == pytest.approx(np.var([1, 2, 3, 4], ddof=1))


def test_running_stats_matches_numpy_on_random_data():
    rng = np.random.default_rng(0)
    data = rng.normal(5.0, 2.0, size=1000)
    st = RunningStats()
    for x in data:
        st.add(float(x))
    assert st.mean == pytest.approx(np.mean(data))
    assert st.stdev == pytest.approx(np.std(data, ddof=1))


def test_running_stats_empty():
    st = RunningStats()
    assert st.n == 0
    assert st.mean == 0.0
    assert st.variance == 0.0


def test_running_stats_single_sample():
    st = RunningStats()
    st.add(7.0)
    assert st.variance == 0.0
    assert st.stdev == 0.0


def test_merge_equivalent_to_combined():
    rng = np.random.default_rng(1)
    a, b = rng.random(100), rng.random(57)
    sa, sb, sc = RunningStats(), RunningStats(), RunningStats()
    for x in a:
        sa.add(float(x))
        sc.add(float(x))
    for x in b:
        sb.add(float(x))
        sc.add(float(x))
    sa.merge(sb)
    assert sa.n == sc.n
    assert sa.mean == pytest.approx(sc.mean)
    assert sa.variance == pytest.approx(sc.variance)
    assert sa.min == sc.min
    assert sa.max == sc.max


def test_merge_with_empty_sides():
    st = RunningStats()
    st.add(1.0)
    empty = RunningStats()
    st.merge(empty)
    assert st.n == 1
    empty2 = RunningStats()
    empty2.merge(st)
    assert empty2.n == 1
    assert empty2.mean == 1.0


def test_trace_counters():
    tr = Trace()
    tr.count("x")
    tr.count("x", 4)
    assert tr.counter("x") == 5
    assert tr.counter("missing") == 0


def test_trace_samples_stats_only_by_default():
    tr = Trace()
    tr.sample("lat", 1.0)
    tr.sample("lat", 3.0)
    assert tr.stat("lat").n == 2
    assert tr.samples["lat"] == []


def test_trace_records_samples_when_enabled():
    tr = Trace(record_samples=True)
    tr.sample("lat", 1.5, time=2.0)
    assert len(tr.samples["lat"]) == 1
    assert tr.samples["lat"][0].time == 2.0
    assert tr.samples["lat"][0].value == 1.5


def test_trace_summary_shape():
    tr = Trace()
    tr.count("msgs", 3)
    tr.sample("lat", 2.0)
    s = tr.summary()
    assert s["counters"]["msgs"] == 3
    assert s["stats"]["lat"]["n"] == 1
    assert s["stats"]["lat"]["mean"] == 2.0


def test_trace_reset():
    tr = Trace(record_samples=True)
    tr.count("a")
    tr.sample("b", 1.0)
    tr.reset()
    assert tr.counter("a") == 0
    assert tr.samples == {}


def test_trace_samples_stamped_by_attached_clock():
    clock = [0.0]
    tr = Trace(record_samples=True, now_fn=lambda: clock[0])
    clock[0] = 3.5
    tr.sample("lat", 1.0)
    clock[0] = 7.25
    tr.sample("lat", 2.0)
    times = [s.time for s in tr.samples["lat"]]
    assert times == [3.5, 7.25]


def test_trace_explicit_time_beats_clock():
    tr = Trace(record_samples=True, now_fn=lambda: 99.0)
    tr.sample("lat", 1.0, time=2.0)
    assert tr.samples["lat"][0].time == 2.0


def test_trace_sample_time_defaults_to_zero_without_clock():
    tr = Trace(record_samples=True)
    tr.sample("lat", 1.0)
    assert tr.samples["lat"][0].time == 0.0
