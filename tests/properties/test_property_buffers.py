"""Property-based tests for Buffer views and the sentinel invariant."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.util.buffers import Buffer

shapes = st.tuples(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=6),
)


@given(shapes, st.data())
@settings(max_examples=60, deadline=None)
def test_copy_into_any_face_view_writes_exactly_the_face(shape, data):
    """A put into any axis-aligned face view of a 3D array changes
    exactly that face and nothing else."""
    axis = data.draw(st.integers(min_value=0, max_value=2))
    side = data.draw(st.sampled_from([0, -1]))
    base = np.zeros(shape)
    sl = [slice(None)] * 3
    sl[axis] = side
    view = base[tuple(sl)]
    payload = np.arange(1.0, view.size + 1).reshape(view.shape)

    Buffer(array=view).copy_from(Buffer(array=payload.copy()))
    assert np.array_equal(base[tuple(sl)], payload)

    mask = np.ones(shape, dtype=bool)
    mask[tuple(sl)] = False
    assert np.all(base[mask] == 0.0)


@given(shapes)
@settings(max_examples=50, deadline=None)
def test_set_last_touches_exactly_one_element(shape):
    base = np.zeros(shape)
    buf = Buffer(array=base)
    buf.set_last(7.5)
    assert buf.get_last() == 7.5
    assert np.count_nonzero(base) == 1
    # it is the final element in C order
    assert base.reshape(-1)[-1] == 7.5


@given(
    hnp.arrays(np.float64, st.integers(min_value=1, max_value=64),
               elements=st.floats(allow_nan=False, allow_infinity=False,
                                  min_value=-1e6, max_value=1e6))
)
@settings(max_examples=50, deadline=None)
def test_snapshot_roundtrip(arr):
    buf = Buffer(array=arr.copy())
    snap = buf.snapshot()
    assert np.array_equal(snap, arr)
    buf.array[...] = -123.0
    assert np.array_equal(snap, arr)  # snapshot unaffected


@given(st.integers(min_value=1, max_value=1 << 20))
@settings(max_examples=30, deadline=None)
def test_virtual_buffer_size_preserved(nbytes):
    assert Buffer.virtual(nbytes).nbytes == nbytes
