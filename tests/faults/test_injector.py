"""Unit tests for the FaultInjector: determinism, wiring, bookkeeping."""

import pytest

from repro import ABE, Runtime
from repro.faults import FaultInjector, FaultPlan, FaultRule, ReliabilityParams
from repro.sim import Simulator


def _torn_plan(seed=7):
    return FaultPlan(profile="torn", seed=seed,
                     rules=(("put", FaultRule(torn=0.5)),))


def test_draws_are_a_pure_function_of_the_seed():
    a = FaultInjector(_torn_plan(), Simulator())
    b = FaultInjector(_torn_plan(), Simulator())
    seq_a = [a.draw_torn() for _ in range(256)]
    seq_b = [b.draw_torn() for _ in range(256)]
    assert seq_a == seq_b
    assert any(seq_a) and not all(seq_a)  # p=0.5 actually mixes


def test_reseeding_changes_the_fault_sequence():
    a = FaultInjector(_torn_plan(seed=7), Simulator())
    b = FaultInjector(_torn_plan(seed=7).with_seed(8), Simulator())
    assert [a.draw_torn() for _ in range(256)] != \
           [b.draw_torn() for _ in range(256)]


def test_counts_track_injections():
    inj = FaultInjector(_torn_plan(), Simulator())
    hits = sum(inj.draw_torn() for _ in range(100))
    assert inj.counts[("put", "torn")] == hits
    assert inj.total_injected == hits


def test_scoped_restores_the_previous_scope():
    inj = FaultInjector(_torn_plan(), Simulator())
    assert inj._scope == "raw"
    with inj.scoped("ack"):
        assert inj._scope == "ack"
        with inj.scoped("put"):
            assert inj._scope == "put"
        assert inj._scope == "ack"
    assert inj._scope == "raw"
    with pytest.raises(ValueError):
        with inj.scoped("ack"):
            raise ValueError("boom")
    assert inj._scope == "raw"


def test_runtime_without_plan_has_no_fault_machinery():
    rt = Runtime(ABE, n_pes=8)
    assert rt.fault_injector is None
    assert rt.reliability is None
    assert rt.watchdog is None


def test_runtime_with_plan_wires_injector_and_reliability():
    rt = Runtime(ABE, n_pes=8, fault_plan=FaultPlan.named("drop"))
    assert rt.fault_injector is not None
    assert rt.fault_injector.fabric is rt.fabric
    assert rt.reliability == ReliabilityParams()
    assert rt.watchdog is not None
    with pytest.raises(RuntimeError):
        rt.fault_injector.attach(rt.fabric)


def test_runtime_with_reliability_only_arms_protocol_without_faults():
    params = ReliabilityParams(max_attempts=2)
    rt = Runtime(ABE, n_pes=8, reliability=params)
    assert rt.fault_injector is None
    assert rt.reliability is params
    assert rt.watchdog is not None
