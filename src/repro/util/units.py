"""Unit helpers.

All simulated time is ``float`` seconds and all sizes are ``int``
bytes.  These helpers keep parameter tables and call sites legible
(``us(4.2)`` instead of ``4.2e-6``) and provide the inverse conversions
used by report formatting.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------


def ns(x: float) -> float:
    """Nanoseconds → seconds."""
    return x * 1e-9


def us(x: float) -> float:
    """Microseconds → seconds."""
    return x * 1e-6


def ms(x: float) -> float:
    """Milliseconds → seconds."""
    return x * 1e-3


def to_us(seconds: float) -> float:
    """Seconds → microseconds."""
    return seconds * 1e6


def to_ms(seconds: float) -> float:
    """Seconds → milliseconds."""
    return seconds * 1e3


# ---------------------------------------------------------------------------
# Sizes
# ---------------------------------------------------------------------------

#: The paper quotes message sizes in decimal units (``10^3 B`` in the
#: table headers), so KB/MB here are decimal, matching the tables.
def KB(x: float) -> int:
    """Decimal kilobytes -> bytes (the paper's 10^3 B convention)."""
    return int(x * 1_000)


def MB(x: float) -> int:
    """Decimal megabytes -> bytes."""
    return int(x * 1_000_000)


def KiB(x: float) -> int:
    """Binary kibibytes -> bytes."""
    return int(x * 1024)


def MiB(x: float) -> int:
    """Binary mebibytes -> bytes."""
    return int(x * 1024 * 1024)


# ---------------------------------------------------------------------------
# Rates
# ---------------------------------------------------------------------------


def GB_per_s(x: float) -> float:
    """Gigabytes/second → seconds-per-byte (inverse bandwidth)."""
    return 1.0 / (x * 1e9)


def MB_per_s(x: float) -> float:
    """Megabytes/second → seconds-per-byte (inverse bandwidth)."""
    return 1.0 / (x * 1e6)


def per_byte_us(x: float) -> float:
    """Microseconds-per-byte → seconds-per-byte."""
    return x * 1e-6


def fmt_bytes(n: int) -> str:
    """Human-readable byte count using the paper's decimal convention."""
    if n >= 1_000_000:
        return f"{n / 1_000_000:g}MB"
    if n >= 1_000:
        return f"{n / 1_000:g}KB"
    return f"{n}B"


def fmt_us(seconds: float, digits: int = 3) -> str:
    """Format a duration as microseconds, the unit the paper reports."""
    return f"{to_us(seconds):.{digits}f}"
