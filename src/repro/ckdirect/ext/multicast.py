"""Multicast channels — the paper's "multicasts" extension (§6).

The base API already permits associating one local buffer with many
handles (one per receiver) without copies; :class:`MulticastChannel`
packages that pattern: the sender binds its buffer once, collects the
handles its receivers created, and ``put_all`` fans the data out.

On an RDMA fabric the fan-out is a sequence of RDMA writes from the
same registered source; the NIC injection link serializes them, which
the fabric model captures naturally.  After the first put of a batch,
subsequent descriptor posts are cheaper (the source registration and
descriptor template are warm), modelled by ``repeat_issue_factor``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

from ...util.buffers import Buffer
from .. import api
from ..handle import CkDirectError, CkDirectHandle

if TYPE_CHECKING:  # pragma: no cover
    from ...charm.chare import Chare

#: Descriptor-post cost factor for the 2nd..Nth put in one multicast.
REPEAT_ISSUE_FACTOR = 0.4


class MulticastChannel:
    """One sender buffer fanned out over many CkDirect channels."""

    def __init__(self, chare: "Chare", src_buffer: Buffer, name: str = "") -> None:
        self.chare = chare
        self.src_buffer = src_buffer
        self.handles: List[CkDirectHandle] = []
        self.name = name or "mcast"

    def attach(self, handle: CkDirectHandle) -> None:
        """Associate the shared source buffer with one more receiver."""
        api.assoc_local(self.chare, handle, self.src_buffer)
        self.handles.append(handle)

    def attach_all(self, handles: Sequence[CkDirectHandle]) -> None:
        """Associate the shared buffer with several handles."""
        for h in handles:
            self.attach(h)

    @property
    def fanout(self) -> int:
        """Number of receivers attached."""
        return len(self.handles)

    def put_all(self) -> None:
        """Issue one put per receiver (single warm descriptor template).

        The discount relative to independent puts is sender-side
        software only; every receiver still gets a full transfer.
        """
        if not self.handles:
            raise CkDirectError(f"{self.name}: put_all with no receivers attached")
        rt = self.chare.rt
        issue = rt.machine.ckdirect.put_issue
        # One schedule_batch admits the whole fan-out's delivery
        # events (atomic and ordering-neutral on every eventq impl).
        with rt.fabric.batch():
            for i, handle in enumerate(self.handles):
                api.put(
                    handle,
                    issue_cost=issue if i == 0 else issue * REPEAT_ISSUE_FACTOR,
                )
        rt.trace.count("ckdirect.multicasts")
