"""Unit tests for unit helpers."""

import pytest

from repro.util import units


def test_time_conversions_roundtrip():
    assert units.to_us(units.us(4.2)) == pytest.approx(4.2)
    assert units.to_ms(units.ms(1.5)) == pytest.approx(1.5)
    assert units.ns(1000) == pytest.approx(units.us(1))
    assert units.us(1000) == pytest.approx(units.ms(1))


def test_sizes_are_decimal_like_the_paper():
    assert units.KB(1) == 1_000
    assert units.MB(1) == 1_000_000
    assert units.KiB(1) == 1024
    assert units.MiB(1) == 1024 * 1024


def test_bandwidths():
    assert units.GB_per_s(1) == pytest.approx(1e-9)
    assert units.MB_per_s(500) == pytest.approx(2e-9)
    # 1 GB at 1 GB/s takes 1 second
    assert 1_000_000_000 * units.GB_per_s(1) == pytest.approx(1.0)


def test_fmt_bytes():
    assert units.fmt_bytes(100) == "100B"
    assert units.fmt_bytes(5_000) == "5KB"
    assert units.fmt_bytes(500_000) == "500KB"
    assert units.fmt_bytes(2_000_000) == "2MB"


def test_fmt_us():
    assert units.fmt_us(12.383e-6) == "12.383"
    assert units.fmt_us(1e-3, digits=1) == "1000.0"
