"""Process-scope fault plans: validation, profiles, incarnation scoping."""

import pytest

from repro.faults import (
    PROC_PROFILES,
    FaultConfigError,
    ProcFaultPlan,
    ProcFaultRule,
    parse_proc_profiles,
)


def test_rule_validation():
    ProcFaultRule("kill")  # defaults are legal
    with pytest.raises(FaultConfigError, match="kind"):
        ProcFaultRule("crash")
    with pytest.raises(FaultConfigError, match="shard"):
        ProcFaultRule("kill", shard=-1)
    with pytest.raises(FaultConfigError, match="at_round"):
        ProcFaultRule("hang", at_round=0)
    with pytest.raises(FaultConfigError, match="slow_s"):
        ProcFaultRule("slow", slow_s=-0.1)


def test_named_profiles():
    for name in PROC_PROFILES:
        plan = ProcFaultPlan.named(name)
        assert plan.profile == name
    assert ProcFaultPlan.named("corrupt-object").rules == ()
    with pytest.raises(FaultConfigError, match="unknown proc fault profile"):
        ProcFaultPlan.named("segfault")


def test_for_shard_scopes_by_target_and_incarnation():
    plan = ProcFaultPlan("mix", (
        ProcFaultRule("kill", shard=1),
        ProcFaultRule("hang", shard=2, every_incarnation=True),
        ProcFaultRule("slow", shard=1, slow_s=0.001),
    ))
    # first incarnation sees every rule for its shard
    assert len(plan.for_shard(1, 0)) == 2
    assert len(plan.for_shard(2, 0)) == 1
    assert plan.for_shard(3, 0) == ()
    # replacements only see every_incarnation rules (one-shot faults
    # must not re-fire after a supervised restart)
    assert plan.for_shard(1, 1) == ()
    assert len(plan.for_shard(2, 1)) == 1


def test_parse_proc_profiles():
    assert parse_proc_profiles("all") == tuple(sorted(PROC_PROFILES))
    assert parse_proc_profiles("kill-shard, corrupt-object") == (
        "kill-shard", "corrupt-object")
    with pytest.raises(FaultConfigError, match="no proc fault profiles"):
        parse_proc_profiles(" , ")
    with pytest.raises(FaultConfigError, match="unknown proc fault profile"):
        parse_proc_profiles("kill-shard,oom")


def test_plans_are_picklable():
    import pickle

    plan = ProcFaultPlan.named("kill-shard")
    assert pickle.loads(pickle.dumps(plan)) == plan
