"""Property-based tests for CkDirect: any payload (not ending in the
out-of-band value) survives any channel bit-for-bit; iterated puts
never lose or duplicate messages."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import ABE, SURVEYOR, Buffer, Runtime
from repro import ckdirect as ckd

from tests.ckdirect.channel_helpers import CROSS, Endpoint

payloads = hnp.arrays(
    np.float64,
    st.integers(min_value=1, max_value=64),
    elements=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)


def _run_channel(machine, payload):
    rt = Runtime(machine, n_pes=2 * machine.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    recv.recv_arr = np.zeros_like(payload)
    recv.recv_buf = Buffer(array=recv.recv_arr)
    send.send_arr = payload.copy()
    send.send_buf = Buffer(array=send.send_arr)
    handle = recv.make_handle(oob=-1.0)
    ckd.assoc_local(send, handle, send.send_buf)
    arr.proxy[1].do_put(handle)
    rt.run()
    return recv, handle


@given(payloads)
@settings(max_examples=40, deadline=None)
def test_any_payload_survives_ib(payload):
    assume(payload[-1] != -1.0)
    recv, handle = _run_channel(ABE, payload)
    assert np.array_equal(recv.recv_arr, payload)
    assert len(recv.fired) == 1


@given(payloads)
@settings(max_examples=25, deadline=None)
def test_any_payload_survives_bgp(payload):
    assume(payload[-1] != -1.0)
    recv, handle = _run_channel(SURVEYOR, payload)
    assert np.array_equal(recv.recv_arr, payload)


@given(st.integers(min_value=1, max_value=12), st.randoms(use_true_random=False))
@settings(max_examples=25, deadline=None)
def test_iterated_puts_exactly_once(n_rounds, rnd):
    """Over n re-armed rounds, exactly n callbacks fire and the final
    buffer equals the final payload."""
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle()
    ckd.assoc_local(send, handle, send.send_buf)
    last = None
    for k in range(n_rounds):
        value = float(rnd.randrange(1, 1000))
        send.send_arr[:] = value
        last = value
        arr.proxy[1].do_put(handle)
        rt.run()
        if k != n_rounds - 1:
            arr.proxy[0].do_ready(handle)
            rt.run()
    assert len(recv.fired) == n_rounds
    assert handle.puts_completed == n_rounds
    assert np.all(recv.recv_arr == last)
