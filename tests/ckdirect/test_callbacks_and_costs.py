"""Tests for CkDirect callback flavors and cost accounting details."""

import numpy as np
import pytest

from repro import ABE, SURVEYOR, Buffer, Chare, CkCallback, Runtime
from repro import ckdirect as ckd

from tests.ckdirect.channel_helpers import CROSS, Endpoint


def test_ckcallback_as_channel_callback():
    """A handle may carry a CkCallback instead of a plain function —
    e.g. delivering completion to an entry method (the OpenAtom
    'enqueue an entry method' pattern expressed declaratively)."""

    class WithEntry(Endpoint):
        def __init__(self):
            super().__init__()
            self.entries = []

        def on_entry(self, cbdata):
            self.entries.append(cbdata)

    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
    arr = rt.create_array(WithEntry, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = ckd.create_handle(
        recv, recv.recv_buf, -1.0,
        CkCallback.send(arr, 0, "on_entry"), cbdata="tag-7",
    )
    ckd.assoc_local(send, handle, send.send_buf)
    arr.proxy[1].do_put(handle)
    rt.run()
    assert recv.entries == ["tag-7"]


def test_bgp_direct_item_cost_accounting():
    """The BG/P completion path must charge handler+callback on the
    receiving PE (visible in its busy time), not scheduler costs."""
    rt = Runtime(SURVEYOR, n_pes=2 * SURVEYOR.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), ctor_args=(64,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle()  # 512 B: the normal (>224 B) DCMF path
    ckd.assoc_local(send, handle, send.send_buf)
    busy_before = recv._pe.busy_time
    arr.proxy[1].do_put(handle)
    rt.run()
    delta = recv._pe.busy_time - busy_before
    expected = (
        SURVEYOR.net.handler_normal + SURVEYOR.ckdirect.callback_overhead
    )
    assert delta == pytest.approx(expected)


def test_bgp_short_path_cheaper_handler():
    """Puts below the 224 B DCMF threshold ride the short handler."""
    rt = Runtime(SURVEYOR, n_pes=2 * SURVEYOR.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)  # 64 B
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle()
    ckd.assoc_local(send, handle, send.send_buf)
    busy_before = recv._pe.busy_time
    arr.proxy[1].do_put(handle)
    rt.run()
    delta = recv._pe.busy_time - busy_before
    expected = (
        SURVEYOR.net.handler_short + SURVEYOR.ckdirect.callback_overhead
    )
    assert delta == pytest.approx(expected)


def test_ib_detection_cost_accounting():
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle()
    ckd.assoc_local(send, handle, send.send_buf)
    busy_before = recv._pe.busy_time
    arr.proxy[1].do_put(handle)
    rt.run()
    delta = recv._pe.busy_time - busy_before
    ckp = ABE.ckdirect
    expected = (
        ckp.poll_base + ckp.poll_per_handle  # one sweep over one handle
        + ckp.detect_overhead + ckp.callback_overhead
    )
    assert delta == pytest.approx(expected)


def test_put_issue_charged_on_sender():
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)

    class Timed(Endpoint):
        def timed_put(self, h):
            t0 = self.now
            ckd.put(h)
            self.issue_cost = self.now - t0

    arr = rt.create_array(Timed, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle()
    ckd.assoc_local(send, handle, send.send_buf)
    arr.proxy[1].timed_put(handle)
    rt.run()
    assert send.issue_cost == pytest.approx(ABE.ckdirect.put_issue)


def test_setup_costs_charged_in_context_only():
    """Handle creation at bootstrap (host) time is off the clock; the
    same call inside an entry method charges handle_setup."""
    rt = Runtime(ABE, n_pes=2)

    class LateCreator(Chare):
        def __init__(self):
            self.buf = Buffer(array=np.zeros(4))

        def create_now(self):
            t0 = self.now
            ckd.create_handle(self, self.buf, -1.0, lambda _: None)
            self.cost = self.now - t0

    arr = rt.create_array(LateCreator, dims=(1,))
    arr.proxy[0].create_now()
    rt.run()
    assert arr.element(0).cost == pytest.approx(ABE.ckdirect.handle_setup)


def test_host_call_runs_at_caller_cursor():
    rt = Runtime(ABE, n_pes=1)
    stamps = []

    class H(Chare):
        def go(self):
            self.charge(5e-6)
            self.rt.host_call(lambda: stamps.append(rt.now))

    arr = rt.create_array(H, dims=(1,))
    arr.proxy[0].go()
    rt.run()
    assert stamps[0] >= 5e-6
