"""Unit tests for Event ordering and lifecycle."""

from repro.sim.event import Event


def _ev(time, priority=0, seq=0):
    return Event(time, priority, seq, lambda: None, (), None)


def test_ordering_by_time():
    assert _ev(1.0) < _ev(2.0)
    assert not (_ev(2.0) < _ev(1.0))


def test_ordering_by_priority_within_time():
    assert _ev(1.0, priority=-1, seq=5) < _ev(1.0, priority=0, seq=1)


def test_ordering_by_seq_within_time_and_priority():
    assert _ev(1.0, seq=1) < _ev(1.0, seq=2)


def test_cancel_is_idempotent():
    ev = _ev(1.0)
    assert not ev.cancelled
    ev.cancel()
    ev.cancel()
    assert ev.cancelled


def test_fire_invokes_with_args_and_kwargs():
    got = []
    ev = Event(0.0, 0, 0, lambda *a, **k: got.append((a, k)), (1, 2), {"x": 3})
    ev.fire()
    assert got == [((1, 2), {"x": 3})]


def test_cancelled_event_does_not_fire():
    got = []
    ev = Event(0.0, 0, 0, got.append, ("x",), None)
    ev.cancel()
    ev.fire()
    assert got == []


def test_sort_key_tuple():
    ev = _ev(2.5, priority=1, seq=7)
    assert ev.sort_key() == (2.5, 1, 7)
