"""Machine-readable export of bench results.

The harness runners return plain dicts; these helpers flatten them
into CSV rows so regenerated tables/figures can be diffed, plotted, or
tracked across parameter changes without parsing the ASCII reports.

Two result shapes exist and both are handled:

* **table** results (``run_table1``/``run_table2``): rows are
  ``(stack, nbytes, rtt_us_ours, rtt_us_paper)``;
* **series** results (the figure/ablation runners): one row per x
  value with one column per series.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Dict, Optional, Sequence, Union

PathLike = Union[str, pathlib.Path]


def export_table_csv(result: Dict, path: PathLike) -> pathlib.Path:
    """Write a pingpong-table result to CSV; returns the path."""
    path = pathlib.Path(path)
    sizes: Sequence[int] = result["sizes"]
    measured: Dict[str, Sequence[float]] = result["measured"]
    paper: Optional[Dict[str, Sequence[float]]] = result.get("paper")
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["stack", "nbytes", "rtt_us", "paper_rtt_us"])
        for stack, vals in measured.items():
            ref = paper.get(stack) if paper else None
            for i, size in enumerate(sizes):
                writer.writerow([
                    stack, size, f"{vals[i]:.6f}",
                    f"{ref[i]:.6f}" if ref else "",
                ])
    return path


def export_series_csv(
    result: Dict, path: PathLike, x_key: str = "pes"
) -> pathlib.Path:
    """Write a figure/ablation series result to CSV.

    ``x_key`` names the x-axis list in the result dict (``pes`` for
    the figures, ``ratios`` for the VR ablation, ``sizes`` for the
    protocol ablation).  Every other list-valued entry of matching
    length becomes a column.
    """
    path = pathlib.Path(path)
    xs = result[x_key]
    columns = {
        key: vals
        for key, vals in result.items()
        if key != x_key
        and isinstance(vals, (list, tuple))
        and len(vals) == len(xs)
        and all(isinstance(v, (int, float)) for v in vals)
    }
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([x_key] + list(columns))
        for i, x in enumerate(xs):
            writer.writerow([x] + [f"{columns[k][i]:.6f}" for k in columns])
    return path


def export_all(results_dir: PathLike, out_dir: Optional[PathLike] = None) -> list:
    """Regenerate Tables 1-2 and Figures 2a/2b quickly and export them
    as CSV into ``out_dir`` (defaults to ``results_dir``).

    A convenience for one-command data dumps; the full benchmark suite
    remains the canonical regeneration path.
    """
    from .harness import run_fig2a, run_fig2b, run_table1, run_table2

    results_dir = pathlib.Path(results_dir)
    out = pathlib.Path(out_dir) if out_dir is not None else results_dir
    out.mkdir(parents=True, exist_ok=True)
    written = []
    written.append(export_table_csv(run_table1(iterations=50), out / "table1.csv"))
    written.append(export_table_csv(run_table2(iterations=50), out / "table2.csv"))
    written.append(export_series_csv(run_fig2a(), out / "fig2a.csv"))
    written.append(export_series_csv(run_fig2b(), out / "fig2b.csv"))
    return written
