"""Interconnect models: topologies, fabrics, calibrated machine presets."""

from .base import Fabric, FabricError
from .bluegene import BGPFabric
from .infiniband import PROTOCOLS, InfinibandFabric
from .params import (
    ABE,
    BGPParams,
    CharmParams,
    CkDirectParams,
    ComputeParams,
    IBM_MPI_BUFFERING_TABLE,
    IBParams,
    MACHINES,
    MPIFlavorParams,
    MachineParams,
    SURVEYOR,
    T3,
    interp_table,
)
from .topology import FatTree, GraphTopology, Topology, TopologyError, Torus3D

__all__ = [
    "Fabric",
    "FabricError",
    "InfinibandFabric",
    "BGPFabric",
    "PROTOCOLS",
    "Topology",
    "TopologyError",
    "FatTree",
    "Torus3D",
    "GraphTopology",
    "MachineParams",
    "CharmParams",
    "CkDirectParams",
    "ComputeParams",
    "IBParams",
    "BGPParams",
    "MPIFlavorParams",
    "ABE",
    "T3",
    "SURVEYOR",
    "MACHINES",
    "IBM_MPI_BUFFERING_TABLE",
    "interp_table",
]


def make_fabric(sim, machine: MachineParams, n_pes: int, trace=None) -> Fabric:
    """Instantiate the right fabric for a machine preset."""
    topo = machine.make_topology(n_pes)
    cls = InfinibandFabric if machine.kind == "ib" else BGPFabric
    return cls(sim, topo, machine, trace)
