"""repro — a simulated reproduction of *CkDirect: Unsynchronized
One-Sided Communication in a Message-Driven Paradigm* (ICPP 2009).

Top-level packages:

* :mod:`repro.sim` — deterministic discrete-event core.
* :mod:`repro.network` — calibrated Infiniband and Blue Gene/P fabric
  models and topologies.
* :mod:`repro.charm` — a Charm++-style message-driven runtime.
* :mod:`repro.ckdirect` — the CkDirect interface (the contribution).
* :mod:`repro.mpi` — simulated MPI baselines (two-sided + RMA).
* :mod:`repro.apps` — pingpong, 3D Jacobi stencil, 3D matmul, and the
  OpenAtom PairCalculator mini-app (MSG and CKD variants of each).
* :mod:`repro.bench` — the table/figure regeneration harness.
"""

__version__ = "1.0.0"

from .charm import Chare, CkCallback, Payload, Runtime
from .network import ABE, MACHINES, SURVEYOR, T3
from .util import Buffer

__all__ = [
    "Runtime",
    "Chare",
    "CkCallback",
    "Payload",
    "Buffer",
    "ABE",
    "T3",
    "SURVEYOR",
    "MACHINES",
    "__version__",
]
