"""Unit tests for ChareArray indexing, proxies, and the spanning tree."""

import pytest

from repro import ABE, Chare, Runtime
from repro.charm import CustomMap
from repro.charm.mapping import MappingError


class E(Chare):
    def __init__(self):
        self.hits = []

    def hit(self, *a):
        self.hits.append(a)


def test_index_normalization():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(E, dims=(4,))
    assert arr.normalize_index(2) == (2,)
    assert arr.normalize_index((3,)) == (3,)
    assert arr.normalize_index([1]) == (1,)
    import numpy as np

    assert arr.normalize_index(np.int64(1)) == (1,)


def test_index_bounds_checked():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(E, dims=(2, 2))
    with pytest.raises(MappingError):
        arr.normalize_index((2, 0))
    with pytest.raises(MappingError):
        arr.proxy[(0, 5)]


def test_element_lookup_and_pe_of():
    rt = Runtime(ABE, n_pes=4)
    arr = rt.create_array(E, dims=(8,))
    for i in range(8):
        e = arr.element(i)
        assert e.thisIndex == (i,)
        assert arr.pe_of(i) == e._pe.rank


def test_local_elements_partition():
    rt = Runtime(ABE, n_pes=4)
    arr = rt.create_array(E, dims=(8,))
    seen = []
    for pe, idxs in arr.local_elements.items():
        seen.extend(idxs)
        assert arr.local_count(pe) == len(idxs)
    assert sorted(seen) == [(i,) for i in range(8)]


def test_home_pes_sorted_subset():
    rt = Runtime(ABE, n_pes=8)
    arr = rt.create_array(
        E, dims=(3,), mapping=CustomMap(lambda idx, dims, n: [6, 2, 4][idx[0]])
    )
    assert arr.home_pes == [2, 4, 6]


def test_tree_parent_child_consistency():
    rt = Runtime(ABE, n_pes=16)
    arr = rt.create_array(E, dims=(16,))
    root = arr.home_pes[0]
    assert arr.tree_parent(root) is None
    for pe in arr.home_pes:
        for child in arr.tree_children(pe):
            assert arr.tree_parent(child) == pe
    # every non-root is someone's child exactly once
    all_children = [c for pe in arr.home_pes for c in arr.tree_children(pe)]
    assert sorted(all_children) == sorted(p for p in arr.home_pes if p != root)


def test_tree_depth_logarithmic():
    rt = Runtime(ABE, n_pes=64)
    arr = rt.create_array(E, dims=(64,))

    def depth(pe):
        d = 0
        while arr.tree_parent(pe) is not None:
            pe = arr.tree_parent(pe)
            d += 1
        return d

    assert max(depth(p) for p in arr.home_pes) <= 6  # log2(64)


def test_element_proxy_getattr_blocks_private():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(E, dims=(1,))
    with pytest.raises(AttributeError):
        arr.proxy[0]._secret


def test_proxy_send_roundtrip():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(E, dims=(2, 3))
    arr.proxy[(1, 2)].hit("yes")
    rt.run()
    assert arr.element((1, 2)).hits == [("yes",)]


def test_multidim_arrays_up_to_4d():
    rt = Runtime(ABE, n_pes=4)
    arr = rt.create_array(E, dims=(2, 2, 2, 2))
    assert arr.size == 16
    arr.proxy[(1, 1, 1, 1)].hit()
    rt.run()
    assert arr.element((1, 1, 1, 1)).hits == [()]
